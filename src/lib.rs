//! # icp — Intra-Application Cache Partitioning
//!
//! A production-quality Rust reproduction of *"Intra-Application Cache
//! Partitioning"* (Muralidhara, Kandemir, Raghavan — IPDPS 2010): dynamic,
//! runtime-system-based partitioning of a CMP's shared L2 cache among the
//! threads of a **single** multithreaded application, speeding up the
//! critical path thread at every execution interval.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`numeric`] — splines, Zipf sampling, statistics, deterministic RNG,
//! * [`sim`] — the from-scratch CMP cache/timing simulator substrate,
//! * [`workloads`] — the synthetic NAS/SPEC-OMP-like benchmark suite,
//! * [`runtime`] — the paper's contribution: the interval-driven
//!   partitioning runtime and its CPI-based / model-based policies,
//! * [`baselines`] — shared, static-equal, throughput-oriented (UCP) and
//!   fairness-oriented comparison schemes,
//! * [`experiments`] — reproductions of every figure and table in the
//!   paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use icp::sim::{Simulator, SystemConfig};
//! use icp::workloads::{suite, WorkloadScale};
//! use icp::runtime::{IntraAppRuntime, ModelBasedPolicy};
//!
//! // A scaled-down 4-core system (same shape as the paper's Figure 2).
//! let cfg = SystemConfig::scaled_down();
//! // One of the nine synthetic benchmarks, seeded deterministically.
//! let spec = suite::swim();
//! let streams = spec.build_streams(&cfg, WorkloadScale::Test, 42);
//! let mut sim = Simulator::new(cfg, streams);
//!
//! // Run under the paper's model-based dynamic partitioning runtime.
//! let mut runtime = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
//! let outcome = runtime.execute(&mut sim);
//! assert!(outcome.wall_cycles > 0);
//! ```

pub use icp_baselines as baselines;
pub use icp_cmp_sim as sim;
pub use icp_core as runtime;
pub use icp_experiments as experiments;
pub use icp_numeric as numeric;
pub use icp_workloads as workloads;
