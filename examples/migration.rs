//! Thread migration resilience (paper §VII): the authors note that when the
//! OS migrated threads between cores, "our predictions were not optimal
//! (during that period), but our approach quickly adapted to the new
//! thread-mapping".
//!
//! This example migrates two threads of `mgrid` — the critical thread and
//! the fast thread swap cores halfway through the run — and shows the
//! dynamic partitioner re-learning: the big way allocation follows the
//! critical workload to its new core within a few intervals.
//!
//! ```text
//! cargo run --release --example migration
//! ```

use icp::runtime::{IntraAppRuntime, ModelBasedPolicy};
use icp::sim::stream::{AccessStream, ThreadEvent};
use icp::sim::{Simulator, SystemConfig};
use icp::workloads::{suite, SyntheticStream, WorkloadScale};

/// Drains a stream into (first ~half, rest) event vectors, splitting at
/// `split_insts` retired instructions.
fn split_stream(mut s: SyntheticStream, split_insts: u64) -> (Vec<ThreadEvent>, Vec<ThreadEvent>) {
    let mut first = Vec::new();
    let mut rest = Vec::new();
    let mut insts = 0u64;
    loop {
        let e = s.next_event();
        match e {
            ThreadEvent::Finished => break,
            ThreadEvent::Access { gap, .. } => {
                insts += gap as u64 + 1;
                if insts <= split_insts {
                    first.push(e);
                } else {
                    rest.push(e);
                }
            }
            ThreadEvent::Barrier => {
                if insts <= split_insts {
                    first.push(e);
                } else {
                    rest.push(e);
                }
            }
        }
    }
    (first, rest)
}

/// Replays one event vector, then another ("this core ran workload X, then
/// the OS moved workload Y here").
struct SplicedStream {
    events: Vec<ThreadEvent>,
    pos: usize,
}

impl SplicedStream {
    fn new(first: Vec<ThreadEvent>, second: Vec<ThreadEvent>) -> Self {
        let mut events = first;
        events.extend(second);
        SplicedStream { events, pos: 0 }
    }
}

impl AccessStream for SplicedStream {
    fn next_event(&mut self) -> ThreadEvent {
        let e = self.events.get(self.pos).copied().unwrap_or(ThreadEvent::Finished);
        self.pos += 1;
        e
    }
}

fn main() {
    let cfg = SystemConfig::scaled_down();
    let bench = suite::mgrid(); // t1 = critical, t3 = fastest
    let scale = WorkloadScale::Figure;
    let half = bench.instructions_per_thread(scale) / 2;

    let build = |t: usize| SyntheticStream::new(&bench, &bench.threads[t], t, &cfg, scale, 11);

    // Split every thread's event stream at the halfway point.
    let halves: Vec<(Vec<ThreadEvent>, Vec<ThreadEvent>)> =
        (0..4).map(|t| split_stream(build(t), half)).collect();
    let mut halves: Vec<Option<(Vec<ThreadEvent>, Vec<ThreadEvent>)>> =
        halves.into_iter().map(Some).collect();

    // Migration: cores 1 and 3 swap workloads at the halfway point.
    let (first1, second1) = halves[1].take().unwrap();
    let (first3, second3) = halves[3].take().unwrap();
    let (first0, second0) = halves[0].take().unwrap();
    let (first2, second2) = halves[2].take().unwrap();
    let streams: Vec<Box<dyn AccessStream>> = vec![
        Box::new(SplicedStream::new(first0, second0)),
        Box::new(SplicedStream::new(first1, second3)), // core 1: critical -> fast
        Box::new(SplicedStream::new(first2, second2)),
        Box::new(SplicedStream::new(first3, second1)), // core 3: fast -> critical
    ];

    let mut sim = Simulator::new(cfg, streams);
    let mut runtime = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
    let out = runtime.execute(&mut sim);

    println!("mgrid with a mid-run migration: cores 1 and 3 swap workloads\n");
    println!("{:>4} {:>16} {:>28}", "ivl", "ways", "per-thread CPI");
    for r in &out.records {
        let ways: Vec<String> = r.ways.iter().map(|w| w.to_string()).collect();
        let cpis: Vec<String> = r.cpi.iter().map(|c| format!("{c:.1}")).collect();
        println!("{:>4} {:>16} {:>28}", r.index, ways.join("/"), cpis.join("  "));
    }

    // Where did the big allocation sit before and after the migration?
    let n = out.records.len();
    let before = &out.records[n / 2 - 2];
    let after = &out.records[n - 2];
    let argmax = |ws: &[u32]| ws.iter().enumerate().max_by_key(|(_, w)| **w).map(|(i, _)| i).unwrap();
    println!(
        "\nbiggest partition before migration: core {}  |  near the end: core {}",
        argmax(&before.ways),
        argmax(&after.ways)
    );
    println!("total: {} cycles over {} intervals", out.wall_cycles, out.intervals());
}
