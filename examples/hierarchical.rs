//! Hierarchical cache partitioning (paper §VI-C, Figure 16): the OS
//! partitions the shared L2 *between applications*, and each application's
//! runtime system partitions its share *among its own threads* with the
//! paper's model-based scheme.
//!
//! Two 2-thread applications run together on a 4-core CMP. The OS gives
//! application A (cache-hungry swim) 40 of 64 ways and application B (mg)
//! 24; a second run lets the OS re-balance budgets dynamically by each
//! application's critical-path CPI.
//!
//! ```text
//! cargo run --release --example hierarchical
//! ```

use icp::runtime::{BudgetPolicy, HierarchicalPolicy, IntraAppRuntime, ModelBasedPolicy};
use icp::sim::{Simulator, SystemConfig};
use icp::workloads::{suite, MultiAppWorkload, WorkloadScale};

fn run(cfg: &SystemConfig, budget_policy: BudgetPolicy) {
    let workload = MultiAppWorkload::new()
        .add(&suite::swim(), 2) // app A: threads 0-1
        .add(&suite::mg(), 2); // app B: threads 2-3
    let streams = workload.build_streams(cfg, WorkloadScale::Figure, 7);
    let mut sim = Simulator::new(*cfg, streams);

    let policy = HierarchicalPolicy::new(
        workload.groups(),
        vec![40, 24], // the OS decision: app A is cache-hungry
        vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
    )
    .with_budget_policy(budget_policy.clone());

    let mut runtime = IntraAppRuntime::new(policy, cfg);
    let out = runtime.execute(&mut sim);

    println!("--- budget policy: {budget_policy:?} ---");
    println!("{:>4} {:>16} {:>16} {:>28}", "ivl", "ways(app A)", "ways(app B)", "per-thread CPI");
    for r in out.records.iter().take(12) {
        let a: Vec<String> = r.ways[..2].iter().map(|w| w.to_string()).collect();
        let b: Vec<String> = r.ways[2..].iter().map(|w| w.to_string()).collect();
        let cpis: Vec<String> = r.cpi.iter().map(|c| format!("{c:.1}")).collect();
        println!(
            "{:>4} {:>16} {:>16} {:>28}",
            r.index,
            a.join("/"),
            b.join("/"),
            cpis.join("  ")
        );
    }
    println!(
        "completed in {} cycles over {} intervals\n",
        out.wall_cycles,
        out.intervals()
    );
}

fn main() {
    let cfg = SystemConfig::scaled_down();
    println!("hierarchical partitioning: swim (t0,t1) + mg (t2,t3) on one 64-way L2\n");
    run(&cfg, BudgetPolicy::Static);
    run(&cfg, BudgetPolicy::CriticalCpiProportional);
    println!("with the dynamic OS budget, ways migrate toward the application");
    println!("whose critical path is slower, while each application's runtime");
    println!("still balances its own threads inside its budget.");
}
