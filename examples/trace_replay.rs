//! Record-once / simulate-many with the trace subsystem: capture each
//! thread's access stream of a benchmark into binary traces, then replay
//! the *identical* access sequences under different partitioning schemes.
//!
//! This is how the paper-style methodology decouples workload capture from
//! policy evaluation: every scheme sees exactly the same per-thread event
//! sequence, so differences in outcome are attributable to the cache
//! policy alone (in live runs, barrier timing lets threads interleave
//! differently across schemes).
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use icp::baselines::{SharedCachePolicy, StaticEqualPolicy};
use icp::runtime::{IntraAppRuntime, ModelBasedPolicy, Partitioner};
use icp::sim::trace::Trace;
use icp::sim::{Simulator, SystemConfig};
use icp::workloads::{suite, SyntheticStream, WorkloadScale};

fn main() {
    let cfg = SystemConfig::scaled_down();
    let bench = suite::cg();

    // 1. Record: drain each thread's synthetic stream into a trace.
    let traces: Vec<Trace> = (0..4)
        .map(|t| {
            let mut s = SyntheticStream::new(&bench, &bench.threads[t], t, &cfg, WorkloadScale::Figure, 99);
            Trace::record(&mut s, usize::MAX)
        })
        .collect();
    let bytes: usize = traces.iter().map(|t| t.to_bytes().len()).sum();
    println!("recorded {} events ({} KiB serialised) from {}",
             traces.iter().map(Trace::len).sum::<usize>(), bytes / 1024, bench.name);

    // 2. Serialise + reload (as an external consumer would).
    let reloaded: Vec<Trace> = traces
        .iter()
        .map(|t| Trace::from_bytes(&t.to_bytes()).expect("roundtrip"))
        .collect();

    // 3. Replay under three schemes.
    let mut results = Vec::new();
    let schemes: Vec<(&str, Box<dyn Partitioner + Send>)> = vec![
        ("shared", Box::new(SharedCachePolicy)),
        ("static-equal", Box::new(StaticEqualPolicy)),
        ("model-based", Box::new(ModelBasedPolicy::new())),
    ];
    for (name, policy) in schemes {
        let streams = reloaded
            .iter()
            .map(|t| Box::new(t.clone().into_stream()) as Box<dyn icp::sim::stream::AccessStream>)
            .collect();
        let mut sim = Simulator::new(cfg, streams);
        let mut rt = IntraAppRuntime::new(policy, &cfg);
        let out = rt.execute(&mut sim);
        results.push((name, out.wall_cycles));
    }

    println!("\nreplaying the identical traces under each scheme:");
    let best = results.iter().map(|(_, w)| *w).min().unwrap();
    for (name, wall) in &results {
        println!(
            "  {name:<14} {wall:>12} cycles  ({:+.1}% vs best)",
            (*wall as f64 / best as f64 - 1.0) * 100.0
        );
    }
}
