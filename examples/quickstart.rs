//! Quickstart: run one multithreaded benchmark under the paper's dynamic
//! model-based cache partitioning runtime and compare it against a plain
//! shared cache and a private (equal-partition) cache.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use icp::runtime::{IntraAppRuntime, ModelBasedPolicy};
use icp::sim::{Simulator, SystemConfig};
use icp::workloads::{suite, WorkloadScale};

fn main() {
    // A 4-core CMP with a 64-way shared L2 — the shape of the paper's
    // Figure 2 configuration, scaled down so this demo runs in seconds.
    let cfg = SystemConfig::scaled_down();

    // One of the nine synthetic NAS/SPEC-OMP-like benchmarks. `swim` has a
    // cache-hungry critical thread, a streaming polluter and strong phase
    // behaviour — the paper's showcase workload.
    let bench = suite::swim();
    println!("benchmark: {} ({} threads)", bench.name, bench.threads.len());

    // --- The paper's scheme: dynamic model-based partitioning -----------
    let streams = bench.build_streams(&cfg, WorkloadScale::Figure, 42);
    let mut sim = Simulator::new(cfg, streams);
    let mut runtime = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
    let dynamic = runtime.execute(&mut sim);

    println!("\nper-interval log (dynamic scheme):");
    println!("{:>4} {:>18} {:>30}", "ivl", "ways", "per-thread CPI");
    for r in dynamic.records.iter().take(12) {
        let ways: Vec<String> = r.ways.iter().map(|w| w.to_string()).collect();
        let cpis: Vec<String> = r.cpi.iter().map(|c| format!("{c:.1}")).collect();
        println!("{:>4} {:>18} {:>30}", r.index, ways.join("/"), cpis.join("  "));
    }

    // --- Baselines -------------------------------------------------------
    let run_with = |policy: Box<dyn icp::runtime::Partitioner + Send>| {
        let streams = bench.build_streams(&cfg, WorkloadScale::Figure, 42);
        let mut sim = Simulator::new(cfg, streams);
        IntraAppRuntime::new(policy, &cfg).execute(&mut sim)
    };
    let shared = run_with(Box::new(icp::baselines::SharedCachePolicy));
    let private = run_with(Box::new(icp::baselines::StaticEqualPolicy));

    println!("\nscheme comparison (lower wall cycles = faster):");
    for out in [&shared, &private, &dynamic] {
        println!("  {:<14} {:>12} cycles", out.scheme, out.wall_cycles);
    }
    println!(
        "\ndynamic vs shared:  {:+.1}%",
        dynamic.improvement_percent_over(&shared)
    );
    println!(
        "dynamic vs private: {:+.1}%",
        dynamic.improvement_percent_over(&private)
    );
}
