//! Building a custom multithreaded workload from scratch and sweeping every
//! partitioning scheme over it.
//!
//! Demonstrates the full public workload API: per-phase working sets,
//! locality (Zipf exponent), memory intensity, sharing, memory-level
//! parallelism and barrier structure.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use icp::experiments::{ExperimentConfig, Scheme};
use icp::workloads::WorkloadBuilder;

fn main() {
    // A producer/consumer-style application, described with the fluent
    // builder:
    //  t0: "solver"  — large, cache-sensitive working set, serial misses.
    //  t1: "sweeper" — streams over a huge array with prefetch-friendly
    //                  (high-MLP) accesses; occupies cache, gains little.
    //  t2: "reducer" — small hot set, alternates with a scan phase.
    //  t3: "logger"  — tiny footprint, mostly L1-resident.
    let bench = WorkloadBuilder::new("custom-pipeline")
        .sections(10, 12_000)
        .shared_region(0.1, 0.8)
        .thread(|t| t.working_set(3.0).theta(0.72).memory_intensity(0.14).sharing(0.10))
        .thread(|t| {
            t.working_set(4.0)
                .theta(0.40)
                .memory_intensity(0.12)
                .sharing(0.05)
                .mlp(6.0)
        })
        .thread(|t| {
            t.working_set(0.08)
                .theta(1.0)
                .memory_intensity(0.25)
                .sharing(0.15)
                .then_after(40_000)
                .working_set(0.5)
                .theta(0.45)
                .memory_intensity(0.2)
                .mlp(3.0)
                .writes(0.4)
        })
        .thread(|t| t.working_set(0.03).theta(1.0).memory_intensity(0.2).sharing(0.2))
        .build();

    let cfg = ExperimentConfig::quick();
    let schemes = [
        Scheme::Shared,
        Scheme::StaticEqual,
        Scheme::CpiProportional,
        Scheme::ModelBased,
        Scheme::UcpThroughput,
        Scheme::ModelThroughput,
        Scheme::Fairness,
    ];
    println!("running {} under {} schemes ...\n", bench.name, schemes.len());
    let outs = cfg.run_schemes(&bench, &schemes);

    let best = outs.iter().map(|o| o.wall_cycles).min().unwrap();
    println!("{:<18} {:>14} {:>10}", "scheme", "wall cycles", "vs best");
    for out in &outs {
        println!(
            "{:<18} {:>14} {:>9.1}%",
            out.scheme,
            out.wall_cycles,
            (out.wall_cycles as f64 / best as f64 - 1.0) * 100.0
        );
    }

    // Show what the dynamic scheme decided over time.
    let dynamic = &outs[3];
    println!("\ndynamic partition trajectory (solver/sweeper/reducer/logger):");
    for r in dynamic.records.iter().step_by(5) {
        let ways: Vec<String> = r.ways.iter().map(|w| w.to_string()).collect();
        println!("  interval {:>2}: {}", r.index, ways.join("/"));
    }
}
