//! Property-based tests of the tree-PLRU replacement state.

use icp::sim::plru;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The victim always comes from the candidate mask.
    #[test]
    fn victim_always_in_mask(
        touches in proptest::collection::vec(0u32..16, 0..64),
        mask in 1u64..(1 << 16),
    ) {
        let ways = 16;
        let mut bits = 0u64;
        for t in touches {
            plru::touch(&mut bits, ways, t);
        }
        let v = plru::victim(bits, ways, mask).expect("non-empty mask");
        prop_assert!(mask & (1 << v) != 0, "victim {v} outside mask {mask:b}");
    }

    /// An empty mask yields no victim; a full mask always yields one.
    #[test]
    fn mask_edge_cases(bits: u64) {
        for ways in [2u32, 4, 8, 32, 64] {
            prop_assert_eq!(plru::victim(bits, ways, 0), None);
            prop_assert!(plru::victim(bits, ways, u64::MAX).is_some());
        }
    }

    /// The most recently touched way is never the unmasked victim.
    #[test]
    fn mru_way_protected(
        touches in proptest::collection::vec(0u32..8, 1..64),
    ) {
        let ways = 8;
        let mut bits = 0u64;
        for &t in &touches {
            plru::touch(&mut bits, ways, t);
        }
        let last = *touches.last().unwrap();
        let v = plru::victim(bits, ways, u64::MAX).unwrap();
        prop_assert_ne!(v, last);
    }

    /// No starvation: repeatedly evicting and touching the victim cycles
    /// through every way within 2 * ways steps.
    #[test]
    fn no_starvation(seed_touches in proptest::collection::vec(0u32..8, 0..32)) {
        let ways = 8u32;
        let mut bits = 0u64;
        for t in seed_touches {
            plru::touch(&mut bits, ways, t);
        }
        let mut seen = [false; 8];
        for _ in 0..(2 * ways) {
            let v = plru::victim(bits, ways, u64::MAX).unwrap();
            seen[v as usize] = true;
            plru::touch(&mut bits, ways, v);
        }
        prop_assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    /// PLRU-backed partitioned L2 maintains the same ownership invariants
    /// as the exact-LRU version under random traffic.
    #[test]
    fn plru_l2_invariants(
        accesses in proptest::collection::vec((0usize..4, 0u64..512), 1..500),
    ) {
        use icp::sim::l2::PartitionedL2;
        use icp::sim::{CacheConfig, ReplacementKind};
        let mut l2 = PartitionedL2::new(CacheConfig::new(4 * 8 * 64, 8, 64), 4)
            .with_replacement(ReplacementKind::TreePlru);
        l2.set_targets(&[3, 2, 2, 1]);
        for (t, line) in accesses {
            l2.access(t, line * 64);
        }
        l2.check_invariants();
    }
}
