//! End-to-end tests of the hierarchical (§VI-C) setting: multi-application
//! workload composition driven by the two-level partitioner on one
//! simulated CMP.

use icp::runtime::{BudgetPolicy, HierarchicalPolicy, IntraAppRuntime, ModelBasedPolicy};
use icp::sim::{Simulator, SystemConfig};
use icp::workloads::{suite, MultiAppWorkload, WorkloadScale};

fn test_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::scaled_down();
    // ~16 intervals over the 480k-instruction test workload.
    cfg.interval_instructions = 30_000;
    cfg
}

fn build(cfg: &SystemConfig, seed: u64) -> (MultiAppWorkload, Simulator) {
    let workload = MultiAppWorkload::new()
        .add(&suite::swim(), 2)
        .add(&suite::mg(), 2);
    let streams = workload.build_streams(cfg, WorkloadScale::Test, seed);
    let sim = Simulator::new(*cfg, streams);
    (workload, sim)
}

#[test]
fn static_budgets_are_respected_every_interval() {
    let cfg = test_cfg();
    let (workload, mut sim) = build(&cfg, 3);
    let policy = HierarchicalPolicy::new(
        workload.groups(),
        vec![40, 24],
        vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
    );
    let mut rt = IntraAppRuntime::new(policy, &cfg);
    let out = rt.execute(&mut sim);
    assert!(out.intervals() > 3);
    for r in &out.records {
        assert_eq!(r.ways[0] + r.ways[1], 40, "app A budget at interval {}", r.index);
        assert_eq!(r.ways[2] + r.ways[3], 24, "app B budget at interval {}", r.index);
        assert!(r.ways.iter().all(|&w| w >= 1));
    }
}

#[test]
fn intra_app_balancing_happens_inside_budgets() {
    // swim's two threads (critical + tiny) are heavily imbalanced: within
    // app A's budget, the critical thread should receive the larger share
    // by the end of the run.
    let cfg = test_cfg();
    let (workload, mut sim) = build(&cfg, 3);
    let policy = HierarchicalPolicy::new(
        workload.groups(),
        vec![40, 24],
        vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
    );
    let mut rt = IntraAppRuntime::new(policy, &cfg);
    let out = rt.execute(&mut sim);
    let last = out.records.last().unwrap();
    assert!(
        last.ways[0] > last.ways[1],
        "app A's critical thread should dominate its budget: {:?}",
        last.ways
    );
}

#[test]
fn dynamic_budgets_shift_toward_the_slower_application() {
    let cfg = test_cfg();
    let (workload, mut sim) = build(&cfg, 3);
    let policy = HierarchicalPolicy::new(
        workload.groups(),
        vec![32, 32], // start even; swim is much heavier than mg
        vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
    )
    .with_budget_policy(BudgetPolicy::CriticalCpiProportional);
    let mut rt = IntraAppRuntime::new(policy, &cfg);
    let out = rt.execute(&mut sim);
    let last = out.records.last().unwrap();
    let app_a = last.ways[0] + last.ways[1];
    let app_b = last.ways[2] + last.ways[3];
    assert_eq!(app_a + app_b, 64);
    assert!(
        app_a > app_b,
        "the OS should shift budget toward the slower application: A={app_a} B={app_b}"
    );
}

#[test]
fn hierarchical_beats_uncoordinated_equal_budgets_for_the_heavy_app() {
    // Sanity: giving the heavy application a bigger budget should not hurt
    // its completion time relative to an even split.
    let cfg = test_cfg();
    let wall = |budgets: Vec<u32>| {
        let (workload, mut sim) = build(&cfg, 3);
        let policy = HierarchicalPolicy::new(
            workload.groups(),
            budgets,
            vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
        );
        IntraAppRuntime::new(policy, &cfg).execute(&mut sim).wall_cycles
    };
    let generous = wall(vec![48, 16]);
    let even = wall(vec![32, 32]);
    // swim dominates total runtime; giving it 48 ways should help or tie
    // within noise.
    assert!(
        (generous as f64) < even as f64 * 1.03,
        "generous {generous} vs even {even}"
    );
}
