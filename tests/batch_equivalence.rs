//! Batched vs per-event stream delivery must be bit-identical.
//!
//! The simulator pulls events through `AccessStream::fill_batch` into a
//! per-core ring; generators implement it natively for throughput. Because
//! streams are generation-only (the simulation never feeds state back into
//! them), prefetching events into a ring must not change any simulated
//! outcome. This suite forces the degenerate one-event-per-refill delivery
//! through a wrapper stream and asserts that a seeded 4-thread workload
//! produces exactly the same `IntervalReport` sequence and `GlobalStats`
//! as native batched delivery, under both partitioning policies.

use icp::runtime::{CpiProportionalPolicy, IntraAppRuntime, ModelBasedPolicy};
use icp::sim::stream::{AccessStream, ThreadEvent};
use icp::sim::{Simulator, SystemConfig};
use icp::workloads::{suite, BenchmarkSpec, WorkloadScale};

/// Forces per-event delivery: every batch refill returns at most one event,
/// so the simulator's ring degenerates to the pre-batching one-virtual-call-
/// per-event regime.
struct OneAtATime<S>(S);

impl<S: AccessStream> AccessStream for OneAtATime<S> {
    fn next_event(&mut self) -> ThreadEvent {
        self.0.next_event()
    }

    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        if out.is_empty() {
            return 0;
        }
        out[0] = self.0.next_event();
        1
    }
}

fn streams(spec: &BenchmarkSpec, cfg: &SystemConfig, seed: u64) -> Vec<Box<dyn AccessStream>> {
    spec.build_streams(cfg, WorkloadScale::Test, seed)
}

fn unbatched(spec: &BenchmarkSpec, cfg: &SystemConfig, seed: u64) -> Vec<Box<dyn AccessStream>> {
    spec.build_streams(cfg, WorkloadScale::Test, seed)
        .into_iter()
        .map(|s| Box::new(OneAtATime(s)) as Box<dyn AccessStream>)
        .collect()
}

/// Raw simulator (fixed equal partition): full interval-report equivalence.
#[test]
fn raw_interval_reports_identical() {
    let cfg = SystemConfig::scaled_down();
    let spec = suite::cg();
    let seed = 0x5EED_0001;

    let mut batched = Simulator::new(cfg, streams(&spec, &cfg, seed));
    let mut perevent = Simulator::new(cfg, unbatched(&spec, &cfg, seed));

    loop {
        let a = batched.run_interval();
        let b = perevent.run_interval();
        match (a, b) {
            (None, None) => break,
            (Some(ra), Some(rb)) => {
                assert_eq!(ra.index, rb.index);
                assert_eq!(ra.wall_cycles, rb.wall_cycles, "interval {}", ra.index);
                assert_eq!(ra.finished, rb.finished, "interval {}", ra.index);
                for (ta, tb) in ra.threads.iter().zip(&rb.threads) {
                    assert_eq!(ta.counters, tb.counters, "interval {}", ra.index);
                    assert_eq!(ta.ways, tb.ways, "interval {}", ra.index);
                }
                if ra.finished {
                    break;
                }
            }
            (a, b) => panic!(
                "stream delivery changed interval count: batched={:?} per-event={:?}",
                a.map(|r| r.index),
                b.map(|r| r.index)
            ),
        }
    }
    assert_eq!(batched.stats(), perevent.stats());
    assert_eq!(batched.wall_cycles(), perevent.wall_cycles());
}

/// CPI-proportional policy: same GlobalStats under both deliveries.
#[test]
fn cpi_proportional_stats_identical() {
    let cfg = SystemConfig::scaled_down();
    let spec = suite::ft();
    let seed = 0x5EED_0002;

    let mut sim_a = Simulator::new(cfg, streams(&spec, &cfg, seed));
    let mut rt_a = IntraAppRuntime::new(CpiProportionalPolicy::new(), &cfg);
    let out_a = rt_a.execute(&mut sim_a);

    let mut sim_b = Simulator::new(cfg, unbatched(&spec, &cfg, seed));
    let mut rt_b = IntraAppRuntime::new(CpiProportionalPolicy::new(), &cfg);
    let out_b = rt_b.execute(&mut sim_b);

    assert_eq!(out_a.wall_cycles, out_b.wall_cycles);
    assert_eq!(out_a.records.len(), out_b.records.len());
    for (ra, rb) in out_a.records.iter().zip(&out_b.records) {
        assert_eq!(ra.ways, rb.ways, "interval {}", ra.index);
        assert_eq!(ra.l2_misses, rb.l2_misses, "interval {}", ra.index);
        assert_eq!(ra.instructions, rb.instructions, "interval {}", ra.index);
    }
    assert_eq!(sim_a.stats(), sim_b.stats());
}

/// Model-based policy: same GlobalStats under both deliveries.
#[test]
fn model_based_stats_identical() {
    let cfg = SystemConfig::scaled_down();
    let spec = suite::mgrid();
    let seed = 0x5EED_0003;

    let mut sim_a = Simulator::new(cfg, streams(&spec, &cfg, seed));
    let mut rt_a = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
    let out_a = rt_a.execute(&mut sim_a);

    let mut sim_b = Simulator::new(cfg, unbatched(&spec, &cfg, seed));
    let mut rt_b = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
    let out_b = rt_b.execute(&mut sim_b);

    assert_eq!(out_a.wall_cycles, out_b.wall_cycles);
    assert_eq!(out_a.decision_count, out_b.decision_count);
    assert_eq!(sim_a.stats(), sim_b.stats());
}
