//! Property-based tests of the utility monitor: the LRU inclusion property
//! and counter conservation under arbitrary access streams.

use icp::sim::umon::UtilityMonitor;
use icp::sim::CacheConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Hits-with-w-ways is non-decreasing in w (LRU inclusion property).
    #[test]
    fn hits_monotone_in_ways(
        accesses in proptest::collection::vec((0usize..3, 0u64..300), 1..600),
    ) {
        let cfg = CacheConfig::new(8 * 16 * 64, 16, 64);
        let mut m = UtilityMonitor::new(&cfg, 3, 1);
        for (t, line) in accesses {
            m.observe(t, line * 64);
        }
        for t in 0..3 {
            let mut prev = 0;
            for w in 1..=16 {
                let h = m.hits_with_ways(t, w);
                prop_assert!(h >= prev, "thread {t}: hits({w}) < hits({})", w - 1);
                prev = h;
            }
        }
    }

    /// Hits at full width plus ATD misses equals total observed accesses in
    /// sampled sets, per thread.
    #[test]
    fn counter_conservation(
        accesses in proptest::collection::vec((0usize..2, 0u64..200), 1..500),
    ) {
        let cfg = CacheConfig::new(4 * 8 * 64, 8, 64);
        let mut m = UtilityMonitor::new(&cfg, 2, 1); // every set sampled
        let mut per_thread = [0u64; 2];
        for (t, line) in accesses {
            m.observe(t, line * 64);
            per_thread[t] += 1;
        }
        for (t, &count) in per_thread.iter().enumerate() {
            prop_assert_eq!(
                m.hits_with_ways(t, 8) + m.compulsory_capacity_misses(t),
                count
            );
            // misses_with_ways at full width equals the ATD misses.
            prop_assert_eq!(m.misses_with_ways(t, 8), m.compulsory_capacity_misses(t));
        }
    }

    /// A UMON with full sampling agrees with a dedicated full cache of the
    /// same width: a single thread's hits at full width match a plain LRU
    /// cache's hits.
    #[test]
    fn full_width_matches_real_cache(
        lines in proptest::collection::vec(0u64..100, 1..400),
    ) {
        let cfg = CacheConfig::new(4 * 8 * 64, 8, 64);
        let mut m = UtilityMonitor::new(&cfg, 1, 1);
        let mut cache = icp::sim::cache::SetAssocCache::new(cfg);
        for line in &lines {
            m.observe(0, line * 64);
            cache.access(line * 64);
        }
        prop_assert_eq!(m.hits_with_ways(0, 8), cache.hits());
        prop_assert_eq!(m.compulsory_capacity_misses(0), cache.misses());
    }

    /// Decay halves every counter (rounding down) and keeps monotonicity.
    #[test]
    fn decay_preserves_structure(
        accesses in proptest::collection::vec(0u64..50, 1..300),
    ) {
        let cfg = CacheConfig::new(2 * 8 * 64, 8, 64);
        let mut m = UtilityMonitor::new(&cfg, 1, 1);
        for line in accesses {
            m.observe(0, line * 64);
        }
        let before: Vec<u64> = (1..=8).map(|w| m.hits_with_ways(0, w)).collect();
        m.decay_counters();
        let after: Vec<u64> = (1..=8).map(|w| m.hits_with_ways(0, w)).collect();
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(*a <= b / 2 + 4, "decay must roughly halve: {b} -> {a}");
        }
        let mut prev = 0;
        for a in after {
            prop_assert!(a >= prev);
            prev = a;
        }
    }
}
