//! Pipelined generation and packed-trace replay must be bit-identical to
//! inline generation — for every workload in the suite.
//!
//! Two transformations move work off the simulator's critical path:
//!
//! * [`PipelinedStream`] generates a thread's events on a dedicated
//!   producer thread (pipeline parallelism);
//! * [`PackedTrace`] materialises a workload once into struct-of-arrays
//!   columns replayed zero-copy per scheme (the experiment trace cache).
//!
//! Neither may change a single simulated outcome. Both rest on the same
//! foundation — per-thread RNG forked independently from the master seed
//! (`icp::workloads::seeding`), so *when* events are produced never affects
//! *which* events — and this suite pins that end to end: every suite
//! benchmark is simulated through each path and the full `GlobalStats`
//! (every counter of every thread) plus the wall clock must match inline
//! generation exactly.

use icp::experiments::{ExperimentConfig, Scheme, TraceCache};
use icp::sim::l2::equal_split;
use icp::sim::stream::{AccessStream, ThreadEvent};
use icp::sim::{GlobalStats, PackedBlock, PackedTrace, PipelinedStream, Simulator, SystemConfig};
use icp::workloads::{suite, BenchmarkSpec, SyntheticStream, WorkloadScale};

const SEED: u64 = 0x5EED_0004;

/// Runs a raw simulation (equal static partition) to completion.
fn simulate(cfg: SystemConfig, streams: Vec<Box<dyn AccessStream>>) -> (u64, GlobalStats) {
    let mut sim = Simulator::new(cfg, streams);
    sim.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
    while let Some(r) = sim.run_interval() {
        if r.finished {
            break;
        }
    }
    (sim.wall_cycles(), sim.stats().clone())
}

fn inline_streams(spec: &BenchmarkSpec, cfg: &SystemConfig) -> Vec<Box<dyn AccessStream>> {
    spec.build_streams(cfg, WorkloadScale::Test, SEED)
}

fn pipelined_streams(spec: &BenchmarkSpec, cfg: &SystemConfig) -> Vec<Box<dyn AccessStream>> {
    spec.threads
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let synth = SyntheticStream::new(spec, ts, t, cfg, WorkloadScale::Test, SEED);
            // Deliberately small batches/depth so producer/consumer swap
            // often — the stressier configuration for ordering bugs.
            Box::new(PipelinedStream::spawn_with(synth, 64, 2)) as Box<dyn AccessStream>
        })
        .collect()
}

fn packed_streams(spec: &BenchmarkSpec, cfg: &SystemConfig) -> Vec<Box<dyn AccessStream>> {
    spec.pack_streams(cfg, WorkloadScale::Test, SEED, usize::MAX)
        .iter()
        .map(|t| Box::new(PackedTrace::stream(t)) as Box<dyn AccessStream>)
        .collect()
}

/// Pipeline parallelism: simulations over producer-thread generation are
/// bit-identical to inline generation, for every suite workload.
#[test]
fn pipelined_generation_identical_across_suite() {
    let cfg = SystemConfig::scaled_down();
    for spec in suite::all() {
        let (wall_a, stats_a) = simulate(cfg, inline_streams(&spec, &cfg));
        let (wall_b, stats_b) = simulate(cfg, pipelined_streams(&spec, &cfg));
        assert_eq!(wall_a, wall_b, "{}: wall clock diverged", spec.name);
        assert_eq!(stats_a, stats_b, "{}: stats diverged", spec.name);
    }
}

/// Packed replay: simulations over record-once packed traces are
/// bit-identical to regenerating the streams, for every suite workload.
#[test]
fn packed_replay_identical_across_suite() {
    let cfg = SystemConfig::scaled_down();
    for spec in suite::all() {
        let (wall_a, stats_a) = simulate(cfg, inline_streams(&spec, &cfg));
        let (wall_b, stats_b) = simulate(cfg, packed_streams(&spec, &cfg));
        assert_eq!(wall_a, wall_b, "{}: wall clock diverged", spec.name);
        assert_eq!(stats_a, stats_b, "{}: stats diverged", spec.name);
    }
}

/// Columnar generation: draining [`AccessStream::fill_packed`] blocks out
/// of a synthetic stream yields exactly the scalar `next_event` sequence —
/// for every thread of every suite workload, across block boundaries that
/// deliberately never align with section boundaries.
#[test]
fn columnar_generation_identical_across_suite() {
    let cfg = SystemConfig::scaled_down();
    let mut block = PackedBlock::with_capacity(97);
    for spec in suite::all() {
        for (t, ts) in spec.threads.iter().enumerate() {
            let mut packed = SyntheticStream::new(&spec, ts, t, &cfg, WorkloadScale::Test, SEED);
            let mut scalar = SyntheticStream::new(&spec, ts, t, &cfg, WorkloadScale::Test, SEED);
            let mut i = 0usize;
            loop {
                packed.fill_packed(&mut block, 97);
                for e in block.to_events() {
                    assert_eq!(e, scalar.next_event(), "{} thread {t} event {i}", spec.name);
                    i += 1;
                }
                if block.finished() {
                    break;
                }
                assert!(!block.is_empty(), "{} thread {t}: stalled unfinished", spec.name);
            }
            assert_eq!(scalar.next_event(), ThreadEvent::Finished, "{} thread {t}", spec.name);
        }
    }
}

/// Parallel materialisation: simulations over traces packed by per-thread
/// producer threads are bit-identical to inline generation, for every
/// suite workload.
#[test]
fn parallel_packed_replay_identical_across_suite() {
    let cfg = SystemConfig::scaled_down();
    for spec in suite::all() {
        let replays: Vec<Box<dyn AccessStream>> = spec
            .pack_streams_parallel(&cfg, WorkloadScale::Test, SEED, usize::MAX)
            .iter()
            .map(|t| Box::new(PackedTrace::stream(t)) as Box<dyn AccessStream>)
            .collect();
        let (wall_a, stats_a) = simulate(cfg, inline_streams(&spec, &cfg));
        let (wall_b, stats_b) = simulate(cfg, replays);
        assert_eq!(wall_a, wall_b, "{}: wall clock diverged", spec.name);
        assert_eq!(stats_a, stats_b, "{}: stats diverged", spec.name);
    }
}

/// The full experiment path: outcomes served through a `TraceCache` equal
/// fresh-generation outcomes under a dynamic policy, and one figures-style
/// pass over the suite generates each workload exactly once.
#[test]
fn trace_cached_runner_identical_and_generates_once() {
    let plain = ExperimentConfig::test();
    let cache = TraceCache::shared();
    let cached = plain.clone().with_trace_cache(std::sync::Arc::clone(&cache));
    let schemes = [Scheme::Shared, Scheme::ModelBased];
    for spec in suite::all() {
        for scheme in &schemes {
            let a = plain.run(&spec, scheme);
            let b = cached.run(&spec, scheme);
            assert_eq!(a.wall_cycles, b.wall_cycles, "{} {scheme:?}", spec.name);
            assert_eq!(a.thread_totals, b.thread_totals, "{} {scheme:?}", spec.name);
        }
    }
    assert_eq!(cache.generations(), 9, "each suite workload generated exactly once");
    assert_eq!(cache.hits(), 9, "second scheme of each pair served from cache");
}
