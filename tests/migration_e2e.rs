//! Thread-migration resilience (paper §VII): when the OS moves threads
//! between cores, the runtime's "predictions were not optimal (during that
//! period), but our approach quickly adapted to the new thread-mapping".
//!
//! The `migration` example demonstrates this interactively; this test locks
//! the behaviour in: after the critical and fast workloads swap cores
//! mid-run, the dominant way allocation must follow the critical workload
//! to its new core.

use icp::runtime::{IntraAppRuntime, ModelBasedPolicy};
use icp::sim::stream::{AccessStream, ThreadEvent};
use icp::sim::{Simulator, SystemConfig};
use icp::workloads::{suite, SyntheticStream, WorkloadScale};

/// Splits a stream's events at `split_insts` retired instructions.
fn split_stream(mut s: SyntheticStream, split_insts: u64) -> (Vec<ThreadEvent>, Vec<ThreadEvent>) {
    let mut first = Vec::new();
    let mut rest = Vec::new();
    let mut insts = 0u64;
    loop {
        let e = s.next_event();
        match e {
            ThreadEvent::Finished => break,
            ThreadEvent::Access { gap, .. } => {
                insts += gap as u64 + 1;
                if insts <= split_insts { first.push(e) } else { rest.push(e) }
            }
            ThreadEvent::Barrier => {
                if insts <= split_insts { first.push(e) } else { rest.push(e) }
            }
        }
    }
    (first, rest)
}

#[test]
fn partition_follows_migrated_critical_workload() {
    let mut cfg = SystemConfig::scaled_down();
    cfg.interval_instructions = 30_000;
    let bench = suite::mgrid(); // t1 = critical
    let scale = WorkloadScale::Test;
    let half = bench.instructions_per_thread(scale) / 2;

    let halves: Vec<(Vec<ThreadEvent>, Vec<ThreadEvent>)> = (0..4)
        .map(|t| {
            split_stream(
                SyntheticStream::new(&bench, &bench.threads[t], t, &cfg, scale, 11),
                half,
            )
        })
        .collect();

    // Cores 1 (critical) and 3 (fast) swap workloads at the halfway point.
    let spliced = |first: &[ThreadEvent], second: &[ThreadEvent]| {
        let mut v = first.to_vec();
        v.extend_from_slice(second);
        icp::sim::stream::ReplayStream::new(v)
    };
    let streams: Vec<Box<dyn AccessStream>> = vec![
        Box::new(spliced(&halves[0].0, &halves[0].1)),
        Box::new(spliced(&halves[1].0, &halves[3].1)),
        Box::new(spliced(&halves[2].0, &halves[2].1)),
        Box::new(spliced(&halves[3].0, &halves[1].1)),
    ];

    let mut sim = Simulator::new(cfg, streams);
    let mut rt = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
    let out = rt.execute(&mut sim);
    assert!(out.intervals() >= 10, "{} intervals", out.intervals());

    let argmax = |ws: &[u32]| -> usize {
        ws.iter().enumerate().max_by_key(|(_, w)| **w).map(|(i, _)| i).unwrap()
    };
    let n = out.records.len();
    // Before the swap (late first half): core 1 holds the biggest share.
    let before = &out.records[n * 2 / 5];
    assert_eq!(argmax(&before.ways), 1, "pre-migration ways {:?}", before.ways);
    // After re-learning (late second half): core 3 holds it.
    let after = &out.records[n - 2];
    assert_eq!(argmax(&after.ways), 3, "post-migration ways {:?}", after.ways);
}
