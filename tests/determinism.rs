//! Cross-crate determinism guarantees: a run is a pure function of
//! (config, spec, scheme, seed).
//!
//! The matrix test at the bottom is the static analyzer's runtime
//! counterpart: `icp-lint`'s D-rules prove the `#[deterministic]` closure
//! avoids nondeterminism sources; this suite pins the digests those rules
//! protect, across every delivery path a stream can take into the sharded
//! engine.

use std::sync::Arc;

use icp::experiments::{ExperimentConfig, Scheme, TraceCache};
use icp::sim::budget::{self, CoreBudget};
use icp::sim::config::LlcConfig;
use icp::sim::l2::equal_split;
use icp::sim::shard::ShardedSimulator;
use icp::sim::slice::Llc;
use icp::sim::stream::AccessStream;
use icp::sim::{GlobalStats, PipelinedStream, SystemConfig};
use icp::workloads::{suite, BenchmarkSpec, SyntheticStream, WorkloadScale};

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Shared,
        Scheme::StaticEqual,
        Scheme::CpiProportional,
        Scheme::ModelBased,
        Scheme::UcpThroughput,
        Scheme::ModelThroughput,
        Scheme::Fairness,
    ]
}

#[test]
fn identical_runs_are_bit_identical() {
    let cfg = ExperimentConfig::test();
    let bench = suite::cg();
    for scheme in all_schemes() {
        let a = cfg.run(&bench, &scheme);
        let b = cfg.run(&bench, &scheme);
        assert_eq!(a.wall_cycles, b.wall_cycles, "{scheme:?}");
        assert_eq!(a.records.len(), b.records.len(), "{scheme:?}");
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.ways, rb.ways, "{scheme:?} interval {}", ra.index);
            assert_eq!(ra.l2_misses, rb.l2_misses, "{scheme:?} interval {}", ra.index);
            assert_eq!(ra.instructions, rb.instructions, "{scheme:?} interval {}", ra.index);
        }
        assert_eq!(a.interactions, b.interactions, "{scheme:?}");
    }
}

#[test]
fn different_seeds_change_execution() {
    let mut cfg = ExperimentConfig::test();
    let bench = suite::ft();
    let a = cfg.run(&bench, &Scheme::Shared);
    cfg.seed ^= 0xDEAD_BEEF;
    let b = cfg.run(&bench, &Scheme::Shared);
    assert_ne!(a.wall_cycles, b.wall_cycles);
}

#[test]
fn seed_changes_keep_shape() {
    // The qualitative outcome (which scheme wins) must be robust to the
    // seed, not an artifact of one stream realisation.
    let bench = suite::mgrid();
    for seed in [1u64, 99, 12345] {
        let mut cfg = ExperimentConfig::test();
        cfg.seed = seed;
        let shared = cfg.run(&bench, &Scheme::Shared);
        let equal = cfg.run(&bench, &Scheme::StaticEqual);
        let dynamic = cfg.run(&bench, &Scheme::ModelBased);
        assert!(
            dynamic.improvement_percent_over(&equal) > 0.0,
            "seed {seed}: dynamic must beat equal"
        );
        assert!(
            dynamic.improvement_percent_over(&shared) > -4.0,
            "seed {seed}: dynamic must be at least competitive with shared"
        );
    }
}

const MATRIX_SEED: u64 = 0x5EED_0D16;

/// FNV-1a fold of everything a digest consumer reads: the wall clock and
/// every per-thread counter.
fn digest(wall: u64, stats: &GlobalStats) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(wall);
    for t in &stats.threads {
        mix(t.instructions);
        mix(t.active_cycles);
        mix(t.barrier_stall_cycles);
        mix(t.l1_hits);
        mix(t.l1_misses);
        mix(t.l2_hits);
        mix(t.l2_misses);
        mix(t.l1_writebacks);
        mix(t.l2_writebacks);
        mix(t.coherence_invalidations);
    }
    h
}

fn run_sharded(mut sim: ShardedSimulator, cfg: &SystemConfig) -> (u64, GlobalStats) {
    sim.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
    while let Some(r) = sim.run_interval() {
        if r.finished {
            break;
        }
    }
    (sim.wall_cycles(), sim.stats().clone())
}

fn pipelined_streams(spec: &BenchmarkSpec, cfg: &SystemConfig) -> Vec<Box<dyn AccessStream>> {
    spec.threads
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let synth = SyntheticStream::new(spec, ts, t, cfg, WorkloadScale::Test, MATRIX_SEED);
            // Small batch/depth so producer and consumer hand off often.
            Box::new(PipelinedStream::spawn_with(synth, 64, 2)) as Box<dyn AccessStream>
        })
        .collect()
}

/// The digest matrix: shard counts {1, 3, 8} × stream delivery {inline
/// generation, pipelined generation, trace-cache cold, trace-cache warm}
/// × engine {parallel, serial reference}. Within one shard count every
/// cell must produce the same digest bit for bit — the promise the
/// `#[deterministic]` annotations (and icp-lint's D-rules) encode
/// statically.
#[test]
fn shard_cache_pipeline_matrix_is_digest_identical() {
    let cfg = SystemConfig::scaled_down();
    let bench = suite::cg();
    let cache = TraceCache::shared();
    for k in [1usize, 3, 8] {
        let variants: Vec<(&str, Vec<Box<dyn AccessStream>>)> = vec![
            ("inline", bench.build_streams(&cfg, WorkloadScale::Test, MATRIX_SEED)),
            ("pipelined", pipelined_streams(&bench, &cfg)),
            // First call of the whole test generates (cold); every later
            // call replays the cached packed columns (warm).
            ("cache-cold", cache.replay_streams(&bench, &cfg, WorkloadScale::Test, MATRIX_SEED)),
            ("cache-warm", cache.replay_streams(&bench, &cfg, WorkloadScale::Test, MATRIX_SEED)),
        ];
        let mut expected: Option<(u64, GlobalStats, u64)> = None;
        for (label, streams) in variants {
            let (wall, stats) = run_sharded(ShardedSimulator::new(cfg, streams, k), &cfg);
            let d = digest(wall, &stats);
            match &expected {
                None => expected = Some((wall, stats, d)),
                Some((w, s, e)) => {
                    assert_eq!(wall, *w, "k={k} {label}: wall clock diverged");
                    assert_eq!(&stats, s, "k={k} {label}: stats diverged");
                    assert_eq!(d, *e, "k={k} {label}: digest diverged");
                }
            }
        }
        // The parallel engine against its single-threaded reference, fed
        // from the (warm) cache like a real sweep.
        let reference = ShardedSimulator::serial_reference(
            cfg,
            cache.replay_streams(&bench, &cfg, WorkloadScale::Test, MATRIX_SEED),
            k,
        );
        let (wall, stats) = run_sharded(reference, &cfg);
        let (w, s, e) = expected.expect("matrix ran");
        assert_eq!(wall, w, "k={k}: serial reference wall diverged");
        assert_eq!(stats, s, "k={k}: serial reference stats diverged");
        assert_eq!(digest(wall, &stats), e, "k={k}: serial reference digest diverged");
    }
    assert_eq!(cache.generations(), 1, "one workload, generated exactly once");
    assert_eq!(cache.hits(), 8, "every later matrix cell served warm");
}

/// Streams for the budget matrix: inline generation, or generation
/// behind the budget-gated pipelined constructor ([`PipelinedStream::spawn`]
/// leases a producer token and degrades to inline when the pool is dry).
fn streams_for(
    spec: &BenchmarkSpec,
    cfg: &SystemConfig,
    pipelined: bool,
) -> Vec<Box<dyn AccessStream>> {
    if !pipelined {
        return spec.build_streams(cfg, WorkloadScale::Test, MATRIX_SEED);
    }
    spec.threads
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let synth = SyntheticStream::new(spec, ts, t, cfg, WorkloadScale::Test, MATRIX_SEED);
            Box::new(PipelinedStream::spawn(synth)) as Box<dyn AccessStream>
        })
        .collect()
}

fn run_sliced(mut sim: Llc, cfg: &SystemConfig) -> (u64, GlobalStats) {
    sim.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
    while let Some(r) = sim.run_interval() {
        if r.finished {
            break;
        }
    }
    (sim.wall_cycles(), sim.stats().clone())
}

/// Core-budget arbitration must never change results — only where and
/// when work executes. One workload digested across budget {1, 2, host}
/// × stream delivery {inline, budget-gated pipelined} × engine
/// {set-sharded (k = 3), sliced LLC (4 slices)}: within one engine every
/// cell must match bit for bit. Topologies are pinned explicitly —
/// the *sizing* helper (`ShardedSimulator::auto`) legitimately follows
/// the budget, which would change the decomposition, not the guarantee.
#[test]
fn budget_invariance_matrix_is_digest_identical() {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let bench = suite::cg();
    let sharded_cfg = SystemConfig::scaled_down();
    let mut sliced_cfg = SystemConfig::scaled_down();
    sliced_cfg.llc = LlcConfig::sliced(4);

    // expected[0]: sharded engine, expected[1]: sliced engine.
    let mut expected: [Option<(u64, GlobalStats, u64)>; 2] = [None, None];
    for total in [1usize, 2, host] {
        for pipelined in [false, true] {
            let label = if pipelined { "pipelined" } else { "inline" };
            let cells = budget::scoped(CoreBudget::new(total), || {
                vec![
                    (
                        "sharded",
                        run_sharded(
                            ShardedSimulator::new(
                                sharded_cfg,
                                streams_for(&bench, &sharded_cfg, pipelined),
                                3,
                            ),
                            &sharded_cfg,
                        ),
                    ),
                    (
                        "sliced",
                        run_sliced(
                            Llc::new(sliced_cfg, streams_for(&bench, &sliced_cfg, pipelined)),
                            &sliced_cfg,
                        ),
                    ),
                ]
            });
            for (i, (engine, (wall, stats))) in cells.into_iter().enumerate() {
                let d = digest(wall, &stats);
                match &expected[i] {
                    None => expected[i] = Some((wall, stats, d)),
                    Some((w, s, e)) => {
                        assert_eq!(wall, *w, "budget={total} {label} {engine}: wall diverged");
                        assert_eq!(&stats, s, "budget={total} {label} {engine}: stats diverged");
                        assert_eq!(d, *e, "budget={total} {label} {engine}: digest diverged");
                    }
                }
            }
        }
    }
}

/// The lease watermark bounds live workers: every spawned worker in the
/// workspace holds a leased token, so even the deepest nesting we have —
/// pipelined producers feeding a sharded engine — can never exceed the
/// budget, and every token comes back once the run's leases drop.
#[test]
fn thread_peak_never_exceeds_budget() {
    let cfg = SystemConfig::scaled_down();
    let bench = suite::ft();
    for total in [1usize, 2, 3] {
        let b = CoreBudget::new(total);
        budget::scoped(Arc::clone(&b), || {
            let streams = streams_for(&bench, &cfg, true);
            let (wall, _) = run_sharded(ShardedSimulator::new(cfg, streams, 4), &cfg);
            assert!(wall > 0);
        });
        assert!(
            b.peak_threads() <= total,
            "budget={total}: peak {} exceeded the budget",
            b.peak_threads()
        );
        assert_eq!(b.spare(), total - 1, "budget={total}: tokens leaked");
    }
}

#[test]
fn parallel_and_serial_sweeps_agree() {
    // The sweep harness must not perturb results: parallel_map returns the
    // same outcomes as direct sequential runs.
    let cfg = ExperimentConfig::test();
    let bench = suite::applu();
    let schemes = all_schemes();
    let parallel = cfg.run_schemes(&bench, &schemes);
    for (scheme, p) in schemes.iter().zip(&parallel) {
        let s = cfg.run(&bench, scheme);
        assert_eq!(p.wall_cycles, s.wall_cycles, "{scheme:?}");
    }
}
