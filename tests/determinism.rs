//! Cross-crate determinism guarantees: a run is a pure function of
//! (config, spec, scheme, seed).

use icp::experiments::{ExperimentConfig, Scheme};
use icp::workloads::suite;

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Shared,
        Scheme::StaticEqual,
        Scheme::CpiProportional,
        Scheme::ModelBased,
        Scheme::UcpThroughput,
        Scheme::ModelThroughput,
        Scheme::Fairness,
    ]
}

#[test]
fn identical_runs_are_bit_identical() {
    let cfg = ExperimentConfig::test();
    let bench = suite::cg();
    for scheme in all_schemes() {
        let a = cfg.run(&bench, &scheme);
        let b = cfg.run(&bench, &scheme);
        assert_eq!(a.wall_cycles, b.wall_cycles, "{scheme:?}");
        assert_eq!(a.records.len(), b.records.len(), "{scheme:?}");
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.ways, rb.ways, "{scheme:?} interval {}", ra.index);
            assert_eq!(ra.l2_misses, rb.l2_misses, "{scheme:?} interval {}", ra.index);
            assert_eq!(ra.instructions, rb.instructions, "{scheme:?} interval {}", ra.index);
        }
        assert_eq!(a.interactions, b.interactions, "{scheme:?}");
    }
}

#[test]
fn different_seeds_change_execution() {
    let mut cfg = ExperimentConfig::test();
    let bench = suite::ft();
    let a = cfg.run(&bench, &Scheme::Shared);
    cfg.seed ^= 0xDEAD_BEEF;
    let b = cfg.run(&bench, &Scheme::Shared);
    assert_ne!(a.wall_cycles, b.wall_cycles);
}

#[test]
fn seed_changes_keep_shape() {
    // The qualitative outcome (which scheme wins) must be robust to the
    // seed, not an artifact of one stream realisation.
    let bench = suite::mgrid();
    for seed in [1u64, 99, 12345] {
        let mut cfg = ExperimentConfig::test();
        cfg.seed = seed;
        let shared = cfg.run(&bench, &Scheme::Shared);
        let equal = cfg.run(&bench, &Scheme::StaticEqual);
        let dynamic = cfg.run(&bench, &Scheme::ModelBased);
        assert!(
            dynamic.improvement_percent_over(&equal) > 0.0,
            "seed {seed}: dynamic must beat equal"
        );
        assert!(
            dynamic.improvement_percent_over(&shared) > -4.0,
            "seed {seed}: dynamic must be at least competitive with shared"
        );
    }
}

#[test]
fn parallel_and_serial_sweeps_agree() {
    // The sweep harness must not perturb results: parallel_map returns the
    // same outcomes as direct sequential runs.
    let cfg = ExperimentConfig::test();
    let bench = suite::applu();
    let schemes = all_schemes();
    let parallel = cfg.run_schemes(&bench, &schemes);
    for (scheme, p) in schemes.iter().zip(&parallel) {
        let s = cfg.run(&bench, scheme);
        assert_eq!(p.wall_cycles, s.wall_cycles, "{scheme:?}");
    }
}
