//! Property-based tests of the partitioned L2's invariants under random
//! access sequences and random repartitioning.

use icp::sim::l2::{equal_split, PartitionMode, PartitionedL2};
use icp::sim::CacheConfig;
use proptest::prelude::*;

/// A random partition of `total` ways into `n` positive quotas.
fn partition_strategy(total: u32, n: usize) -> impl Strategy<Value = Vec<u32>> {
    // Random cut points over the (total - n) spare ways, plus the 1-way floor.
    proptest::collection::vec(0..=(total - n as u32), n - 1).prop_map(move |mut cuts| {
        cuts.sort_unstable();
        let mut quotas = Vec::with_capacity(n);
        let mut prev = 0;
        for c in cuts {
            quotas.push(1 + c - prev);
            prev = c;
        }
        quotas.push(1 + (total - n as u32) - prev);
        quotas
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ownership counters always match the actual line owners, no matter
    /// what sequence of accesses and repartitions happens.
    #[test]
    fn ownership_counters_always_consistent(
        accesses in proptest::collection::vec((0usize..4, 0u64..512), 1..800),
        parts in proptest::collection::vec(partition_strategy(8, 4), 0..4),
    ) {
        let mut l2 = PartitionedL2::new(CacheConfig::new(4 * 8 * 64, 8, 64), 4);
        let chunk = (accesses.len() / (parts.len() + 1)).max(1);
        let mut part_iter = parts.into_iter();
        for (i, (t, line)) in accesses.iter().enumerate() {
            if i % chunk == chunk - 1 {
                if let Some(p) = part_iter.next() {
                    l2.set_targets(&p);
                }
            }
            l2.access(*t, line * 64);
        }
        l2.check_invariants();
    }

    /// Hits + misses always equals total accesses, per thread and globally.
    #[test]
    fn hit_miss_accounting(
        accesses in proptest::collection::vec((0usize..4, 0u64..256), 1..500),
    ) {
        let mut l2 = PartitionedL2::new(CacheConfig::new(4 * 8 * 64, 8, 64), 4);
        let mut per_thread = [0u64; 4];
        for (t, line) in &accesses {
            l2.access(*t, line * 64);
            per_thread[*t] += 1;
        }
        for (t, &count) in per_thread.iter().enumerate() {
            prop_assert_eq!(l2.hits()[t] + l2.misses()[t], count);
        }
        prop_assert_eq!(l2.interactions().total_accesses, accesses.len() as u64);
    }

    /// A quota-respecting thread can never evict another thread's line once
    /// it is at or above its target everywhere.
    #[test]
    fn at_quota_thread_never_evicts_others(
        victim_lines in proptest::collection::vec(0u64..64, 8..64),
        attacker_lines in proptest::collection::vec(64u64..4096, 50..300),
    ) {
        // 1 set x 8 ways; thread 0 = attacker quota 6, thread 1 = victim quota 2.
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 2);
        l2.set_targets(&[6, 2]);
        // Victim warms two lines (its quota).
        l2.access(1, 0);
        l2.access(1, 8 * 64 * 64); // distinct line, same set (only 1 set)
        // Attacker floods. It may fill free ways first, but once at/above
        // quota it can only self-evict.
        for line in attacker_lines {
            let r = l2.access(0, line * 64);
            if let Some(owner) = r.evicted_other {
                // Only legal while the attacker is under its own quota --
                // impossible here once it owns 6 of 8 ways.
                prop_assert!(l2.ways_owned_in_set(0, 0) <= 6, "evicted t{owner}'s line while over quota");
            }
        }
        l2.check_invariants();
        let _ = victim_lines;
    }

    /// Under sustained misses from all threads, per-set ownership converges
    /// to the target partition.
    #[test]
    fn sustained_pressure_converges_to_targets(
        targets in partition_strategy(8, 4),
        seed in 0u64..1000,
    ) {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 4);
        l2.set_targets(&targets);
        // Every thread streams over disjoint large regions: constant misses.
        for round in 0..200u64 {
            for t in 0..4usize {
                let line = 10_000 * (t as u64 + 1) + round * 7 + seed;
                l2.access(t, line * 64);
            }
        }
        for (t, &target) in targets.iter().enumerate() {
            prop_assert_eq!(
                l2.ways_owned_in_set(0, t),
                target,
                "thread {} ownership after convergence",
                t
            );
        }
    }

    /// Unpartitioned mode behaves as a plain LRU cache: a working set that
    /// fits never misses after warm-up, regardless of which thread accesses.
    #[test]
    fn unpartitioned_is_plain_lru(
        order in proptest::collection::vec((0usize..4, 0u64..8), 64..256),
    ) {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 4);
        prop_assert_eq!(l2.mode(), PartitionMode::Unpartitioned);
        // Warm all 8 lines.
        for line in 0..8u64 {
            l2.access(0, line * 64);
        }
        let misses_before: u64 = l2.misses().iter().sum();
        for (t, line) in order {
            l2.access(t, line * 64);
        }
        let misses_after: u64 = l2.misses().iter().sum();
        prop_assert_eq!(misses_before, misses_after, "no further misses once resident");
    }

    /// equal_split always sums to the total with quotas differing by <= 1.
    #[test]
    fn equal_split_properties(ways in 1u32..256, threads in 1usize..64) {
        prop_assume!(ways as usize >= threads);
        let split = equal_split(ways, threads);
        prop_assert_eq!(split.iter().sum::<u32>(), ways);
        let min = split.iter().min().unwrap();
        let max = split.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }
}
