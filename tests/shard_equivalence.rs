//! Set-sharded simulation must be deterministic and serial-equivalent —
//! for every workload in the suite.
//!
//! The sharded engine (`icp::sim::shard`) makes two bitwise promises
//! (see the module docs for why exact `k > 1` equality to the global
//! min-clock interleave is out of reach):
//!
//! 1. **One shard is the legacy serial simulator.** At `k = 1` the demux
//!    preserves the whole event order and the original interval length, so
//!    every interval report, counter and the wall clock equal the serial
//!    path bit for bit.
//! 2. **Worker threads change nothing.** At every `k`, parallel execution
//!    is bit-identical to the serial-reference engine running the same
//!    `k`-decomposition on one thread: shard sims are deterministic,
//!    workers join in shard order, and the merge is a fixed-order fold.
//!
//! This suite pins both across every suite benchmark at shards ∈
//! {1, 2, 4, 7} — including 7, a non-power-of-two that stripes unevenly
//! across the set space.

use icp::sim::l2::equal_split;
use icp::sim::shard::ShardedSimulator;
use icp::sim::stream::AccessStream;
use icp::sim::{GlobalStats, IntervalReport, Simulator, SystemConfig};
use icp::workloads::{suite, BenchmarkSpec, WorkloadScale};

const SEED: u64 = 0x5EED_0004;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Comparable projection of an interval report (CPI compared by bits —
/// merged deltas must reproduce the exact division).
type Fingerprint = (usize, bool, u64, Vec<(u64, u32, u64)>);

fn fingerprint(r: &IntervalReport) -> Fingerprint {
    let threads = r
        .threads
        .iter()
        .map(|t| (t.counters.active_cycles, t.ways, t.cpi.to_bits()))
        .collect();
    (r.index, r.finished, r.wall_cycles, threads)
}

/// Runs a sharded simulation (equal static partition) to completion,
/// returning everything an experiment driver could observe.
fn run_sharded(mut sim: ShardedSimulator) -> (u64, u64, GlobalStats, Vec<Fingerprint>) {
    let mut reports = Vec::new();
    while let Some(r) = sim.run_interval() {
        reports.push(fingerprint(&r));
        // Also compare the full per-thread counter bags, not just the
        // fingerprint projection.
        if r.finished {
            break;
        }
    }
    (sim.wall_cycles(), sim.events_processed(), sim.stats().clone(), reports)
}

fn inline_streams(spec: &BenchmarkSpec, cfg: &SystemConfig) -> Vec<Box<dyn AccessStream>> {
    spec.build_streams(cfg, WorkloadScale::Test, SEED)
}

/// One shard is the legacy serial machine: reports, stats and wall clock
/// all bit-identical, for every suite workload.
#[test]
fn one_shard_identical_to_serial_across_suite() {
    let cfg = SystemConfig::scaled_down();
    for spec in suite::all() {
        let mut serial = Simulator::new(cfg, inline_streams(&spec, &cfg));
        serial.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
        let mut serial_reports = Vec::new();
        while let Some(r) = serial.run_interval() {
            serial_reports.push(fingerprint(&r));
            if r.finished {
                break;
            }
        }

        let mut sharded = ShardedSimulator::new(cfg, inline_streams(&spec, &cfg), 1);
        sharded.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
        let (wall, events, stats, reports) = run_sharded(sharded);

        assert_eq!(wall, serial.wall_cycles(), "{}: wall diverged", spec.name);
        assert_eq!(events, serial.events_processed(), "{}: events diverged", spec.name);
        assert_eq!(&stats, serial.stats(), "{}: stats diverged", spec.name);
        assert_eq!(reports, serial_reports, "{}: reports diverged", spec.name);
    }
}

/// Parallel execution is bit-identical to the serial reference of the same
/// decomposition at shards ∈ {1, 2, 4, 7}, for every suite workload.
#[test]
fn parallel_identical_to_serial_reference_across_suite() {
    let cfg = SystemConfig::scaled_down();
    for spec in suite::all() {
        for k in SHARD_COUNTS {
            let mut parallel = ShardedSimulator::new(cfg, inline_streams(&spec, &cfg), k);
            parallel.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
            assert!(parallel.is_parallel());
            let a = run_sharded(parallel);

            let mut reference =
                ShardedSimulator::serial_reference(cfg, inline_streams(&spec, &cfg), k);
            reference.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
            assert!(!reference.is_parallel());
            let b = run_sharded(reference);

            assert_eq!(a, b, "{} k={k}: parallel != serial reference", spec.name);
        }
    }
}

/// Sharding conserves the workload: total instructions and demand accesses
/// per thread are independent of the shard count, for every suite workload.
#[test]
fn shard_count_conserves_work_across_suite() {
    let cfg = SystemConfig::scaled_down();
    for spec in suite::all() {
        let (_, _, base, _) = run_sharded(ShardedSimulator::new(cfg, inline_streams(&spec, &cfg), 1));
        for k in [2usize, 4, 7] {
            let (_, _, stats, _) =
                run_sharded(ShardedSimulator::new(cfg, inline_streams(&spec, &cfg), k));
            for t in 0..cfg.cores {
                assert_eq!(
                    stats.threads[t].instructions, base.threads[t].instructions,
                    "{} k={k} thread {t}: instructions not conserved",
                    spec.name
                );
                assert_eq!(
                    stats.threads[t].l1_hits + stats.threads[t].l1_misses,
                    base.threads[t].l1_hits + base.threads[t].l1_misses,
                    "{} k={k} thread {t}: accesses not conserved",
                    spec.name
                );
            }
        }
    }
}

/// Dynamic repartitioning drives both engines identically: flipping the
/// partition at every boundary (the runtime's usage shape) stays
/// bit-identical between parallel and serial-reference execution.
#[test]
fn repartitioning_identical_between_engines() {
    let cfg = SystemConfig::scaled_down();
    for spec in suite::all().into_iter().take(3) {
        for k in [2usize, 4] {
            let drive = |mut sim: ShardedSimulator| -> (u64, GlobalStats) {
                let ways = cfg.l2.ways;
                let mut i = 0u32;
                while let Some(r) = sim.run_interval() {
                    if r.finished {
                        break;
                    }
                    let skew = 1 + (i % (ways / 2));
                    let rest = ways - skew;
                    let others = cfg.cores as u32 - 1;
                    let mut quotas = vec![rest / others; cfg.cores];
                    quotas[0] = skew;
                    for q in quotas.iter_mut().skip(1).take((rest % others) as usize) {
                        *q += 1;
                    }
                    sim.set_partition(&quotas);
                    i += 1;
                }
                (sim.wall_cycles(), sim.stats().clone())
            };
            let a = drive(ShardedSimulator::new(cfg, inline_streams(&spec, &cfg), k));
            let b = drive(ShardedSimulator::serial_reference(cfg, inline_streams(&spec, &cfg), k));
            assert_eq!(a, b, "{} k={k}", spec.name);
        }
    }
}
