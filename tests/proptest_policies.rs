//! Property-based tests over every partitioning policy: whatever counters
//! a report carries, a policy's decision must be applicable — quotas sum to
//! the way count, every thread keeps at least one way, and repeated calls
//! never panic or wedge.

use icp::baselines::{
    FairnessOrientedPolicy, ModelThroughputPolicy, SetPartitionAdapter, SharedCachePolicy,
    StaticEqualPolicy, UcpThroughputPolicy,
};
use icp::runtime::{
    CpiProportionalPolicy, ModelBasedPolicy, PartitionDecision, Partitioner,
};
use icp::sim::simulator::{IntervalReport, ThreadIntervalStats};
use icp::sim::stats::ThreadCounters;
use proptest::prelude::*;

const TOTAL_WAYS: u32 = 16;
const THREADS: usize = 4;

/// A random but internally consistent interval report.
fn report_strategy() -> impl Strategy<Value = IntervalReport> {
    (
        proptest::collection::vec((1u64..1_000_000, 1.0f64..40.0), THREADS),
        proptest::collection::vec(0u64..50_000, THREADS),
        0usize..100,
    )
        .prop_map(|(perf, misses, index)| {
            let threads = perf
                .iter()
                .zip(&misses)
                .map(|(&(insts, cpi), &m)| {
                    let counters = ThreadCounters {
                        instructions: insts,
                        active_cycles: (cpi * insts as f64) as u64,
                        l2_misses: m,
                        ..Default::default()
                    };
                    ThreadIntervalStats { counters, cpi, ways: TOTAL_WAYS / THREADS as u32 }
                })
                .collect();
            IntervalReport { index, threads, finished: false, wall_cycles: 1 }
        })
}

/// Sequences of reports that carry coherent `ways` fields: each report's
/// quotas are whatever the policy last decided.
fn drive<P: Partitioner>(policy: &mut P, reports: Vec<IntervalReport>) -> Vec<PartitionDecision> {
    let mut current = vec![TOTAL_WAYS / THREADS as u32; THREADS];
    let mut out = Vec::new();
    if let PartitionDecision::Partition(w) | PartitionDecision::SetPartition(w) =
        policy.initial(THREADS, TOTAL_WAYS)
    {
        current = w;
    }
    for mut r in reports {
        for (t, ts) in r.threads.iter_mut().enumerate() {
            ts.ways = current[t];
        }
        let d = policy.repartition(&r, TOTAL_WAYS);
        if let PartitionDecision::Partition(w) | PartitionDecision::SetPartition(w) = &d {
            current = w.clone();
        }
        out.push(d);
    }
    out
}

fn check_decisions(name: &str, decisions: &[PartitionDecision]) -> Result<(), TestCaseError> {
    for d in decisions {
        match d {
            PartitionDecision::Partition(w) | PartitionDecision::SetPartition(w) => {
                prop_assert_eq!(w.len(), THREADS, "{}: wrong arity", name);
                prop_assert_eq!(
                    w.iter().sum::<u32>(),
                    TOTAL_WAYS,
                    "{}: quotas {:?} don't sum",
                    name,
                    w
                );
                prop_assert!(
                    w.iter().all(|&x| x >= 1),
                    "{}: starved thread in {:?}",
                    name,
                    w
                );
            }
            PartitionDecision::Keep | PartitionDecision::Unpartitioned => {}
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_policies_produce_valid_partitions(
        reports in proptest::collection::vec(report_strategy(), 1..12),
    ) {
        let mut cpi = CpiProportionalPolicy::new();
        check_decisions("cpi-prop", &drive(&mut cpi, reports.clone()))?;

        let mut model = ModelBasedPolicy::new();
        check_decisions("model-based", &drive(&mut model, reports.clone()))?;

        let mut strict = ModelBasedPolicy::with_strict_termination();
        check_decisions("model-strict", &drive(&mut strict, reports.clone()))?;

        let mut phase = ModelBasedPolicy::with_phase_detection(0.5);
        check_decisions("model-phase", &drive(&mut phase, reports.clone()))?;

        let mut tp = ModelThroughputPolicy::new();
        check_decisions("model-throughput", &drive(&mut tp, reports.clone()))?;

        let mut fair = FairnessOrientedPolicy::new();
        check_decisions("fairness", &drive(&mut fair, reports.clone()))?;

        let mut ucp = UcpThroughputPolicy::new();
        check_decisions("ucp", &drive(&mut ucp, reports.clone()))?;

        let mut setp = SetPartitionAdapter::new(ModelBasedPolicy::new());
        check_decisions("set-adapter", &drive(&mut setp, reports.clone()))?;

        let mut shared = SharedCachePolicy;
        let ds = drive(&mut shared, reports.clone());
        prop_assert!(ds.iter().all(|d| matches!(d, PartitionDecision::Keep)));

        let mut eq = StaticEqualPolicy;
        check_decisions("static-equal", &drive(&mut eq, reports))?;
    }

    /// Zero-instruction (fully barrier-parked) threads never break any
    /// policy.
    #[test]
    fn idle_threads_are_tolerated(seed_cpis in proptest::collection::vec(1.0f64..20.0, THREADS)) {
        let mut reports = Vec::new();
        for i in 0..6 {
            let threads = seed_cpis
                .iter()
                .enumerate()
                .map(|(t, &cpi)| {
                    // Thread (i % THREADS) idles this interval.
                    let idle = t == i % THREADS;
                    let insts = if idle { 0 } else { 10_000 };
                    ThreadIntervalStats {
                        counters: ThreadCounters {
                            instructions: insts,
                            active_cycles: (cpi * insts as f64) as u64,
                            ..Default::default()
                        },
                        cpi: if idle { 0.0 } else { cpi },
                        ways: TOTAL_WAYS / THREADS as u32,
                    }
                })
                .collect();
            reports.push(IntervalReport { index: i, threads, finished: false, wall_cycles: 1 });
        }
        let mut model = ModelBasedPolicy::new();
        check_decisions("model-idle", &drive(&mut model, reports.clone()))?;
        let mut cpi = CpiProportionalPolicy::new();
        check_decisions("cpi-idle", &drive(&mut cpi, reports))?;
    }
}
