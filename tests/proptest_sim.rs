//! Property-based tests of the simulator's timing and accounting
//! invariants under arbitrary event streams.

use icp::sim::shard::ShardedSimulator;
use icp::sim::stream::{ReplayStream, ThreadEvent};
use icp::sim::{CacheConfig, LatencyConfig, Simulator, SystemConfig};
use proptest::prelude::*;

fn cfg(interval: u64) -> SystemConfig {
    SystemConfig {
        cores: 2,
        l1: CacheConfig::new(2 * 64 * 2, 2, 64),
        l2: CacheConfig::new(4 * 64 * 4, 4, 64),
        llc: Default::default(),
        latency: LatencyConfig { l1_hit: 1, l2_hit: 10, memory: 100 },
        interval_instructions: interval,
        inclusive: false,
        coherence: false,
        prefetch_degree: 0,
        l2_banks: 0,
        victim_cache_lines: 0,
    }
}

/// Random per-thread event streams: accesses with small gaps plus
/// occasional barriers (paired across threads to avoid deadlock-free
/// semantics questions — barriers release when all unfinished threads
/// arrive, and finished threads don't block, so ANY barrier counts are
/// safe).
fn events_strategy() -> impl Strategy<Value = Vec<ThreadEvent>> {
    proptest::collection::vec(
        prop_oneof![
            8 => (0u32..6, 0u64..128, any::<bool>(), 1u16..80).prop_map(
                |(gap, line, write, mlp)| ThreadEvent::Access {
                    gap,
                    addr: line * 64,
                    write,
                    mlp_tenths: mlp.max(10),
                }
            ),
            1 => Just(ThreadEvent::Barrier),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Accounting invariants hold for any stream pair: CPI >= 1, hierarchy
    /// counter conservation, instructions conserved across intervals, and
    /// wall clock bounds every thread's busy time.
    #[test]
    fn accounting_invariants(e0 in events_strategy(), e1 in events_strategy()) {
        let c = cfg(64);
        let mut sim = Simulator::new(
            c,
            vec![
                Box::new(ReplayStream::new(e0.clone())),
                Box::new(ReplayStream::new(e1.clone())),
            ],
        );
        let mut interval_insts = 0u64;
        while let Some(report) = sim.run_interval() {
            for ts in &report.threads {
                interval_insts += ts.counters.instructions;
            }
            if report.finished {
                break;
            }
        }
        let stats = sim.stats();
        for t in 0..2 {
            let c = stats.thread(t);
            prop_assert!(c.active_cycles >= c.instructions);
            prop_assert_eq!(c.l1_misses, c.l2_hits + c.l2_misses);
            prop_assert!(c.l1_hits + c.l1_misses <= c.instructions);
            prop_assert!(
                sim.wall_cycles() >= c.active_cycles,
                "wall {} < busy {}", sim.wall_cycles(), c.active_cycles
            );
        }
        prop_assert_eq!(interval_insts, stats.total_instructions());
        // Expected instruction count from the streams themselves.
        let expect = |es: &[ThreadEvent]| -> u64 {
            es.iter()
                .map(|e| match e {
                    ThreadEvent::Access { gap, .. } => *gap as u64 + 1,
                    _ => 0,
                })
                .sum()
        };
        prop_assert_eq!(stats.total_instructions(), expect(&e0) + expect(&e1));
        sim.l2().check_invariants();
    }

    /// The simulator is deterministic for any input streams.
    #[test]
    fn replay_determinism(e0 in events_strategy(), e1 in events_strategy()) {
        let run = || {
            let mut sim = Simulator::new(
                cfg(64),
                vec![
                    Box::new(ReplayStream::new(e0.clone())) as Box<dyn icp::sim::stream::AccessStream>,
                    Box::new(ReplayStream::new(e1.clone())),
                ],
            );
            while let Some(r) = sim.run_interval() {
                if r.finished {
                    break;
                }
            }
            (sim.wall_cycles(), sim.stats().threads.clone())
        };
        let (w1, s1) = run();
        let (w2, s2) = run();
        prop_assert_eq!(w1, w2);
        prop_assert_eq!(s1, s2);
    }

    /// Partitioning mid-run never breaks accounting or ownership state.
    #[test]
    fn random_repartitioning_is_safe(
        e0 in events_strategy(),
        e1 in events_strategy(),
        quotas in proptest::collection::vec(1u32..4, 0..8),
    ) {
        let mut sim = Simulator::new(
            cfg(32),
            vec![
                Box::new(ReplayStream::new(e0)),
                Box::new(ReplayStream::new(e1)),
            ],
        );
        let mut qi = 0;
        while let Some(r) = sim.run_interval() {
            if r.finished {
                break;
            }
            if qi < quotas.len() {
                let a = quotas[qi].min(3);
                sim.set_partition(&[a, 4 - a]);
                qi += 1;
            } else {
                sim.set_unpartitioned();
            }
        }
        sim.l2().check_invariants();
    }

    /// Set-sharded execution is equivalence-stable over shard-count ×
    /// geometry: at any shard count and L2 shape, (a) worker-thread
    /// execution is bit-identical to the serial reference of the same
    /// decomposition, and (b) one shard is bit-identical to the plain
    /// serial simulator.
    #[test]
    fn shard_equivalence_over_count_and_geometry(
        e0 in events_strategy(),
        e1 in events_strategy(),
        shards in 1usize..6,
        sets_log in 2u32..5,
        ways in 2u32..5,
    ) {
        let mut c = cfg(64);
        c.l2 = CacheConfig::new((1u64 << sets_log) * 64 * ways as u64, ways, 64);
        let streams = || vec![
            ReplayStream::new(e0.clone()),
            ReplayStream::new(e1.clone()),
        ];
        let run = |mut sim: ShardedSimulator| {
            while let Some(r) = sim.run_interval() {
                if r.finished {
                    break;
                }
            }
            (sim.wall_cycles(), sim.stats().clone())
        };
        let parallel = run(ShardedSimulator::new(c, streams(), shards));
        let reference = run(ShardedSimulator::serial_reference(c, streams(), shards));
        prop_assert_eq!(&parallel, &reference);

        let mut serial = Simulator::new(
            c,
            vec![
                Box::new(ReplayStream::new(e0.clone())) as Box<dyn icp::sim::stream::AccessStream>,
                Box::new(ReplayStream::new(e1.clone())),
            ],
        );
        while let Some(r) = serial.run_interval() {
            if r.finished {
                break;
            }
        }
        let (one_wall, one_stats) = run(ShardedSimulator::new(c, streams(), 1));
        prop_assert_eq!(one_wall, serial.wall_cycles());
        prop_assert_eq!(&one_stats, serial.stats());
    }

    /// Higher MLP never makes an identical single-thread stream slower.
    #[test]
    fn mlp_monotonicity(lines in proptest::collection::vec(0u64..64, 10..100)) {
        let run = |mlp: u16| {
            let events: Vec<ThreadEvent> = lines
                .iter()
                .map(|l| ThreadEvent::Access { gap: 1, addr: l * 64, write: false, mlp_tenths: mlp })
                .collect();
            let mut c = cfg(1_000_000);
            c.cores = 1;
            let mut sim = Simulator::new(c, vec![Box::new(ReplayStream::new(events))]);
            while let Some(r) = sim.run_interval() {
                if r.finished {
                    break;
                }
            }
            sim.wall_cycles()
        };
        let serial = run(10);
        let overlapped = run(40);
        prop_assert!(overlapped <= serial, "{overlapped} > {serial}");
    }
}
