//! End-to-end integration tests spanning workloads → simulator → runtime →
//! experiment harness: consistency of every per-interval report and the
//! paper's qualitative claims at test scale.

use icp::experiments::{ExperimentConfig, Scheme};
use icp::runtime::{IntraAppRuntime, ModelBasedPolicy};
use icp::sim::{Simulator, SystemConfig};
use icp::workloads::{suite, WorkloadScale};

#[test]
fn interval_records_are_internally_consistent() {
    let cfg = ExperimentConfig::test();
    for bench in suite::all() {
        let out = cfg.run(&bench, &Scheme::ModelBased);
        let total_ways = cfg.system.l2.ways;
        let mut insts_sum = 0u64;
        for r in &out.records {
            assert_eq!(
                r.ways.iter().sum::<u32>(),
                total_ways,
                "{}: ways must sum to the L2 way count",
                bench.name
            );
            assert!(r.ways.iter().all(|&w| w >= 1), "{}: no starved thread", bench.name);
            for t in 0..r.cpi.len() {
                if r.instructions[t] > 0 {
                    assert!(
                        r.cpi[t] >= 1.0,
                        "{}: CPI below 1 is impossible on an in-order core",
                        bench.name
                    );
                }
            }
            insts_sum += r.instructions.iter().sum::<u64>();
        }
        // Every retired instruction is accounted to exactly one interval.
        let totals: u64 = out.thread_totals.iter().map(|c| c.instructions).sum();
        assert_eq!(insts_sum, totals, "{}", bench.name);
        // The workload's instruction budget was retired exactly.
        let expected =
            bench.instructions_per_thread(cfg.scale) * bench.threads.len() as u64;
        assert_eq!(totals, expected, "{}", bench.name);
    }
}

#[test]
fn l1_l2_counter_consistency() {
    let cfg = ExperimentConfig::test();
    let out = cfg.run(&suite::swim(), &Scheme::Shared);
    for (t, c) in out.thread_totals.iter().enumerate() {
        // Every L1 miss becomes exactly one L2 access.
        assert_eq!(c.l1_misses, c.l2_hits + c.l2_misses, "thread {t}");
        // Memory instructions = L1 hits + L1 misses <= instructions.
        assert!(c.l1_hits + c.l1_misses <= c.instructions, "thread {t}");
        assert!(c.active_cycles >= c.instructions, "thread {t}: CPI >= 1");
    }
}

#[test]
fn barrier_slack_matches_critical_thread() {
    // The critical (slowest) thread should accumulate the least barrier
    // stall; the fastest thread the most (it always waits).
    let cfg = ExperimentConfig::test();
    let out = cfg.run(&suite::mgrid(), &Scheme::StaticEqual);
    let cpis: Vec<f64> = out.thread_totals.iter().map(|c| c.cpi()).collect();
    let stalls: Vec<u64> = out
        .thread_totals
        .iter()
        .map(|c| c.barrier_stall_cycles)
        .collect();
    let slowest = (0..4).max_by(|&a, &b| cpis[a].partial_cmp(&cpis[b]).unwrap()).unwrap();
    let fastest = (0..4).min_by(|&a, &b| cpis[a].partial_cmp(&cpis[b]).unwrap()).unwrap();
    assert!(
        stalls[slowest] < stalls[fastest],
        "critical thread t{slowest} (stall {}) must wait less than fastest t{fastest} (stall {})",
        stalls[slowest],
        stalls[fastest]
    );
}

#[test]
fn dynamic_scheme_gives_critical_thread_the_biggest_share() {
    let cfg = ExperimentConfig::test();
    for (bench, critical) in [
        (suite::mgrid(), 1usize),
        (suite::cg(), 3),
        (suite::equake(), 3),
        (suite::art(), 2),
    ] {
        let out = cfg.run(&bench, &Scheme::ModelBased);
        // In the steady second half of the run, the designed critical
        // thread should hold the largest allocation most of the time.
        let half = out.records.len() / 2;
        let wins = out.records[half..]
            .iter()
            .filter(|r| {
                let max = *r.ways.iter().max().unwrap();
                r.ways[critical] == max
            })
            .count();
        let total = out.records.len() - half;
        assert!(
            wins * 2 > total,
            "{}: critical thread t{critical} had the biggest share in only {wins}/{total} intervals",
            bench.name
        );
    }
}

#[test]
fn shared_cache_mode_reports_no_partition_effects() {
    let cfg = ExperimentConfig::test();
    let out = cfg.run(&suite::ft(), &Scheme::Shared);
    // In unpartitioned mode the report shows the nominal equal share.
    for r in &out.records {
        assert_eq!(r.ways, vec![16; 4]);
    }
}

#[test]
fn paper_sized_system_runs() {
    // Smoke-test the full 1 MB / 15 M-interval configuration (shortened
    // workload) — the geometry the paper actually used.
    let mut cfg = SystemConfig::paper_default();
    cfg.interval_instructions = 100_000;
    let bench = suite::cg();
    let streams = bench.build_streams(&cfg, WorkloadScale::Test, 5);
    let mut sim = Simulator::new(cfg, streams);
    let mut rt = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
    let out = rt.execute(&mut sim);
    assert!(out.wall_cycles > 0);
    assert!(out.intervals() > 3);
    sim.l2().check_invariants();
}

#[test]
fn eight_core_smoke() {
    let cfg = ExperimentConfig::test().with_cores(8);
    for scheme in [Scheme::Shared, Scheme::ModelBased, Scheme::UcpThroughput] {
        let out = cfg.run(&suite::swim(), &scheme);
        assert_eq!(out.thread_totals.len(), 8, "{scheme:?}");
        assert!(out.wall_cycles > 0, "{scheme:?}");
    }
}

#[test]
fn writeback_counters_are_consistent() {
    let cfg = ExperimentConfig::test();
    let out = cfg.run(&suite::swim(), &Scheme::Shared);
    for (t, c) in out.thread_totals.iter().enumerate() {
        // L1 writebacks only come from L1 evictions, so never exceed L1
        // misses (each miss can evict at most one dirty line).
        assert!(c.l1_writebacks <= c.l1_misses, "thread {t}");
        // The suite writes ~30% of accesses: some writeback traffic must
        // exist for every thread that misses.
        if c.l1_misses > 1000 {
            assert!(c.l1_writebacks > 0, "thread {t}: no L1 writebacks at all");
        }
    }
    // L2 writebacks are attributed per owner and bounded by L2 traffic
    // (demand misses + L1 writeback insertions).
    let l2_wb: u64 = out.thread_totals.iter().map(|c| c.l2_writebacks).sum();
    let l2_traffic: u64 = out
        .thread_totals
        .iter()
        .map(|c| c.l2_misses + c.l1_writebacks)
        .sum();
    assert!(l2_wb <= l2_traffic, "{l2_wb} > {l2_traffic}");
    assert!(l2_wb > 0, "a writing workload must produce memory writebacks");
}

#[test]
fn inclusive_hierarchy_runs_and_changes_behaviour() {
    let mut cfg = ExperimentConfig::test();
    let base = cfg.run(&suite::swim(), &Scheme::ModelBased);
    cfg.system.inclusive = true;
    let incl = cfg.run(&suite::swim(), &Scheme::ModelBased);
    assert!(incl.wall_cycles > 0);
    // Back-invalidation strictly reduces L1 usefulness, so the inclusive
    // run can only have equal-or-more L1 misses.
    let misses = |o: &icp_core::ExecutionOutcome| -> u64 {
        o.thread_totals.iter().map(|c| c.l1_misses).sum()
    };
    assert!(misses(&incl) >= misses(&base), "{} < {}", misses(&incl), misses(&base));
}

#[test]
fn plru_replacement_end_to_end() {
    let mut cfg = ExperimentConfig::test();
    cfg.replacement = icp::sim::ReplacementKind::TreePlru;
    for scheme in [Scheme::Shared, Scheme::StaticEqual, Scheme::ModelBased] {
        let out = cfg.run(&suite::mgrid(), &scheme);
        assert!(out.wall_cycles > 0, "{scheme:?}");
    }
    // The dynamic scheme still beats the equal split under PLRU.
    let dynp = cfg.run(&suite::mgrid(), &Scheme::ModelBased);
    let equal = cfg.run(&suite::mgrid(), &Scheme::StaticEqual);
    assert!(dynp.improvement_percent_over(&equal) > 0.0);
}

#[test]
fn interactions_have_sane_composition() {
    let cfg = ExperimentConfig::test();
    for bench in suite::all() {
        let out = cfg.run(&bench, &Scheme::Shared);
        let i = out.interactions;
        assert!(i.total_accesses > 0, "{}", bench.name);
        assert!(
            i.inter_thread_hits + i.inter_thread_evictions <= i.total_accesses,
            "{}",
            bench.name
        );
        let frac = i.inter_thread_fraction();
        assert!((0.0..=1.0).contains(&frac), "{}", bench.name);
        // The suite is built to show meaningful sharing on every benchmark.
        assert!(frac > 0.01, "{}: inter-thread fraction {frac}", bench.name);
    }
}
