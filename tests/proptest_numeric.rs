//! Property-based tests for the numeric substrate: splines, PCHIP, Zipf
//! sampling, the RNG and the allocation arithmetic.

use icp::numeric::{CubicSpline, Pchip, Xoshiro256, Zipf};
use icp::runtime::proportional_allocation;
use proptest::prelude::*;

/// Strictly increasing x values with matching ys.
fn knots_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0.01f64..10.0, -100.0f64..100.0), 2..12).prop_map(|pairs| {
        let mut x = 0.0;
        let mut xs = Vec::with_capacity(pairs.len());
        let mut ys = Vec::with_capacity(pairs.len());
        for (dx, y) in pairs {
            x += dx;
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A natural cubic spline interpolates its knots exactly.
    #[test]
    fn spline_interpolates_knots((xs, ys) in knots_strategy()) {
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let v = s.eval(*x);
            prop_assert!((v - y).abs() < 1e-6 * (1.0 + y.abs()), "at {x}: {v} != {y}");
        }
    }

    /// Spline evaluation is finite everywhere in and around the knot range
    /// (linear extrapolation, no cubic blow-up).
    #[test]
    fn spline_eval_finite((xs, ys) in knots_strategy(), probe in -50.0f64..200.0) {
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        prop_assert!(s.eval(probe).is_finite());
    }

    /// PCHIP interpolates its knots and never overshoots the data range
    /// between adjacent knots.
    #[test]
    fn pchip_no_overshoot((xs, ys) in knots_strategy()) {
        let p = Pchip::fit(&xs, &ys).unwrap();
        for w in xs.windows(2).zip(ys.windows(2)) {
            let ((x0, x1), (y0, y1)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            let lo = y0.min(y1) - 1e-9 * (1.0 + y0.abs().max(y1.abs()));
            let hi = y0.max(y1) + 1e-9 * (1.0 + y0.abs().max(y1.abs()));
            for k in 1..10 {
                let x = x0 + (x1 - x0) * k as f64 / 10.0;
                let v = p.eval(x);
                prop_assert!(v >= lo && v <= hi, "overshoot at {x}: {v} not in [{lo}, {hi}]");
            }
        }
    }

    /// PCHIP preserves monotonicity of monotone data.
    #[test]
    fn pchip_monotone_on_monotone_data(
        steps in proptest::collection::vec((0.1f64..5.0, 0.0f64..20.0), 2..10)
    ) {
        let mut x = 0.0;
        let mut y = 100.0;
        let mut xs = vec![x];
        let mut ys = vec![y];
        for (dx, dy) in steps {
            x += dx;
            y -= dy; // non-increasing
            xs.push(x);
            ys.push(y);
        }
        let p = Pchip::fit(&xs, &ys).unwrap();
        let mut prev = f64::INFINITY;
        let n = 100;
        for k in 0..=n {
            let xq = xs[0] + (xs[xs.len() - 1] - xs[0]) * k as f64 / n as f64;
            let v = p.eval(xq);
            prop_assert!(v <= prev + 1e-7, "non-monotone at {xq}");
            prev = v;
        }
    }

    /// Zipf samples stay in range and the empirical head frequency is
    /// monotone (rank 0 at least as frequent as rank ~n/2).
    #[test]
    fn zipf_in_range_and_skewed(n in 2u64..2000, theta in 0.05f64..1.5, seed in 0u64..500) {
        let z = Zipf::new(n, theta);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut head = 0u32;
        let mut total = 0u32;
        for _ in 0..2000 {
            let s = z.sample(&mut rng);
            prop_assert!(s < n);
            total += 1;
            if s < n.div_ceil(2) {
                head += 1;
            }
        }
        // More mass in the first half of the ranks than a uniform tail
        // would allow for (true for any Zipf with theta > 0; the 48%
        // threshold leaves room for sampling noise at theta ~ 0).
        prop_assert!(head as u64 * 25 >= total as u64 * 12, "head {head}/{total}");
    }

    /// Bounded RNG draws are always in range.
    #[test]
    fn rng_bounded_in_range(seed: u64, bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_bounded(bound) < bound);
        }
    }

    /// Proportional allocation: sums to total, respects the floor, and is
    /// weakly monotone in the weights.
    #[test]
    fn allocation_properties(
        weights in proptest::collection::vec(0.0f64..100.0, 2..16),
        spare in 0u32..128,
    ) {
        let n = weights.len() as u32;
        let total = n + spare; // guarantees feasibility with min_per = 1
        let alloc = proportional_allocation(&weights, total, 1);
        prop_assert_eq!(alloc.iter().sum::<u32>(), total);
        prop_assert!(alloc.iter().all(|&w| w >= 1));
        // Weak monotonicity: a strictly heavier weight never gets strictly
        // fewer ways than a lighter one, modulo rounding by one.
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                if weights[i] > weights[j] {
                    prop_assert!(
                        alloc[i] + 1 >= alloc[j],
                        "w[{i}]={} > w[{j}]={} but alloc {} < {}",
                        weights[i], weights[j], alloc[i], alloc[j]
                    );
                }
            }
        }
    }
}
