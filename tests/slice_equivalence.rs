//! Sliced-LLC simulation must be deterministic and serial-equivalent —
//! for every workload in the suite.
//!
//! The sliced machine (`icp::sim::slice::Llc`) makes the same two bitwise
//! promises as the set-sharded engine it generalises, with the demux key
//! changed from `set_index % k` to the address-hashed slice:
//!
//! 1. **One slice is the legacy serial simulator.** At N = 1 the slice
//!    geometry is the whole L2 and the demux preserves the entire event
//!    order, so every interval report, counter and the wall clock equal
//!    the monolithic serial path bit for bit.
//! 2. **Worker threads change nothing.** At every N, slice-parallel
//!    execution is bit-identical to the serial-reference engine advancing
//!    the same N slices on one thread in slice order.
//!
//! This suite pins both across every suite benchmark at N ∈ {1, 2, 4, 8},
//! and sanity-checks the slice hash: no slice starves under the suite's
//! Zipf-skewed address streams.

use icp::sim::config::LlcConfig;
use icp::sim::l2::equal_split;
use icp::sim::slice::{Llc, SliceTopology};
use icp::sim::stream::AccessStream;
use icp::sim::{GlobalStats, IntervalReport, Simulator, SystemConfig, ThreadEvent};
use icp::workloads::{suite, BenchmarkSpec, WorkloadScale};

const SEED: u64 = 0x5EED_0009;
const SLICE_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Comparable projection of an interval report (CPI compared by bits —
/// merged deltas must reproduce the exact division).
type Fingerprint = (usize, bool, u64, Vec<(u64, u32, u64)>);

fn fingerprint(r: &IntervalReport) -> Fingerprint {
    let threads = r
        .threads
        .iter()
        .map(|t| (t.counters.active_cycles, t.ways, t.cpi.to_bits()))
        .collect();
    (r.index, r.finished, r.wall_cycles, threads)
}

fn sliced_config(slices: u32) -> SystemConfig {
    let mut cfg = SystemConfig::scaled_down();
    cfg.llc = LlcConfig::sliced(slices);
    cfg
}

/// Runs a sliced machine (equal static partition) to completion, returning
/// everything an experiment driver could observe.
fn run_sliced(mut sim: Llc) -> (u64, u64, GlobalStats, Vec<Fingerprint>) {
    let mut reports = Vec::new();
    while let Some(r) = sim.run_interval() {
        reports.push(fingerprint(&r));
        if r.finished {
            break;
        }
    }
    (sim.wall_cycles(), sim.events_processed(), sim.stats().clone(), reports)
}

fn inline_streams(spec: &BenchmarkSpec, cfg: &SystemConfig) -> Vec<Box<dyn AccessStream>> {
    spec.build_streams(cfg, WorkloadScale::Test, SEED)
}

/// One slice is the legacy serial machine: reports, stats and wall clock
/// all bit-identical to the monolithic `Simulator`, for every suite
/// workload.
#[test]
fn one_slice_identical_to_serial_across_suite() {
    let mono = SystemConfig::scaled_down();
    let cfg = sliced_config(1);
    for spec in suite::all() {
        let mut serial = Simulator::new(mono, inline_streams(&spec, &mono));
        serial.set_partition(&equal_split(mono.l2.ways, mono.cores));
        let mut serial_reports = Vec::new();
        while let Some(r) = serial.run_interval() {
            serial_reports.push(fingerprint(&r));
            if r.finished {
                break;
            }
        }

        let mut one = Llc::new(cfg, inline_streams(&spec, &cfg));
        one.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
        let (wall, events, stats, reports) = run_sliced(one);

        assert_eq!(wall, serial.wall_cycles(), "{}: wall diverged", spec.name);
        assert_eq!(events, serial.events_processed(), "{}: events diverged", spec.name);
        assert_eq!(&stats, serial.stats(), "{}: stats diverged", spec.name);
        assert_eq!(reports, serial_reports, "{}: reports diverged", spec.name);
    }
}

/// Slice-parallel execution is bit-identical to the serial reference of
/// the same decomposition at N ∈ {1, 2, 4, 8}, for every suite workload.
#[test]
fn parallel_identical_to_serial_reference_across_suite() {
    for spec in suite::all() {
        for n in SLICE_COUNTS {
            let cfg = sliced_config(n);
            // Forced-parallel mode: `Llc::new` would degrade to the serial
            // engine on a single-core host, voiding the comparison.
            let mut parallel = Llc::with_mode(cfg, inline_streams(&spec, &cfg), true);
            parallel.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
            assert!(parallel.is_parallel());
            let a = run_sliced(parallel);

            let mut reference = Llc::serial_reference(cfg, inline_streams(&spec, &cfg));
            reference.set_partition(&equal_split(cfg.l2.ways, cfg.cores));
            assert!(!reference.is_parallel());
            let b = run_sliced(reference);

            assert_eq!(a, b, "{} N={n}: parallel != serial reference", spec.name);
        }
    }
}

/// Slicing conserves the workload: total instructions and demand accesses
/// per thread are independent of the slice count, for every suite workload.
#[test]
fn slice_count_conserves_work_across_suite() {
    for spec in suite::all() {
        let base_cfg = sliced_config(1);
        let (_, _, base, _) = run_sliced(Llc::new(base_cfg, inline_streams(&spec, &base_cfg)));
        for n in [2u32, 4, 8] {
            let cfg = sliced_config(n);
            let (_, _, stats, _) = run_sliced(Llc::new(cfg, inline_streams(&spec, &cfg)));
            for t in 0..cfg.cores {
                assert_eq!(
                    stats.threads[t].instructions, base.threads[t].instructions,
                    "{} N={n} thread {t}: instructions not conserved",
                    spec.name
                );
                assert_eq!(
                    stats.threads[t].l1_hits + stats.threads[t].l1_misses,
                    base.threads[t].l1_hits + base.threads[t].l1_misses,
                    "{} N={n} thread {t}: accesses not conserved",
                    spec.name
                );
            }
        }
    }
}

/// The slice hash spreads Zipf-skewed address streams: counting the slice
/// of every generated access across the suite, no slice receives less than
/// a quarter of its fair share (a starved slice would serialise the
/// machine and silently void the parallel speedup).
#[test]
fn no_slice_starves_under_zipf_streams() {
    for n in [2u32, 4, 8] {
        let cfg = sliced_config(n);
        let topology = SliceTopology::of(&cfg);
        assert_eq!(topology.num_slices(), n as usize);
        let mut counts = vec![0u64; n as usize];
        for spec in suite::all() {
            for mut stream in inline_streams(&spec, &cfg) {
                // Bounded drain: enough events to expose skew, cheap
                // enough to run for all 9 benchmarks × 3 slice counts.
                for _ in 0..20_000 {
                    match stream.next_event() {
                        ThreadEvent::Access { addr, .. } => counts[topology.slice_of(addr)] += 1,
                        ThreadEvent::Barrier => {}
                        ThreadEvent::Finished => break,
                    }
                }
            }
        }
        let total: u64 = counts.iter().sum();
        let fair = total / n as u64;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c * 4 >= fair,
                "slice {s}/{n} starves: {c} of {total} accesses (fair share {fair}): {counts:?}"
            );
        }
    }
}
