//! The `#[hot_path]` marker attribute.
//!
//! Marks a function as part of the simulator's innermost loop. The attribute
//! expands to exactly the item it was applied to — zero tokens added, zero
//! runtime cost — but the `icp-analysis` lint pass recognises it and enforces
//! rule R4 (no heap allocation: `Vec::new`/`push`, `Box::new`, `format!`,
//! container `clone()`, …) inside any function that carries it.
//!
//! Using a real attribute rather than a naming convention means the marker
//! travels with the code through refactors, shows up in rustdoc, and cannot
//! silently drift out of sync with the lint's configuration.
//!
//! # Examples
//!
//! ```
//! use icp_hot_path::hot_path;
//!
//! #[hot_path]
//! fn inner_loop(xs: &[u64]) -> u64 {
//!     xs.iter().sum()
//! }
//! assert_eq!(inner_loop(&[1, 2, 3]), 6);
//! ```

use proc_macro::TokenStream;

/// Marks a function as hot-path code (see the crate docs). Expands to the
/// unmodified item.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
