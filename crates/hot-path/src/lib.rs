//! The `#[hot_path]` and `#[deterministic]` marker attributes.
//!
//! Both attributes expand to exactly the item they were applied to — zero
//! tokens added, zero runtime cost — but the `icp-analysis` lint pass
//! recognises them and scopes its rules accordingly:
//!
//! * `#[hot_path]` marks a function as part of the simulator's innermost
//!   loop. Rule R4 denies heap allocation (`Vec::new`/`push`, `Box::new`,
//!   `format!`, container `clone()`, …) inside any function that carries
//!   it, and rule D5 extends the no-alloc/no-panic obligation to every
//!   function it (transitively) calls, via the workspace call graph.
//! * `#[deterministic]` marks a function whose output feeds digest-bearing
//!   simulation state — the simulate/merge/replay/generate roots whose
//!   bit-identity promises the equivalence suites pin. Rules D1–D3 and D5
//!   deny nondeterminism sources (unordered hash-container iteration,
//!   ambient clocks/thread identity/host parallelism, unordered float
//!   reductions, panics) in the root and everything reachable from it.
//!
//! Using real attributes rather than naming conventions means the markers
//! travel with the code through refactors, show up in rustdoc, and cannot
//! silently drift out of sync with the lint's configuration.
//!
//! # Examples
//!
//! ```
//! use icp_hot_path::{deterministic, hot_path};
//!
//! #[hot_path]
//! fn inner_loop(xs: &[u64]) -> u64 {
//!     xs.iter().sum()
//! }
//! assert_eq!(inner_loop(&[1, 2, 3]), 6);
//!
//! #[deterministic]
//! fn merge_counters(a: u64, b: u64) -> u64 {
//!     a + b
//! }
//! assert_eq!(merge_counters(2, 3), 5);
//! ```

use proc_macro::TokenStream;

/// Marks a function as hot-path code (see the crate docs). Expands to the
/// unmodified item.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Marks a function as a determinism root: its output (and that of every
/// function it transitively calls) must be a pure function of its inputs,
/// bit for bit. See the crate docs; enforced by `icp-analysis` rules D1–D5.
#[proc_macro_attribute]
pub fn deterministic(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
