//! Hierarchical cache partitioning (paper §VI-C, Figure 16).
//!
//! The paper envisions a two-level system: the **OS** partitions the shared
//! cache *between applications*, and each application's **runtime system**
//! partitions its share *among its own threads*. [`HierarchicalPolicy`]
//! implements exactly that composition: a thread→application grouping, a
//! per-application way budget (the OS decision), and one inner
//! [`Partitioner`] per application making the intra-application decision
//! within its budget.
//!
//! The OS budget can be static, or re-balanced at interval granularity in
//! proportion to each application's critical-path CPI
//! ([`BudgetPolicy::CriticalCpiProportional`]) — the paper's intra-app idea
//! lifted one level up.

use icp_cmp_sim::simulator::IntervalReport;
use icp_cmp_sim::umon::UtilityMonitor;

use crate::policy::{proportional_allocation, PartitionDecision, Partitioner};

/// How the OS level assigns way budgets to applications.
#[derive(Clone, Debug, PartialEq)]
pub enum BudgetPolicy {
    /// Budgets fixed at construction (the default; the paper treats the
    /// inter-application split as the OS's business).
    Static,
    /// Budgets re-proportioned each interval to the applications'
    /// critical-path (max-thread) CPIs, with a floor of one way per thread.
    CriticalCpiProportional,
}

/// Two-level partitioner: OS budgets across applications, an inner policy
/// within each.
///
/// # Examples
///
/// ```
/// use icp_core::{HierarchicalPolicy, ModelBasedPolicy, PartitionDecision, Partitioner};
///
/// let mut policy = HierarchicalPolicy::new(
///     vec![vec![0, 1], vec![2, 3]], // two 2-thread applications
///     vec![40, 24],                 // the OS budget split of 64 ways
///     vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
/// );
/// match policy.initial(4, 64) {
///     PartitionDecision::Partition(w) => assert_eq!(w[0] + w[1], 40),
///     other => panic!("{other:?}"),
/// }
/// ```
pub struct HierarchicalPolicy {
    /// `groups[a]` = global thread ids belonging to application `a`.
    groups: Vec<Vec<usize>>,
    /// Current OS-assigned way budget per application.
    budgets: Vec<u32>,
    budget_policy: BudgetPolicy,
    inner: Vec<Box<dyn Partitioner + Send>>,
}

impl HierarchicalPolicy {
    /// Creates a hierarchical policy with static `budgets` (must sum to the
    /// L2 way count — checked when first applied) and one inner policy per
    /// group.
    ///
    /// # Panics
    /// Panics if the group/budget/policy counts disagree, a group is empty,
    /// a budget is smaller than its group (each thread needs ≥ 1 way), or
    /// the groups overlap.
    pub fn new(
        groups: Vec<Vec<usize>>,
        budgets: Vec<u32>,
        inner: Vec<Box<dyn Partitioner + Send>>,
    ) -> Self {
        assert_eq!(groups.len(), budgets.len(), "one budget per application");
        assert_eq!(groups.len(), inner.len(), "one inner policy per application");
        assert!(!groups.is_empty(), "need at least one application");
        let mut seen = std::collections::BTreeSet::new();
        for (g, b) in groups.iter().zip(&budgets) {
            assert!(!g.is_empty(), "empty application group");
            assert!(
                *b >= g.len() as u32,
                "budget {b} smaller than group of {} threads",
                g.len()
            );
            for t in g {
                assert!(seen.insert(*t), "thread {t} appears in two applications");
            }
        }
        HierarchicalPolicy { groups, budgets, budget_policy: BudgetPolicy::Static, inner }
    }

    /// Enables dynamic OS-level budget re-balancing.
    pub fn with_budget_policy(mut self, policy: BudgetPolicy) -> Self {
        self.budget_policy = policy;
        self
    }

    /// The current per-application budgets.
    pub fn budgets(&self) -> &[u32] {
        &self.budgets
    }

    /// The thread grouping.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Recomputes budgets per [`BudgetPolicy`].
    fn rebalance(&mut self, report: &IntervalReport, total_ways: u32) {
        if self.budget_policy != BudgetPolicy::CriticalCpiProportional {
            return;
        }
        // Each application's weight is its critical-path CPI this interval
        // (idle threads excluded).
        let weights: Vec<f64> = self
            .groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&t| report.threads[t].cpi)
                    .fold(0.0_f64, f64::max)
            })
            .collect();
        // Floor: every application keeps one way per thread.
        let floors: Vec<u32> = self.groups.iter().map(|g| g.len() as u32).collect();
        let reserved: u32 = floors.iter().sum();
        assert!(total_ways >= reserved, "fewer ways than threads");
        let alloc = proportional_allocation(&weights, total_ways - reserved, 0);
        self.budgets = alloc.iter().zip(&floors).map(|(a, f)| a + f).collect();
    }

    /// Assembles the global partition from per-application decisions.
    fn assemble(&mut self, report: Option<&IntervalReport>, threads: usize) -> Vec<u32> {
        let mut ways = vec![0u32; threads];
        for ((group, budget), policy) in
            self.groups.iter().zip(&self.budgets).zip(&mut self.inner)
        {
            let decision = match report {
                None => policy.initial(group.len(), *budget),
                Some(r) => {
                    let sub = IntervalReport {
                        index: r.index,
                        threads: group.iter().map(|&t| r.threads[t]).collect(),
                        finished: r.finished,
                        wall_cycles: r.wall_cycles,
                    };
                    policy.repartition(&sub, *budget)
                }
            };
            let sub_ways = match decision {
                PartitionDecision::Partition(w) => w,
                // Inner policies asking for Keep/Unpartitioned get an equal
                // split of their budget: group-level LRU cannot be expressed
                // within a global way partition.
                _ => icp_cmp_sim::l2::equal_split(*budget, group.len()),
            };
            debug_assert_eq!(sub_ways.iter().sum::<u32>(), *budget);
            for (t, w) in group.iter().zip(sub_ways) {
                ways[*t] = w;
            }
        }
        ways
    }
}

impl Partitioner for HierarchicalPolicy {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn initial(&mut self, threads: usize, total_ways: u32) -> PartitionDecision {
        let covered: usize = self.groups.iter().map(|g| g.len()).sum();
        assert_eq!(covered, threads, "groups must cover every thread exactly once");
        assert_eq!(
            self.budgets.iter().sum::<u32>(),
            total_ways,
            "application budgets must sum to the way count"
        );
        PartitionDecision::Partition(self.assemble(None, threads))
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        self.rebalance(report, total_ways);
        PartitionDecision::Partition(self.assemble(Some(report), report.threads.len()))
    }

    fn wants_umon(&self) -> bool {
        self.inner.iter().any(|p| p.wants_umon())
    }

    fn observe_umon(&mut self, umon: &UtilityMonitor) {
        // The UMON profiles global thread ids; inner policies that want it
        // see the whole monitor (their repartition only reads their own
        // threads' curves is not guaranteed, so this is a conservative
        // broadcast).
        for p in &mut self.inner {
            if p.wants_umon() {
                p.observe_umon(umon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fake_report;
    use crate::ModelBasedPolicy;

    fn two_apps() -> HierarchicalPolicy {
        HierarchicalPolicy::new(
            vec![vec![0, 1], vec![2, 3]],
            vec![40, 24],
            vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
        )
    }

    #[test]
    fn initial_respects_budgets() {
        let mut p = two_apps();
        let PartitionDecision::Partition(w) = p.initial(4, 64) else { panic!() };
        assert_eq!(w[0] + w[1], 40);
        assert_eq!(w[2] + w[3], 24);
        assert_eq!(w, vec![20, 20, 12, 12]); // equal within budgets
    }

    #[test]
    fn repartition_keeps_budget_boundaries() {
        let mut p = two_apps();
        let _ = p.initial(4, 64);
        // App A: thread 0 much slower; app B: thread 3 slower.
        for i in 0..5 {
            let r = fake_report(i, &[9.0, 2.0, 3.0, 6.0], &[20, 20, 12, 12]);
            let PartitionDecision::Partition(w) = p.repartition(&r, 64) else { panic!() };
            assert_eq!(w[0] + w[1], 40, "app A budget violated: {w:?}");
            assert_eq!(w[2] + w[3], 24, "app B budget violated: {w:?}");
            assert!(w.iter().all(|&x| x >= 1));
        }
        // The slower thread of each app ends up with its app's bigger share.
        let r = fake_report(9, &[9.0, 2.0, 3.0, 6.0], &[20, 20, 12, 12]);
        let PartitionDecision::Partition(w) = p.repartition(&r, 64) else { panic!() };
        assert!(w[0] > w[1], "{w:?}");
        assert!(w[3] > w[2], "{w:?}");
    }

    #[test]
    fn dynamic_budget_follows_critical_app() {
        let mut p = two_apps().with_budget_policy(BudgetPolicy::CriticalCpiProportional);
        let _ = p.initial(4, 64);
        // App B's critical thread is far slower than anything in app A.
        let r = fake_report(0, &[2.0, 2.0, 2.0, 10.0], &[20, 20, 12, 12]);
        let _ = p.repartition(&r, 64);
        assert!(p.budgets()[1] > p.budgets()[0], "budgets {:?}", p.budgets());
        assert_eq!(p.budgets().iter().sum::<u32>(), 64);
    }

    #[test]
    #[should_panic(expected = "two applications")]
    fn overlapping_groups_rejected() {
        HierarchicalPolicy::new(
            vec![vec![0, 1], vec![1, 2]],
            vec![32, 32],
            vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
        );
    }

    #[test]
    #[should_panic(expected = "budgets must sum")]
    fn bad_budget_sum_rejected() {
        let mut p = HierarchicalPolicy::new(
            vec![vec![0, 1], vec![2, 3]],
            vec![40, 10],
            vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
        );
        let _ = p.initial(4, 64);
    }

    #[test]
    #[should_panic(expected = "cover every thread")]
    fn incomplete_groups_rejected() {
        let mut p = HierarchicalPolicy::new(
            vec![vec![0, 1]],
            vec![64],
            vec![Box::new(ModelBasedPolicy::new())],
        );
        let _ = p.initial(4, 64);
    }
}
