//! Hierarchical cache partitioning (paper §VI-C, Figure 16).
//!
//! The paper envisions a two-level system: the **OS** partitions the shared
//! cache *between applications*, and each application's **runtime system**
//! partitions its share *among its own threads*. [`HierarchicalPolicy`]
//! implements exactly that composition: a thread→application grouping, a
//! per-application way budget (the OS decision), and one inner
//! [`Partitioner`] per application making the intra-application decision
//! within its budget.
//!
//! The OS budget can be static, or re-balanced at interval granularity in
//! proportion to each application's critical-path CPI
//! ([`BudgetPolicy::CriticalCpiProportional`]) — the paper's intra-app idea
//! lifted one level up — or by the greedy UCP-style lookahead allocator
//! over merged per-cluster UMON curves
//! ([`BudgetPolicy::UmonLookahead`]), mirroring LFOC's
//! cluster-then-partition structure. The lookahead variant is the scaling
//! path past 8 threads: its inter-cluster decision is
//! `O(ways²·clusters)` where a flat model-based hill-climb explores an
//! `O(ways^threads)` state space.

use icp_cmp_sim::simulator::IntervalReport;
use icp_cmp_sim::umon::UtilityMonitor;

use crate::lookahead::lookahead_allocate;
use crate::policy::{proportional_allocation, PartitionDecision, Partitioner};

/// How the OS level assigns way budgets to applications.
#[derive(Clone, Debug, PartialEq)]
pub enum BudgetPolicy {
    /// Budgets fixed at construction (the default; the paper treats the
    /// inter-application split as the OS's business).
    Static,
    /// Budgets re-proportioned each interval to the applications'
    /// critical-path (max-thread) CPIs, with a floor of one way per thread.
    CriticalCpiProportional,
    /// Budgets chosen each interval by greedy lookahead
    /// ([`lookahead_allocate`]) over merged per-cluster UMON hit curves
    /// (member curves summed — the slices observe disjoint address
    /// subsets, so the sum is the cluster's aggregate utility), with a
    /// floor of one way per thread. Requires a UMON; until the first
    /// profile arrives the budgets stay as constructed.
    UmonLookahead,
}

/// Two-level partitioner: OS budgets across applications, an inner policy
/// within each.
///
/// # Examples
///
/// ```
/// use icp_core::{HierarchicalPolicy, ModelBasedPolicy, PartitionDecision, Partitioner};
///
/// let mut policy = HierarchicalPolicy::new(
///     vec![vec![0, 1], vec![2, 3]], // two 2-thread applications
///     vec![40, 24],                 // the OS budget split of 64 ways
///     vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
/// );
/// match policy.initial(4, 64) {
///     PartitionDecision::Partition(w) => assert_eq!(w[0] + w[1], 40),
///     other => panic!("{other:?}"),
/// }
/// ```
pub struct HierarchicalPolicy {
    /// `groups[a]` = global thread ids belonging to application `a`.
    groups: Vec<Vec<usize>>,
    /// Current OS-assigned way budget per application.
    budgets: Vec<u32>,
    budget_policy: BudgetPolicy,
    inner: Vec<Box<dyn Partitioner + Send>>,
    /// Merged per-cluster cumulative hit curves from the last UMON
    /// observation (only maintained under [`BudgetPolicy::UmonLookahead`]).
    cluster_curves: Vec<Vec<u64>>,
    /// Set by [`HierarchicalPolicy::clustered_lookahead`]: groups/budgets/
    /// inner policies are materialised lazily at `initial`, when the
    /// thread count is known.
    pending_clusters: Option<usize>,
}

impl HierarchicalPolicy {
    /// Creates a hierarchical policy with static `budgets` (must sum to the
    /// L2 way count — checked when first applied) and one inner policy per
    /// group.
    ///
    /// # Panics
    /// Panics if the group/budget/policy counts disagree, a group is empty,
    /// a budget is smaller than its group (each thread needs ≥ 1 way), or
    /// the groups overlap.
    pub fn new(
        groups: Vec<Vec<usize>>,
        budgets: Vec<u32>,
        inner: Vec<Box<dyn Partitioner + Send>>,
    ) -> Self {
        assert_eq!(groups.len(), budgets.len(), "one budget per application");
        assert_eq!(groups.len(), inner.len(), "one inner policy per application");
        assert!(!groups.is_empty(), "need at least one application");
        let mut seen = std::collections::BTreeSet::new();
        for (g, b) in groups.iter().zip(&budgets) {
            assert!(!g.is_empty(), "empty application group");
            assert!(
                *b >= g.len() as u32,
                "budget {b} smaller than group of {} threads",
                g.len()
            );
            for t in g {
                assert!(seen.insert(*t), "thread {t} appears in two applications");
            }
        }
        HierarchicalPolicy {
            groups,
            budgets,
            budget_policy: BudgetPolicy::Static,
            inner,
            cluster_curves: Vec::new(),
            pending_clusters: None,
        }
    }

    /// The hierarchical *lookahead* configuration (LFOC-style
    /// cluster-then-partition): threads are split into `clusters`
    /// contiguous near-equal clusters at first use, inter-cluster capacity
    /// is assigned by greedy lookahead over merged per-cluster UMON curves
    /// ([`BudgetPolicy::UmonLookahead`]), and the paper's critical-path
    /// CPI-proportional policy runs within each cluster.
    ///
    /// Groups, budgets and inner policies are materialised lazily at
    /// [`Partitioner::initial`], when the thread and way counts are known —
    /// so one constructor serves any core count.
    ///
    /// # Panics
    /// Panics (at `initial`) if `clusters` is zero or exceeds the thread
    /// count.
    pub fn clustered_lookahead(clusters: usize) -> Self {
        HierarchicalPolicy {
            groups: Vec::new(),
            budgets: Vec::new(),
            budget_policy: BudgetPolicy::UmonLookahead,
            inner: Vec::new(),
            cluster_curves: Vec::new(),
            pending_clusters: Some(clusters),
        }
    }

    /// Materialises the deferred [`HierarchicalPolicy::clustered_lookahead`]
    /// topology once the thread and way counts are known.
    fn materialise(&mut self, threads: usize, total_ways: u32) {
        let Some(clusters) = self.pending_clusters.take() else { return };
        assert!(clusters > 0, "need at least one cluster");
        assert!(clusters <= threads, "more clusters than threads");
        let sizes = icp_cmp_sim::l2::equal_split(threads as u32, clusters);
        let mut next = 0usize;
        self.groups = sizes
            .iter()
            .map(|&n| {
                let g: Vec<usize> = (next..next + n as usize).collect();
                next += n as usize;
                g
            })
            .collect();
        self.budgets = icp_cmp_sim::l2::equal_split(total_ways, clusters);
        self.inner = (0..clusters)
            .map(|_| {
                Box::new(crate::CpiProportionalPolicy::new()) as Box<dyn Partitioner + Send>
            })
            .collect();
    }

    /// Enables dynamic OS-level budget re-balancing.
    pub fn with_budget_policy(mut self, policy: BudgetPolicy) -> Self {
        self.budget_policy = policy;
        self
    }

    /// The current per-application budgets.
    pub fn budgets(&self) -> &[u32] {
        &self.budgets
    }

    /// The thread grouping.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Recomputes budgets per [`BudgetPolicy`].
    fn rebalance(&mut self, report: &IntervalReport, total_ways: u32) {
        // Floor: every application keeps one way per thread.
        let floors: Vec<u32> = self.groups.iter().map(|g| g.len() as u32).collect();
        let reserved: u32 = floors.iter().sum();
        match self.budget_policy {
            BudgetPolicy::Static => {}
            BudgetPolicy::CriticalCpiProportional => {
                // Each application's weight is its critical-path CPI this
                // interval (idle threads excluded).
                let weights: Vec<f64> = self
                    .groups
                    .iter()
                    .map(|g| {
                        g.iter()
                            .map(|&t| report.threads[t].cpi)
                            .fold(0.0_f64, f64::max)
                    })
                    .collect();
                assert!(total_ways >= reserved, "fewer ways than threads");
                let alloc = proportional_allocation(&weights, total_ways - reserved, 0);
                self.budgets = alloc.iter().zip(&floors).map(|(a, f)| a + f).collect();
            }
            BudgetPolicy::UmonLookahead => {
                // Greedy lookahead over the merged cluster curves; keep the
                // constructed budgets until the first UMON profile lands.
                if self.cluster_curves.len() == self.groups.len() {
                    assert!(total_ways >= reserved, "fewer ways than threads");
                    self.budgets =
                        lookahead_allocate(&self.cluster_curves, total_ways, &floors);
                }
            }
        }
    }

    /// Assembles the global partition from per-application decisions.
    fn assemble(&mut self, report: Option<&IntervalReport>, threads: usize) -> Vec<u32> {
        let mut ways = vec![0u32; threads];
        for ((group, budget), policy) in
            self.groups.iter().zip(&self.budgets).zip(&mut self.inner)
        {
            let decision = match report {
                None => policy.initial(group.len(), *budget),
                Some(r) => {
                    let sub = IntervalReport {
                        index: r.index,
                        threads: group.iter().map(|&t| r.threads[t]).collect(),
                        finished: r.finished,
                        wall_cycles: r.wall_cycles,
                    };
                    policy.repartition(&sub, *budget)
                }
            };
            let sub_ways = match decision {
                PartitionDecision::Partition(w) => w,
                // Inner policies asking for Keep/Unpartitioned get an equal
                // split of their budget: group-level LRU cannot be expressed
                // within a global way partition.
                _ => icp_cmp_sim::l2::equal_split(*budget, group.len()),
            };
            debug_assert_eq!(sub_ways.iter().sum::<u32>(), *budget);
            for (t, w) in group.iter().zip(sub_ways) {
                ways[*t] = w;
            }
        }
        ways
    }
}

impl Partitioner for HierarchicalPolicy {
    fn name(&self) -> &'static str {
        if self.budget_policy == BudgetPolicy::UmonLookahead {
            "hier-lookahead"
        } else {
            "hierarchical"
        }
    }

    fn initial(&mut self, threads: usize, total_ways: u32) -> PartitionDecision {
        self.materialise(threads, total_ways);
        let covered: usize = self.groups.iter().map(|g| g.len()).sum();
        assert_eq!(covered, threads, "groups must cover every thread exactly once");
        assert_eq!(
            self.budgets.iter().sum::<u32>(),
            total_ways,
            "application budgets must sum to the way count"
        );
        PartitionDecision::Partition(self.assemble(None, threads))
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        self.rebalance(report, total_ways);
        PartitionDecision::Partition(self.assemble(Some(report), report.threads.len()))
    }

    fn wants_umon(&self) -> bool {
        self.budget_policy == BudgetPolicy::UmonLookahead
            || self.inner.iter().any(|p| p.wants_umon())
    }

    fn observe_umon(&mut self, umon: &UtilityMonitor) {
        if self.budget_policy == BudgetPolicy::UmonLookahead && !self.groups.is_empty() {
            // Merge the member threads' cumulative hit curves into one
            // aggregate utility curve per cluster.
            self.cluster_curves = self
                .groups
                .iter()
                .map(|g| {
                    let mut curve = vec![0u64; umon.ways() + 1];
                    for &t in g {
                        let mut acc = 0u64;
                        for (w, &h) in umon.way_histogram(t).iter().enumerate() {
                            acc += h;
                            curve[w + 1] += acc;
                        }
                    }
                    curve
                })
                .collect();
        }
        // The UMON profiles global thread ids; inner policies that want it
        // see the whole monitor (their repartition only reads their own
        // threads' curves is not guaranteed, so this is a conservative
        // broadcast).
        for p in &mut self.inner {
            if p.wants_umon() {
                p.observe_umon(umon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fake_report;
    use crate::ModelBasedPolicy;

    fn two_apps() -> HierarchicalPolicy {
        HierarchicalPolicy::new(
            vec![vec![0, 1], vec![2, 3]],
            vec![40, 24],
            vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
        )
    }

    #[test]
    fn initial_respects_budgets() {
        let mut p = two_apps();
        let PartitionDecision::Partition(w) = p.initial(4, 64) else { panic!() };
        assert_eq!(w[0] + w[1], 40);
        assert_eq!(w[2] + w[3], 24);
        assert_eq!(w, vec![20, 20, 12, 12]); // equal within budgets
    }

    #[test]
    fn repartition_keeps_budget_boundaries() {
        let mut p = two_apps();
        let _ = p.initial(4, 64);
        // App A: thread 0 much slower; app B: thread 3 slower.
        for i in 0..5 {
            let r = fake_report(i, &[9.0, 2.0, 3.0, 6.0], &[20, 20, 12, 12]);
            let PartitionDecision::Partition(w) = p.repartition(&r, 64) else { panic!() };
            assert_eq!(w[0] + w[1], 40, "app A budget violated: {w:?}");
            assert_eq!(w[2] + w[3], 24, "app B budget violated: {w:?}");
            assert!(w.iter().all(|&x| x >= 1));
        }
        // The slower thread of each app ends up with its app's bigger share.
        let r = fake_report(9, &[9.0, 2.0, 3.0, 6.0], &[20, 20, 12, 12]);
        let PartitionDecision::Partition(w) = p.repartition(&r, 64) else { panic!() };
        assert!(w[0] > w[1], "{w:?}");
        assert!(w[3] > w[2], "{w:?}");
    }

    #[test]
    fn dynamic_budget_follows_critical_app() {
        let mut p = two_apps().with_budget_policy(BudgetPolicy::CriticalCpiProportional);
        let _ = p.initial(4, 64);
        // App B's critical thread is far slower than anything in app A.
        let r = fake_report(0, &[2.0, 2.0, 2.0, 10.0], &[20, 20, 12, 12]);
        let _ = p.repartition(&r, 64);
        assert!(p.budgets()[1] > p.budgets()[0], "budgets {:?}", p.budgets());
        assert_eq!(p.budgets().iter().sum::<u32>(), 64);
    }

    #[test]
    #[should_panic(expected = "two applications")]
    fn overlapping_groups_rejected() {
        HierarchicalPolicy::new(
            vec![vec![0, 1], vec![1, 2]],
            vec![32, 32],
            vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
        );
    }

    #[test]
    #[should_panic(expected = "budgets must sum")]
    fn bad_budget_sum_rejected() {
        let mut p = HierarchicalPolicy::new(
            vec![vec![0, 1], vec![2, 3]],
            vec![40, 10],
            vec![Box::new(ModelBasedPolicy::new()), Box::new(ModelBasedPolicy::new())],
        );
        let _ = p.initial(4, 64);
    }

    #[test]
    fn clustered_lookahead_materialises_on_first_use() {
        let mut p = HierarchicalPolicy::clustered_lookahead(2);
        assert_eq!(p.name(), "hier-lookahead");
        assert!(p.wants_umon());
        let PartitionDecision::Partition(w) = p.initial(8, 64) else { panic!() };
        assert_eq!(p.groups(), &[vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        assert_eq!(p.budgets(), &[32, 32]);
        assert_eq!(w.iter().sum::<u32>(), 64);
    }

    #[test]
    fn lookahead_budgets_follow_cluster_utility() {
        use icp_cmp_sim::config::CacheConfig;

        let mut p = HierarchicalPolicy::clustered_lookahead(2);
        let _ = p.initial(4, 16);
        // 1 set x 16 ways, 4 threads, sample every set. Cluster 0's
        // threads reuse a working set (utility grows with ways); cluster
        // 1's threads stream (no reuse, no utility).
        let cfg = CacheConfig::new(16 * 64, 16, 64);
        let mut m = UtilityMonitor::new(&cfg, 4, 1);
        for _ in 0..50 {
            for i in 0..6u64 {
                m.observe(0, i * 64);
                m.observe(1, (100 + i) * 64);
            }
        }
        for i in 0..300u64 {
            m.observe(2, (1000 + i) * 64);
            m.observe(3, (10_000 + i) * 64);
        }
        p.observe_umon(&m);
        let r = fake_report(0, &[3.0, 3.0, 3.0, 3.0], &[4, 4, 4, 4]);
        let PartitionDecision::Partition(w) = p.repartition(&r, 16) else { panic!() };
        assert_eq!(w.iter().sum::<u32>(), 16);
        assert!(
            p.budgets()[0] > p.budgets()[1],
            "high-utility cluster should win capacity: {:?}",
            p.budgets()
        );
        // Floors hold: the streaming cluster keeps a way per thread.
        assert!(p.budgets()[1] >= 2);
    }

    #[test]
    fn lookahead_without_profile_keeps_constructed_budgets() {
        let mut p = HierarchicalPolicy::clustered_lookahead(2);
        let _ = p.initial(4, 16);
        let r = fake_report(0, &[5.0, 1.0, 1.0, 1.0], &[4, 4, 4, 4]);
        let _ = p.repartition(&r, 16);
        assert_eq!(p.budgets(), &[8, 8]);
    }

    #[test]
    #[should_panic(expected = "more clusters than threads")]
    fn clustered_lookahead_rejects_too_many_clusters() {
        let mut p = HierarchicalPolicy::clustered_lookahead(8);
        let _ = p.initial(4, 64);
    }

    #[test]
    #[should_panic(expected = "cover every thread")]
    fn incomplete_groups_rejected() {
        let mut p = HierarchicalPolicy::new(
            vec![vec![0, 1]],
            vec![64],
            vec![Box::new(ModelBasedPolicy::new())],
        );
        let _ = p.initial(4, 64);
    }
}
