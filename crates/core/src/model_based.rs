//! The dynamic model-based partitioner (paper §VI-B, Figure 13).
//!
//! Operation:
//!
//! 1. Interval 1 runs with equal partitions (the runtime's default start).
//! 2. The first two interval boundaries use CPI-proportional partitioning
//!    (§VI-A) — this both makes a reasonable early decision and collects
//!    distinct `(ways, CPI)` data points for the models.
//! 3. From then on, each boundary fits per-thread CPI-vs-ways splines
//!    ([`ThreadCpiModel`]) and runs the hill-climb of Figure 13:
//!    repeatedly move one way from the lowest-predicted-CPI thread to the
//!    highest-predicted-CPI thread, re-evaluating the models after each
//!    move; when the *identity* of the highest-CPI thread changes, undo the
//!    last move and stop. Minimising the predicted maximum CPI is
//!    minimising the predicted critical path.
//!
//! Threads whose model cannot predict yet (fewer than two distinct way
//! counts observed) fall back to their last observed CPI as a constant
//! model, and the whole decision falls back to CPI-proportional while *any*
//! thread is still unmodelled.

use icp_cmp_sim::simulator::IntervalReport;

use crate::cpi_prop::CpiProportionalPolicy;
use crate::model::{ModelKind, ThreadCpiModel};
use crate::policy::{PartitionDecision, Partitioner};

/// The §VI-B curve-fitting dynamic partitioner.
///
/// # Examples
///
/// ```
/// use icp_core::{IntraAppRuntime, ModelBasedPolicy};
/// use icp_cmp_sim::stream::ReplayStream;
/// use icp_cmp_sim::{Simulator, SystemConfig, ThreadEvent};
///
/// let mut cfg = SystemConfig::scaled_down();
/// cfg.cores = 2;
/// cfg.interval_instructions = 500;
/// let walk = |stride: u64| -> ReplayStream {
///     ReplayStream::new((0..500).map(|i| ThreadEvent::access(2, i * stride * 64)).collect())
/// };
/// let mut sim = Simulator::new(cfg, vec![Box::new(walk(1)), Box::new(walk(3))]);
/// let mut rt = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
/// let outcome = rt.execute(&mut sim);
/// assert!(outcome.intervals() > 1);
/// ```
#[derive(Clone, Debug)]
pub struct ModelBasedPolicy {
    models: Vec<ThreadCpiModel>,
    bootstrap: CpiProportionalPolicy,
    min_ways: u32,
    intervals_seen: usize,
    /// Safety cap on hill-climb iterations (see [`Self::hill_climb`]).
    max_steps: usize,
    /// Strict Figure 13 termination: revert-and-exit on *any* change of the
    /// critical thread, even when the move lowered the predicted maximum.
    /// Kept for the `strict_figure13` ablation; default off.
    strict_termination: bool,
    /// Curve family for the per-thread models (ablation knob).
    model_kind: ModelKind,
    /// Phase-change detection: when the observed CPI at the current
    /// allocation deviates from the model's prediction by more than this
    /// relative factor, the thread's model is discarded and re-learned
    /// (None = disabled). Extension motivated by §IV-A1's phase behaviour:
    /// EWMA blending adapts within a few intervals, an explicit reset
    /// adapts immediately.
    phase_reset_threshold: Option<f64>,
}

impl ModelBasedPolicy {
    /// Creates the policy with a 1-way per-thread floor.
    pub fn new() -> Self {
        ModelBasedPolicy {
            models: Vec::new(),
            bootstrap: CpiProportionalPolicy::new(),
            min_ways: 1,
            intervals_seen: 0,
            max_steps: 4096,
            strict_termination: false,
            model_kind: ModelKind::Spline,
            phase_reset_threshold: None,
        }
    }

    /// Enables phase-change detection: a thread whose observed CPI differs
    /// from its model's prediction by more than `threshold` (relative,
    /// e.g. 0.5 = 50%) has its model reset and re-learned.
    pub fn with_phase_detection(threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        ModelBasedPolicy { phase_reset_threshold: Some(threshold), ..Self::new() }
    }

    /// Selects the curve family used for the runtime models (the paper
    /// uses cubic splines; see [`ModelKind`]).
    pub fn with_model_kind(kind: ModelKind) -> Self {
        ModelBasedPolicy { model_kind: kind, ..Self::new() }
    }

    /// Overrides the per-thread way floor.
    pub fn with_min_ways(min_ways: u32) -> Self {
        ModelBasedPolicy { min_ways, bootstrap: CpiProportionalPolicy::with_min_ways(min_ways), ..Self::new() }
    }

    /// Enables the strict Figure 13 termination rule (ablation; see the
    /// field documentation).
    pub fn with_strict_termination() -> Self {
        ModelBasedPolicy { strict_termination: true, ..Self::new() }
    }

    /// The learned per-thread models (for Figure 15 dumps and diagnostics).
    pub fn models(&self) -> &[ThreadCpiModel] {
        &self.models
    }

    /// Number of interval boundaries processed.
    pub fn intervals_seen(&self) -> usize {
        self.intervals_seen
    }

    /// Predicted CPI of thread `t` at `ways`, falling back to the last
    /// observation when the spline is not ready.
    fn predict(&self, t: usize, ways: u32, observed: f64) -> f64 {
        self.models[t].predict(ways).unwrap_or(observed)
    }

    /// The Figure 13 hill-climb. `start` is the allocation in force during
    /// the interval that just ended; `observed` its measured CPIs.
    fn hill_climb(&self, start: &[u32], observed: &[f64], total_ways: u32) -> Vec<u32> {
        let n = start.len();
        // The starting allocation normally sums to the budget, but a
        // caller may change the budget between intervals (the hierarchical
        // OS level does); rescale proportionally before climbing.
        let mut ways: Vec<u32> = if start.iter().sum::<u32>() == total_ways {
            start.to_vec()
        } else {
            crate::policy::proportional_allocation(
                &start.iter().map(|&w| w as f64).collect::<Vec<_>>(),
                total_ways,
                self.min_ways,
            )
        };
        let mut pred: Vec<f64> = (0..n).map(|t| self.predict(t, ways[t], observed[t])).collect();

        let argmax = |pred: &[f64]| -> usize {
            pred.iter()
                .enumerate()
                .max_by(|(i, a), (j, b)| a.partial_cmp(b).expect("finite").then(j.cmp(i)))
                .map(|(i, _)| i)
                .expect("threads exist")
        };

        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > self.max_steps {
                break;
            }
            let tmax = argmax(&pred);
            let current_max = pred[tmax];
            // Donor: the lowest-predicted-CPI thread that can still give a
            // way up (above the floor), excluding the receiver.
            let tmin = pred
                .iter()
                .enumerate()
                .filter(|&(t, _)| t != tmax && ways[t] > self.min_ways)
                .min_by(|(i, a), (j, b)| a.partial_cmp(b).expect("finite").then(i.cmp(j)))
                .map(|(t, _)| t);
            let Some(tmin) = tmin else {
                break; // nobody can donate
            };
            ways[tmax] += 1;
            ways[tmin] -= 1;
            pred[tmax] = self.predict(tmax, ways[tmax], observed[tmax]);
            pred[tmin] = self.predict(tmin, ways[tmin], observed[tmin]);
            let new_tmax = argmax(&pred);
            if new_tmax != tmax && (self.strict_termination || pred[new_tmax] >= current_max - 1e-9) {
                // Some other thread became critical *without* lowering the
                // predicted critical-path CPI: revert one step and stop
                // (Figure 13's termination rule). When the flip *does*
                // lower the max — e.g. a 1-way thread whose CPI curve is
                // steep — the move is kept and the climb continues with the
                // new critical thread; a strict reading of Figure 13 would
                // stop even then and can wedge the partition permanently
                // (see the `strict_figure13` ablation bench).
                ways[tmax] -= 1;
                ways[tmin] += 1;
                break;
            }
        }
        debug_assert_eq!(ways.iter().sum::<u32>(), total_ways);
        ways
    }
}

impl Default for ModelBasedPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for ModelBasedPolicy {
    fn name(&self) -> &'static str {
        "model-based"
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        let n = report.threads.len();
        if self.models.len() != n {
            self.models =
                vec![ThreadCpiModel::new().with_kind(self.model_kind); n];
        }
        // Feed the interval's (ways, CPI) observation into each model — but
        // not the very first interval: its CPIs are dominated by compulsory
        // (cold-cache) misses and would poison the models with pessimistic
        // knots (the paper likewise warms the caches before measuring,
        // §VII).
        if self.intervals_seen > 0 {
            for (t, ts) in report.threads.iter().enumerate() {
                if ts.counters.instructions == 0 {
                    continue;
                }
                // Phase-change detection: a large model-vs-reality gap at
                // the *current* allocation means the thread's behaviour
                // changed; stale knots at other allocations are now lies.
                if let Some(threshold) = self.phase_reset_threshold {
                    if let Some(pred) = self.models[t].predict(ts.ways) {
                        let rel = (ts.cpi - pred).abs() / pred.max(1e-9);
                        if rel > threshold {
                            self.models[t] =
                                ThreadCpiModel::new().with_kind(self.model_kind);
                        }
                    }
                }
                self.models[t].observe(ts.ways, ts.cpi);
            }
        }
        self.intervals_seen += 1;

        let all_modelled = self.models.iter().all(|m| m.distinct_points() >= 2);
        if self.intervals_seen <= 2 || !all_modelled {
            return self.bootstrap.repartition(report, total_ways);
        }

        let start: Vec<u32> = report.threads.iter().map(|t| t.ways).collect();
        let observed: Vec<f64> = report.threads.iter().map(|t| t.cpi).collect();
        PartitionDecision::Partition(self.hill_climb(&start, &observed, total_ways))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fake_report;

    /// Feeds a report and unwraps the partition decision.
    fn decide(p: &mut ModelBasedPolicy, idx: usize, cpis: &[f64], ways: &[u32], total: u32) -> Vec<u32> {
        match p.repartition(&fake_report(idx, cpis, ways), total) {
            PartitionDecision::Partition(w) => w,
            other => panic!("expected partition, got {other:?}"),
        }
    }

    #[test]
    fn bootstraps_with_cpi_proportional() {
        let mut p = ModelBasedPolicy::new();
        // First boundary: CPI-proportional, so the slow thread dominates.
        let w = decide(&mut p, 0, &[8.0, 2.0, 2.0, 2.0], &[16; 4], 64);
        assert!(w[0] > 30, "{w:?}");
        assert_eq!(w.iter().sum::<u32>(), 64);
    }

    #[test]
    fn switches_to_hill_climb_once_modelled() {
        let mut p = ModelBasedPolicy::new();
        // Interval 0: equal ways, thread 0 slow.
        let w1 = decide(&mut p, 0, &[8.0, 2.0, 2.0, 2.0], &[16; 4], 64);
        // Interval 1: ran with w1; thread 0 sped up a bit with more ways.
        let w2 = decide(&mut p, 1, &[6.0, 2.4, 2.4, 2.4], &w1, 64);
        // Interval 2: models now have 2+ distinct points per thread.
        let w3 = decide(&mut p, 2, &[5.0, 2.6, 2.6, 2.6], &w2, 64);
        assert!(p.models().iter().all(|m| m.distinct_points() >= 2));
        assert_eq!(w3.iter().sum::<u32>(), 64);
        // The critical thread keeps the lion's share.
        assert!(w3[0] >= w3[1] && w3[0] >= w3[2] && w3[0] >= w3[3], "{w3:?}");
    }

    #[test]
    fn hill_climb_stops_when_critical_thread_changes() {
        // Build models directly: thread 0 is slow but *sensitive* (CPI
        // drops fast with ways); thread 1 slightly fast and *insensitive*.
        let mut p = ModelBasedPolicy::new();
        p.models = vec![ThreadCpiModel::new(), ThreadCpiModel::new()];
        p.models[0].observe(4, 10.0);
        p.models[0].observe(8, 6.0);
        p.models[0].observe(12, 4.0);
        p.models[1].observe(4, 5.0);
        p.models[1].observe(8, 5.0);
        p.models[1].observe(12, 5.0);
        let ways = p.hill_climb(&[8, 8], &[6.0, 5.0], 16);
        assert_eq!(ways.iter().sum::<u32>(), 16);
        // Thread 0 receives ways until its predicted CPI dips to thread
        // 1's flat 5.0 (at ~10 ways), then one-step revert.
        assert!(ways[0] > 8 && ways[0] <= 12, "{ways:?}");
    }

    #[test]
    fn hill_climb_respects_floor() {
        let mut p = ModelBasedPolicy::with_min_ways(2);
        p.models = vec![ThreadCpiModel::new(), ThreadCpiModel::new()];
        // Thread 0's CPI never stops improving; thread 1 is flat and fast:
        // the climb drains thread 1 down to the floor, then stops.
        p.models[0].observe(4, 40.0);
        p.models[0].observe(16, 10.0);
        p.models[1].observe(4, 2.0);
        p.models[1].observe(16, 2.0);
        let ways = p.hill_climb(&[8, 8], &[30.0, 2.0], 16);
        assert_eq!(ways, vec![14, 2]);
    }

    #[test]
    fn hill_climb_keeps_total_constant() {
        let mut p = ModelBasedPolicy::new();
        p.models = (0..4)
            .map(|t| {
                let mut m = ThreadCpiModel::new();
                m.observe(8, 4.0 + t as f64);
                m.observe(24, 3.0 + t as f64 * 0.5);
                m
            })
            .collect();
        let ways = p.hill_climb(&[16; 4], &[4.0, 5.0, 6.0, 7.0], 64);
        assert_eq!(ways.iter().sum::<u32>(), 64);
        assert!(ways.iter().all(|&w| w >= 1));
    }

    #[test]
    fn equal_flat_models_change_nothing_much() {
        // All threads identical and insensitive: the first move already
        // fails to change the argmax? No — with flat models the receiver
        // stays argmax, so the climb drains donors to the floor. Verify the
        // *observed* guard: identical CPIs mean argmax is thread 0 and the
        // climb moves ways there; this documents that behaviour.
        let mut p = ModelBasedPolicy::new();
        p.models = (0..2)
            .map(|_| {
                let mut m = ThreadCpiModel::new();
                m.observe(8, 3.0);
                m.observe(24, 3.0);
                m
            })
            .collect();
        let ways = p.hill_climb(&[16, 16], &[3.0, 3.0], 32);
        assert_eq!(ways.iter().sum::<u32>(), 32);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ModelBasedPolicy::new().name(), "model-based");
    }

    #[test]
    fn phase_detection_resets_a_lying_model() {
        let mut p = ModelBasedPolicy::with_phase_detection(0.5);
        // Boundary 0 is warm-up; boundaries 1-2 teach the model that 16
        // ways ≈ CPI 4.
        let _ = p.repartition(&fake_report(0, &[4.0, 4.0], &[8, 8]), 16);
        let _ = p.repartition(&fake_report(1, &[4.0, 4.0], &[8, 8]), 16);
        let _ = p.repartition(&fake_report(2, &[4.1, 4.0], &[9, 7]), 16);
        let knots_before = p.models()[0].distinct_points();
        assert!(knots_before >= 2);
        // Phase change: thread 0's CPI at the same allocation doubles.
        let _ = p.repartition(&fake_report(3, &[9.0, 4.0], &[9, 7]), 16);
        // The model was reset and now holds only the fresh observation.
        assert_eq!(p.models()[0].distinct_points(), 1);
        // Thread 1, unchanged, keeps its history.
        assert!(p.models()[1].distinct_points() >= 2);
    }

    #[test]
    fn phase_detection_tolerates_small_drift() {
        let mut p = ModelBasedPolicy::with_phase_detection(0.5);
        let _ = p.repartition(&fake_report(0, &[4.0, 4.0], &[8, 8]), 16);
        let _ = p.repartition(&fake_report(1, &[4.0, 4.0], &[8, 8]), 16);
        let _ = p.repartition(&fake_report(2, &[4.1, 4.0], &[9, 7]), 16);
        let knots = p.models()[0].distinct_points();
        // 20% drift: below the 50% threshold, model kept.
        let _ = p.repartition(&fake_report(3, &[4.9, 4.0], &[9, 7]), 16);
        assert!(p.models()[0].distinct_points() >= knots);
    }
}
