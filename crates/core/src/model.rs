//! Runtime per-thread CPI models (paper §VI-B, Figure 15).
//!
//! The model-based partitioner learns, for each thread, how CPI depends on
//! the number of allocated cache ways, purely from observations: at every
//! interval boundary it records the `(ways, CPI)` pair the interval
//! produced, and fits a natural cubic spline through the accumulated
//! points. Observations at the same way count are blended with an
//! exponentially weighted moving average, and knots that have not been
//! refreshed for a configurable number of intervals are dropped, so the
//! model tracks phase changes ("these models are updated after each
//! execution interval … dynamic variations in thread behavior are taken
//! into account") instead of trusting stale evidence — e.g. a cold-cache
//! CPI measured at some allocation long ago.

use std::collections::BTreeMap;

use icp_numeric::{CubicSpline, Pchip};

/// Floor for predicted CPI: a thread can never be faster than 1 cycle per
/// instruction in the simulated in-order core, and clamping keeps spline
/// wiggle from producing nonsense.
const CPI_FLOOR: f64 = 1.0;

/// Default number of observations after which an un-refreshed knot is
/// discarded.
const DEFAULT_MAX_AGE: u64 = 12;

#[derive(Clone, Copy, Debug)]
struct Knot {
    cpi: f64,
    last_update: u64,
}

/// The curve family used to interpolate the observed `(ways, CPI)` points.
///
/// The paper uses cubic splines but notes "the choice of the curve fitting
/// algorithm used is independent of the partitioning scheme" (§VI-B); the
/// `ablation_model` bench compares these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ModelKind {
    /// Natural cubic spline (the paper's choice).
    #[default]
    Spline,
    /// Monotone piecewise-cubic Hermite (no overshoot).
    Pchip,
    /// Ordinary least-squares line.
    Linear,
}

#[derive(Clone, Debug)]
enum Fitted {
    None,
    Spline(CubicSpline),
    Pchip(Pchip),
    Linear { slope: f64, intercept: f64 },
}

/// A runtime-learned CPI-vs-ways curve for one thread.
///
/// # Examples
///
/// ```
/// use icp_core::ThreadCpiModel;
///
/// let mut m = ThreadCpiModel::new();
/// m.observe(16, 8.0);
/// m.observe(32, 5.0);
/// let predicted = m.predict(24).unwrap();
/// assert!(predicted > 5.0 && predicted < 8.0);
/// ```
#[derive(Clone, Debug)]
pub struct ThreadCpiModel {
    /// EWMA of observed CPI keyed by way allocation.
    points: BTreeMap<u32, Knot>,
    /// EWMA weight of a new observation.
    alpha: f64,
    /// Knots older than this many observations are pruned.
    max_age: u64,
    /// Observation counter (the model's notion of time).
    now: u64,
    /// Curve family to fit.
    kind: ModelKind,
    /// Fitted curve; rebuilt after each observation once two or more
    /// distinct way counts are live.
    fitted: Fitted,
}

impl ThreadCpiModel {
    /// Creates an empty model with EWMA weight 0.5 (new evidence counts as
    /// much as all history — responsive to phase changes without being
    /// noise-driven) and the default knot age limit.
    pub fn new() -> Self {
        Self::with_alpha(0.5)
    }

    /// Creates an empty model with a custom EWMA weight in `(0, 1]`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        ThreadCpiModel {
            points: BTreeMap::new(),
            alpha,
            max_age: DEFAULT_MAX_AGE,
            now: 0,
            kind: ModelKind::Spline,
            fitted: Fitted::None,
        }
    }

    /// Overrides the knot age limit (in observations). `u64::MAX`
    /// effectively disables pruning.
    pub fn with_max_age(mut self, max_age: u64) -> Self {
        assert!(max_age > 0);
        self.max_age = max_age;
        self
    }

    /// Selects the curve family (ablation knob; default cubic spline).
    pub fn with_kind(mut self, kind: ModelKind) -> Self {
        self.kind = kind;
        self.refit();
        self
    }

    /// Records that the thread ran at `cpi` with `ways` allocated ways.
    /// Non-positive or non-finite CPIs (idle intervals) are ignored —
    /// including for aging, so barrier-heavy threads don't forget faster.
    pub fn observe(&mut self, ways: u32, cpi: f64) {
        if !cpi.is_finite() || cpi <= 0.0 {
            return;
        }
        self.now += 1;
        let now = self.now;
        self.points
            .entry(ways)
            .and_modify(|k| {
                k.cpi = self.alpha * cpi + (1.0 - self.alpha) * k.cpi;
                k.last_update = now;
            })
            .or_insert(Knot { cpi, last_update: now });
        // Drop knots that have gone stale — their evidence predates the
        // thread's current behaviour.
        let horizon = now.saturating_sub(self.max_age);
        self.points.retain(|_, k| k.last_update > horizon || k.last_update == now);
        self.refit();
    }

    /// Number of distinct way counts currently live.
    pub fn distinct_points(&self) -> usize {
        self.points.len()
    }

    /// The model's knots as `(ways, ewma_cpi)` pairs, ascending in ways.
    pub fn knots(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.points.iter().map(|(&w, k)| (w, k.cpi))
    }

    /// Predicted CPI at `ways` ways, or `None` until two distinct way
    /// counts are live. Predictions are clamped to at least [`CPI_FLOOR`].
    pub fn predict(&self, ways: u32) -> Option<f64> {
        let x = ways as f64;
        let raw = match &self.fitted {
            Fitted::None => return None,
            Fitted::Spline(s) => s.eval(x),
            Fitted::Pchip(p) => p.eval(x),
            Fitted::Linear { slope, intercept } => slope * x + intercept,
        };
        Some(raw.max(CPI_FLOOR))
    }

    /// Samples the fitted curve at every way count in `1..=max_ways`
    /// (used to dump the paper's Figure 15 models). Empty until the model
    /// is fitted.
    pub fn curve(&self, max_ways: u32) -> Vec<(u32, f64)> {
        if matches!(self.fitted, Fitted::None) {
            return Vec::new();
        }
        (1..=max_ways)
            .map(|w| (w, self.predict(w).expect("curve fitted")))
            .collect()
    }

    fn refit(&mut self) {
        if self.points.len() < 2 {
            self.fitted = Fitted::None;
            return;
        }
        let xs: Vec<f64> = self.points.keys().map(|&w| w as f64).collect();
        let ys: Vec<f64> = self.points.values().map(|k| k.cpi).collect();
        self.fitted = match self.kind {
            ModelKind::Spline => Fitted::Spline(
                CubicSpline::fit(&xs, &ys)
                    .expect("BTreeMap keys are strictly increasing and values finite"),
            ),
            ModelKind::Pchip => Fitted::Pchip(
                Pchip::fit(&xs, &ys)
                    .expect("BTreeMap keys are strictly increasing and values finite"),
            ),
            ModelKind::Linear => {
                let fit = icp_numeric::stats::linear_fit(&xs, &ys)
                    .expect("two+ distinct x values");
                Fitted::Linear { slope: fit.slope, intercept: fit.intercept }
            }
        };
    }
}

impl Default for ThreadCpiModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prediction_until_two_points() {
        let mut m = ThreadCpiModel::new();
        assert!(m.predict(8).is_none());
        m.observe(16, 5.0);
        assert!(m.predict(8).is_none());
        m.observe(32, 3.0);
        assert!(m.predict(8).is_some());
        assert_eq!(m.distinct_points(), 2);
    }

    #[test]
    fn interpolates_observations() {
        let mut m = ThreadCpiModel::new();
        m.observe(8, 9.0);
        m.observe(16, 6.0);
        m.observe(32, 4.0);
        assert!((m.predict(8).unwrap() - 9.0).abs() < 1e-9);
        assert!((m.predict(16).unwrap() - 6.0).abs() < 1e-9);
        // Between knots: between the adjacent values for this convex data.
        let mid = m.predict(24).unwrap();
        assert!(mid > 3.5 && mid < 6.5, "mid {mid}");
    }

    #[test]
    fn ewma_blends_repeated_observations() {
        let mut m = ThreadCpiModel::with_alpha(0.5);
        m.observe(16, 8.0);
        m.observe(16, 4.0); // EWMA: 0.5*4 + 0.5*8 = 6
        m.observe(32, 3.0);
        assert!((m.predict(16).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ignores_bogus_cpi() {
        let mut m = ThreadCpiModel::new();
        m.observe(16, 0.0);
        m.observe(16, f64::NAN);
        m.observe(16, -3.0);
        assert_eq!(m.distinct_points(), 0);
    }

    #[test]
    fn prediction_clamped_to_floor() {
        let mut m = ThreadCpiModel::new();
        // Steeply decreasing: linear extrapolation beyond 32 would go
        // negative without the clamp.
        m.observe(8, 20.0);
        m.observe(16, 10.0);
        m.observe(32, 2.0);
        let p = m.predict(64).unwrap();
        assert!(p >= 1.0, "clamped prediction {p}");
    }

    #[test]
    fn curve_covers_all_ways() {
        let mut m = ThreadCpiModel::new();
        assert!(m.curve(8).is_empty());
        m.observe(2, 9.0);
        m.observe(6, 5.0);
        let c = m.curve(8);
        assert_eq!(c.len(), 8);
        assert_eq!(c[0].0, 1);
        assert_eq!(c[7].0, 8);
        assert!(c.iter().all(|(_, v)| v.is_finite() && *v >= 1.0));
    }

    #[test]
    fn adapts_to_phase_change() {
        let mut m = ThreadCpiModel::with_alpha(0.5);
        m.observe(16, 10.0);
        m.observe(32, 8.0);
        // New phase: the thread becomes much faster at 16 ways. Repeated
        // observations pull the model toward the new level.
        for _ in 0..6 {
            m.observe(16, 2.0);
        }
        assert!(m.predict(16).unwrap() < 2.5);
    }

    #[test]
    fn stale_knots_are_pruned() {
        let mut m = ThreadCpiModel::new().with_max_age(4);
        // A cold-start observation at 20 ways claiming a terrible CPI.
        m.observe(20, 30.0);
        // Then the thread settles at 28 ways and is only observed there.
        for _ in 0..6 {
            m.observe(28, 4.0);
        }
        // The stale knot must be gone: only the live allocation remains.
        let knots: Vec<u32> = m.knots().map(|(w, _)| w).collect();
        assert_eq!(knots, vec![28]);
        assert!(m.predict(20).is_none(), "model should admit it no longer knows");
    }

    #[test]
    fn fresh_knots_survive_pruning() {
        let mut m = ThreadCpiModel::new().with_max_age(4);
        for i in 0..10 {
            m.observe(16 + (i % 2), 5.0); // alternate 16/17: both stay fresh
        }
        assert_eq!(m.distinct_points(), 2);
    }
}
