//! The greedy lookahead capacity allocator (Qureshi & Patt, MICRO'06).
//!
//! Given per-entity cumulative utility curves (`curves[e][w]` = hits entity
//! `e` would get with `w` ways), [`lookahead_allocate`] starts every entity
//! at its floor and repeatedly grants the entity/block-size pair with the
//! maximum *marginal* utility (extra hits per extra way) until the budget
//! is spent. Considering multi-way blocks lets it step over utility
//! plateaus — the property that distinguishes lookahead from plain greedy —
//! where a hill-climb explores an `O(ways^threads)` state space one move at
//! a time.
//!
//! The textbook formulation rescans every block size for every entity each
//! round, `O(entities·budget²)` per decision. This implementation gets the
//! identical allocation in `O(entities·budget)`: the best marginal block of
//! an entity is always the first segment of the *upper concave envelope* of
//! its curve, so each entity's envelope is precomputed once and each round
//! just compares the entities' current segment slopes. Slopes are compared
//! exactly as integer rationals (cross-multiplication) — no floating point
//! on this path, and ties break bit-reproducibly.
//!
//! The "entities" are deliberately abstract: `icp-baselines`'
//! `UcpThroughputPolicy` allocates among threads (one curve per thread,
//! 1-way floors), and [`crate::HierarchicalPolicy`]'s lookahead budget
//! policy allocates among *clusters* (merged per-cluster curves, one-way-
//! per-member floors) — LFOC's cluster-then-partition structure.

use icp_hot_path::deterministic;

/// Greedy lookahead allocation of `total_ways` among `curves.len()`
/// entities, each starting at its floor from `floors`.
///
/// Ties are broken deterministically: higher marginal utility first, then
/// the smaller block, then the lower entity index. The returned quotas sum
/// to exactly `total_ways`.
///
/// Curves must be non-decreasing (they are *cumulative* utility); they may
/// be shorter than the budget, in which case the last point extends flat
/// (granting ways past the curve's end adds no utility).
///
/// # Panics
/// Panics if `curves` is empty, the floor count differs from the curve
/// count, or the floors exceed the budget.
#[deterministic]
pub fn lookahead_allocate(curves: &[Vec<u64>], total_ways: u32, floors: &[u32]) -> Vec<u32> {
    assert!(!curves.is_empty(), "lookahead needs at least one entity");
    assert_eq!(curves.len(), floors.len(), "one floor per entity");
    let reserved: u32 = floors.iter().sum();
    assert!(
        reserved <= total_ways,
        "floors ({reserved}) exceed the way budget ({total_ways})"
    );
    let n = curves.len();
    let mut alloc = floors.to_vec();
    let mut remaining = total_ways - reserved;
    if remaining == 0 {
        return alloc;
    }
    let value = |e: usize, w: u32| -> u64 {
        let c = &curves[e];
        match c.len() {
            0 => 0,
            len => c[(w as usize).min(len - 1)],
        }
    };

    // Upper concave envelope of each curve over its reachable range
    // [floor, floor + budget], as (way, value) vertices with non-increasing
    // segment slopes. Interior points strictly below a chord are dropped;
    // collinear points are kept, so equal-utility capacity is granted in
    // the smallest blocks first (the tie rule below).
    let hulls: Vec<Vec<(u32, u64)>> = (0..n)
        .map(|e| {
            let start = alloc[e];
            let mut hull: Vec<(u32, u64)> = Vec::with_capacity(remaining as usize + 1);
            hull.push((start, value(e, start)));
            for w in start + 1..=start + remaining {
                let v = value(e, w);
                while hull.len() >= 2 {
                    let (w1, v1) = hull[hull.len() - 1];
                    let (w0, v0) = hull[hull.len() - 2];
                    // Pop the middle vertex when slope(w0→w1) < slope(w1→w).
                    let lhs = (v1 as i128 - v0 as i128) * (w - w1) as i128;
                    let rhs = (v as i128 - v1 as i128) * (w1 - w0) as i128;
                    if lhs < rhs {
                        hull.pop();
                    } else {
                        break;
                    }
                }
                hull.push((w, v));
            }
            hull
        })
        .collect();

    // Best capped step by direct scan — only needed when an envelope
    // segment is longer than the remaining budget (end-game) or after a
    // capped grant desynced an entity from its envelope.
    let capped_best = |e: usize, cur: u32, cap: u32| -> (u64, u32) {
        let base = value(e, cur);
        let mut best_gain = value(e, cur + 1).saturating_sub(base);
        let mut best_block = 1u32;
        for b in 2..=cap {
            let g = value(e, cur + b).saturating_sub(base);
            // g/b > best_gain/best_block, exactly; ties keep the smaller b.
            if g as u128 * best_block as u128 > best_gain as u128 * b as u128 {
                best_gain = g;
                best_block = b;
            }
        }
        (best_gain, best_block)
    };

    let mut pos: Vec<u32> = alloc.clone();
    let mut hull_idx: Vec<usize> = vec![1; n];
    let mut on_hull = vec![true; n];
    while remaining > 0 {
        // (gain, block, entity), compared as exact rationals gain/block.
        let mut best: Option<(u64, u32, usize)> = None;
        for e in 0..n {
            let (gain, block) = if on_hull[e] && hull_idx[e] < hulls[e].len() {
                let (w_next, v_next) = hulls[e][hull_idx[e]];
                let seg = w_next - pos[e];
                if seg <= remaining {
                    (v_next.saturating_sub(hulls[e][hull_idx[e] - 1].1), seg)
                } else {
                    capped_best(e, pos[e], remaining)
                }
            } else {
                capped_best(e, pos[e], remaining)
            };
            let better = match best {
                None => true,
                Some((bg, bb, _)) => {
                    let lhs = gain as u128 * bb as u128;
                    let rhs = bg as u128 * block as u128;
                    // Entities are scanned in index order, so replacing
                    // only on strict improvement keeps the lowest index.
                    lhs > rhs || (lhs == rhs && block < bb)
                }
            };
            if better {
                best = Some((gain, block, e));
            }
        }
        let Some((_, block, e)) = best else { break };
        if on_hull[e]
            && hull_idx[e] < hulls[e].len()
            && hulls[e][hull_idx[e]].0 == pos[e] + block
        {
            hull_idx[e] += 1;
        } else {
            // A capped grant stopped mid-segment: this entity walks by
            // direct scan for the (short) remainder of the allocation.
            on_hull[e] = false;
        }
        pos[e] += block;
        alloc[e] += block;
        remaining -= block;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook O(entities·budget²) formulation, kept as the parity
    /// oracle: rescan every block size for every entity each round.
    fn naive_lookahead(curves: &[Vec<u64>], total_ways: u32, floors: &[u32]) -> Vec<u32> {
        let mut alloc = floors.to_vec();
        let mut remaining = total_ways - floors.iter().sum::<u32>();
        let hits = |e: usize, w: u32| -> u64 {
            let c = &curves[e];
            match c.len() {
                0 => 0,
                len => c[(w as usize).min(len - 1)],
            }
        };
        while remaining > 0 {
            let mut best: Option<(u64, u32, usize)> = None;
            for (e, &cur) in alloc.iter().enumerate() {
                for block in 1..=remaining {
                    let gain = hits(e, cur + block).saturating_sub(hits(e, cur));
                    let better = match best {
                        None => true,
                        Some((bg, bb, _)) => {
                            let lhs = gain as u128 * bb as u128;
                            let rhs = bg as u128 * block as u128;
                            lhs > rhs || (lhs == rhs && block < bb)
                        }
                    };
                    if better {
                        best = Some((gain, block, e));
                    }
                }
            }
            let Some((_, block, e)) = best else { break };
            alloc[e] += block;
            remaining -= block;
        }
        alloc
    }

    #[test]
    fn allocates_exactly_the_budget() {
        let curves = vec![vec![0, 10, 18, 24, 28], vec![0, 2, 3, 4, 5]];
        let alloc = lookahead_allocate(&curves, 6, &[1, 1]);
        assert_eq!(alloc.iter().sum::<u32>(), 6);
        assert!(alloc.iter().zip([1u32, 1]).all(|(&a, f)| a >= f));
        // The steep curve wins the contested ways.
        assert!(alloc[0] > alloc[1], "{alloc:?}");
    }

    #[test]
    fn lookahead_steps_over_plateaus() {
        // Entity 0: no gain at 1 extra way, big gain at a 3-way block —
        // plain greedy (block = 1 only) would starve it.
        let curves = vec![vec![0, 0, 0, 0, 90, 90, 90], vec![0, 4, 8, 12, 16, 20, 24]];
        let alloc = lookahead_allocate(&curves, 6, &[1, 1]);
        // Marginal utility of the 3-way block (90/3 = 30) beats entity 1's
        // per-way 4, so entity 0 reaches the cliff at 4 ways.
        assert!(alloc[0] >= 4, "{alloc:?}");
        assert_eq!(alloc.iter().sum::<u32>(), 6);
    }

    #[test]
    fn respects_heterogeneous_floors() {
        let curves = vec![vec![0, 100, 200], vec![0, 1, 2], vec![0, 1, 2]];
        let alloc = lookahead_allocate(&curves, 12, &[1, 4, 2]);
        assert!(alloc[1] >= 4 && alloc[2] >= 2, "{alloc:?}");
        assert_eq!(alloc.iter().sum::<u32>(), 12);
    }

    #[test]
    fn flat_curves_tie_break_to_low_index_small_blocks() {
        let curves = vec![vec![0, 0], vec![0, 0]];
        let alloc = lookahead_allocate(&curves, 5, &[1, 1]);
        // All utilities are zero: 1-way blocks to entity 0 every round.
        assert_eq!(alloc, vec![4, 1]);
    }

    #[test]
    fn short_curves_extend_flat() {
        let curves = vec![vec![0, 7], vec![0, 6]];
        let alloc = lookahead_allocate(&curves, 10, &[1, 1]);
        assert_eq!(alloc.iter().sum::<u32>(), 10);
    }

    #[test]
    #[should_panic(expected = "exceed the way budget")]
    fn rejects_overcommitted_floors() {
        lookahead_allocate(&[vec![0, 1]], 2, &[3]);
    }

    #[test]
    fn envelope_walk_matches_naive_rescan() {
        // Deterministic LCG-driven non-decreasing curves across entity
        // counts, budgets and shapes (plateaus, cliffs, flat tails): the
        // envelope walk must reproduce the textbook rescans bit for bit.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let n = 1 + (rng() % 6) as usize;
            let ways = 4 + (rng() % 61) as u32;
            let curves: Vec<Vec<u64>> = (0..n)
                .map(|_| {
                    let len = (rng() % (ways as u64 + 2)) as usize + 1;
                    let mut acc = 0u64;
                    (0..len)
                        .map(|_| {
                            // Frequent zero steps produce plateaus and ties.
                            let step = match rng() % 4 {
                                0 => 0,
                                1 => rng() % 8,
                                2 => rng() % 100,
                                _ => rng() % 10_000,
                            };
                            acc += step;
                            acc
                        })
                        .collect()
                })
                .collect();
            let floors: Vec<u32> = (0..n).map(|_| 1 + (rng() % 2) as u32).collect();
            if floors.iter().sum::<u32>() > ways {
                continue;
            }
            let fast = lookahead_allocate(&curves, ways, &floors);
            let slow = naive_lookahead(&curves, ways, &floors);
            assert_eq!(fast, slow, "trial {trial}: curves {curves:?} ways {ways} floors {floors:?}");
            assert_eq!(fast.iter().sum::<u32>(), ways);
        }
    }
}
