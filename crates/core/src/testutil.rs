//! Shared helpers for this crate's unit tests.

use icp_cmp_sim::simulator::{IntervalReport, ThreadIntervalStats};
use icp_cmp_sim::stats::ThreadCounters;

/// Builds a synthetic interval report with the given per-thread CPIs and
/// the way quotas in force during the interval.
pub(crate) fn fake_report(index: usize, cpis: &[f64], ways: &[u32]) -> IntervalReport {
    assert_eq!(cpis.len(), ways.len());
    let threads = cpis
        .iter()
        .zip(ways.iter())
        .map(|(&cpi, &w)| {
            let instructions = 1_000u64;
            let counters = ThreadCounters {
                instructions,
                active_cycles: (cpi * instructions as f64) as u64,
                ..Default::default()
            };
            ThreadIntervalStats { counters, cpi, ways: w }
        })
        .collect();
    IntervalReport { index, threads, finished: false, wall_cycles: 0 }
}
