//! The partitioner interface and shared allocation arithmetic.

use icp_cmp_sim::simulator::IntervalReport;
use icp_cmp_sim::umon::UtilityMonitor;

/// What a policy wants done to the L2 for the next interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionDecision {
    /// Leave the current mode/quotas untouched.
    Keep,
    /// Apply these per-thread way quotas (must sum to the L2 way count).
    Partition(Vec<u32>),
    /// Apply these quotas as a *set* partition (page-coloring style; same
    /// units, so any way-quota policy can be adapted — see
    /// `icp_baselines::SetPartitionAdapter`).
    SetPartition(Vec<u32>),
    /// Run unpartitioned (global LRU).
    Unpartitioned,
}

/// A cache partitioning policy driven at interval granularity.
///
/// The runtime calls [`Partitioner::initial`] once before execution starts
/// and [`Partitioner::repartition`] at every interval boundary with the
/// interval's per-thread counters.
pub trait Partitioner {
    /// Human-readable scheme name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Partition to apply before the first interval. The paper's dynamic
    /// schemes start from equal partitions; baselines may differ.
    fn initial(&mut self, threads: usize, total_ways: u32) -> PartitionDecision {
        PartitionDecision::Partition(icp_cmp_sim::l2::equal_split(total_ways, threads))
    }

    /// Decision for the next interval given the one that just ended.
    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision;

    /// Whether this policy needs utility-monitor profiling. The runtime
    /// enables a UMON on the simulator and feeds it via
    /// [`Partitioner::observe_umon`] before each repartition call.
    /// The paper's own policies learn from CPI alone and return `false`;
    /// UCP-style throughput baselines return `true`.
    fn wants_umon(&self) -> bool {
        false
    }

    /// Receives the interval's utility-monitor state (way-hit histograms)
    /// when [`Partitioner::wants_umon`] is `true`. Called immediately
    /// before [`Partitioner::repartition`] at each boundary; the monitor's
    /// counters are reset afterwards by the runtime.
    fn observe_umon(&mut self, _umon: &UtilityMonitor) {}
}

impl Partitioner for Box<dyn Partitioner + Send> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn initial(&mut self, threads: usize, total_ways: u32) -> PartitionDecision {
        (**self).initial(threads, total_ways)
    }
    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        (**self).repartition(report, total_ways)
    }
    fn wants_umon(&self) -> bool {
        (**self).wants_umon()
    }
    fn observe_umon(&mut self, umon: &UtilityMonitor) {
        (**self).observe_umon(umon)
    }
}

/// Allocates `total` ways proportionally to non-negative `weights`, giving
/// every thread at least `min_per` ways, with largest-remainder rounding so
/// the result sums to exactly `total`.
///
/// This is the arithmetic behind the paper's §VI-A formula
/// `partition_t = CPI_t / ΣCPI_i × TotalCacheWays` (the paper leaves
/// rounding unspecified; largest-remainder is the canonical choice and a
/// 1-way floor keeps every thread able to make progress).
///
/// # Examples
///
/// ```
/// use icp_core::proportional_allocation;
///
/// // The paper's CG snapshot CPIs: thread 2 is critical.
/// let ways = proportional_allocation(&[3.06, 2.96, 6.35, 2.95], 64, 1);
/// assert_eq!(ways.iter().sum::<u32>(), 64);
/// assert!(ways[2] > ways[0] && ways[2] > ways[1] && ways[2] > ways[3]);
/// ```
///
/// # Panics
/// Panics if `weights` is empty, any weight is negative/NaN, or
/// `total < min_per * weights.len()`.
pub fn proportional_allocation(weights: &[f64], total: u32, min_per: u32) -> Vec<u32> {
    let n = weights.len();
    assert!(n > 0, "no threads");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let reserved = min_per
        .checked_mul(n as u32)
        .expect("min allocation overflow");
    assert!(
        total >= reserved,
        "cannot give {n} threads {min_per} ways each out of {total}"
    );
    let spare = (total - reserved) as f64;
    let sum: f64 = weights.iter().sum();
    // Degenerate weights: fall back to an equal split of the spare ways.
    let shares: Vec<f64> = if sum <= 0.0 {
        vec![spare / n as f64; n]
    } else {
        weights.iter().map(|w| w / sum * spare).collect()
    };
    let mut alloc: Vec<u32> = shares.iter().map(|s| min_per + s.floor() as u32).collect();
    let assigned: u32 = alloc.iter().sum();
    let mut leftover = total - assigned;
    // Largest remainders get the leftover ways; ties to lower thread ids.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = shares[a] - shares[a].floor();
        let rb = shares[b] - shares[b].floor();
        rb.partial_cmp(&ra).expect("finite").then(a.cmp(&b))
    });
    let mut i = 0;
    while leftover > 0 {
        alloc[order[i % n]] += 1;
        leftover -= 1;
        i += 1;
    }
    debug_assert_eq!(alloc.iter().sum::<u32>(), total);
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_total() {
        for (weights, total) in [
            (vec![1.0, 1.0, 1.0, 1.0], 64u32),
            (vec![5.0, 1.0, 1.0, 1.0], 64),
            (vec![3.3, 2.2, 1.1], 7),
            (vec![0.0, 0.0], 8),
            (vec![1e-9, 1.0], 16),
        ] {
            let a = proportional_allocation(&weights, total, 1);
            assert_eq!(a.iter().sum::<u32>(), total, "{weights:?}");
            assert!(a.iter().all(|&w| w >= 1));
        }
    }

    #[test]
    fn proportionality_respected() {
        let a = proportional_allocation(&[9.0, 3.0, 3.0, 3.0], 18, 0);
        assert_eq!(a, vec![9, 3, 3, 3]);
    }

    #[test]
    fn heavier_weight_never_gets_fewer_ways() {
        let a = proportional_allocation(&[10.0, 7.0, 2.0, 1.0], 64, 1);
        assert!(a[0] >= a[1] && a[1] >= a[2] && a[2] >= a[3], "{a:?}");
    }

    #[test]
    fn equal_weights_near_equal_split() {
        let a = proportional_allocation(&[2.0; 4], 10, 1);
        assert_eq!(a.iter().sum::<u32>(), 10);
        assert!(a.iter().all(|&w| w == 2 || w == 3));
    }

    #[test]
    fn min_floor_enforced_for_tiny_weights() {
        let a = proportional_allocation(&[1000.0, 0.0001, 0.0001, 0.0001], 64, 2);
        assert!(a[1] >= 2 && a[2] >= 2 && a[3] >= 2);
        assert_eq!(a.iter().sum::<u32>(), 64);
        assert!(a[0] > 50);
    }

    #[test]
    fn zero_weights_fall_back_to_equal() {
        let a = proportional_allocation(&[0.0; 4], 64, 1);
        assert_eq!(a, vec![16; 4]);
    }

    #[test]
    #[should_panic(expected = "cannot give")]
    fn rejects_infeasible_min() {
        proportional_allocation(&[1.0; 8], 4, 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        proportional_allocation(&[1.0, -1.0], 8, 1);
    }

    #[test]
    fn default_initial_is_equal_partition() {
        struct P;
        impl Partitioner for P {
            fn name(&self) -> &'static str {
                "p"
            }
            fn repartition(
                &mut self,
                _: &IntervalReport,
                _: u32,
            ) -> PartitionDecision {
                PartitionDecision::Keep
            }
        }
        assert_eq!(
            P.initial(4, 64),
            PartitionDecision::Partition(vec![16, 16, 16, 16])
        );
    }
}
