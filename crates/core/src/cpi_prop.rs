//! CPI-proportional partitioning (paper §VI-A, Figure 12).
//!
//! At the end of each interval, each thread's next-interval way quota is
//! proportional to its CPI over the interval just ended:
//!
//! ```text
//! partition_t = CPI_t / Σ CPI_i × TotalCacheWays
//! ```
//!
//! The slowest (critical path) thread therefore receives the largest share.
//! The paper notes this scheme's naivete — it assumes giving ways to a
//! high-CPI thread always helps, i.e. it has no notion of cache
//! *sensitivity* — and the model-based scheme (§VI-B) supersedes it; both
//! are kept for comparison (and the model-based policy bootstraps with this
//! one).

use icp_cmp_sim::simulator::IntervalReport;
use icp_cmp_sim::stats::ThreadCounters;
use icp_cmp_sim::LatencyConfig;

use crate::policy::{proportional_allocation, PartitionDecision, Partitioner};

/// Propagates a predicted L2 miss count into a predicted CPI.
///
/// The simulator's timing model is additive: converting one L2 miss into a
/// hit removes exactly the DRAM portion of the miss latency from the
/// thread's active cycles. So a measured `(base_cpi, base_misses)` point
/// extrapolates linearly along the miss axis:
///
/// ```text
/// cpi(m) = base_cpi + penalty x (m - base_misses) / instructions
/// ```
///
/// The result is floored at 1.0 — the in-order model retires at most one
/// instruction per cycle — and returns `base_cpi` unchanged when
/// `instructions` is zero (nothing to predict over).
pub fn propagate_cpi(
    base_cpi: f64,
    instructions: u64,
    base_misses: f64,
    predicted_misses: f64,
    miss_penalty: f64,
) -> f64 {
    if instructions == 0 {
        return base_cpi;
    }
    let delta = miss_penalty * (predicted_misses - base_misses) / instructions as f64;
    (base_cpi + delta).max(1.0)
}

/// Estimates the per-miss DRAM penalty (cycles) a thread actually paid,
/// from its cumulative counters.
///
/// Self-calibrating inversion of the simulator's timing model: active
/// cycles decompose into 1 cycle per non-memory instruction, `l1_hit` per
/// access, `l2_hit` per L1 miss, and the MLP-divided DRAM term per L2
/// miss. Everything but the DRAM total is known from the counters, so the
/// residual divided by the miss count is the effective per-miss penalty —
/// no workload metadata needed. Bank conflict stalls (when enabled) land
/// in the residual too, which is conservative: they also scale with
/// misses. Clamped to `[1, l2_hit + 10 x memory]` (the extremes of the
/// MLP range); threads with no misses get the unoverlapped DRAM latency.
pub fn estimated_miss_penalty(counters: &ThreadCounters, latency: &LatencyConfig) -> f64 {
    let ceiling = (latency.l2_hit + latency.memory * 10) as f64;
    if counters.l2_misses == 0 {
        return latency.memory.max(1) as f64;
    }
    let accesses = counters.l1_hits + counters.l1_misses;
    let known = counters.instructions.saturating_sub(accesses)
        + accesses * latency.l1_hit
        + counters.l1_misses * latency.l2_hit;
    let dram_total = counters.active_cycles.saturating_sub(known);
    (dram_total as f64 / counters.l2_misses as f64).clamp(1.0, ceiling)
}

/// The §VI-A CPI-proportional policy.
#[derive(Clone, Debug)]
pub struct CpiProportionalPolicy {
    /// Every thread keeps at least this many ways (progress guarantee).
    min_ways: u32,
}

impl CpiProportionalPolicy {
    /// Creates the policy with a 1-way floor per thread.
    pub fn new() -> Self {
        CpiProportionalPolicy { min_ways: 1 }
    }

    /// Overrides the per-thread way floor.
    pub fn with_min_ways(min_ways: u32) -> Self {
        CpiProportionalPolicy { min_ways }
    }
}

impl Default for CpiProportionalPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for CpiProportionalPolicy {
    fn name(&self) -> &'static str {
        "cpi-proportional"
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        let cpis: Vec<f64> = report.threads.iter().map(|t| t.cpi).collect();
        PartitionDecision::Partition(proportional_allocation(&cpis, total_ways, self.min_ways))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(cpis: &[f64], ways: &[u32]) -> icp_cmp_sim::simulator::IntervalReport {
        crate::testutil::fake_report(0, cpis, ways)
    }

    #[test]
    fn slowest_thread_gets_most_ways() {
        let mut p = CpiProportionalPolicy::new();
        let r = fake_report(&[8.0, 2.0, 2.0, 2.0], &[16; 4]);
        let PartitionDecision::Partition(ways) = p.repartition(&r, 64) else {
            panic!("expected partition");
        };
        assert_eq!(ways.iter().sum::<u32>(), 64);
        assert!(ways[0] > ways[1] && ways[0] > ways[2] && ways[0] > ways[3]);
        // 8/(8+2+2+2) of the spare 60 + 1 floor = 35 ways for thread 0.
        assert!(ways[0] >= 30, "{ways:?}");
    }

    #[test]
    fn equal_cpis_give_equal_split() {
        let mut p = CpiProportionalPolicy::new();
        let r = fake_report(&[4.0; 4], &[16; 4]);
        let PartitionDecision::Partition(ways) = p.repartition(&r, 64) else {
            panic!("expected partition");
        };
        assert_eq!(ways, vec![16; 4]);
    }

    #[test]
    fn respects_min_ways_floor() {
        let mut p = CpiProportionalPolicy::with_min_ways(4);
        let r = fake_report(&[100.0, 0.1, 0.1, 0.1], &[16; 4]);
        let PartitionDecision::Partition(ways) = p.repartition(&r, 64) else {
            panic!("expected partition");
        };
        assert!(ways[1] >= 4 && ways[2] >= 4 && ways[3] >= 4, "{ways:?}");
        assert_eq!(ways.iter().sum::<u32>(), 64);
    }

    #[test]
    fn propagate_cpi_is_linear_in_misses_and_floored() {
        // +1000 misses at 50 cycles each over 100k instructions: +0.5 CPI.
        assert!((propagate_cpi(2.0, 100_000, 5_000.0, 6_000.0, 50.0) - 2.5).abs() < 1e-12);
        // Fewer misses than the base point: CPI drops symmetrically.
        assert!((propagate_cpi(2.0, 100_000, 5_000.0, 4_000.0, 50.0) - 1.5).abs() < 1e-12);
        // The in-order floor: predictions never go below 1 cycle/instr.
        assert_eq!(propagate_cpi(1.2, 1_000, 1_000.0, 0.0, 400.0), 1.0);
        // Degenerate input: no instructions means no extrapolation.
        assert_eq!(propagate_cpi(3.0, 0, 10.0, 99.0, 50.0), 3.0);
    }

    #[test]
    fn estimated_penalty_inverts_the_timing_model() {
        let latency = icp_cmp_sim::LatencyConfig { l1_hit: 1, l2_hit: 12, memory: 150 };
        // Hand-built counters: 1000 instructions, 400 accesses, 100 L1
        // misses, 40 L2 misses at an effective 75 cycles DRAM each.
        let mut c = icp_cmp_sim::stats::ThreadCounters::default();
        c.instructions = 1_000;
        c.l1_hits = 300;
        c.l1_misses = 100;
        c.l2_hits = 60;
        c.l2_misses = 40;
        c.active_cycles = (1_000 - 400) + 400 * 1 + 100 * 12 + 40 * 75;
        let p = super::estimated_miss_penalty(&c, &latency);
        assert!((p - 75.0).abs() < 1e-9, "{p}");
        // No misses: fall back to the unoverlapped DRAM latency.
        c.l2_misses = 0;
        assert_eq!(super::estimated_miss_penalty(&c, &latency), 150.0);
    }

    #[test]
    fn matches_paper_formula_modulo_rounding() {
        // CPIs 3.06, 2.96, 6.35, 2.95 (the paper's CG snapshot after
        // interval 1): thread 2 (0-based) must receive the dominant share.
        let mut p = CpiProportionalPolicy::new();
        let r = fake_report(&[3.06, 2.96, 6.35, 2.95], &[16; 4]);
        let PartitionDecision::Partition(ways) = p.repartition(&r, 64) else {
            panic!("expected partition");
        };
        let expect_t2 = 6.35 / (3.06 + 2.96 + 6.35 + 2.95) * 60.0 + 1.0;
        assert!((ways[2] as f64 - expect_t2).abs() <= 1.0, "{ways:?} vs {expect_t2}");
    }
}
