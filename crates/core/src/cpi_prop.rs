//! CPI-proportional partitioning (paper §VI-A, Figure 12).
//!
//! At the end of each interval, each thread's next-interval way quota is
//! proportional to its CPI over the interval just ended:
//!
//! ```text
//! partition_t = CPI_t / Σ CPI_i × TotalCacheWays
//! ```
//!
//! The slowest (critical path) thread therefore receives the largest share.
//! The paper notes this scheme's naivete — it assumes giving ways to a
//! high-CPI thread always helps, i.e. it has no notion of cache
//! *sensitivity* — and the model-based scheme (§VI-B) supersedes it; both
//! are kept for comparison (and the model-based policy bootstraps with this
//! one).

use icp_cmp_sim::simulator::IntervalReport;

use crate::policy::{proportional_allocation, PartitionDecision, Partitioner};

/// The §VI-A CPI-proportional policy.
#[derive(Clone, Debug)]
pub struct CpiProportionalPolicy {
    /// Every thread keeps at least this many ways (progress guarantee).
    min_ways: u32,
}

impl CpiProportionalPolicy {
    /// Creates the policy with a 1-way floor per thread.
    pub fn new() -> Self {
        CpiProportionalPolicy { min_ways: 1 }
    }

    /// Overrides the per-thread way floor.
    pub fn with_min_ways(min_ways: u32) -> Self {
        CpiProportionalPolicy { min_ways }
    }
}

impl Default for CpiProportionalPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for CpiProportionalPolicy {
    fn name(&self) -> &'static str {
        "cpi-proportional"
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        let cpis: Vec<f64> = report.threads.iter().map(|t| t.cpi).collect();
        PartitionDecision::Partition(proportional_allocation(&cpis, total_ways, self.min_ways))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(cpis: &[f64], ways: &[u32]) -> icp_cmp_sim::simulator::IntervalReport {
        crate::testutil::fake_report(0, cpis, ways)
    }

    #[test]
    fn slowest_thread_gets_most_ways() {
        let mut p = CpiProportionalPolicy::new();
        let r = fake_report(&[8.0, 2.0, 2.0, 2.0], &[16; 4]);
        let PartitionDecision::Partition(ways) = p.repartition(&r, 64) else {
            panic!("expected partition");
        };
        assert_eq!(ways.iter().sum::<u32>(), 64);
        assert!(ways[0] > ways[1] && ways[0] > ways[2] && ways[0] > ways[3]);
        // 8/(8+2+2+2) of the spare 60 + 1 floor = 35 ways for thread 0.
        assert!(ways[0] >= 30, "{ways:?}");
    }

    #[test]
    fn equal_cpis_give_equal_split() {
        let mut p = CpiProportionalPolicy::new();
        let r = fake_report(&[4.0; 4], &[16; 4]);
        let PartitionDecision::Partition(ways) = p.repartition(&r, 64) else {
            panic!("expected partition");
        };
        assert_eq!(ways, vec![16; 4]);
    }

    #[test]
    fn respects_min_ways_floor() {
        let mut p = CpiProportionalPolicy::with_min_ways(4);
        let r = fake_report(&[100.0, 0.1, 0.1, 0.1], &[16; 4]);
        let PartitionDecision::Partition(ways) = p.repartition(&r, 64) else {
            panic!("expected partition");
        };
        assert!(ways[1] >= 4 && ways[2] >= 4 && ways[3] >= 4, "{ways:?}");
        assert_eq!(ways.iter().sum::<u32>(), 64);
    }

    #[test]
    fn matches_paper_formula_modulo_rounding() {
        // CPIs 3.06, 2.96, 6.35, 2.95 (the paper's CG snapshot after
        // interval 1): thread 2 (0-based) must receive the dominant share.
        let mut p = CpiProportionalPolicy::new();
        let r = fake_report(&[3.06, 2.96, 6.35, 2.95], &[16; 4]);
        let PartitionDecision::Partition(ways) = p.repartition(&r, 64) else {
            panic!("expected partition");
        };
        let expect_t2 = 6.35 / (3.06 + 2.96 + 6.35 + 2.95) * 60.0 + 1.0;
        assert!((ways[2] as f64 - expect_t2).abs() <= 1.0, "{ways:?} vs {expect_t2}");
    }
}
