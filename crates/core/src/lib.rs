//! The paper's contribution: an interval-driven runtime system that
//! dynamically partitions a shared L2 cache **among the threads of one
//! multithreaded application**, speeding up the critical path thread.
//!
//! At the end of each execution interval the runtime reads per-thread
//! performance counters from the simulated hardware (the cache/CPI monitor
//! of Figure 17), computes a new way partition (partition engine) and
//! applies it to the L2 (configuration unit). Two policies from the paper
//! are provided:
//!
//! * [`CpiProportionalPolicy`] (§VI-A): way quotas proportional to each
//!   thread's CPI over the last interval —
//!   `partition_t = CPI_t / ΣCPI_i × TotalCacheWays`.
//! * [`ModelBasedPolicy`] (§VI-B): learns a per-thread CPI-vs-ways curve at
//!   runtime by cubic-spline fitting over observed `(ways, CPI)` points and
//!   hill-climbs — move a way from the fastest to the slowest thread until
//!   the predicted critical thread changes, then back off one step
//!   (Figure 13).
//!
//! Baseline schemes (shared, static-equal, throughput-oriented,
//! fairness-oriented) implement the same [`Partitioner`] trait in the
//! `icp-baselines` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpi_prop;
pub mod hierarchical;
pub mod lookahead;
pub mod model;
pub mod model_based;
pub mod policy;
pub mod runtime;

#[cfg(test)]
pub(crate) mod testutil;

pub use cpi_prop::{estimated_miss_penalty, propagate_cpi, CpiProportionalPolicy};
pub use hierarchical::{BudgetPolicy, HierarchicalPolicy};
pub use lookahead::lookahead_allocate;
pub use model::{ModelKind, ThreadCpiModel};
pub use model_based::ModelBasedPolicy;
pub use policy::{proportional_allocation, PartitionDecision, Partitioner};
pub use runtime::{ExecutionOutcome, IntervalRecord, IntraAppRuntime};
