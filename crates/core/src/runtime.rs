//! The intra-application runtime system (paper §VI-C, Figures 16–17).
//!
//! [`IntraAppRuntime`] wires a [`Partitioner`] to a [`Machine`] (the
//! serial simulator, the set-sharded engine, or the sliced LLC): before
//! execution it applies the policy's initial partition, then at every
//! interval boundary it reads the per-thread counters (cache/CPI monitor),
//! asks the policy for a decision (partition engine) and applies it to the
//! L2 (configuration unit). It also keeps a full per-interval log, which is
//! what the experiment harness mines for the paper's time-series figures
//! (6, 7, 18) and performance comparisons (19–22).

use icp_cmp_sim::simulator::IntervalReport;
use icp_cmp_sim::stats::{InteractionStats, ThreadCounters};
use icp_cmp_sim::{Machine, SystemConfig};

use crate::policy::{PartitionDecision, Partitioner};

/// One interval's record in the execution log.
#[derive(Clone, Debug)]
pub struct IntervalRecord {
    /// 0-based interval index.
    pub index: usize,
    /// Way quota each thread had during the interval.
    pub ways: Vec<u32>,
    /// Per-thread CPI over the interval.
    pub cpi: Vec<f64>,
    /// Per-thread L2 misses over the interval.
    pub l2_misses: Vec<u64>,
    /// Per-thread instructions retired over the interval.
    pub instructions: Vec<u64>,
    /// Overall (instruction-weighted) CPI of the interval — the paper's
    /// Figure 18 "Overall CPI" column.
    pub overall_cpi: f64,
    /// Wall-clock cycles at the end of the interval.
    pub wall_cycles: u64,
}

impl IntervalRecord {
    fn from_report(r: &IntervalReport) -> Self {
        IntervalRecord {
            index: r.index,
            ways: r.threads.iter().map(|t| t.ways).collect(),
            cpi: r.threads.iter().map(|t| t.cpi).collect(),
            l2_misses: r.threads.iter().map(|t| t.counters.l2_misses).collect(),
            instructions: r.threads.iter().map(|t| t.counters.instructions).collect(),
            overall_cpi: r.overall_cpi(),
            wall_cycles: r.wall_cycles,
        }
    }
}

/// Result of executing a workload under a partitioning scheme.
#[derive(Clone, Debug)]
pub struct ExecutionOutcome {
    /// Scheme name (from the policy).
    pub scheme: &'static str,
    /// Total wall-clock cycles to complete the workload — the comparison
    /// metric for Figures 19–22 (performance = 1 / time, §IV-A1).
    pub wall_cycles: u64,
    /// Per-interval log.
    pub records: Vec<IntervalRecord>,
    /// Cumulative per-thread counters at completion.
    pub thread_totals: Vec<ThreadCounters>,
    /// Cumulative inter-thread interaction statistics.
    pub interactions: InteractionStats,
    /// Number of repartition decisions the policy made.
    pub decision_count: u64,
    /// Host-side wall time spent inside the policy's decision procedure
    /// (monitor-curve consumption + partition computation; the machine's
    /// monitor *export* is excluded — on a sliced LLC that is a per-slice
    /// merge charged to the machine, not the policy), in nanoseconds. The
    /// paper reports its runtime overhead as < 1.5% of execution time; at
    /// a simulated 1 GHz, 1 ns ≈ 1 cycle, so
    /// `decision_nanos / wall_cycles` estimates the same ratio.
    pub decision_nanos: u64,
    /// Final utility-monitor snapshot, when the simulator ran with a UMON
    /// enabled (`None` otherwise). Exported once at the end of the run —
    /// off the hot path, and observing through a UMON never changes any
    /// simulated counter, so enabling it leaves all other fields
    /// bit-identical. This is the recorded profile the analytical
    /// miss-curve fast path consumes.
    pub umon_profile: Option<icp_cmp_sim::UmonProfile>,
}

impl ExecutionOutcome {
    /// Performance as inverse execution time (higher is better).
    pub fn performance(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        1.0 / self.wall_cycles as f64
    }

    /// Number of recorded intervals.
    pub fn intervals(&self) -> usize {
        self.records.len()
    }

    /// Speedup of `self` relative to `baseline` in percent, as the paper
    /// reports it (e.g. "+15% over the shared cache" means this scheme's
    /// performance is 1.15x the baseline's).
    pub fn improvement_percent_over(&self, baseline: &ExecutionOutcome) -> f64 {
        (baseline.wall_cycles as f64 / self.wall_cycles as f64 - 1.0) * 100.0
    }

    /// Estimated runtime-system overhead as a fraction of execution time,
    /// equating host nanoseconds with simulated cycles (1 GHz core). The
    /// paper reports < 1.5% (§VII); decisions every 15 M instructions make
    /// this tiny.
    pub fn estimated_overhead_fraction(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.decision_nanos as f64 / self.wall_cycles as f64
    }
}

/// The interval-driven cache-partitioning runtime.
pub struct IntraAppRuntime<P: Partitioner> {
    policy: P,
    total_ways: u32,
}

impl<P: Partitioner> IntraAppRuntime<P> {
    /// Creates a runtime for the given policy and system configuration.
    pub fn new(policy: P, cfg: &SystemConfig) -> Self {
        IntraAppRuntime { policy, total_ways: cfg.l2.ways }
    }

    /// The wrapped policy (e.g. to read a [`crate::ModelBasedPolicy`]'s
    /// learned models after a run).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Runs the simulation to completion under this runtime's policy.
    ///
    /// The runtime overhead the paper measures (<1.5%, §VII) is the cost of
    /// reading counters and computing partitions once per 15 M
    /// instructions; in simulation that cost is outside simulated time, so
    /// reported cycles correspond to the paper's overhead-included numbers
    /// with the overhead already amortised away.
    pub fn execute<M: Machine>(&mut self, sim: &mut M) -> ExecutionOutcome {
        assert_eq!(
            sim.config().l2.ways,
            self.total_ways,
            "runtime configured for a different L2"
        );
        let threads = sim.config().cores;
        if self.policy.wants_umon() && !sim.umon_enabled() {
            // Default UMON sampling: one in 4 sets, mirroring UCP's sampled
            // auxiliary tag directories.
            sim.enable_umon(4.min(sim.config().l2.num_sets()));
        }
        let initial = self.policy.initial(threads, self.total_ways);
        apply(sim, initial);

        let mut records = Vec::new();
        let mut decision_count = 0u64;
        let mut decision_nanos = 0u64;
        while let Some(report) = sim.run_interval() {
            records.push(IntervalRecord::from_report(&report));
            if report.finished {
                break;
            }
            // The monitor export happens before the timer starts: on a
            // sliced LLC, `umon_view` merges per-slice monitors into one
            // owned view — a machine mechanism cost, not part of the
            // policy's decision procedure being measured.
            let umon = if self.policy.wants_umon() { sim.umon_view() } else { None };
            let started = std::time::Instant::now();
            if let Some(umon) = &umon {
                self.policy.observe_umon(umon);
            }
            let decision = self.policy.repartition(&report, self.total_ways);
            decision_nanos += started.elapsed().as_nanos() as u64;
            decision_count += 1;
            drop(umon);
            apply(sim, decision);
            if self.policy.wants_umon() {
                sim.decay_umon();
            }
        }

        ExecutionOutcome {
            scheme: self.policy.name(),
            wall_cycles: sim.wall_cycles(),
            records,
            thread_totals: sim.stats().threads.clone(),
            interactions: sim.stats().interactions,
            decision_count,
            decision_nanos,
            umon_profile: sim.umon_view().map(|u| u.snapshot()),
        }
    }

}

/// Applies a policy decision to the simulated L2 (the "configuration
/// unit" of Figure 17).
fn apply<M: Machine>(sim: &mut M, decision: PartitionDecision) {
    match decision {
        PartitionDecision::Keep => {}
        PartitionDecision::Partition(ways) => sim.set_partition(&ways),
        PartitionDecision::SetPartition(quotas) => sim.set_set_partition(&quotas),
        PartitionDecision::Unpartitioned => sim.set_unpartitioned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelBasedPolicy;
    use icp_cmp_sim::stream::{ReplayStream, ThreadEvent};
    use icp_cmp_sim::{CacheConfig, LatencyConfig, Simulator};

    fn cfg() -> SystemConfig {
        SystemConfig {
            cores: 2,
            l1: CacheConfig::new(2 * 64 * 2, 2, 64),
            l2: CacheConfig::new(4 * 64 * 4, 4, 64),
            llc: Default::default(),
            latency: LatencyConfig { l1_hit: 1, l2_hit: 10, memory: 100 },
            interval_instructions: 50,
            inclusive: false,
            coherence: false,
            prefetch_degree: 0,
            l2_banks: 0,
            victim_cache_lines: 0,
        }
    }

    fn stream(n: usize, stride: u64) -> ReplayStream {
        ReplayStream::new(
            (0..n)
                .map(|i| ThreadEvent::access(4, (i as u64 * stride) * 64))
                .collect(),
        )
    }

    #[test]
    fn runtime_logs_every_interval() {
        let c = cfg();
        let mut sim = Simulator::new(
            c,
            vec![Box::new(stream(40, 1)), Box::new(stream(40, 7))],
        );
        let mut rt = IntraAppRuntime::new(ModelBasedPolicy::new(), &c);
        let out = rt.execute(&mut sim);
        assert!(out.intervals() >= 7, "got {}", out.intervals());
        assert_eq!(out.scheme, "model-based");
        assert!(out.wall_cycles > 0);
        // Records are consistent: indices ascend, ways sum to total.
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.ways.iter().sum::<u32>(), 4);
        }
    }

    #[test]
    fn outcome_metrics() {
        let a = ExecutionOutcome {
            scheme: "a",
            wall_cycles: 800,
            records: vec![],
            thread_totals: vec![],
            interactions: Default::default(),
            decision_count: 0,
            decision_nanos: 0,
            umon_profile: None,
        };
        let b = ExecutionOutcome { wall_cycles: 1000, ..a.clone() };
        assert!((a.improvement_percent_over(&b) - 25.0).abs() < 1e-9);
        assert!((b.improvement_percent_over(&a) + 20.0).abs() < 1e-9);
        assert!(a.performance() > b.performance());
    }

    #[test]
    fn umon_export_leaves_simulated_state_bit_identical() {
        // Enabling the utility monitor only *observes*: the exported
        // profile rides along on the outcome while every simulated number
        // stays bit-identical to the unmonitored run.
        let c = cfg();
        let make = || {
            Simulator::new(c, vec![Box::new(stream(60, 1)) as _, Box::new(stream(60, 5)) as _])
        };
        let mut plain_sim = make();
        let plain = IntraAppRuntime::new(ModelBasedPolicy::new(), &c).execute(&mut plain_sim);
        let mut mon_sim = make();
        mon_sim.enable_umon(1);
        let monitored = IntraAppRuntime::new(ModelBasedPolicy::new(), &c).execute(&mut mon_sim);
        assert_eq!(plain.wall_cycles, monitored.wall_cycles);
        assert_eq!(plain.thread_totals, monitored.thread_totals);
        assert_eq!(plain.records.len(), monitored.records.len());
        assert!(plain.umon_profile.is_none());
        let profile = monitored.umon_profile.expect("profile exported");
        assert_eq!(profile.threads(), 2);
        assert_eq!(profile.ways, c.l2.ways);
        // The ATDs saw traffic: the profile is non-trivial.
        assert!(profile.atd_misses.iter().sum::<u64>() > 0);
    }

    #[test]
    fn initial_partition_is_equal_for_dynamic_policies() {
        let c = cfg();
        let mut sim = Simulator::new(
            c,
            vec![Box::new(stream(10, 1)), Box::new(stream(10, 3))],
        );
        let mut rt = IntraAppRuntime::new(ModelBasedPolicy::new(), &c);
        let out = rt.execute(&mut sim);
        // The first interval ran with the equal split (2/2 of 4 ways).
        assert_eq!(out.records[0].ways, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "different L2")]
    fn config_mismatch_caught() {
        let c = cfg();
        let mut big = c;
        big.l2 = CacheConfig::new(8 * 64 * 8, 8, 64);
        let mut sim = Simulator::new(
            big,
            vec![Box::new(stream(1, 1)), Box::new(stream(1, 1))],
        );
        let mut rt = IntraAppRuntime::new(ModelBasedPolicy::new(), &c);
        rt.execute(&mut sim);
    }
}
