//! Support crate for the Criterion benchmark harness; the benchmarks
//! themselves live in `benches/`:
//!
//! * `figures` — one bench per reproduced paper figure/table; each prints
//!   the figure's rows once, so `cargo bench` output doubles as a
//!   reproduction report,
//! * `micro` — hot-path microbenchmarks (L2 access, UMON observe, Zipf
//!   sampling, spline fitting, policy decisions),
//! * `ablations` — design-choice sweeps called out in `DESIGN.md`
//!   (interval length, curve family, Figure 13 termination rule, UMON
//!   sampling stride).
