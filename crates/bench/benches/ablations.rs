//! Ablation benches for the design choices called out in `DESIGN.md`.
//!
//! Each ablation prints a small outcome table once (speedup of the paper's
//! scheme under each variant) and benchmarks the default variant's run
//! time. Shapes to look for in the printed tables:
//!
//! * **interval length**: the paper reports "little variation across the
//!   results when the execution interval was either increased or
//!   decreased" — improvements should be broadly flat.
//! * **curve family**: spline vs PCHIP vs linear should all work, splines/
//!   PCHIP slightly better than a global line.
//! * **Figure 13 termination**: the strict revert-on-any-flip rule can
//!   wedge the partition (see `icp_core::model_based` docs); the improved
//!   rule should be at least as good.
//! * **UMON sampling stride**: the UCP baseline should degrade gracefully
//!   as sampling gets sparser.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use icp_core::ModelKind;
use icp_experiments::runner::{ExperimentConfig, Scheme};
use icp_experiments::table::{pct, Table};
use icp_workloads::suite;
use std::hint::black_box;

/// Mean improvement of `scheme` over shared and equal baselines across a
/// three-benchmark probe set.
fn probe_improvements(cfg: &ExperimentConfig, scheme: &Scheme) -> (f64, f64) {
    let probes = [suite::swim(), suite::mgrid(), suite::cg()];
    let mut vs_shared = 0.0;
    let mut vs_equal = 0.0;
    for b in &probes {
        let outs = cfg.run_schemes(b, &[Scheme::Shared, Scheme::StaticEqual, scheme.clone()]);
        vs_shared += outs[2].improvement_percent_over(&outs[0]);
        vs_equal += outs[2].improvement_percent_over(&outs[1]);
    }
    (vs_shared / probes.len() as f64, vs_equal / probes.len() as f64)
}

fn ablation_interval_length(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut t = Table::new(
            "Ablation: execution interval length (model-based vs baselines)",
            &["interval", "vs shared", "vs equal"],
        );
        for factor in [4u64, 2, 1] {
            let mut cfg = ExperimentConfig::test();
            cfg.system.interval_instructions /= factor;
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBased);
            t.row(vec![
                format!("{}", cfg.system.interval_instructions),
                pct(s),
                pct(e),
            ]);
        }
        println!("\n{}", t.render());
    });
    let cfg = ExperimentConfig::test();
    let mut g = c.benchmark_group("ablation_interval");
    g.sample_size(10);
    g.bench_function("default_interval", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBased).wall_cycles))
    });
    g.finish();
}

fn ablation_model_kind(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let cfg = ExperimentConfig::test();
        let mut t = Table::new(
            "Ablation: CPI-curve family (paper uses cubic splines)",
            &["model", "vs shared", "vs equal"],
        );
        for (name, kind) in [
            ("spline", ModelKind::Spline),
            ("pchip", ModelKind::Pchip),
            ("linear", ModelKind::Linear),
        ] {
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBasedWith(kind));
            t.row(vec![name.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let cfg = ExperimentConfig::test();
    let mut g = c.benchmark_group("ablation_model");
    g.sample_size(10);
    g.bench_function("pchip_variant", |b| {
        b.iter(|| {
            black_box(
                cfg.run(&suite::swim(), &Scheme::ModelBasedWith(ModelKind::Pchip))
                    .wall_cycles,
            )
        })
    });
    g.finish();
}

fn ablation_strict_figure13(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let cfg = ExperimentConfig::test();
        let mut t = Table::new(
            "Ablation: Figure 13 termination rule",
            &["rule", "vs shared", "vs equal"],
        );
        for (name, scheme) in [
            ("accept-if-improves (default)", Scheme::ModelBased),
            ("strict revert-on-flip", Scheme::ModelBasedStrict),
        ] {
            let (s, e) = probe_improvements(&cfg, &scheme);
            t.row(vec![name.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let cfg = ExperimentConfig::test();
    let mut g = c.benchmark_group("ablation_hillclimb");
    g.sample_size(10);
    g.bench_function("strict_figure13", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBasedStrict).wall_cycles))
    });
    g.finish();
}

fn ablation_umon_sampling(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // The runtime enables sampling stride 4 by default; here we run the
        // UCP baseline with explicit strides by pre-enabling the monitor.
        use icp_baselines::UcpThroughputPolicy;
        use icp_cmp_sim::Simulator;
        use icp_core::IntraAppRuntime;
        use icp_workloads::WorkloadScale;

        let cfg = ExperimentConfig::test();
        let mut t = Table::new(
            "Ablation: UMON sampling stride (UCP baseline quality)",
            &["stride", "wall cycles (swim)"],
        );
        for stride in [1u64, 4, 16, 64] {
            let bench = suite::swim();
            let streams = bench.build_streams(&cfg.system, WorkloadScale::Test, cfg.seed);
            let mut sim = Simulator::new(cfg.system, streams);
            sim.enable_umon(stride);
            let mut rt = IntraAppRuntime::new(UcpThroughputPolicy::new(), &cfg.system);
            let out = rt.execute(&mut sim);
            t.row(vec![stride.to_string(), out.wall_cycles.to_string()]);
        }
        println!("\n{}", t.render());
    });
    let cfg = ExperimentConfig::test();
    let mut g = c.benchmark_group("ablation_umon");
    g.sample_size(10);
    g.bench_function("ucp_default_stride", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::UcpThroughput).wall_cycles))
    });
    g.finish();
}

fn ablation_enforcement(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // §V argues for gradual replacement-based enforcement over instant
        // reconfiguration (which loses data). Compare both end-to-end, and
        // also quantify how gradually the default converges.
        use icp_cmp_sim::EnforcementKind;
        let mut t = Table::new(
            "Ablation: partition enforcement mechanism (§V)",
            &["enforcement", "vs shared", "vs equal"],
        );
        for (name, kind) in [
            ("replacement (paper)", EnforcementKind::Replacement),
            ("instant reconfigure", EnforcementKind::Reconfigure),
        ] {
            let mut cfg = ExperimentConfig::test();
            cfg.enforcement = kind;
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBased);
            t.row(vec![name.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());

        let cfg = ExperimentConfig::test();
        let out = cfg.run(&suite::cg(), &Scheme::ModelBased);
        let last = out.records.last().expect("intervals").ways.clone();
        let first_match = out
            .records
            .iter()
            .position(|r| {
                r.ways
                    .iter()
                    .zip(&last)
                    .all(|(a, b)| (*a as i64 - *b as i64).abs() <= 2)
            })
            .unwrap_or(out.records.len());
        let mut t = Table::new(
            "Gradual convergence of the replacement-based mechanism",
            &["metric", "value"],
        );
        t.row(vec!["intervals".into(), out.records.len().to_string()]);
        t.row(vec![
            "first interval within ±2 ways of final partition".into(),
            first_match.to_string(),
        ]);
        println!("\n{}", t.render());
    });
    let mut cfg = ExperimentConfig::test();
    cfg.enforcement = icp_cmp_sim::EnforcementKind::Reconfigure;
    let mut g = c.benchmark_group("ablation_enforcement");
    g.sample_size(10);
    g.bench_function("reconfigure_run", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBased).wall_cycles))
    });
    g.finish();
}

fn ablation_replacement(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // Does replacement-based way partitioning survive hardware's
        // pseudo-LRU approximation? (The paper assumes exact LRU.)
        use icp_cmp_sim::ReplacementKind;
        let mut t = Table::new(
            "Ablation: exact LRU vs tree pseudo-LRU under the dynamic scheme",
            &["replacement", "vs shared", "vs equal"],
        );
        for (name, kind) in [
            ("true-lru", ReplacementKind::TrueLru),
            ("tree-plru", ReplacementKind::TreePlru),
        ] {
            let mut cfg = ExperimentConfig::test();
            cfg.replacement = kind;
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBased);
            t.row(vec![name.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let mut cfg = ExperimentConfig::test();
    cfg.replacement = icp_cmp_sim::ReplacementKind::TreePlru;
    let mut g = c.benchmark_group("ablation_replacement");
    g.sample_size(10);
    g.bench_function("plru_run", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBased).wall_cycles))
    });
    g.finish();
}

fn ablation_inclusive(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut t = Table::new(
            "Ablation: non-inclusive vs inclusive hierarchy (L1 back-invalidation)",
            &["hierarchy", "vs shared", "vs equal"],
        );
        for (name, inclusive) in [("non-inclusive", false), ("inclusive", true)] {
            let mut cfg = ExperimentConfig::test();
            cfg.system.inclusive = inclusive;
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBased);
            t.row(vec![name.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let mut cfg = ExperimentConfig::test();
    cfg.system.inclusive = true;
    let mut g = c.benchmark_group("ablation_inclusive");
    g.sample_size(10);
    g.bench_function("inclusive_run", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBased).wall_cycles))
    });
    g.finish();
}

fn ablation_phase_detection(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let cfg = ExperimentConfig::test();
        let mut t = Table::new(
            "Ablation: phase-change detection (model reset on 50% prediction error)",
            &["variant", "vs shared", "vs equal"],
        );
        for (name, scheme) in [
            ("ewma-only (default)", Scheme::ModelBased),
            ("with phase reset", Scheme::ModelBasedPhaseDetect),
        ] {
            let (s, e) = probe_improvements(&cfg, &scheme);
            t.row(vec![name.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let cfg = ExperimentConfig::test();
    let mut g = c.benchmark_group("ablation_phase");
    g.sample_size(10);
    g.bench_function("phase_detect_run", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBasedPhaseDetect).wall_cycles))
    });
    g.finish();
}

fn ablation_coherence(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut t = Table::new(
            "Ablation: write-invalidate L1 coherence on/off",
            &["coherence", "vs shared", "vs equal"],
        );
        for (name, coherence) in [("off (default)", false), ("on", true)] {
            let mut cfg = ExperimentConfig::test();
            cfg.system.coherence = coherence;
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBased);
            t.row(vec![name.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let mut cfg = ExperimentConfig::test();
    cfg.system.coherence = true;
    let mut g = c.benchmark_group("ablation_coherence");
    g.sample_size(10);
    g.bench_function("coherent_run", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBased).wall_cycles))
    });
    g.finish();
}

fn ablation_prefetch(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // Prefetching interacts with partitioning both ways: it hides the
        // polluter's latency (more pollution pressure under shared LRU)
        // and its fills obey quotas once partitioned.
        let mut t = Table::new(
            "Ablation: sequential L2 prefetching (degree sweep)",
            &["degree", "vs shared", "vs equal"],
        );
        for degree in [0u32, 1, 2, 4] {
            let mut cfg = ExperimentConfig::test();
            cfg.system.prefetch_degree = degree;
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBased);
            t.row(vec![degree.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let mut cfg = ExperimentConfig::test();
    cfg.system.prefetch_degree = 2;
    let mut g = c.benchmark_group("ablation_prefetch");
    g.sample_size(10);
    g.bench_function("prefetch_run", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBased).wall_cycles))
    });
    g.finish();
}

fn ablation_l2_banks(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut t = Table::new(
            "Ablation: L2 bank count (bank conflicts serialise accesses)",
            &["banks", "vs shared", "vs equal"],
        );
        for banks in [0u32, 4, 8, 16] {
            let mut cfg = ExperimentConfig::test();
            cfg.system.l2_banks = banks;
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBased);
            let label = if banks == 0 { "unbanked".to_string() } else { banks.to_string() };
            t.row(vec![label, pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let mut cfg = ExperimentConfig::test();
    cfg.system.l2_banks = 8;
    let mut g = c.benchmark_group("ablation_banks");
    g.sample_size(10);
    g.bench_function("banked_run", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBased).wall_cycles))
    });
    g.finish();
}

fn ablation_victim_cache(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // Can a victim cache (related work: Zhang & Asanovic) recover the
        // partitioning win on its own by absorbing inter-thread conflict
        // evictions?
        let mut t = Table::new(
            "Ablation: victim cache size (shared cache + victim vs dynamic partitioning)",
            &["victim lines", "dyn vs shared", "dyn vs equal"],
        );
        for lines in [0u32, 64, 256] {
            let mut cfg = ExperimentConfig::test();
            cfg.system.victim_cache_lines = lines;
            let (s, e) = probe_improvements(&cfg, &Scheme::ModelBased);
            t.row(vec![lines.to_string(), pct(s), pct(e)]);
        }
        println!("\n{}", t.render());
    });
    let mut cfg = ExperimentConfig::test();
    cfg.system.victim_cache_lines = 64;
    let mut g = c.benchmark_group("ablation_victim");
    g.sample_size(10);
    g.bench_function("victim_run", |b| {
        b.iter(|| black_box(cfg.run(&suite::swim(), &Scheme::ModelBased).wall_cycles))
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_interval_length,
    ablation_model_kind,
    ablation_strict_figure13,
    ablation_umon_sampling,
    ablation_enforcement,
    ablation_replacement,
    ablation_inclusive,
    ablation_phase_detection,
    ablation_coherence,
    ablation_prefetch,
    ablation_l2_banks,
    ablation_victim_cache
);
criterion_main!(ablations);
