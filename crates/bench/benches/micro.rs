//! Hot-path microbenchmarks: the simulator's inner loops and the policies'
//! decision procedures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use icp_cmp_sim::cache::SetAssocCache;
use icp_cmp_sim::l2::PartitionedL2;
use icp_cmp_sim::umon::UtilityMonitor;
use icp_cmp_sim::{CacheConfig, Simulator, SystemConfig};
use icp_core::policy::Partitioner;
use icp_core::{CpiProportionalPolicy, IntraAppRuntime, ModelBasedPolicy, ThreadCpiModel};
use icp_numeric::{CubicSpline, Xoshiro256, Zipf};
use icp_workloads::{suite, WorkloadScale};
use std::hint::black_box;

fn l2_access(c: &mut Criterion) {
    let cfg = CacheConfig::new(1024 * 1024, 64, 64); // paper-size L2
    let mut g = c.benchmark_group("l2_access");

    // Hit path: warm one set, hit it repeatedly.
    let mut l2 = PartitionedL2::new(cfg, 4);
    l2.access(0, 0);
    g.bench_function("hit_unpartitioned", |b| {
        b.iter(|| black_box(l2.access(0, 0)))
    });

    // Miss path (streaming): every access misses and evicts.
    let mut l2 = PartitionedL2::new(cfg, 4);
    let mut line = 0u64;
    g.bench_function("miss_unpartitioned", |b| {
        b.iter(|| {
            line = line.wrapping_add(1);
            black_box(l2.access(0, line * 64))
        })
    });

    // Miss path with quota enforcement active.
    let mut l2 = PartitionedL2::new(cfg, 4);
    l2.set_targets(&[16, 16, 16, 16]);
    let mut line = 0u64;
    g.bench_function("miss_partitioned", |b| {
        b.iter(|| {
            line = line.wrapping_add(1);
            black_box(l2.access((line % 4) as usize, line * 64))
        })
    });
    g.finish();
}

fn l1_access(c: &mut Criterion) {
    let mut l1 = SetAssocCache::new(CacheConfig::new(8 * 1024, 4, 64));
    l1.access(0);
    c.bench_function("l1_hit", |b| b.iter(|| black_box(l1.access(0))));
}

fn umon_observe(c: &mut Criterion) {
    let cfg = CacheConfig::new(1024 * 1024, 64, 64);
    let mut m = UtilityMonitor::new(&cfg, 4, 4);
    let mut line = 0u64;
    c.bench_function("umon_observe", |b| {
        b.iter(|| {
            line = line.wrapping_add(97);
            m.observe((line % 4) as usize, (line % 10_000) * 64);
        })
    });
}

fn zipf_sampling(c: &mut Criterion) {
    let z = Zipf::new(16 * 1024, 0.7);
    let mut rng = Xoshiro256::seed_from_u64(1);
    c.bench_function("zipf_sample", |b| b.iter(|| black_box(z.sample(&mut rng))));
}

fn spline_ops(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=16).map(|i| i as f64 * 4.0).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 20.0 / (1.0 + x / 8.0)).collect();
    c.bench_function("spline_fit_16_knots", |b| {
        b.iter(|| CubicSpline::fit(black_box(&xs), black_box(&ys)).unwrap())
    });
    let s = CubicSpline::fit(&xs, &ys).unwrap();
    c.bench_function("spline_eval", |b| b.iter(|| black_box(s.eval(black_box(23.5)))));
}

fn model_update(c: &mut Criterion) {
    c.bench_function("cpi_model_observe_refit", |b| {
        b.iter_batched(
            || {
                let mut m = ThreadCpiModel::new();
                for w in [8u32, 16, 24, 32, 48] {
                    m.observe(w, 20.0 - w as f64 / 4.0);
                }
                m
            },
            |mut m| {
                m.observe(40, 9.5);
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn policy_decisions(c: &mut Criterion) {
    use icp_cmp_sim::simulator::{IntervalReport, ThreadIntervalStats};
    use icp_cmp_sim::stats::ThreadCounters;

    let report = |cpis: &[f64], ways: &[u32]| -> IntervalReport {
        IntervalReport {
            index: 3,
            threads: cpis
                .iter()
                .zip(ways)
                .map(|(&cpi, &w)| ThreadIntervalStats {
                    counters: ThreadCounters {
                        instructions: 100_000,
                        active_cycles: (cpi * 100_000.0) as u64,
                        ..Default::default()
                    },
                    cpi,
                    ways: w,
                })
                .collect(),
            finished: false,
            wall_cycles: 0,
        }
    };

    c.bench_function("cpi_proportional_decision", |b| {
        let mut p = CpiProportionalPolicy::new();
        let r = report(&[8.0, 3.0, 5.0, 2.0], &[16; 4]);
        b.iter(|| black_box(p.repartition(&r, 64)))
    });

    c.bench_function("model_based_decision_warm", |b| {
        // Warm a policy with enough history that the hill-climb actually
        // runs, then measure the per-boundary decision cost.
        let mut p = ModelBasedPolicy::new();
        let mut ways = vec![16u32; 4];
        for i in 0..6 {
            let cpis = [8.0 - i as f64 * 0.3, 3.0, 5.0, 2.0];
            let r = report(&cpis, &ways);
            if let icp_core::PartitionDecision::Partition(w) = p.repartition(&r, 64) {
                ways = w;
            }
        }
        let r = report(&[6.5, 3.1, 4.9, 2.1], &ways);
        b.iter(|| black_box(p.repartition(&r, 64)))
    });
}

fn whole_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("whole_run");
    g.sample_size(10);
    let cfg = SystemConfig::scaled_down();
    g.bench_function("swim_model_based_test_scale", |b| {
        b.iter(|| {
            let bench = suite::swim();
            let streams = bench.build_streams(&cfg, WorkloadScale::Test, 42);
            let mut sim = Simulator::new(cfg, streams);
            let mut rt = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg);
            black_box(rt.execute(&mut sim).wall_cycles)
        })
    });
    g.bench_function("stream_generation_only", |b| {
        b.iter(|| {
            let bench = suite::swim();
            black_box(bench.build_streams(&cfg, WorkloadScale::Test, 42).len())
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    l2_access,
    l1_access,
    umon_observe,
    zipf_sampling,
    spline_ops,
    model_update,
    policy_decisions,
    whole_simulation
);
criterion_main!(micro);
