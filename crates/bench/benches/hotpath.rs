//! Hot-path throughput bench: `cargo bench -p icp-bench --bench hotpath`.
//!
//! Self-contained harness (no external bench framework): runs the sixteen
//! tracked scenarios from `icp_experiments::hotpath` several times and
//! reports best/median accesses-per-second. The canonical tracked numbers
//! come from `cargo run --release --bin bench_hotpath`, which writes
//! `BENCH_hotpath.json` at the repo root; this bench is the quick
//! interactive front-end over the same scenario code.

use icp_experiments::hotpath::{
    gen_only, gen_packed, interleaved_4t, l2_miss_prefetch, pipeline_4t, pipeline_packed,
    sharded_4t, sharded_packed_4t, single_access, sliced_16t, sliced_16t_serial, sliced_64t,
    suite_figures, suite_figures_warm, sweep_axis, sweep_axis_warm, HotpathResult,
};

const EVENTS_PER_THREAD: usize = 500_000;
const RUNS: usize = 5;

fn bench(name: &str, f: fn(usize) -> HotpathResult) {
    let mut rates: Vec<f64> = (0..RUNS).map(|_| f(EVENTS_PER_THREAD).accesses_per_sec()).collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name:<18} best {:>12.0} acc/s   median {:>12.0} acc/s   ({RUNS} runs × {EVENTS_PER_THREAD} events/thread)",
        rates[RUNS - 1],
        rates[RUNS / 2],
    );
}

fn main() {
    // `cargo bench` passes `--bench`; a `--quick` flag (or any filter we
    // don't understand) is ignored, matching libtest's permissiveness.
    bench("single_access", single_access);
    bench("l2_miss_prefetch", l2_miss_prefetch);
    bench("interleaved_4t", interleaved_4t);
    bench("gen_only", gen_only);
    bench("gen_packed", gen_packed);
    bench("pipeline_4t", pipeline_4t);
    bench("pipeline_packed", pipeline_packed);
    bench("sharded_4t", sharded_4t);
    bench("sharded_packed_4t", sharded_packed_4t);
    bench("sliced_16t", sliced_16t);
    bench("sliced_16t_serial", sliced_16t_serial);
    bench("sliced_64t", sliced_64t);
    bench("sweep_axis", sweep_axis);
    bench("sweep_axis_warm", sweep_axis_warm);
    bench("suite_figures", suite_figures);
    bench("suite_figures_warm", suite_figures_warm);
}
