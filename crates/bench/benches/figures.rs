//! One Criterion benchmark per reproduced paper figure/table.
//!
//! Each bench measures the wall time of regenerating the figure at test
//! scale and — once per process — prints the figure's rows, so `cargo
//! bench` output doubles as a reproduction report.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use icp_experiments::figures::{self, SuiteData};
use icp_experiments::runner::ExperimentConfig;
use icp_experiments::table::Table;

fn print_once(once: &'static Once, table: &Table) {
    once.call_once(|| println!("\n{}", table.render()));
}

fn bench_cfg() -> ExperimentConfig {
    ExperimentConfig::test()
}

fn fig02(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let cfg = bench_cfg();
    c.bench_function("fig02_config", |b| {
        b.iter(|| {
            let t = figures::fig02_config(&cfg.system);
            print_once(&ONCE, &t);
            t
        })
    });
}

/// The motivation and headline-comparison figures share one suite
/// collection; each bench then measures the figure extraction itself.
fn motivation_figures(c: &mut Criterion) {
    let cfg = bench_cfg();
    let data = SuiteData::collect(&cfg);

    macro_rules! fig_bench {
        ($c:expr, $name:literal, $f:path) => {{
            static ONCE: Once = Once::new();
            $c.bench_function($name, |b| {
                b.iter(|| {
                    let t = $f(&data);
                    print_once(&ONCE, &t);
                    t
                })
            });
        }};
    }

    fig_bench!(c, "fig03_thread_performance", figures::fig03_thread_performance);
    fig_bench!(c, "fig04_thread_misses", figures::fig04_thread_misses);
    fig_bench!(c, "fig05_cpi_miss_correlation", figures::fig05_cpi_miss_correlation);
    fig_bench!(c, "fig06_swim_cpi_timeline", figures::fig06_swim_cpi_timeline);
    fig_bench!(c, "fig07_swim_miss_timeline", figures::fig07_swim_miss_timeline);
    fig_bench!(c, "fig08_interthread_interaction", figures::fig08_interthread_interaction);
    fig_bench!(c, "fig09_interaction_breakdown", figures::fig09_interaction_breakdown);
    fig_bench!(c, "fig19_vs_private", figures::fig19_vs_private);
    fig_bench!(c, "fig20_vs_shared", figures::fig20_vs_shared);
    fig_bench!(c, "fig21_vs_throughput", figures::fig21_vs_throughput);
}

/// Figures that run their own simulations (whole-run benches; sampled
/// lightly because each iteration is a full simulation).
fn simulation_figures(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("simulation_figures");
    g.sample_size(10);

    macro_rules! sim_bench {
        ($g:expr, $name:literal, $f:path) => {{
            static ONCE: Once = Once::new();
            $g.bench_function($name, |b| {
                b.iter(|| {
                    let t = $f(&cfg);
                    print_once(&ONCE, &t);
                    t
                })
            });
        }};
    }

    sim_bench!(g, "fig10_way_sensitivity", figures::fig10_way_sensitivity);
    sim_bench!(g, "fig11_progress", figures::fig11_progress_illustration);
    sim_bench!(g, "fig15_cpi_models", figures::fig15_cpi_models);
    sim_bench!(g, "fig18_cg_snapshot", figures::fig18_cg_snapshot);
    sim_bench!(g, "fig22_eight_core", figures::fig22_eight_core);
    g.finish();
}

criterion_group!(figures_benches, fig02, motivation_figures, simulation_figures);
criterion_main!(figures_benches);
