//! The CMP simulator: cores, memory hierarchy, barriers and execution
//! intervals.
//!
//! Each core is a blocking in-order pipeline: non-memory instructions retire
//! one per cycle; a memory instruction stalls for the hierarchy latency
//! (L1 hit / L2 hit / memory). Cores advance under a deterministic
//! *min-clock* discipline — the core with the smallest local clock processes
//! its next event — which interleaves accesses to the shared L2 in global
//! time order, the standard approach for trace-driven multi-core cache
//! simulation.
//!
//! Execution is divided into *intervals* of a configurable number of retired
//! instructions (summed over threads; the paper uses 15 M). At each interval
//! boundary [`Simulator::run_interval`] returns per-thread counters so a
//! runtime system can repartition the L2 — the control loop of the paper's
//! Figure 17 (cache/CPI monitor → partition engine → configuration unit).

use crate::cache::SetAssocCache;
use crate::config::{L2Geometry, SystemConfig};
use crate::l2::PartitionedL2;
use crate::packed::PackedBlock;
use crate::stats::{GlobalStats, ThreadCounters};
use crate::stream::{AccessStream, ThreadEvent};
use crate::umon::UtilityMonitor;
use crate::victim::VictimCache;
use crate::ThreadId;
use icp_hot_path::{deterministic, hot_path};

/// Per-thread statistics for one execution interval.
#[derive(Clone, Copy, Debug)]
pub struct ThreadIntervalStats {
    /// Counter deltas over the interval.
    pub counters: ThreadCounters,
    /// Cycles-per-instruction over the interval (active cycles only).
    pub cpi: f64,
    /// The L2 way quota this thread had during the interval (equal share in
    /// unpartitioned mode, for reporting purposes).
    pub ways: u32,
}

/// What the runtime sees at an interval boundary.
#[derive(Clone, Debug)]
pub struct IntervalReport {
    /// 0-based interval index.
    pub index: usize,
    /// Per-thread interval statistics.
    pub threads: Vec<ThreadIntervalStats>,
    /// True if the whole workload retired during this interval; no further
    /// intervals will run.
    pub finished: bool,
    /// Wall-clock cycles so far (max over core clocks).
    pub wall_cycles: u64,
}

impl IntervalReport {
    /// Index of the critical path thread: the highest-CPI thread of the
    /// interval (ties broken toward the lower thread id).
    pub fn critical_thread(&self) -> ThreadId {
        self.threads
            .iter()
            .enumerate()
            .max_by(|(i, a), (j, b)| a.cpi.total_cmp(&b.cpi).then(j.cmp(i)))
            .map(|(i, _)| i)
            .expect("at least one thread")
    }

    /// Overall CPI of the interval: total active cycles / total
    /// instructions (the "Overall CPI" column of the paper's Figure 18).
    pub fn overall_cpi(&self) -> f64 {
        let insts: u64 = self.threads.iter().map(|t| t.counters.instructions).sum();
        if insts == 0 {
            return 0.0;
        }
        let cycles: u64 = self.threads.iter().map(|t| t.counters.active_cycles).sum();
        cycles as f64 / insts as f64
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CoreStatus {
    Running,
    AtBarrier,
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct CoreState {
    clock: u64,
    status: CoreStatus,
}

/// Events requested per stream refill (advisory — see
/// [`AccessStream::next_block`]; block-native streams such as the pipelined
/// producer may deliver more). Big enough to amortise the virtual call and
/// let generators batch their work; small enough that a ring stays
/// cache-resident (256 events x ~14 B of columns ≈ 3.6 KB).
const EVENT_BATCH: usize = 256;

/// Entries in the per-`mlp_tenths` miss-latency table. Valid workload specs
/// keep `mlp` in `[1, 16]` (so `mlp_tenths <= 160`); 256 leaves headroom for
/// hand-built streams while the table still fits in four cache lines.
const MISS_LUT_SIZE: usize = 256;

/// A per-core buffer of prefetched stream events in packed column form.
/// Streams are generation-only (nothing the simulator does feeds back into
/// them), so pulling events ahead of consumption cannot change any
/// simulated outcome — the `batch_equivalence` integration suite pins this
/// down. Refills go through [`AccessStream::next_block`], so a pipelined
/// producer's blocks land here by ownership swap — no event copies between
/// generator and simulator.
#[derive(Clone, Debug)]
struct EventRing {
    /// The block being drained (columns read in place).
    block: PackedBlock,
    /// Accesses consumed from `block`.
    pos: usize,
    /// Barriers consumed from `block`.
    nb: usize,
}

impl EventRing {
    fn new() -> Self {
        EventRing { block: PackedBlock::default(), pos: 0, nb: 0 }
    }

    /// Every event of the current block has been delivered.
    #[inline]
    fn drained(&self) -> bool {
        self.pos >= self.block.accesses() && self.nb >= self.block.barrier_count()
    }
}

/// The simulated CMP.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::stream::ReplayStream;
/// use icp_cmp_sim::{Simulator, SystemConfig, ThreadEvent};
///
/// let mut cfg = SystemConfig::scaled_down();
/// cfg.cores = 2;
/// let walk = |stride: u64| -> ReplayStream {
///     ReplayStream::new((0..100).map(|i| ThreadEvent::access(3, i * stride * 64)).collect())
/// };
/// let mut sim = Simulator::new(cfg, vec![Box::new(walk(1)), Box::new(walk(7))]);
/// sim.set_partition(&[48, 16]); // thread 0 gets 48 of 64 ways
/// while let Some(report) = sim.run_interval() {
///     if report.finished {
///         break;
///     }
/// }
/// assert!(sim.wall_cycles() > 0);
/// ```
///
/// The stream type defaults to boxed trait objects (heterogeneous streams,
/// the common case); instantiating with a concrete `Send` stream type such
/// as [`crate::packed::PackedReplayStream`] yields a `Send` simulator that
/// worker threads can own — the foundation of
/// [`crate::shard::ShardedSimulator`].
pub struct Simulator<S = Box<dyn AccessStream>> {
    cfg: SystemConfig,
    /// Shift/mask address math for the L2 geometry (shared line size with
    /// the L1s, per [`SystemConfig::validate`]).
    geom: L2Geometry,
    pub(crate) l1s: Vec<SetAssocCache>,
    pub(crate) l2: PartitionedL2,
    umon: Option<UtilityMonitor>,
    streams: Vec<S>,
    /// One prefetched-event ring per core (see [`EventRing`]).
    rings: Vec<EventRing>,
    cores: Vec<CoreState>,
    stats: GlobalStats,
    /// Snapshot of cumulative counters at the last interval boundary.
    interval_base: Vec<ThreadCounters>,
    total_instructions: u64,
    next_boundary: u64,
    interval_index: usize,
    done: bool,
    /// Cores whose status is `Finished`. A core never leaves that state,
    /// so a counter maintained at the single transition site replaces the
    /// per-event "are we done?" scans over all cores.
    finished_cores: usize,
    /// Stream events consumed so far (accesses + barriers + finishes) —
    /// the denominator of the [`crate::perf`] events/sec rate.
    events_processed: u64,
    /// Precomputed L2-miss stall (`l2_hit + max(1, memory*10/mlp_tenths)`)
    /// indexed by `mlp_tenths`; values past the table fall back to the
    /// division. Replaces a 64-bit divide on every demand miss.
    miss_latency_lut: [u64; MISS_LUT_SIZE],
    /// Per-bank "busy until" cycle; empty when banking is disabled.
    bank_busy_until: Vec<u64>,
    /// `l2_banks - 1`: bank count is a power of two (validated), so the
    /// set-to-bank stripe is a mask instead of a modulo.
    bank_mask: u64,
    /// Optional victim cache behind the L2.
    victim: Option<VictimCache>,
}

impl Simulator {
    /// Builds a simulator for `cfg` with one boxed access stream per core.
    ///
    /// # Panics
    /// Panics if the stream count doesn't match `cfg.cores` or the config is
    /// invalid.
    pub fn new(cfg: SystemConfig, streams: Vec<Box<dyn AccessStream>>) -> Self {
        Simulator::from_streams(cfg, streams)
    }
}

impl<S: AccessStream> Simulator<S> {
    /// Builds a simulator for `cfg` with one access stream per core, keeping
    /// the concrete stream type (use [`Simulator::new`] for the boxed
    /// default).
    ///
    /// # Panics
    /// Panics if the stream count doesn't match `cfg.cores` or the config is
    /// invalid.
    pub fn from_streams(cfg: SystemConfig, streams: Vec<S>) -> Self {
        cfg.validate();
        assert_eq!(streams.len(), cfg.cores, "one stream per core");
        Simulator {
            cfg,
            geom: cfg.l2.geometry(),
            l1s: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: PartitionedL2::new(cfg.l2, cfg.cores),
            umon: None,
            streams,
            rings: vec![EventRing::new(); cfg.cores],
            cores: vec![CoreState { clock: 0, status: CoreStatus::Running }; cfg.cores],
            stats: GlobalStats::new(cfg.cores),
            interval_base: vec![ThreadCounters::default(); cfg.cores],
            total_instructions: 0,
            next_boundary: cfg.interval_instructions,
            interval_index: 0,
            done: false,
            finished_cores: 0,
            events_processed: 0,
            miss_latency_lut: {
                let mut lut = [0u64; MISS_LUT_SIZE];
                for (m, slot) in lut.iter_mut().enumerate() {
                    let dram = (cfg.latency.memory * 10) / (m.max(1) as u64);
                    *slot = cfg.latency.l2_hit + dram.max(1);
                }
                lut
            },
            bank_busy_until: vec![0; cfg.l2_banks as usize],
            bank_mask: (cfg.l2_banks as u64).saturating_sub(1),
            victim: (cfg.victim_cache_lines > 0)
                .then(|| VictimCache::new(cfg.victim_cache_lines as usize)),
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Attaches a utility monitor sampling one in `sample_every` L2 sets
    /// (used by UCP-style baselines; the paper's own scheme does not need
    /// it).
    pub fn enable_umon(&mut self, sample_every: u64) {
        self.umon = Some(UtilityMonitor::new(&self.cfg.l2, self.cfg.cores, sample_every));
    }

    /// The attached utility monitor, if enabled.
    pub fn umon(&self) -> Option<&UtilityMonitor> {
        self.umon.as_ref()
    }

    /// Mutable access to the utility monitor (e.g. to reset counters at an
    /// interval boundary).
    pub fn umon_mut(&mut self) -> Option<&mut UtilityMonitor> {
        self.umon.as_mut()
    }

    /// Applies a way partition to the shared L2 (takes effect gradually via
    /// replacement, per §V).
    pub fn set_partition(&mut self, targets: &[u32]) {
        self.l2.set_targets(targets);
    }

    /// Reverts the L2 to plain shared (global LRU) operation.
    pub fn set_unpartitioned(&mut self) {
        self.l2.set_unpartitioned();
    }

    /// Selects the L2 replacement policy (exact LRU by default; tree PLRU
    /// for hardware realism — see [`crate::l2::ReplacementKind`]).
    pub fn set_replacement(&mut self, kind: crate::l2::ReplacementKind) {
        self.l2.set_replacement(kind);
    }

    /// Selects how partitions take effect (gradual replacement vs instant
    /// reconfiguration — see [`crate::l2::EnforcementKind`]).
    pub fn set_enforcement(&mut self, kind: crate::l2::EnforcementKind) {
        self.l2.set_enforcement(kind);
    }

    /// Applies a set partition (page-coloring style) instead of a way
    /// partition — see [`crate::l2::PartitionedL2::set_set_partition`].
    pub fn set_set_partition(&mut self, quotas: &[u32]) {
        self.l2.set_set_partition(quotas);
    }

    /// The shared L2 (stats, quotas, invariant checks).
    pub fn l2(&self) -> &PartitionedL2 {
        &self.l2
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Wall-clock cycles: the maximum core clock.
    pub fn wall_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.clock).max().unwrap_or(0)
    }

    /// Core `t`'s local clock (cycles it has simulated so far). The shard
    /// merge sums these across slices to reconstitute a per-core clock.
    ///
    /// # Panics
    /// Panics if `t` is not a valid core index.
    pub fn core_clock(&self, t: ThreadId) -> u64 {
        self.cores[t].clock
    }

    /// Whether every thread has finished.
    pub fn is_finished(&self) -> bool {
        self.done
    }

    /// Runs until the next interval boundary (or workload completion) and
    /// returns the interval's per-thread statistics. Returns `None` once
    /// the workload has already completed.
    #[deterministic]
    pub fn run_interval(&mut self) -> Option<IntervalReport> {
        if self.done {
            return None;
        }
        let cores_total = self.cores.len();
        loop {
            // Choose the runnable core with the smallest clock. The manual
            // strict-`<` sweep keeps the tie-break deterministic (first
            // minimum = lowest id) without building `(clock, id)` keys per
            // candidate on every event. The runner-up clock is tracked
            // alongside so the inner loop below can skip re-sweeping.
            let mut t = usize::MAX;
            let mut best = u64::MAX;
            let mut second = u64::MAX;
            for (i, c) in self.cores.iter().enumerate() {
                if c.status == CoreStatus::Running {
                    if c.clock < best {
                        second = best;
                        best = c.clock;
                        t = i;
                    } else if c.clock < second {
                        second = c.clock;
                    }
                }
            }

            if t == usize::MAX {
                // Nobody runnable: either everyone finished, or every
                // unfinished thread is parked at the barrier.
                if self.finished_cores == cores_total {
                    self.done = true;
                    return Some(self.make_report(true));
                }
                self.release_barrier();
                continue;
            }

            // Monotonic fast path: stepping a core only raises its own
            // clock, so `t` stays the sweep's unique choice while its clock
            // is strictly below the runner-up's. Re-sweep on a status
            // change or once the clocks touch (`>=`, so ties go back
            // through the sweep's lowest-id break).
            loop {
                self.step_core(t);

                if self.total_instructions >= self.next_boundary {
                    self.next_boundary += self.cfg.interval_instructions;
                    let all_done = self.finished_cores == cores_total;
                    if all_done {
                        self.done = true;
                    }
                    return Some(self.make_report(all_done));
                }
                if self.finished_cores == cores_total {
                    self.done = true;
                    return Some(self.make_report(true));
                }
                let c = &self.cores[t];
                if c.status != CoreStatus::Running || c.clock >= second {
                    break;
                }
            }
        }
    }

    /// Runs every remaining interval, invoking `on_interval` at each
    /// boundary; the callback may inspect the report and repartition.
    /// Returns total wall cycles at completion.
    pub fn run_to_completion<F: FnMut(&mut Self, &IntervalReport)>(
        &mut self,
        mut on_interval: F,
    ) -> u64 {
        while let Some(report) = self.run_interval() {
            // Take the callback after the borrow of `self` from run_interval
            // ends; pass self back in for repartitioning.
            let r = report;
            on_interval(self, &r);
        }
        self.wall_cycles()
    }

    /// Stream events consumed so far (accesses, barriers and finishes),
    /// summed over cores — the denominator of the [`crate::perf`]
    /// events/sec rate.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Processes one event of core `t`.
    #[hot_path]
    fn step_core(&mut self, t: ThreadId) {
        // Shadow-verify the caches at every block boundary: the ring is
        // about to refill, so the check runs once per block per core.
        // O(cache size) — the feature's documented cost.
        #[cfg(feature = "sanitize")]
        if self.rings[t].drained() && !self.rings[t].block.finished() {
            self.sanitize_batch_check();
        }
        // Refill this core's ring when drained; `rings` and `streams` are
        // disjoint fields, so the stream swaps its block straight into the
        // ring.
        let ring = &mut self.rings[t];
        if ring.drained() && !ring.block.finished() {
            self.streams[t].next_block(&mut ring.block, EVENT_BATCH);
            ring.pos = 0;
            ring.nb = 0;
            if ring.block.is_empty() && !ring.block.finished() {
                // An empty unfinished block: the stream has nothing left
                // (only possible for non-conforming streams; the trait
                // contract reserves that shape for `cap == 0`).
                ring.block.set_finished(true);
            }
        }
        let event = if ring.nb < ring.block.barrier_count()
            && ring.block.barrier_at(ring.nb) == ring.pos
        {
            ring.nb += 1;
            ThreadEvent::Barrier
        } else if ring.pos < ring.block.accesses() {
            let e = ring.block.access_at(ring.pos);
            ring.pos += 1;
            e
        } else {
            // Drained and finished: the block-level stand-in for the
            // in-band `Finished` event.
            ThreadEvent::Finished
        };
        self.events_processed += 1;
        match event {
            ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                let gap = gap as u64;
                self.total_instructions += gap + 1;
                let mut latency = self.cfg.latency.l1_hit;
                let l1_res = self.l1s[t].access_rw(addr, write);
                // L2 bank contention: the access occupies its bank for the
                // L2 service time; arriving while the bank is busy stalls
                // the core until it frees. (Prefetch fills are assumed to
                // use spare bandwidth and don't reserve banks.)
                if !l1_res.hit && !self.bank_busy_until.is_empty() {
                    // Power-of-two bank count (validated) makes the stripe a
                    // mask; a single bank needs no address math at all.
                    let bank = if self.bank_busy_until.len() == 1 {
                        0
                    } else {
                        (self.geom.set_index(addr) & self.bank_mask) as usize
                    };
                    let arrive = self.cores[t].clock + gap + self.cfg.latency.l1_hit;
                    let start = arrive.max(self.bank_busy_until[bank]);
                    latency += start - arrive;
                    self.bank_busy_until[bank] = start + self.cfg.latency.l2_hit;
                }
                // Write-invalidate coherence: a store kills every other
                // L1's copy of the line (timing-free MSI approximation —
                // invalidation traffic rides the existing interconnect).
                if write && self.cfg.coherence {
                    let mut invalidated = 0u64;
                    for (o, l1) in self.l1s.iter_mut().enumerate() {
                        if o != t && l1.probe(addr) {
                            let _dirty = l1.invalidate(addr);
                            invalidated += 1;
                        }
                    }
                    self.stats.threads[t].coherence_invalidations += invalidated;
                }
                // Statistic deltas accumulate in locals and fold into the
                // thread's counter row once at the end: one indexed access
                // per event instead of one per statistic.
                let mut d_l1_hits = 0u64;
                let mut d_l1_misses = 0u64;
                let mut d_l2_hits = 0u64;
                let mut d_l2_misses = 0u64;
                let mut d_prefetch_hits = 0u64;
                let mut d_victim_hits = 0u64;
                let mut d_prefetch_fills = 0u64;
                let mut d_l1_writebacks = 0u64;
                let mut d_l2_writebacks = 0u64;
                if l1_res.hit {
                    d_l1_hits = 1;
                } else {
                    d_l1_misses = 1;
                    if let Some(umon) = self.umon.as_mut() {
                        umon.observe(t, addr);
                    }
                    let res = self.l2.access_rw(t, addr, false);
                    // Victim-cache probe on a demand miss: a hit recovers
                    // the line at L2-hit latency instead of DRAM.
                    let line_addr = self.geom.line_addr(addr);
                    let victim_hit = !res.hit
                        && self
                            .victim
                            .as_mut()
                            .and_then(|v| v.take(line_addr))
                            .is_some();
                    if res.hit {
                        d_l2_hits = 1;
                        d_prefetch_hits = res.prefetched_hit as u64;
                        latency += self.cfg.latency.l2_hit;
                    } else if victim_hit {
                        // The line was already re-installed in the L2 by the
                        // demand fill above; only the timing differs.
                        d_victim_hits = 1;
                        d_l2_misses = 1;
                        latency += self.cfg.latency.l2_hit;
                    } else {
                        d_l2_misses = 1;
                        // The DRAM portion of a miss is divided by the
                        // access's memory-level parallelism: overlapped
                        // (streaming/prefetched) misses cost less stall
                        // per miss. Precomputed per `mlp_tenths` at
                        // construction; out-of-table values re-derive it.
                        latency += if (mlp_tenths as usize) < MISS_LUT_SIZE {
                            self.miss_latency_lut[mlp_tenths as usize]
                        } else {
                            let dram = (self.cfg.latency.memory * 10) / (mlp_tenths as u64);
                            self.cfg.latency.l2_hit + dram.max(1)
                        };
                        // Sequential prefetcher: pull in the next lines off
                        // the critical path.
                        for i in 1..=self.cfg.prefetch_degree as u64 {
                            let paddr = addr + (i << self.geom.line_shift);
                            let pres = self.l2.prefetch_fill(t, paddr);
                            d_prefetch_fills += !pres.hit as u64;
                            if let Some(victim) = pres.evicted_line {
                                self.on_l2_eviction(victim);
                            }
                            d_l2_writebacks += pres.wrote_back as u64;
                        }
                    }
                    if let Some(victim) = res.evicted_line {
                        self.on_l2_eviction(victim);
                        if let Some(vc) = self.victim.as_mut() {
                            vc.insert(victim, t);
                        }
                    }
                    d_l2_writebacks += res.wrote_back as u64;
                }
                // A dirty L1 victim is written back into the L2 off the
                // critical path (write-buffer assumption: no added stall,
                // but it occupies L2 state and counts as write traffic).
                if let Some(wb_addr) = l1_res.writeback {
                    d_l1_writebacks = 1;
                    let res = self.l2.access_rw(t, wb_addr, true);
                    if let Some(victim) = res.evicted_line {
                        self.on_l2_eviction(victim);
                    }
                    d_l2_writebacks += res.wrote_back as u64;
                }
                let counters = &mut self.stats.threads[t];
                counters.instructions += gap + 1;
                counters.active_cycles += gap + latency;
                counters.l1_hits += d_l1_hits;
                counters.l1_misses += d_l1_misses;
                counters.l2_hits += d_l2_hits;
                counters.l2_misses += d_l2_misses;
                counters.prefetch_hits += d_prefetch_hits;
                counters.victim_hits += d_victim_hits;
                counters.prefetch_fills += d_prefetch_fills;
                counters.l1_writebacks += d_l1_writebacks;
                counters.l2_writebacks += d_l2_writebacks;
                self.cores[t].clock += gap + latency;
            }
            ThreadEvent::Barrier => {
                self.cores[t].status = CoreStatus::AtBarrier;
            }
            ThreadEvent::Finished => {
                self.cores[t].status = CoreStatus::Finished;
                self.finished_cores += 1;
            }
        }
    }

    /// Inclusive-hierarchy bookkeeping for an L2 eviction: back-invalidate
    /// the line in every private L1 (no-op for the default non-inclusive
    /// hierarchy).
    fn on_l2_eviction(&mut self, line_addr: u64) {
        if !self.cfg.inclusive {
            return;
        }
        for l1 in &mut self.l1s {
            // A dirty copy in an L1 is silently dropped with its line;
            // real hardware would forward it to memory — the traffic is
            // already accounted as an L2 writeback when the L2 copy was
            // dirty, which the L1 store made it via the write-through of
            // our write-allocate model on the earlier writeback.
            let _ = l1.invalidate(line_addr);
        }
    }

    /// Releases all barrier-parked threads at the latest arrival time,
    /// charging each the slack it spent waiting.
    fn release_barrier(&mut self) {
        let release = self
            .cores
            .iter()
            .filter(|c| c.status == CoreStatus::AtBarrier)
            .map(|c| c.clock)
            .max()
            .expect("release_barrier called with no parked threads");
        for (t, core) in self.cores.iter_mut().enumerate() {
            if core.status == CoreStatus::AtBarrier {
                self.stats.threads[t].barrier_stall_cycles += release - core.clock;
                core.clock = release;
                core.status = CoreStatus::Running;
            }
        }
    }

    /// Builds the report for the interval that just ended and rolls the
    /// snapshot forward.
    fn make_report(&mut self, finished: bool) -> IntervalReport {
        let equal = crate::l2::equal_split(self.cfg.l2.ways, self.cfg.cores);
        let threads: Vec<ThreadIntervalStats> = (0..self.cfg.cores)
            .map(|t| {
                let delta = self.stats.threads[t].delta_since(&self.interval_base[t]);
                let ways = match self.l2.mode() {
                    crate::l2::PartitionMode::Partitioned
                    | crate::l2::PartitionMode::SetPartitioned => self.l2.targets()[t],
                    crate::l2::PartitionMode::Unpartitioned => equal[t],
                };
                ThreadIntervalStats { counters: delta, cpi: delta.cpi(), ways }
            })
            .collect();
        self.interval_base = self.stats.threads.clone();
        // Interaction stats are cumulative in the L2; mirror them into the
        // global stats so callers have one place to look.
        self.stats.interactions = *self.l2.interactions();
        let report = IntervalReport {
            index: self.interval_index,
            threads,
            finished,
            wall_cycles: self.wall_cycles(),
        };
        self.interval_index += 1;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, LatencyConfig};
    use crate::stream::ReplayStream;

    fn tiny_cfg() -> SystemConfig {
        SystemConfig {
            cores: 2,
            l1: CacheConfig::new(2 * 64 * 2, 2, 64), // 2 sets x 2 ways
            l2: CacheConfig::new(4 * 64 * 4, 4, 64), // 4 sets x 4 ways
            llc: Default::default(),
            latency: LatencyConfig { l1_hit: 1, l2_hit: 10, memory: 100 },
            interval_instructions: 1000,
            inclusive: false,
            coherence: false,
            prefetch_degree: 0,
            l2_banks: 0,
            victim_cache_lines: 0,
        }
    }

    fn access(gap: u32, addr: u64) -> ThreadEvent {
        ThreadEvent::access(gap, addr)
    }

    #[test]
    fn single_access_timing() {
        let cfg = tiny_cfg();
        let s0 = ReplayStream::new(vec![access(4, 0)]);
        let s1 = ReplayStream::new(vec![]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().expect("one interval");
        assert!(r.finished);
        let t0 = &r.threads[0].counters;
        // 4 gap instructions + 1 memory instruction.
        assert_eq!(t0.instructions, 5);
        // 4 gap cycles + L1 miss -> L2 miss: 1 + 10 + 100.
        assert_eq!(t0.active_cycles, 4 + 111);
        assert_eq!(t0.l1_misses, 1);
        assert_eq!(t0.l2_misses, 1);
    }

    #[test]
    fn l1_hit_is_cheap() {
        let cfg = tiny_cfg();
        let s0 = ReplayStream::new(vec![access(0, 0), access(0, 0)]);
        let s1 = ReplayStream::new(vec![]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        let t0 = &r.threads[0].counters;
        assert_eq!(t0.l1_hits, 1);
        // Miss (111) + hit (1).
        assert_eq!(t0.active_cycles, 112);
    }

    #[test]
    fn l2_hit_latency() {
        let cfg = tiny_cfg();
        // Two addresses in the same L1 set (L1 has 2 sets: line stride 64,
        // set = line & 1). Lines 0, 2, 4 all land in L1 set 0; three of them
        // overflow the 2-way L1 but fit in the 4-way L2 set 0 (L2 has 4
        // sets: lines 0, 4, 8 -> set 0).
        let s0 = ReplayStream::new(vec![
            access(0, 0),
            access(0, 4 * 64),
            access(0, 8 * 64),
            access(0, 0), // L1 miss (evicted), L2 hit
        ]);
        let s1 = ReplayStream::new(vec![]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        let t0 = &r.threads[0].counters;
        assert_eq!(t0.l2_hits, 1);
        assert_eq!(t0.l2_misses, 3);
        assert_eq!(t0.active_cycles, 3 * 111 + 11);
    }

    #[test]
    fn barrier_synchronises_threads() {
        let cfg = tiny_cfg();
        // Thread 0: quick (1 access); thread 1: slow (3 accesses). Both then
        // hit a barrier and do one more access.
        let s0 = ReplayStream::new(vec![access(0, 0), ThreadEvent::Barrier, access(0, 64)]);
        let s1 = ReplayStream::new(vec![
            access(0, 1000 * 64),
            access(0, 1001 * 64),
            access(0, 1002 * 64),
            ThreadEvent::Barrier,
            access(0, 1003 * 64),
        ]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        assert!(r.finished);
        // Thread 0 waited for thread 1: stall = 3*111 - 1*111 = 222.
        assert_eq!(r.threads[0].counters.barrier_stall_cycles, 222);
        assert_eq!(r.threads[1].counters.barrier_stall_cycles, 0);
        // Wall clock: slow thread's 3 accesses + 1 post-barrier access each.
        assert_eq!(sim.wall_cycles(), 3 * 111 + 111);
    }

    #[test]
    fn cpi_excludes_barrier_stall() {
        let cfg = tiny_cfg();
        let s0 = ReplayStream::new(vec![access(0, 0), ThreadEvent::Barrier]);
        let s1 = ReplayStream::new(vec![
            access(0, 64 * 100),
            access(0, 64 * 101),
            access(0, 64 * 102),
            ThreadEvent::Barrier,
        ]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        // Thread 0 executed 1 instruction in 111 active cycles: CPI = 111
        // regardless of how long it waited at the barrier.
        assert!((r.threads[0].cpi - 111.0).abs() < 1e-12);
    }

    #[test]
    fn interval_boundaries_split_execution() {
        let mut cfg = tiny_cfg();
        cfg.interval_instructions = 10;
        // Thread 0 retires 5 instructions per event (gap 4 + 1).
        let events: Vec<ThreadEvent> = (0..8).map(|i| access(4, i * 64)).collect();
        let s0 = ReplayStream::new(events);
        let s1 = ReplayStream::new(vec![]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r0 = sim.run_interval().unwrap();
        assert_eq!(r0.index, 0);
        assert!(!r0.finished);
        assert_eq!(r0.threads[0].counters.instructions, 10);
        let r1 = sim.run_interval().unwrap();
        assert_eq!(r1.index, 1);
        assert_eq!(r1.threads[0].counters.instructions, 10);
        // 8 events x 5 instructions = 40 total: two more full intervals,
        // then a trailing (possibly empty) interval that retires the
        // Finished events.
        let mut total = 20;
        let mut finished = false;
        while let Some(r) = sim.run_interval() {
            total += r.threads[0].counters.instructions;
            finished = r.finished;
        }
        assert_eq!(total, 40);
        assert!(finished);
        assert!(sim.run_interval().is_none());
    }

    #[test]
    fn critical_thread_is_highest_cpi() {
        let cfg = tiny_cfg();
        // Thread 1 misses everywhere (high CPI); thread 0 hits L1.
        let s0 = ReplayStream::new(vec![access(0, 0), access(0, 0), access(0, 0)]);
        let s1 = ReplayStream::new(vec![
            access(0, 64 * 500),
            access(0, 64 * 600),
            access(0, 64 * 700),
        ]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        assert_eq!(r.critical_thread(), 1);
        assert!(r.threads[1].cpi > r.threads[0].cpi);
    }

    #[test]
    fn min_clock_interleaving_is_fair() {
        let cfg = tiny_cfg();
        // Both threads touch the same L2 set; with min-clock scheduling the
        // faster (all-hits) thread gets more accesses in per unit time, but
        // both make progress and the run is deterministic.
        let s0 = ReplayStream::new((0..10).map(|_| access(0, 0)).collect());
        let s1 = ReplayStream::new((0..10).map(|i| access(0, (100 + i) * 64)).collect());
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let a = sim.run_interval().unwrap();
        // Re-running the identical setup gives identical results.
        let s0 = ReplayStream::new((0..10).map(|_| access(0, 0)).collect());
        let s1 = ReplayStream::new((0..10).map(|i| access(0, (100 + i) * 64)).collect());
        let mut sim2 = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let b = sim2.run_interval().unwrap();
        assert_eq!(a.threads[0].counters, b.threads[0].counters);
        assert_eq!(a.threads[1].counters, b.threads[1].counters);
        assert_eq!(a.wall_cycles, b.wall_cycles);
    }

    #[test]
    fn partition_api_plumbs_through() {
        let cfg = tiny_cfg();
        let s0 = ReplayStream::new(vec![access(0, 0)]);
        let s1 = ReplayStream::new(vec![access(0, 64)]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        sim.set_partition(&[3, 1]);
        assert_eq!(sim.l2().targets(), &[3, 1]);
        let r = sim.run_interval().unwrap();
        assert_eq!(r.threads[0].ways, 3);
        assert_eq!(r.threads[1].ways, 1);
        sim.set_unpartitioned();
        assert_eq!(sim.l2().mode(), crate::l2::PartitionMode::Unpartitioned);
    }

    #[test]
    fn umon_observes_l2_accesses_only() {
        let cfg = tiny_cfg();
        let s0 = ReplayStream::new(vec![access(0, 0), access(0, 0), access(0, 0)]);
        let s1 = ReplayStream::new(vec![]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        sim.enable_umon(1);
        sim.run_interval();
        let umon = sim.umon().unwrap();
        // Only the first access reached L2 (the rest hit L1): 1 ATD miss.
        assert_eq!(umon.compulsory_capacity_misses(0), 1);
        assert_eq!(umon.hits_with_ways(0, 4), 0);
    }

    #[test]
    fn coherence_invalidates_peer_copies() {
        let mut cfg = tiny_cfg();
        cfg.coherence = true;
        // Both threads read line 0 (both L1s hold it), then thread 0
        // stores to it; a barrier orders the store before thread 1's
        // re-read, whose L1 copy must be gone (it still hits L2).
        let s0 = ReplayStream::new(vec![
            access(0, 0),
            ThreadEvent::Access { gap: 0, addr: 0, write: true, mlp_tenths: 10 },
            ThreadEvent::Barrier,
        ]);
        let s1 = ReplayStream::new(vec![access(0, 0), ThreadEvent::Barrier, access(5, 0)]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        assert_eq!(r.threads[0].counters.coherence_invalidations, 1);
        // Thread 1: first access misses L1 (hits L2 since t0 loaded it),
        // second access misses L1 again (invalidated), hits L2.
        assert_eq!(r.threads[1].counters.l1_misses, 2);
        assert_eq!(r.threads[1].counters.l2_hits, 2);
    }

    #[test]
    fn coherence_off_by_default_keeps_copies() {
        let cfg = tiny_cfg();
        let s0 = ReplayStream::new(vec![
            access(0, 0),
            ThreadEvent::Access { gap: 0, addr: 0, write: true, mlp_tenths: 10 },
        ]);
        let s1 = ReplayStream::new(vec![access(0, 0), access(5, 0)]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        assert_eq!(r.threads[0].counters.coherence_invalidations, 0);
        // Without coherence thread 1 keeps its copy: second access hits L1.
        assert_eq!(r.threads[1].counters.l1_hits, 1);
    }

    #[test]
    fn inclusive_back_invalidation_reaches_l1() {
        let mut cfg = tiny_cfg();
        cfg.inclusive = true;
        // L2 in tiny_cfg: 4 sets x 4 ways. Thread 0 loads line 0 into L1+L2,
        // then streams 4 more lines of L2 set 0 to evict line 0 from L2;
        // the back-invalidation must kill the (otherwise still-resident)
        // L1 copy, so re-reading line 0 misses L1.
        let evict: Vec<ThreadEvent> =
            (1..=4).map(|i| access(0, i * 4 * 64)).collect(); // L2 set 0
        let mut events = vec![access(0, 0)];
        events.extend(evict);
        events.push(access(0, 0));
        let s0 = ReplayStream::new(events);
        let s1 = ReplayStream::new(vec![]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        // All six accesses miss L1: line 0's L1 residency was revoked when
        // its L2 copy was evicted. (Lines 0,4,8,12,16 land in different L1
        // sets or evict each other anyway; the key assertion is the final
        // access is NOT an L1 hit.)
        assert_eq!(r.threads[0].counters.l1_hits, 0, "{:?}", r.threads[0].counters);
    }

    #[test]
    fn prefetcher_turns_sequential_misses_into_hits() {
        let mut cfg = tiny_cfg();
        cfg.prefetch_degree = 2;
        // A sequential walk: after the first miss, lines arrive ahead of
        // the demand stream.
        let events: Vec<ThreadEvent> = (0..8).map(|i| access(0, i * 64)).collect();
        let s1 = ReplayStream::new(vec![]);
        let mut sim = Simulator::new(cfg, vec![Box::new(ReplayStream::new(events.clone())), Box::new(s1)]);
        let r = sim.run_interval().unwrap();
        let c = &r.threads[0].counters;
        assert!(c.prefetch_fills > 0, "{c:?}");
        assert!(c.prefetch_hits > 0, "{c:?}");
        // Compare with the unprefetched run: strictly fewer L2 misses.
        let cfg0 = tiny_cfg();
        let mut sim0 = Simulator::new(
            cfg0,
            vec![Box::new(ReplayStream::new(events)), Box::new(ReplayStream::new(vec![]))],
        );
        let r0 = sim0.run_interval().unwrap();
        assert!(c.l2_misses < r0.threads[0].counters.l2_misses);
        assert!(r.wall_cycles < r0.wall_cycles, "prefetching must speed the walk up");
        sim.l2().check_invariants();
    }

    #[test]
    fn prefetch_fills_respect_partition_quotas() {
        let mut cfg = tiny_cfg();
        cfg.prefetch_degree = 4;
        let events: Vec<ThreadEvent> = (0..40).map(|i| access(0, i * 64)).collect();
        let mut sim = Simulator::new(
            cfg,
            vec![Box::new(ReplayStream::new(events)), Box::new(ReplayStream::new(vec![]))],
        );
        sim.set_partition(&[2, 2]);
        let _ = sim.run_interval();
        sim.l2().check_invariants();
        // Thread 0 (quota 2 of 4 ways) never exceeds its quota per set even
        // with aggressive prefetching once converged; spot-check set 0.
        assert!(sim.l2().ways_owned_in_set(0, 0) <= 4);
    }

    #[test]
    fn bank_contention_serialises_same_bank_accesses() {
        // Two threads hammer the same L2 set (same bank) with L2 hits.
        // With banking on, they serialise; without, they overlap freely.
        let run = |banks: u32| {
            let mut cfg = tiny_cfg();
            cfg.l2_banks = banks;
            // Warm line 0 into L2 but keep missing L1: lines 0/4/8 share L1
            // set 0 and L2 set 0; cycling them gives L1 misses + L2 hits.
            let events = |seed: u64| -> Vec<ThreadEvent> {
                let mut v = vec![access(0, 0), access(0, 4 * 64), access(0, 8 * 64)];
                for i in 0..30 {
                    v.push(access(0, ((i + seed) % 3) * 4 * 64));
                }
                v
            };
            let mut sim = Simulator::new(
                cfg,
                vec![
                    Box::new(ReplayStream::new(events(0))),
                    Box::new(ReplayStream::new(events(1))),
                ],
            );
            while let Some(r) = sim.run_interval() {
                if r.finished {
                    break;
                }
            }
            sim.wall_cycles()
        };
        let unbanked = run(0);
        let banked = run(1); // a single bank: full serialisation
        assert!(
            banked > unbanked,
            "bank contention must add stall: {banked} <= {unbanked}"
        );
    }

    #[test]
    fn many_banks_approach_unbanked_performance() {
        let run = |banks: u32| {
            let mut cfg = tiny_cfg();
            cfg.l2_banks = banks;
            // Threads touch different L2 sets: no conflicts with >= 2 banks.
            let s0: Vec<ThreadEvent> = (0..20).map(|i| access(0, (i * 4) * 64)).collect();
            let s1: Vec<ThreadEvent> = (0..20).map(|i| access(0, (i * 4 + 1) * 64)).collect();
            let mut sim = Simulator::new(
                cfg,
                vec![Box::new(ReplayStream::new(s0)), Box::new(ReplayStream::new(s1))],
            );
            while let Some(r) = sim.run_interval() {
                if r.finished {
                    break;
                }
            }
            sim.wall_cycles()
        };
        // tiny_cfg has 4 L2 sets; threads use disjoint sets, so with 4
        // banks they never conflict.
        assert_eq!(run(4), run(0));
    }

    #[test]
    fn victim_cache_recovers_conflict_evictions() {
        // A round-robin over 5 lines of one 4-way L2 set thrashes under
        // LRU (every access misses). With a victim cache, the just-evicted
        // line is recovered at L2-hit latency.
        let events: Vec<ThreadEvent> =
            (0..40).map(|i| access(0, (i % 5) * 4 * 64)).collect();
        let run = |victim_lines: u32| {
            let mut cfg = tiny_cfg();
            cfg.victim_cache_lines = victim_lines;
            let mut sim = Simulator::new(
                cfg,
                vec![Box::new(ReplayStream::new(events.clone())), Box::new(ReplayStream::new(vec![]))],
            );
            while let Some(r) = sim.run_interval() {
                if r.finished {
                    break;
                }
            }
            (sim.wall_cycles(), sim.stats().threads[0].victim_hits)
        };
        let (wall_off, hits_off) = run(0);
        let (wall_on, hits_on) = run(8);
        assert_eq!(hits_off, 0);
        assert!(hits_on > 10, "victim hits {hits_on}");
        assert!(wall_on < wall_off, "victim cache must speed thrash up: {wall_on} vs {wall_off}");
    }

    #[test]
    fn events_processed_counts_all_event_kinds() {
        let cfg = tiny_cfg();
        let s0 = ReplayStream::new(vec![access(0, 0), ThreadEvent::Barrier, access(0, 64)]);
        let s1 = ReplayStream::new(vec![access(0, 128), ThreadEvent::Barrier]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        while let Some(r) = sim.run_interval() {
            if r.finished {
                break;
            }
        }
        // Thread 0: access, barrier, access, finished; thread 1: access,
        // barrier, finished.
        assert_eq!(sim.events_processed(), 7);
    }

    #[test]
    fn run_to_completion_invokes_callback() {
        let mut cfg = tiny_cfg();
        cfg.interval_instructions = 5;
        let s0 = ReplayStream::new((0..6).map(|i| access(4, i * 64)).collect());
        let s1 = ReplayStream::new(vec![]);
        let mut sim = Simulator::new(cfg, vec![Box::new(s0), Box::new(s1)]);
        let mut boundaries = 0;
        let wall = sim.run_to_completion(|_, r| {
            boundaries += 1;
            assert!(r.index < 10);
        });
        assert!(boundaries >= 6);
        // Each event: 4 gap cycles + a 111-cycle L2 miss.
        assert_eq!(wall, 6 * (4 + 111));
        assert!(sim.is_finished());
    }
}
