//! A small fully-associative victim cache behind the shared L2.
//!
//! Zhang & Asanović ("Victim replication", cited in the paper's related
//! work §II) motivate small victim structures next to shared CMP caches.
//! This module provides the classic Jouppi-style victim cache: L2 evictions
//! land here; an L2 miss that hits the victim cache is serviced at near-L2
//! latency instead of going to memory. It is an *alternative* mitigation
//! for inter-thread conflict evictions — the `ablation_victim` bench asks
//! how much of the partitioning win a victim cache can capture on its own.
//!
//! Off by default ([`crate::SystemConfig::victim_cache_lines`] = 0).

/// A fully-associative LRU victim cache over line addresses.
#[derive(Clone, Debug)]
pub struct VictimCache {
    /// `(line_addr, owner)` entries, most recently inserted/refreshed last.
    entries: Vec<(u64, usize)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl VictimCache {
    /// Creates a victim cache holding `capacity` lines.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (use the config flag to disable instead).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "empty victim cache: disable it instead");
        VictimCache { entries: Vec::with_capacity(capacity), hits: 0, misses: 0, capacity }
    }

    /// Number of lines currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an evicted line (LRU entry is dropped at capacity). Reinsert
    /// of a present line just refreshes its position.
    pub fn insert(&mut self, line_addr: u64, owner: usize) {
        if let Some(pos) = self.entries.iter().position(|(a, _)| *a == line_addr) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((line_addr, owner));
    }

    /// Looks up (and removes — the line moves back into the L2) a line.
    /// Returns the owner recorded at eviction time.
    pub fn take(&mut self, line_addr: u64) -> Option<usize> {
        if let Some(pos) = self.entries.iter().position(|(a, _)| *a == line_addr) {
            self.hits += 1;
            Some(self.entries.remove(pos).1)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_take() {
        let mut v = VictimCache::new(4);
        v.insert(0x1000, 2);
        assert_eq!(v.take(0x1000), Some(2));
        assert_eq!(v.take(0x1000), None); // removed on hit
        assert_eq!(v.hits(), 1);
        assert_eq!(v.misses(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut v = VictimCache::new(2);
        v.insert(0x40, 0);
        v.insert(0x80, 0);
        v.insert(0xc0, 0); // drops 0x40
        assert_eq!(v.len(), 2);
        assert_eq!(v.take(0x40), None);
        assert_eq!(v.take(0x80), Some(0));
        assert_eq!(v.take(0xc0), Some(0));
    }

    #[test]
    fn reinsert_refreshes_position() {
        let mut v = VictimCache::new(2);
        v.insert(0x40, 0);
        v.insert(0x80, 1);
        v.insert(0x40, 0); // refresh: 0x80 is now oldest
        v.insert(0xc0, 2); // drops 0x80
        assert_eq!(v.take(0x80), None);
        assert_eq!(v.take(0x40), Some(0));
    }

    #[test]
    #[should_panic(expected = "disable it instead")]
    fn zero_capacity_rejected() {
        VictimCache::new(0);
    }
}
