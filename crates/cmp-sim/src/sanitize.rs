//! Runtime partition-invariant sanitizer (the `sanitize` cargo feature).
//!
//! When enabled, the simulator shadow-verifies the SoA caches at every
//! event-batch boundary and on every fill:
//!
//! * **Occupancy** — each set's per-thread `owned` counters equal a recount
//!   of the valid lines' owner bytes.
//! * **Tag uniqueness** — no two valid ways of a set hold the same tag (a
//!   duplicate would make the hit scan nondeterministic).
//! * **LRU consistency** — every valid line's LRU clock is in
//!   `1..=self.clock`, and no two valid lines of a set share a clock (each
//!   access stamps a fresh global clock value, so duplicates mean
//!   corruption).
//! * **Victim legality** — each miss's victim choice respects the paper's
//!   §V policy: an under-quota thread evicts another thread's line
//!   (preferring over-quota owners); a thread at/over quota self-evicts
//!   unless it owns nothing in the set.
//! * **Quota discipline** — a thread's per-set excess over its way target
//!   never exceeds the *grandfathered baseline*: the excess it legally
//!   acquired from free-way fills, a first-line steal, or lines it already
//!   held when the partition was (re)applied. Replacement-based enforcement
//!   converges gradually (§V), so excess may persist — but it must only
//!   shrink while the set is full.
//!
//! Violations panic with full `set`/`way`/`thread` context via
//! [`PartitionedL2::sanitize_assert`]; [`PartitionedL2::sanitize_check`]
//! returns them as values for tests. The checks cost roughly an order of
//! magnitude of hot-path throughput and are never compiled in by default.

use crate::cache::SetAssocCache;
use crate::l2::{PartitionMode, PartitionedL2};
use crate::simulator::Simulator;
use crate::ThreadId;
use std::fmt;

/// A detected invariant violation, with enough context to locate the
/// corrupted state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A per-set ownership counter disagrees with a recount of the lines.
    OccupancyMismatch {
        /// Set index.
        set: usize,
        /// Thread whose counter is wrong.
        thread: ThreadId,
        /// The stored `owned` counter.
        counter: u16,
        /// Valid lines in the set actually owned by `thread`.
        recount: u16,
    },
    /// Two valid ways of one set hold the same tag.
    DuplicateTag {
        /// Set index.
        set: usize,
        /// The duplicated tag.
        tag: u64,
        /// First way holding it.
        first_way: usize,
        /// Second way holding it.
        second_way: usize,
    },
    /// A valid line's owner byte does not name a real thread.
    BadOwner {
        /// Set index.
        set: usize,
        /// Way index.
        way: usize,
        /// The stored owner byte.
        owner: u8,
        /// Number of threads sharing the cache.
        threads: usize,
    },
    /// A valid line's LRU clock is zero or ahead of the global clock.
    LruOutOfRange {
        /// Set index.
        set: usize,
        /// Way index.
        way: usize,
        /// The stored LRU clock.
        lru: u64,
        /// The cache's global clock.
        clock: u64,
    },
    /// Two valid lines of one set share an LRU clock value.
    DuplicateLru {
        /// Set index.
        set: usize,
        /// First way.
        first_way: usize,
        /// Second way.
        second_way: usize,
        /// The shared clock value.
        lru: u64,
    },
    /// A thread holds more ways in a set than its quota plus the
    /// grandfathered baseline allows.
    QuotaExceeded {
        /// Set index.
        set: usize,
        /// Offending thread.
        thread: ThreadId,
        /// Ways currently owned in the set.
        owned: u16,
        /// The thread's way quota.
        target: u32,
        /// Grandfathered legal excess.
        baseline: u16,
    },
    /// A victim choice broke the §V replacement-based enforcement policy.
    IllegalVictim {
        /// Set index.
        set: usize,
        /// Chosen victim way.
        way: usize,
        /// Thread performing the fill.
        accessor: ThreadId,
        /// Owner of the chosen victim line.
        victim_owner: ThreadId,
        /// Accessor's owned count in the set (before the eviction).
        owned: u16,
        /// Accessor's way quota.
        target: u32,
        /// Why the choice is illegal.
        reason: &'static str,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::OccupancyMismatch { set, thread, counter, recount } => write!(
                f,
                "occupancy mismatch: set {set} thread {thread}: counter says {counter} \
                 ways owned, recount of line owners says {recount}"
            ),
            Violation::DuplicateTag { set, tag, first_way, second_way } => write!(
                f,
                "duplicate tag {tag:#x} in set {set}: ways {first_way} and {second_way} \
                 both hold it"
            ),
            Violation::BadOwner { set, way, owner, threads } => write!(
                f,
                "bad owner byte: set {set} way {way} names thread {owner} but only \
                 {threads} threads exist"
            ),
            Violation::LruOutOfRange { set, way, lru, clock } => write!(
                f,
                "LRU clock out of range: set {set} way {way} has lru {lru}, valid range \
                 is 1..={clock}"
            ),
            Violation::DuplicateLru { set, first_way, second_way, lru } => write!(
                f,
                "duplicate LRU clock {lru} in set {set}: ways {first_way} and \
                 {second_way} (each access stamps a unique clock)"
            ),
            Violation::QuotaExceeded { set, thread, owned, target, baseline } => write!(
                f,
                "quota exceeded: set {set} thread {thread} owns {owned} ways against a \
                 target of {target} with a grandfathered baseline of {baseline}"
            ),
            Violation::IllegalVictim { set, way, accessor, victim_owner, owned, target, reason } => {
                write!(
                    f,
                    "illegal victim: set {set} way {way} (owner {victim_owner}) chosen for \
                     a fill by thread {accessor} (owns {owned}, target {target}): {reason}"
                )
            }
        }
    }
}

impl PartitionedL2 {
    /// Verifies every batch-level invariant, returning the first violation.
    ///
    /// Checks, in order: owner bytes name real threads; per-set occupancy
    /// counters match a recount; valid tags are unique per set; valid LRU
    /// clocks are in `1..=clock` and unique per set; and (in partitioned
    /// mode) each thread's per-set quota excess stays within its
    /// grandfathered baseline.
    pub fn sanitize_check(&self) -> Result<(), Violation> {
        let ways = self.geom.ways;
        let sets = self.geom.num_sets() as usize;
        let mut counts = vec![0u16; self.threads];
        // Reusable scratch for duplicate detection: sort-and-adjacent-scan
        // keeps the per-set cost O(ways log ways) — the check runs once per
        // event batch, so a quadratic sweep would dominate sanitized runs.
        let mut by_tag: Vec<(u64, usize)> = Vec::with_capacity(ways);
        let mut by_lru: Vec<(u64, usize)> = Vec::with_capacity(ways);
        for set in 0..sets {
            let base = set * ways;
            counts.fill(0);
            by_tag.clear();
            by_lru.clear();
            for w in 0..ways {
                let i = base + w;
                if self.tags[i] == crate::l2::INVALID_TAG {
                    continue;
                }
                let owner = self.owners[i];
                if (owner as usize) >= self.threads {
                    return Err(Violation::BadOwner { set, way: w, owner, threads: self.threads });
                }
                counts[owner as usize] += 1;
                if self.lrus[i] == 0 || self.lrus[i] > self.clock {
                    return Err(Violation::LruOutOfRange {
                        set,
                        way: w,
                        lru: u64::from(self.lrus[i]),
                        clock: u64::from(self.clock),
                    });
                }
                by_tag.push((self.tags[i], w));
                by_lru.push((u64::from(self.lrus[i]), w));
            }
            by_tag.sort_unstable();
            by_lru.sort_unstable();
            for pair in by_tag.windows(2) {
                if pair[0].0 == pair[1].0 {
                    return Err(Violation::DuplicateTag {
                        set,
                        tag: pair[0].0,
                        first_way: pair[0].1,
                        second_way: pair[1].1,
                    });
                }
            }
            for pair in by_lru.windows(2) {
                if pair[0].0 == pair[1].0 {
                    return Err(Violation::DuplicateLru {
                        set,
                        first_way: pair[0].1,
                        second_way: pair[1].1,
                        lru: pair[0].0,
                    });
                }
            }
            for (t, &recount) in counts.iter().enumerate() {
                let counter = self.owned[set * self.threads + t];
                if counter != recount {
                    return Err(Violation::OccupancyMismatch { set, thread: t, counter, recount });
                }
            }
            if self.mode == PartitionMode::Partitioned {
                for t in 0..self.threads {
                    let owned = self.owned[set * self.threads + t];
                    let target = self.targets[t];
                    let baseline = self.quota_baseline[set * self.threads + t];
                    let excess = (owned as u32).saturating_sub(target) as u16;
                    if excess > baseline {
                        return Err(Violation::QuotaExceeded {
                            set,
                            thread: t,
                            owned,
                            target,
                            baseline,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Like [`Self::sanitize_check`], but panics with the violation.
    ///
    /// # Panics
    /// Panics on the first detected invariant violation.
    pub fn sanitize_assert(&self) {
        if let Err(v) = self.sanitize_check() {
            panic!("sanitize: L2: {v}");
        }
    }

    /// Per-fill victim-legality check, called with the chosen victim way
    /// *before* [`Self::evict_for_fill`] mutates the counters. Encodes the
    /// §V policy exactly:
    ///
    /// * filling a free (invalid) way is always legal;
    /// * an accessor at/over quota that owns lines must self-evict;
    /// * an under-quota accessor that could evict someone else must not
    ///   self-evict, and must prefer a victim whose owner is over quota
    ///   whenever one exists.
    pub(crate) fn sanitize_victim_check(&self, set: usize, victim: usize, thread: ThreadId) {
        if self.mode != PartitionMode::Partitioned {
            return;
        }
        let i = set * self.geom.ways + victim;
        if self.tags[i] == crate::l2::INVALID_TAG {
            return; // free-way fill
        }
        let row = &self.owned[set * self.threads..(set + 1) * self.threads];
        let owner = self.owners[i] as usize;
        let owned = row[thread];
        let target = self.targets[thread];
        let fail = |reason: &'static str| -> ! {
            panic!(
                "sanitize: L2: {}",
                Violation::IllegalVictim {
                    set,
                    way: victim,
                    accessor: thread,
                    victim_owner: owner,
                    owned,
                    target,
                    reason,
                }
            )
        };
        if (owned as u32) >= target {
            // At/over quota: self-evict, unless we own nothing here (a
            // thread must always be able to make progress).
            if owned > 0 && owner != thread {
                fail("accessor is at/over quota and owns lines, must self-evict");
            }
        } else {
            // Under quota: take someone else's line when one exists...
            if owner == thread && (owned as usize) < self.geom.ways {
                fail("accessor is under quota, must evict another thread");
            }
            // ...preferring owners that are over their own quota.
            let over_exists = (0..self.threads)
                .any(|t| t != thread && (row[t] as u32) > self.targets[t] && row[t] > 0);
            if over_exists && (row[owner] as u32) <= self.targets[owner] {
                fail("an over-quota owner exists but the victim's owner is not over quota");
            }
        }
    }

    /// Quota-baseline bookkeeping after a fill (`owned` already
    /// incremented). `was_free` is true when the fill took an invalid way.
    /// Raising the baseline is legal only for free-way fills and a
    /// first-line steal (an at/over-quota thread that owned nothing);
    /// anything else is an enforcement failure and panics immediately.
    pub(crate) fn sanitize_note_fill(&mut self, set: usize, thread: ThreadId, was_free: bool) {
        if self.mode != PartitionMode::Partitioned {
            return;
        }
        let idx = set * self.threads + thread;
        let owned = self.owned[idx];
        let excess = (owned as u32).saturating_sub(self.targets[thread]) as u16;
        if excess > self.quota_baseline[idx] {
            if was_free || owned == 1 {
                self.quota_baseline[idx] = excess;
            } else {
                panic!(
                    "sanitize: L2: {}",
                    Violation::QuotaExceeded {
                        set,
                        thread,
                        owned,
                        target: self.targets[thread],
                        baseline: self.quota_baseline[idx],
                    }
                );
            }
        }
    }

    /// Quota-baseline bookkeeping after an eviction (`owned` already
    /// decremented): once excess shrinks it may never grow back while the
    /// set stays full, so the baseline ratchets down with it. A self-evict
    /// (`prev_owner == filler`) is half of an atomic evict-then-refill that
    /// leaves the count unchanged, so it must not move the ratchet.
    pub(crate) fn sanitize_note_evict(&mut self, set: usize, prev_owner: ThreadId, filler: ThreadId) {
        if prev_owner == filler {
            return;
        }
        let idx = set * self.threads + prev_owner;
        let excess = (self.owned[idx] as u32).saturating_sub(self.targets[prev_owner]) as u16;
        if excess < self.quota_baseline[idx] {
            self.quota_baseline[idx] = excess;
        }
    }

    /// Recomputes the grandfathered baselines from the current contents.
    /// Called when a partition is (re)applied: whatever excess each thread
    /// holds at that instant is legal residue that replacement will erode.
    pub(crate) fn sanitize_rebaseline(&mut self) {
        for set in 0..self.geom.num_sets() as usize {
            for t in 0..self.threads {
                let idx = set * self.threads + t;
                self.quota_baseline[idx] =
                    (self.owned[idx] as u32).saturating_sub(self.targets[t]) as u16;
            }
        }
    }

    /// Test-only corruption: shifts a `(set, thread)` ownership counter by
    /// `delta` without touching any line, desynchronising it from the
    /// recount. For exercising the sanitizer itself.
    #[doc(hidden)]
    pub fn corrupt_owned_for_test(&mut self, set: usize, thread: ThreadId, delta: i32) {
        let idx = set * self.threads + thread;
        self.owned[idx] = (self.owned[idx] as i32 + delta) as u16;
    }

    /// Test-only corruption: rewrites a valid line's owner byte *and keeps
    /// the ownership counters consistent*, so the occupancy check passes
    /// but quota discipline can be violated.
    #[doc(hidden)]
    pub fn corrupt_owner_for_test(&mut self, set: usize, way: usize, new_owner: ThreadId) {
        let i = set * self.geom.ways + way;
        assert_ne!(self.tags[i], crate::l2::INVALID_TAG, "way must hold a valid line");
        let old = self.owners[i] as usize;
        self.owners[i] = new_owner as u8;
        self.owned[set * self.threads + old] -= 1;
        self.owned[set * self.threads + new_owner] += 1;
    }

    /// Test-only corruption: overwrites a line's LRU clock.
    #[doc(hidden)]
    pub fn corrupt_lru_for_test(&mut self, set: usize, way: usize, lru: u32) {
        self.lrus[set * self.geom.ways + way] = lru;
    }
}

impl SetAssocCache {
    /// Verifies the private-cache invariants: valid tags unique per set and
    /// valid LRU clocks in `1..=clock` and unique per set.
    pub fn sanitize_check(&self) -> Result<(), Violation> {
        let ways = self.geom.ways;
        let mut by_tag: Vec<(u64, usize)> = Vec::with_capacity(ways);
        let mut by_lru: Vec<(u64, usize)> = Vec::with_capacity(ways);
        for set in 0..self.geom.num_sets() as usize {
            let base = set * ways;
            by_tag.clear();
            by_lru.clear();
            for w in 0..ways {
                let i = base + w;
                if self.tags[i] == crate::cache::INVALID_TAG {
                    continue;
                }
                if self.lrus[i] == 0 || self.lrus[i] > self.clock {
                    return Err(Violation::LruOutOfRange {
                        set,
                        way: w,
                        lru: self.lrus[i],
                        clock: self.clock,
                    });
                }
                by_tag.push((self.tags[i], w));
                by_lru.push((self.lrus[i], w));
            }
            by_tag.sort_unstable();
            by_lru.sort_unstable();
            for pair in by_tag.windows(2) {
                if pair[0].0 == pair[1].0 {
                    return Err(Violation::DuplicateTag {
                        set,
                        tag: pair[0].0,
                        first_way: pair[0].1,
                        second_way: pair[1].1,
                    });
                }
            }
            for pair in by_lru.windows(2) {
                if pair[0].0 == pair[1].0 {
                    return Err(Violation::DuplicateLru {
                        set,
                        first_way: pair[0].1,
                        second_way: pair[1].1,
                        lru: pair[0].0,
                    });
                }
            }
        }
        Ok(())
    }
}

impl<S: crate::stream::AccessStream> Simulator<S> {
    /// Test-only mutable access to the shared L2 for injecting corruption.
    #[doc(hidden)]
    pub fn l2_mut_for_test(&mut self) -> &mut PartitionedL2 {
        &mut self.l2
    }

    /// Runs the full shadow verification: the shared L2 and every private
    /// L1. Called automatically at each event-batch boundary; public so
    /// tests can force a check at interesting points.
    ///
    /// # Panics
    /// Panics with component context (`L2` / `L1[i]`) on any violation.
    pub fn sanitize_batch_check(&self) {
        self.l2.sanitize_assert();
        for (i, l1) in self.l1s.iter().enumerate() {
            if let Err(v) = l1.sanitize_check() {
                panic!("sanitize: L1[{i}]: {v}");
            }
        }
    }
}
