//! Host-side throughput observability for simulator runs.
//!
//! Simulation studies live and die by simulator throughput: a partitioning
//! sweep multiplies every per-access cost by billions. This module times a
//! region of simulation and reports how fast the host chewed through it —
//! accesses/sec and events/sec — by diffing the simulator's own counters
//! around the timed closure. Nothing here perturbs simulated behaviour;
//! the counters it reads are maintained unconditionally.
//!
//! The tracked harness in `icp-experiments::hotpath` builds on this to
//! record a perf trajectory (`BENCH_hotpath.json`) across changes.

use std::borrow::Cow;
use std::time::Instant;

use crate::config::SystemConfig;
use crate::l2::{EnforcementKind, ReplacementKind};
use crate::shard::ShardedSimulator;
use crate::simulator::{IntervalReport, Simulator};
use crate::slice::Llc;
use crate::stats::GlobalStats;
use crate::stream::AccessStream;
use crate::umon::UtilityMonitor;

/// Throughput of one timed simulation region.
#[derive(Clone, Copy, Debug)]
pub struct PerfReport {
    /// Demand memory accesses simulated over the region (L1 hits + misses,
    /// summed over threads).
    pub accesses: u64,
    /// Stream events consumed over the region (accesses + barriers +
    /// finishes) — see [`Simulator::events_processed`].
    pub events: u64,
    /// Instructions retired over the region, summed over threads.
    pub instructions: u64,
    /// Simulated cycles elapsed over the region (wall-clock delta).
    pub sim_cycles: u64,
    /// Host seconds the region took (floored at 1 ns so rates stay finite).
    pub host_secs: f64,
}

impl PerfReport {
    /// Simulated demand accesses per host second — the headline number.
    pub fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.host_secs
    }

    /// Stream events consumed per host second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.host_secs
    }

    /// Simulated instructions per host second, in millions (classic MIPS).
    pub fn mips(&self) -> f64 {
        self.instructions as f64 / self.host_secs / 1e6
    }
}

/// A simulation engine the perf harness can time: anything that advances
/// interval by interval and exposes cumulative counters. Implemented by
/// [`Simulator`] (any stream type) and
/// [`crate::shard::ShardedSimulator`], so the hot-path scenarios and the
/// tracked bench treat serial and sharded engines uniformly.
pub trait Measurable {
    /// Cumulative statistics (see [`Simulator::stats`]).
    fn stats(&self) -> &GlobalStats;
    /// Stream events consumed so far (see [`Simulator::events_processed`]).
    fn events_processed(&self) -> u64;
    /// Wall-clock cycles simulated so far (see [`Simulator::wall_cycles`]).
    fn wall_cycles(&self) -> u64;
    /// Advances to the next interval boundary (see
    /// [`Simulator::run_interval`]).
    fn run_interval(&mut self) -> Option<IntervalReport>;
}

impl<S: AccessStream> Measurable for Simulator<S> {
    fn stats(&self) -> &GlobalStats {
        Simulator::stats(self)
    }

    fn events_processed(&self) -> u64 {
        Simulator::events_processed(self)
    }

    fn wall_cycles(&self) -> u64 {
        Simulator::wall_cycles(self)
    }

    fn run_interval(&mut self) -> Option<IntervalReport> {
        Simulator::run_interval(self)
    }
}

/// A complete partitionable CMP machine the `icp-core` runtime can drive:
/// a [`Measurable`] engine that additionally exposes partition control,
/// replacement/enforcement selection and utility monitoring. Implemented
/// by the serial [`Simulator`], the set-sharded [`ShardedSimulator`] and
/// the sliced-LLC [`Llc`], so one runtime loop drives every machine model.
///
/// The UMON surface is read-by-value ([`Machine::umon_view`]) because
/// multi-slice machines materialise a merged monitor on demand; the serial
/// simulator hands out a zero-copy borrow.
pub trait Machine: Measurable {
    /// The system configuration (full-LLC geometry for sliced machines).
    fn config(&self) -> &SystemConfig;
    /// Applies a way partition (see [`Simulator::set_partition`]).
    fn set_partition(&mut self, targets: &[u32]);
    /// Applies a set partition from way-unit quotas (see
    /// [`Simulator::set_set_partition`]).
    fn set_set_partition(&mut self, quotas: &[u32]);
    /// Reverts to plain shared (global LRU) operation.
    fn set_unpartitioned(&mut self);
    /// Selects the L2 replacement policy.
    fn set_replacement(&mut self, kind: ReplacementKind);
    /// Selects the partition enforcement mechanism.
    fn set_enforcement(&mut self, kind: EnforcementKind);
    /// Attaches a utility monitor (see [`Simulator::enable_umon`];
    /// sliced machines clamp the sampling rate to the slice set count).
    fn enable_umon(&mut self, sample_every: u64);
    /// Whether a utility monitor is attached.
    fn umon_enabled(&self) -> bool;
    /// The machine-wide utility monitor: borrowed from a serial simulator,
    /// merged-on-demand (owned) from a multi-slice machine. `None` when
    /// UMON was never enabled.
    fn umon_view(&self) -> Option<Cow<'_, UtilityMonitor>>;
    /// Halves the monitor's counters (no-op without a monitor).
    fn decay_umon(&mut self);
}

impl<S: AccessStream> Machine for Simulator<S> {
    fn config(&self) -> &SystemConfig {
        Simulator::config(self)
    }

    fn set_partition(&mut self, targets: &[u32]) {
        Simulator::set_partition(self, targets);
    }

    fn set_set_partition(&mut self, quotas: &[u32]) {
        Simulator::set_set_partition(self, quotas);
    }

    fn set_unpartitioned(&mut self) {
        Simulator::set_unpartitioned(self);
    }

    fn set_replacement(&mut self, kind: ReplacementKind) {
        Simulator::set_replacement(self, kind);
    }

    fn set_enforcement(&mut self, kind: EnforcementKind) {
        Simulator::set_enforcement(self, kind);
    }

    fn enable_umon(&mut self, sample_every: u64) {
        Simulator::enable_umon(self, sample_every);
    }

    fn umon_enabled(&self) -> bool {
        self.umon().is_some()
    }

    fn umon_view(&self) -> Option<Cow<'_, UtilityMonitor>> {
        self.umon().map(Cow::Borrowed)
    }

    fn decay_umon(&mut self) {
        if let Some(u) = self.umon_mut() {
            u.decay_counters();
        }
    }
}

impl Machine for ShardedSimulator {
    fn config(&self) -> &SystemConfig {
        ShardedSimulator::config(self)
    }

    fn set_partition(&mut self, targets: &[u32]) {
        ShardedSimulator::set_partition(self, targets);
    }

    fn set_set_partition(&mut self, quotas: &[u32]) {
        ShardedSimulator::set_set_partition(self, quotas);
    }

    fn set_unpartitioned(&mut self) {
        ShardedSimulator::set_unpartitioned(self);
    }

    fn set_replacement(&mut self, kind: ReplacementKind) {
        ShardedSimulator::set_replacement(self, kind);
    }

    fn set_enforcement(&mut self, kind: EnforcementKind) {
        ShardedSimulator::set_enforcement(self, kind);
    }

    fn enable_umon(&mut self, sample_every: u64) {
        ShardedSimulator::enable_umon(self, sample_every);
    }

    fn umon_enabled(&self) -> bool {
        self.merged_umon().is_some()
    }

    fn umon_view(&self) -> Option<Cow<'_, UtilityMonitor>> {
        self.merged_umon().map(Cow::Owned)
    }

    fn decay_umon(&mut self) {
        ShardedSimulator::decay_umon(self);
    }
}

impl Machine for Llc {
    fn config(&self) -> &SystemConfig {
        Llc::config(self)
    }

    fn set_partition(&mut self, targets: &[u32]) {
        Llc::set_partition(self, targets);
    }

    fn set_set_partition(&mut self, quotas: &[u32]) {
        Llc::set_set_partition(self, quotas);
    }

    fn set_unpartitioned(&mut self) {
        Llc::set_unpartitioned(self);
    }

    fn set_replacement(&mut self, kind: ReplacementKind) {
        Llc::set_replacement(self, kind);
    }

    fn set_enforcement(&mut self, kind: EnforcementKind) {
        Llc::set_enforcement(self, kind);
    }

    fn enable_umon(&mut self, sample_every: u64) {
        Llc::enable_umon(self, sample_every);
    }

    fn umon_enabled(&self) -> bool {
        self.merged_umon().is_some()
    }

    fn umon_view(&self) -> Option<Cow<'_, UtilityMonitor>> {
        self.merged_umon().map(Cow::Owned)
    }

    fn decay_umon(&mut self) {
        Llc::decay_umon(self);
    }
}

/// (accesses, events, instructions, wall_cycles) as of now.
fn snapshot<M: Measurable>(sim: &M) -> (u64, u64, u64, u64) {
    let stats = sim.stats();
    let accesses = stats.threads.iter().map(|t| t.l1_hits + t.l1_misses).sum();
    let instructions = stats.threads.iter().map(|t| t.instructions).sum();
    (accesses, sim.events_processed(), instructions, sim.wall_cycles())
}

/// Times `f(sim)` and reports the throughput of whatever it simulated.
///
/// Counters are snapshotted before and after, so `measure` composes with
/// partially-run simulators and can time individual intervals.
pub fn measure<M: Measurable, R>(
    sim: &mut M,
    f: impl FnOnce(&mut M) -> R,
) -> (R, PerfReport) {
    let (a0, e0, i0, c0) = snapshot(sim);
    let started = Instant::now();
    let out = f(sim);
    let host_secs = started.elapsed().as_secs_f64().max(1e-9);
    let (a1, e1, i1, c1) = snapshot(sim);
    let report = PerfReport {
        accesses: a1 - a0,
        events: e1 - e0,
        instructions: i1 - i0,
        sim_cycles: c1 - c0,
        host_secs,
    };
    (out, report)
}

/// Runs the simulator to completion under the timer.
pub fn measure_to_completion<M: Measurable>(sim: &mut M) -> PerfReport {
    measure(sim, |s| {
        while let Some(report) = s.run_interval() {
            if report.finished {
                break;
            }
        }
    })
    .1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, LatencyConfig, SystemConfig};
    use crate::stream::{ReplayStream, ThreadEvent};

    fn sim_with(events: Vec<ThreadEvent>) -> Simulator {
        let cfg = SystemConfig {
            cores: 1,
            l1: CacheConfig::new(2 * 64 * 2, 2, 64),
            l2: CacheConfig::new(4 * 64 * 4, 4, 64),
            llc: Default::default(),
            latency: LatencyConfig { l1_hit: 1, l2_hit: 10, memory: 100 },
            interval_instructions: 1000,
            inclusive: false,
            coherence: false,
            prefetch_degree: 0,
            l2_banks: 0,
            victim_cache_lines: 0,
        };
        Simulator::new(cfg, vec![Box::new(ReplayStream::new(events))])
    }

    #[test]
    fn measure_counts_region_deltas() {
        let events: Vec<ThreadEvent> =
            (0..10).map(|i| ThreadEvent::access(2, i * 64)).collect();
        let mut sim = sim_with(events);
        let report = measure_to_completion(&mut sim);
        assert_eq!(report.accesses, 10);
        assert_eq!(report.events, 11); // + the Finished event
        assert_eq!(report.instructions, 30); // (gap 2 + 1) x 10
        assert!(report.sim_cycles > 0);
        assert!(report.accesses_per_sec() > 0.0);
        assert!(report.events_per_sec() >= report.accesses_per_sec());
    }

    #[test]
    fn measure_composes_across_regions() {
        let events: Vec<ThreadEvent> =
            (0..10).map(|i| ThreadEvent::access(2, i * 64)).collect();
        let mut sim = sim_with(events);
        // First region: one interval; second region: the rest. The deltas
        // must sum to the whole run.
        let (_, first) = measure(&mut sim, |s| {
            s.run_interval();
        });
        let second = measure_to_completion(&mut sim);
        assert_eq!(first.accesses + second.accesses, 10);
        assert_eq!(first.events + second.events, 11);
    }
}
