//! Process-wide core-budget arbiter for nested parallelism.
//!
//! Every layer of this workspace can spend threads: the experiment
//! harness fans (benchmark × scheme) jobs over an outer worker pool, each
//! simulation can run its LLC slices / set shards on scoped workers
//! ([`crate::shard`], [`crate::slice`]), each workload thread can generate
//! on a pipelined producer ([`crate::pipeline`]), and trace
//! materialisation packs one stream per workload thread. Sized
//! independently from [`std::thread::available_parallelism`], those layers
//! multiply: M outer jobs × N inner workers oversubscribes the host, while
//! an inner engine that sees a "busy" machine serialises even when the
//! host is idle. This module provides the single source of truth they
//! arbitrate through instead.
//!
//! The model is a fixed pool of **core tokens** (total = `--jobs` /
//! `ICP_CORES` / host cores). Every running thread implicitly holds one
//! token, so an engine that wants `k` workers leases `k - 1` *extra*
//! tokens and runs with `1 + granted` — degrading all the way to its
//! bit-identical inline path when the pool is dry. Leases are RAII
//! guards: the shard and slice engines lease per interval and return at
//! the merge barrier, pipeline producers hold one token for their
//! lifetime and return it at the join boundary, so parallelism freed by a
//! draining outer pool is immediately available to widen the tail.
//!
//! Budget arbitration never changes results — only where and when work
//! executes. Every engine's leased path is pinned bit-identical to its
//! serial reference (`tests/shard_equivalence.rs`,
//! `tests/slice_equivalence.rs`, `tests/stream_equivalence.rs`), and
//! `tests/determinism.rs` pins whole-run digests across budgets.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A fixed pool of core tokens shared by every parallelism layer.
///
/// `total` counts cores including the one the calling thread already
/// occupies; the leasable *spare* pool therefore starts at `total - 1`.
/// The low-water mark of the spare pool is tracked so tests and the bench
/// harness can read back the peak number of live workers
/// ([`CoreBudget::peak_threads`]).
#[derive(Debug)]
pub struct CoreBudget {
    total: usize,
    /// Extra tokens currently available beyond the implicit one per
    /// running thread.
    spare: AtomicUsize,
    /// Minimum `spare` ever observed (watermark for peak-thread checks).
    low_water: AtomicUsize,
}

impl CoreBudget {
    /// A budget of `total` cores (clamped to at least 1). The calling
    /// thread's core is included: a budget of 1 leases nothing and every
    /// engine runs its inline path.
    pub fn new(total: usize) -> Arc<CoreBudget> {
        let total = total.max(1);
        Arc::new(CoreBudget {
            total,
            spare: AtomicUsize::new(total - 1),
            low_water: AtomicUsize::new(total - 1),
        })
    }

    /// The configured core count (including the implicit caller token).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Extra tokens currently available for leasing.
    pub fn spare(&self) -> usize {
        self.spare.load(Ordering::Acquire)
    }

    /// Leases up to `want` extra tokens, returning a guard holding
    /// however many were free (possibly zero). Never blocks: callers fall
    /// back to their bit-identical inline path when the grant is zero.
    /// Tokens return to the pool when the guard drops.
    pub fn lease(self: &Arc<Self>, want: usize) -> Lease {
        let mut granted = 0;
        if want > 0 {
            let mut seen = self.spare.load(Ordering::Acquire);
            loop {
                let take = seen.min(want);
                if take == 0 {
                    break;
                }
                match self.spare.compare_exchange(
                    seen,
                    seen - take,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        granted = take;
                        self.low_water.fetch_min(seen - take, Ordering::AcqRel);
                        break;
                    }
                    Err(now) => seen = now,
                }
            }
        }
        Lease { budget: Arc::clone(self), tokens: granted }
    }

    /// Peak live worker count implied by the lease watermark: the implicit
    /// caller thread plus the largest number of extra tokens ever out on
    /// lease since the last [`CoreBudget::reset_watermark`]. Every worker
    /// thread in this workspace holds exactly one leased token, so this
    /// bounds the number of simultaneously live threads.
    pub fn peak_threads(&self) -> usize {
        let spare_at_start = self.total - 1;
        1 + (spare_at_start - self.low_water.load(Ordering::Acquire).min(spare_at_start))
    }

    /// Restarts peak tracking from the current spare level.
    pub fn reset_watermark(&self) {
        self.low_water.store(self.spare.load(Ordering::Acquire), Ordering::Release);
    }
}

/// RAII grant of extra core tokens; tokens return to the pool on drop.
/// Send, so an engine can hand a token to the worker thread it covers
/// (pipeline producers do) and return it exactly when that worker exits.
#[derive(Debug)]
pub struct Lease {
    budget: Arc<CoreBudget>,
    tokens: usize,
}

impl Lease {
    /// Extra tokens granted (0 ⇒ run inline).
    pub fn tokens(&self) -> usize {
        self.tokens
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if self.tokens > 0 {
            self.budget.spare.fetch_add(self.tokens, Ordering::AcqRel);
        }
    }
}

/// Host parallelism fallback for the global budget. The only ambient
/// sizing read left in the workspace: it picks how much parallelism to
/// spend, never what any simulation computes.
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// `ICP_CORES` environment override (ignored unless a positive integer).
fn env_total() -> Option<usize> {
    std::env::var("ICP_CORES").ok().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
}

static GLOBAL: OnceLock<Arc<CoreBudget>> = OnceLock::new();

/// The process-wide budget: `ICP_CORES` if set, else host cores —
/// initialised on first use, or earlier by [`configure_total`].
pub fn global() -> &'static Arc<CoreBudget> {
    GLOBAL.get_or_init(|| CoreBudget::new(env_total().unwrap_or_else(host_parallelism)))
}

/// Installs `total` as the process-wide budget (the binaries' `--jobs`
/// flag). Returns `false` if the global budget was already initialised —
/// call before any parallel work.
pub fn configure_total(total: usize) -> bool {
    GLOBAL.set(CoreBudget::new(total)).is_ok()
}

std::thread_local! {
    /// Scoped overrides, innermost last. Thread-local so parallel tests
    /// can each pin their own budget without races; pools that spawn
    /// workers re-enter [`scoped`] on each worker to propagate.
    static OVERRIDE: RefCell<Vec<Arc<CoreBudget>>> = const { RefCell::new(Vec::new()) };
}

/// The budget in force on this thread: the innermost [`scoped`] override,
/// else the process-wide [`global`] budget.
pub fn current() -> Arc<CoreBudget> {
    let over = OVERRIDE.with(|o| o.borrow().last().cloned());
    over.unwrap_or_else(|| Arc::clone(global()))
}

/// Runs `f` with `budget` as this thread's [`current`] budget, restoring
/// the previous budget afterwards (also on unwind).
pub fn scoped<R>(budget: Arc<CoreBudget>, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(budget));
    let _pop = Pop;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_spare_and_returns_on_drop() {
        let b = CoreBudget::new(4);
        assert_eq!(b.total(), 4);
        assert_eq!(b.spare(), 3);
        let l1 = b.lease(2);
        assert_eq!(l1.tokens(), 2);
        assert_eq!(b.spare(), 1);
        let l2 = b.lease(5);
        assert_eq!(l2.tokens(), 1, "partial grant of what is left");
        let l3 = b.lease(1);
        assert_eq!(l3.tokens(), 0, "dry pool grants nothing");
        drop(l2);
        drop(l3);
        assert_eq!(b.spare(), 1);
        drop(l1);
        assert_eq!(b.spare(), 3, "all tokens returned");
    }

    #[test]
    fn budget_of_one_never_grants() {
        let b = CoreBudget::new(1);
        assert_eq!(b.spare(), 0);
        assert_eq!(b.lease(8).tokens(), 0);
        assert_eq!(b.peak_threads(), 1);
    }

    #[test]
    fn zero_total_clamps_to_one() {
        let b = CoreBudget::new(0);
        assert_eq!(b.total(), 1);
        assert_eq!(b.lease(1).tokens(), 0);
    }

    #[test]
    fn watermark_tracks_peak_leases() {
        let b = CoreBudget::new(4);
        {
            let _a = b.lease(1);
            let _c = b.lease(1);
        }
        assert_eq!(b.peak_threads(), 3, "two extras were out at once");
        b.reset_watermark();
        assert_eq!(b.peak_threads(), 1);
        let _d = b.lease(3);
        assert_eq!(b.peak_threads(), 4);
    }

    #[test]
    fn scoped_overrides_nest_and_restore() {
        let outer = CoreBudget::new(2);
        let inner = CoreBudget::new(7);
        scoped(Arc::clone(&outer), || {
            assert_eq!(current().total(), 2);
            scoped(Arc::clone(&inner), || {
                assert_eq!(current().total(), 7);
            });
            assert_eq!(current().total(), 2);
        });
        // Out of scope: back to the global (whatever it is, not ours).
        assert!(!Arc::ptr_eq(&current(), &outer));
    }

    #[test]
    fn leases_are_send_across_scoped_threads() {
        let b = CoreBudget::new(3);
        let lease = b.lease(1);
        assert_eq!(lease.tokens(), 1);
        std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    // Worker holds the token for its lifetime.
                    let held = lease;
                    assert_eq!(held.tokens(), 1);
                })
                .join()
                .unwrap();
        });
        assert_eq!(b.spare(), 2, "token returned at the join boundary");
    }
}
