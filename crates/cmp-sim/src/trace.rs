//! Trace recording and replay.
//!
//! The paper drives its simulator from full-system execution; this module
//! provides the equivalent decoupling for this library: any
//! [`AccessStream`] can be captured into a [`Trace`], serialised to a
//! compact binary format, and replayed later — enabling
//! record-once/simulate-many experiments (e.g. sweeping partitioning
//! schemes over the exact same access sequence) and interchange with
//! external trace producers.
//!
//! ## Binary format
//!
//! Little-endian, versioned:
//!
//! ```text
//! magic  u32  = 0x49435054 ("ICPT")
//! version u32 = 1
//! count  u64  = number of events
//! event* :
//!   tag   u8   (0 = access, 1 = barrier, 2 = finished)
//!   access payload (tag 0 only):
//!     gap        u32
//!     addr       u64
//!     flags      u8   (bit 0 = write)
//!     mlp_tenths u16
//! ```

use crate::stream::{AccessStream, ThreadEvent};

const MAGIC: u32 = 0x4943_5054;
const VERSION: u32 = 1;

/// Errors from trace decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Wrong magic number — not a trace file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Input ended mid-event or the declared count doesn't match.
    Truncated,
    /// Unknown event tag byte.
    BadTag(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an ICP trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::BadTag(t) => write!(f, "unknown event tag {t}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A recorded single-thread event sequence.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::{Trace, ThreadEvent};
///
/// let trace = Trace::from_events(vec![
///     ThreadEvent::access(3, 0x40),
///     ThreadEvent::Barrier,
/// ]);
/// let bytes = trace.to_bytes();
/// assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<ThreadEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps an explicit event sequence.
    pub fn from_events(events: Vec<ThreadEvent>) -> Self {
        Trace { events }
    }

    /// Drains `stream` until it finishes (or `max_events` is hit) and
    /// records everything. The trailing `Finished` is not stored — replay
    /// re-synthesises it.
    pub fn record<S: AccessStream>(stream: &mut S, max_events: usize) -> Self {
        let mut events = Vec::new();
        while events.len() < max_events {
            match stream.next_event() {
                ThreadEvent::Finished => break,
                e => events.push(e),
            }
        }
        Trace { events }
    }

    /// The recorded events.
    pub fn events(&self) -> &[ThreadEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total instructions the trace retires when replayed.
    pub fn instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                ThreadEvent::Access { gap, .. } => *gap as u64 + 1,
                _ => 0,
            })
            .sum()
    }

    /// Serialises to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 16);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            match e {
                ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                    out.push(0);
                    out.extend_from_slice(&gap.to_le_bytes());
                    out.extend_from_slice(&addr.to_le_bytes());
                    out.push(u8::from(*write));
                    out.extend_from_slice(&mlp_tenths.to_le_bytes());
                }
                ThreadEvent::Barrier => out.push(1),
                ThreadEvent::Finished => out.push(2),
            }
        }
        out
    }

    /// Parses the binary format back into a trace.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.u32()? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let count = r.u64()? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let tag = r.u8()?;
            let e = match tag {
                0 => {
                    let gap = r.u32()?;
                    let addr = r.u64()?;
                    let flags = r.u8()?;
                    let mlp_tenths = r.u16()?;
                    ThreadEvent::Access { gap, addr, write: flags & 1 == 1, mlp_tenths }
                }
                1 => ThreadEvent::Barrier,
                2 => ThreadEvent::Finished,
                t => return Err(TraceError::BadTag(t)),
            };
            events.push(e);
        }
        Ok(Trace { events })
    }

    /// Consumes the trace into a replayable stream (yields the events,
    /// then `Finished` forever).
    pub fn into_stream(self) -> crate::stream::ReplayStream {
        crate::stream::ReplayStream::new(self.events)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], TraceError> {
        if self.pos + n > self.bytes.len() {
            return Err(TraceError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ReplayStream;

    fn sample_events() -> Vec<ThreadEvent> {
        vec![
            ThreadEvent::Access { gap: 3, addr: 0x1234_5678_9abc, write: false, mlp_tenths: 10 },
            ThreadEvent::Access { gap: 0, addr: 64, write: true, mlp_tenths: 60 },
            ThreadEvent::Barrier,
            ThreadEvent::Access { gap: 7, addr: 128, write: false, mlp_tenths: 10 },
        ]
    }

    #[test]
    fn roundtrip_preserves_events() {
        let t = Trace::from_events(sample_events());
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn record_stops_at_finished() {
        let mut s = ReplayStream::new(sample_events());
        let t = Trace::record(&mut s, 1000);
        assert_eq!(t.len(), 4);
        assert_eq!(t.instructions(), 4 + 1 + 8);
    }

    #[test]
    fn record_honours_limit() {
        let mut s = ReplayStream::new(sample_events());
        let t = Trace::record(&mut s, 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn replay_matches_original() {
        let t = Trace::from_events(sample_events());
        let mut s = t.clone().into_stream();
        for e in t.events() {
            assert_eq!(s.next_event(), *e);
        }
        assert_eq!(s.next_event(), ThreadEvent::Finished);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Trace::from_bytes(b"nope"), Err(TraceError::BadMagic));
        assert_eq!(Trace::from_bytes(b"no"), Err(TraceError::Truncated));
        assert_eq!(
            Trace::from_bytes(&0u32.to_le_bytes().repeat(4)),
            Err(TraceError::BadMagic)
        );
        // Valid magic, bad version.
        let mut b = MAGIC.to_le_bytes().to_vec();
        b.extend_from_slice(&99u32.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(Trace::from_bytes(&b), Err(TraceError::BadVersion(99)));
        // Truncated payload.
        let t = Trace::from_events(sample_events());
        let bytes = t.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes[..bytes.len() - 1]), Err(TraceError::Truncated));
        // Bad tag.
        let mut b = MAGIC.to_le_bytes().to_vec();
        b.extend_from_slice(&VERSION.to_le_bytes());
        b.extend_from_slice(&1u64.to_le_bytes());
        b.push(7);
        assert_eq!(Trace::from_bytes(&b), Err(TraceError::BadTag(7)));
    }

    #[test]
    fn empty_trace_roundtrip() {
        let t = Trace::new();
        assert!(t.is_empty());
        let back = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn simulation_from_recorded_trace_is_identical() {
        use crate::config::SystemConfig;
        use crate::simulator::Simulator;

        // Record a synthetic-ish stream, then run the simulator twice: once
        // from a fresh replay of the recording, once from another replay.
        let events: Vec<ThreadEvent> = (0..200)
            .map(|i| ThreadEvent::Access {
                gap: (i % 5) as u32,
                addr: ((i * 37) % 512) * 64,
                write: i % 3 == 0,
                mlp_tenths: 10,
            })
            .collect();
        let mut cfg = SystemConfig::scaled_down();
        cfg.cores = 1;
        cfg.interval_instructions = 100;
        let run = |events: Vec<ThreadEvent>| {
            let tr = Trace::from_events(events);
            let mut sim = Simulator::new(cfg, vec![Box::new(tr.into_stream())]);
            while sim.run_interval().is_some() {}
            (sim.wall_cycles(), sim.stats().threads[0])
        };
        let (w1, c1) = run(events.clone());
        let (w2, c2) = run(events);
        assert_eq!(w1, w2);
        assert_eq!(c1, c2);
    }
}
