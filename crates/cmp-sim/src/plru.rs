//! Tree pseudo-LRU (PLRU) replacement state.
//!
//! The paper's simulated L2 is 64-way associative with LRU replacement;
//! real hardware at that associativity uses tree PLRU (one bit per internal
//! node of a binary tree over the ways) because exact LRU state is too
//! expensive. This module provides the PLRU machinery so the simulator can
//! answer a practical question the paper leaves open: does replacement-based
//! way partitioning still work when the underlying policy is the hardware's
//! approximation rather than exact LRU? (See the `ablation_replacement`
//! bench.)
//!
//! State per set fits in a `u64` for up to 64 ways: internal node `n`
//! (heap-indexed from 1) holds one bit; 0 = the *left* subtree is older
//! (victim side), 1 = the right subtree is. Touching a way flips the bits
//! on its root path to point away from it; the victim walk follows the
//! bits, constrained to a candidate mask (the partition-enforcement rules
//! restrict which ways are evictable).

/// Marks `way` as most-recently-used: all bits on its root path point away
/// from it.
///
/// `ways` must be a power of two, `way < ways <= 64`.
#[inline]
pub fn touch(bits: &mut u64, ways: u32, way: u32) {
    debug_assert!(ways.is_power_of_two() && ways <= 64 && way < ways);
    let mut node = 1u32;
    let mut lo = 0u32;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if way < mid {
            // Accessed way lives left: point the bit right (older side).
            *bits |= 1 << node;
            node *= 2;
            hi = mid;
        } else {
            *bits &= !(1 << node);
            node = 2 * node + 1;
            lo = mid;
        }
    }
}

/// Walks the tree toward the pseudo-least-recently-used way, restricted to
/// the ways set in `mask`. Returns `None` if the mask is empty.
///
/// At each node the walk follows the bit's direction unless that subtree
/// contains no candidate, in which case it takes the other side — the same
/// masked-victim walk hardware way-partitioning (e.g. Intel CAT) performs.
#[inline]
pub fn victim(bits: u64, ways: u32, mask: u64) -> Option<u32> {
    debug_assert!(ways.is_power_of_two() && ways <= 64);
    let full = if ways == 64 { u64::MAX } else { (1u64 << ways) - 1 };
    let mask = mask & full;
    if mask == 0 {
        return None;
    }
    let mut node = 1u32;
    let mut lo = 0u32;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let left_mask = submask(mask, lo, mid);
        let right_mask = submask(mask, mid, hi);
        let go_right = if (bits >> node) & 1 == 1 {
            // Bit points right (right is older) — go right if possible.
            right_mask != 0
        } else {
            // Bit points left — go left unless empty.
            left_mask == 0
        };
        if go_right {
            node = 2 * node + 1;
            lo = mid;
        } else {
            node *= 2;
            hi = mid;
        }
    }
    Some(lo)
}

/// The bits of `mask` covering ways `[lo, hi)`.
#[inline]
fn submask(mask: u64, lo: u32, hi: u32) -> u64 {
    let width = hi - lo;
    let field = if width == 64 { u64::MAX } else { ((1u64 << width) - 1) << lo };
    mask & field
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_respects_mask() {
        let bits = 0u64;
        for ways in [2u32, 4, 8, 16, 64] {
            for way in 0..ways.min(16) {
                let v = victim(bits, ways, 1 << way).unwrap();
                assert_eq!(v, way, "single-candidate mask must return it");
            }
        }
        assert_eq!(victim(bits, 8, 0), None);
    }

    #[test]
    fn untouched_tree_picks_way_zero() {
        assert_eq!(victim(0, 8, u64::MAX), Some(0));
    }

    #[test]
    fn touched_way_is_not_the_next_victim() {
        let ways = 8;
        let mut bits = 0u64;
        for way in 0..ways {
            touch(&mut bits, ways, way);
            let v = victim(bits, ways, u64::MAX).unwrap();
            assert_ne!(v, way, "just-touched way must be protected");
        }
    }

    #[test]
    fn sequential_touches_approximate_lru() {
        // Touch 0..8 in order: the PLRU victim must be one of the earliest
        // touched ways (exact LRU would say 0; tree PLRU guarantees the
        // victim is in the "older half" at every level, so way < 4 here...
        // in fact for a full in-order pass the victim is exactly way 0).
        let ways = 8;
        let mut bits = 0u64;
        for way in 0..ways {
            touch(&mut bits, ways, way);
        }
        assert_eq!(victim(bits, ways, u64::MAX), Some(0));
    }

    #[test]
    fn repeated_hits_cycle_through_all_ways() {
        // Fill 4 ways, then keep touching the victim: every way must get
        // evicted eventually (no starvation).
        let ways = 4;
        let mut bits = 0u64;
        let mut seen = [false; 4];
        for _ in 0..32 {
            let v = victim(bits, ways, u64::MAX).unwrap();
            seen[v as usize] = true;
            touch(&mut bits, ways, v);
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn masked_walk_redirects_when_preferred_side_empty() {
        let ways = 8;
        let mut bits = 0u64;
        // Touch everything in the left half so the tree points right.
        for way in 0..4 {
            touch(&mut bits, ways, way);
        }
        // But mask only allows left-half ways: the walk must redirect.
        let v = victim(bits, ways, 0b0000_1111).unwrap();
        assert!(v < 4, "victim {v} outside mask");
    }

    #[test]
    fn works_at_64_ways() {
        let ways = 64;
        let mut bits = 0u64;
        for way in 0..64 {
            touch(&mut bits, ways, way);
        }
        let v = victim(bits, ways, u64::MAX).unwrap();
        assert_eq!(v, 0);
        // Mask out the low half.
        let v = victim(bits, ways, !0u64 << 32).unwrap();
        assert!(v >= 32);
    }

    #[test]
    fn submask_extracts_range() {
        assert_eq!(submask(0b1111_0000, 4, 8), 0b1111_0000);
        assert_eq!(submask(0b1111_0000, 0, 4), 0);
        assert_eq!(submask(u64::MAX, 0, 64), u64::MAX);
    }
}
