//! The shared L2 cache with replacement-based way partitioning.
//!
//! This implements the paper's §V hardware mechanism faithfully:
//!
//! * Each set keeps, per thread, a counter of how many of its ways currently
//!   hold lines *brought in* by that thread (the "current assignment"
//!   counters).
//! * A global per-thread "target assignment" gives each thread its way
//!   quota.
//! * On a miss by thread `t`: if `t`'s current count in the set is below its
//!   target, the victim is a line belonging to some *other* thread
//!   (preferring threads over their own quota); otherwise the victim is
//!   `t`'s own LRU line. The cache thus converges *gradually* toward the
//!   target partition — there is no flush or reconfiguration.
//! * Replacement among the candidate lines is least-recently-used, i.e.
//!   "thread-wise LRU" in the paper's words.
//! * Hits are never restricted: any thread may hit on any line, which is
//!   what lets a partitioned shared cache keep the constructive sharing a
//!   private-cache organisation loses (§IV-A2).
//!
//! The cache also classifies inter-thread interactions the way §IV-A2 does:
//! an access is *inter-thread* if the previous access to that line came from
//! a different thread; it is *constructive* if that access is a hit, and an
//! eviction of another thread's line is the *destructive* form.

use crate::config::{CacheConfig, L2Geometry};
use crate::plru;
use crate::stats::InteractionStats;
use crate::ThreadId;
use icp_hot_path::hot_path;

/// Replacement policy underlying the partition enforcement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplacementKind {
    /// Exact least-recently-used ordering (the paper's assumption).
    #[default]
    TrueLru,
    /// Tree pseudo-LRU — what real hardware implements at 64-way
    /// associativity. Requires a power-of-two way count. The victim walk
    /// is constrained to the partition-legal candidate ways, as in
    /// hardware way-masking (Intel CAT style).
    TreePlru,
}

/// How a new partition takes effect (paper §V discusses both options).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EnforcementKind {
    /// The paper's choice: the partition phases in through replacement
    /// decisions — no flush, no unavailability, gradual convergence.
    #[default]
    Replacement,
    /// The reconfigurable-cache alternative the paper rejects: applying a
    /// partition immediately *invalidates* every line of a thread that
    /// holds more ways in a set than its new quota (oldest first). Instant
    /// convergence, but "considerable loss of data during the
    /// reconfiguration" — kept for the `ablation_enforcement` comparison.
    Reconfigure,
}

/// Whether the L2 enforces way quotas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionMode {
    /// Plain shared cache: global LRU, no eviction control (the paper's
    /// "shared unpartitioned" baseline).
    Unpartitioned,
    /// Way quotas enforced via replacement (the paper's mechanism). The
    /// quota vector lives in [`PartitionedL2::targets`].
    Partitioned,
    /// Set partitioning à la OS page coloring (Lin et al., Zhang et al. in
    /// the paper's related work): each thread's accesses are folded into a
    /// private range of sets sized proportionally to its quota. Perfect
    /// isolation, but shared lines get *replicated* into every accessor's
    /// range — the drawback the paper attributes to private caches.
    SetPartitioned,
}

/// Sentinel tag marking an invalid (never-filled) way. A real tag is a
/// line address (`addr >> line_shift`), which cannot reach `u64::MAX` for
/// any line size > 1 byte, so validity needs no separate bit and the hit
/// scan is a single-comparison sweep over a contiguous tag row.
pub(crate) const INVALID_TAG: u64 = u64::MAX;

/// Entries in the way-hint table (power of two). 64 K one-byte entries
/// keep the table L1-resident next to the hot tag rows.
const WAY_HINT_ENTRIES: usize = 1 << 16;
/// Way-hint value meaning "no prediction". Larger than any way index
/// (ways <= 64), so the bounds check rejects it like any stale hint.
const NO_HINT: u8 = u8::MAX;

/// Slot of `tag` in the way-hint table: a multiplicative (Fibonacci) hash
/// so neighbouring line addresses spread across the table.
#[inline]
#[hot_path]
fn hint_index(tag: u64) -> usize {
    (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - 16)) as usize
}

/// Packed line-metadata flags (see [`PartitionedL2::meta`]): the line is
/// dirty and a victim eviction must write it back.
const META_DIRTY: u16 = 1 << 0;
/// The line was brought in by the prefetcher and not yet demand-referenced.
const META_PREFETCHED: u16 = 1 << 1;
/// High byte of the metadata word: the last-accessor thread id.
const META_ACCESSOR_SHIFT: u32 = 8;

/// SIMD tier for the tag/owner scans, detected once per cache at
/// construction: the `is_x86_feature_detected!` macro's cached-atomic
/// check is cheap but not free on paths taken millions of times per run,
/// so the hot loops branch on a plain field instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimdTier {
    /// Autovectorised generic code only.
    Portable,
    /// 256-bit scans ([`find_tag_avx2`], [`owner_match_mask_avx2`]).
    Avx2,
    /// 512-bit scans with k-mask classification; requires AVX-512F +
    /// AVX-512BW (and AVX2, so this tier may also call the 256-bit
    /// kernels).
    Avx512,
}

impl SimdTier {
    fn detect() -> SimdTier {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx2")
            {
                return SimdTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Portable
    }
}

/// Portable tag scan: each 8-way block is reduced to one "any match"
/// test (a branchless OR of equalities the compiler can vectorise) and
/// only a matching block is rescanned for the position.
#[inline]
#[hot_path]
fn find_tag_generic(row: &[u64], tag: u64) -> Option<usize> {
    let mut chunks = row.chunks_exact(8);
    let mut base = 0;
    for chunk in &mut chunks {
        let mut any = false;
        for &t in chunk {
            any |= t == tag;
        }
        if any {
            for (j, &t) in chunk.iter().enumerate() {
                if t == tag {
                    return Some(base + j);
                }
            }
        }
        base += 8;
    }
    for (j, &t) in chunks.remainder().iter().enumerate() {
        if t == tag {
            return Some(base + j);
        }
    }
    None
}

/// First index of `tag` in `row`, dispatched through runtime feature
/// detection. The hot paths go through [`PartitionedL2::find_tag_cached`]
/// (same kernels, tier resolved once at construction); this standalone
/// dispatcher remains as the reference entry point the kernel-equivalence
/// test exercises. (A signature prefilter was tried and measured *slower*
/// end to end: the dependent sig-then-tag load chain costs more than the
/// saved tag-row bytes at these footprints.)
#[cfg(test)]
fn find_tag(row: &[u64], tag: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        // Runtime-dispatched (the detection macro caches in an atomic), so
        // the build stays portable to baseline x86-64. Widest ISA first.
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F presence was just verified.
            #[allow(unsafe_code)]
            return unsafe { find_tag_avx512(row, tag) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence was just verified.
            #[allow(unsafe_code)]
            return unsafe { find_tag_avx2(row, tag) };
        }
    }
    find_tag_generic(row, tag)
}

/// AVX-512 `find_tag`: 8 ways per 512-bit compare, with the per-lane result
/// delivered directly as a k-mask — no movemask recomposition. 32 ways per
/// iteration (four compares) share one "any match" branch; mask bits are
/// little-endian in way order, so `trailing_zeros` of the combined mask is
/// the first matching way, identical to `position` semantics.
///
/// # Safety
///
/// The caller must verify at runtime that the CPU supports AVX-512F (e.g.
/// via `is_x86_feature_detected!("avx512f")`) before calling; executing
/// 512-bit instructions elsewhere is undefined behaviour. All memory
/// accesses stay within `row` (loop bounds are checked against `row.len()`
/// and the loads are unaligned), so no other precondition exists.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(unsafe_code)]
unsafe fn find_tag_avx512(row: &[u64], tag: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    let needle = _mm512_set1_epi64(tag as i64);
    let n = row.len();
    let ptr = row.as_ptr();
    let mut w = 0;
    while w + 32 <= n {
        // SAFETY: `w + 32 <= n` bounds every offset; `ptr` derives from a
        // live `&[u64]` so `ptr.add(w + 24)..+8` is in-bounds; loadu permits
        // unaligned reads.
        let (m0, m1, m2, m3) = unsafe {
            (
                _mm512_cmpeq_epu64_mask(_mm512_loadu_si512(ptr.add(w) as *const _), needle),
                _mm512_cmpeq_epu64_mask(_mm512_loadu_si512(ptr.add(w + 8) as *const _), needle),
                _mm512_cmpeq_epu64_mask(_mm512_loadu_si512(ptr.add(w + 16) as *const _), needle),
                _mm512_cmpeq_epu64_mask(_mm512_loadu_si512(ptr.add(w + 24) as *const _), needle),
            )
        };
        let mask = (m0 as u32)
            | ((m1 as u32) << 8)
            | ((m2 as u32) << 16)
            | ((m3 as u32) << 24);
        if mask != 0 {
            return Some(w + mask.trailing_zeros() as usize);
        }
        w += 32;
    }
    while w + 8 <= n {
        // SAFETY: `w + 8 <= n` keeps the 8-lane unaligned load inside `row`.
        let m = unsafe {
            _mm512_cmpeq_epu64_mask(_mm512_loadu_si512(ptr.add(w) as *const _), needle)
        };
        if m != 0 {
            return Some(w + m.trailing_zeros() as usize);
        }
        w += 8;
    }
    while w < n {
        if row[w] == tag {
            return Some(w);
        }
        w += 1;
    }
    None
}

/// AVX2 `find_tag`: 16 ways per iteration — four 4×64-bit equality
/// compares OR-folded into a single `vptest` branch; only a matching
/// block pays for per-lane mask extraction. Lane masks are little-endian
/// in way order, so `trailing_zeros` of the combined mask is exactly the
/// first matching way — the same way `position` would return.
///
/// # Safety
///
/// The caller must verify at runtime that the CPU supports AVX2 (e.g. via
/// `is_x86_feature_detected!("avx2")`) before calling; executing the 256-bit
/// instructions on a non-AVX2 CPU is undefined behaviour. All memory accesses
/// stay within `row` (loop bounds are checked against `row.len()` and the
/// loads are unaligned), so no other precondition exists.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn find_tag_avx2(row: &[u64], tag: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    let needle = _mm256_set1_epi64x(tag as i64);
    let n = row.len();
    let ptr = row.as_ptr();
    let mut w = 0;
    while w + 16 <= n {
        // SAFETY: `w + 16 <= n` bounds every offset; `ptr` derives from a
        // live `&[u64]` so `ptr.add(w + 12)..+4` is in-bounds; loadu permits
        // unaligned reads.
        let (e0, e1, e2, e3) = unsafe {
            (
                _mm256_cmpeq_epi64(_mm256_loadu_si256(ptr.add(w) as *const __m256i), needle),
                _mm256_cmpeq_epi64(_mm256_loadu_si256(ptr.add(w + 4) as *const __m256i), needle),
                _mm256_cmpeq_epi64(_mm256_loadu_si256(ptr.add(w + 8) as *const __m256i), needle),
                _mm256_cmpeq_epi64(_mm256_loadu_si256(ptr.add(w + 12) as *const __m256i), needle),
            )
        };
        let any = _mm256_or_si256(_mm256_or_si256(e0, e1), _mm256_or_si256(e2, e3));
        if _mm256_testz_si256(any, any) == 0 {
            let mask = (_mm256_movemask_pd(_mm256_castsi256_pd(e0)) as u32)
                | ((_mm256_movemask_pd(_mm256_castsi256_pd(e1)) as u32) << 4)
                | ((_mm256_movemask_pd(_mm256_castsi256_pd(e2)) as u32) << 8)
                | ((_mm256_movemask_pd(_mm256_castsi256_pd(e3)) as u32) << 12);
            return Some(w + mask.trailing_zeros() as usize);
        }
        w += 16;
    }
    while w + 4 <= n {
        // SAFETY: `w + 4 <= n` keeps the 4-lane unaligned load inside `row`.
        let eq = unsafe {
            _mm256_cmpeq_epi64(_mm256_loadu_si256(ptr.add(w) as *const __m256i), needle)
        };
        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
        if mask != 0 {
            return Some(w + mask.trailing_zeros() as usize);
        }
        w += 4;
    }
    while w < n {
        if row[w] == tag {
            return Some(w);
        }
        w += 1;
    }
    None
}

/// Bitmask (bit `i` = `owners[i] == th`) over the first 32 entries of an
/// owner-byte row: one vector compare instead of 32 scalar ones. Feeds
/// the victim sweep, which then loads LRU clocks only for matching ways.
///
/// # Safety
///
/// The caller must verify AVX2 support at runtime before calling, and must
/// pass `owners` with `owners.len() >= 32`: the single unaligned 256-bit
/// load reads exactly 32 bytes from the start of the slice.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn owner_match_mask_avx2(owners: &[u8], th: u8) -> u32 {
    use std::arch::x86_64::*;
    debug_assert!(owners.len() >= 32);
    // SAFETY: caller guarantees at least 32 bytes; unaligned load.
    let v = unsafe { _mm256_loadu_si256(owners.as_ptr() as *const __m256i) };
    let eq = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(th as i8));
    _mm256_movemask_epi8(eq) as u32
}

/// Bitmask (bit `i` = `owners[i] == th`) over a full 64-entry owner row:
/// one 512-bit byte compare delivers the whole row as a `__mmask64`.
///
/// # Safety
///
/// The caller must verify at runtime that the CPU supports AVX-512F and
/// AVX-512BW before calling, and must pass `owners.len() == 64`: the single
/// unaligned load reads exactly 64 bytes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
#[allow(unsafe_code)]
unsafe fn owner_match_mask_avx512(owners: &[u8], th: u8) -> u64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(owners.len(), 64);
    // SAFETY: caller guarantees exactly 64 owner bytes; unaligned load.
    let v = unsafe { _mm512_loadu_si512(owners.as_ptr() as *const _) };
    _mm512_cmpeq_epi8_mask(v, _mm512_set1_epi8(th as i8))
}

/// First index of the minimum LRU clock among the ways selected by `mask`
/// (bit `i` = way `i` is a candidate), over a full 64-way row. Candidate
/// lanes are min-reduced with non-candidates blended to `u32::MAX`; a
/// masked equality rescan recovers the way index. LRU clocks are globally
/// unique (every access writes a fresh clock, and the wrap-time rebase
/// preserves distinctness), so exactly one candidate carries the minimum
/// and the rescan cannot be ambiguous — the index matches what a
/// first-minimum scalar sweep would return. Returns `None` for an empty
/// mask.
///
/// # Safety
///
/// The caller must verify at runtime that the CPU supports AVX-512F before
/// calling, and must pass `lrus.len() == 64`: each pass reads exactly four
/// unaligned 16-lane vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(unsafe_code)]
unsafe fn masked_lru_argmin_avx512(lrus: &[u32], mask: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    debug_assert_eq!(lrus.len(), 64);
    if mask == 0 {
        return None;
    }
    let sentinel = _mm512_set1_epi32(-1); // u32::MAX in every lane
    let lp = lrus.as_ptr();
    let mut best = sentinel;
    for i in 0..4 {
        // SAFETY: `lrus.len() == 64` makes `lp.add(i * 16)..+16` in-bounds
        // for every `i < 4`; unaligned load.
        let v = unsafe { _mm512_loadu_si512(lp.add(i * 16) as *const _) };
        let m16 = ((mask >> (i * 16)) & 0xFFFF) as __mmask16;
        // Non-candidate lanes take the sentinel; valid clocks never reach it
        // (the clock rebases at `u32::MAX`).
        best = _mm512_min_epu32(best, _mm512_mask_mov_epi32(sentinel, m16, v));
    }
    let min = _mm512_reduce_min_epu32(best);
    let needle = _mm512_set1_epi32(min as i32);
    for i in 0..4 {
        // SAFETY: same bounds as the first pass; the row is hot in L1 now.
        let v = unsafe { _mm512_loadu_si512(lp.add(i * 16) as *const _) };
        let m16 = ((mask >> (i * 16)) & 0xFFFF) as __mmask16;
        let eq = _mm512_mask_cmpeq_epu32_mask(m16, v, needle);
        if eq != 0 {
            return Some(i * 16 + eq.trailing_zeros() as usize);
        }
    }
    // Unreachable: a non-empty mask guarantees some candidate lane equals
    // the reduced minimum. Kept as a defensive fallback for the caller.
    None
}

/// Outcome of one L2 access, consumed by the simulator for timing and
/// statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Hit on a line whose previous accessor was a different thread
    /// (constructive inter-thread interaction).
    pub inter_thread_hit: bool,
    /// On a miss that evicted a valid line of a *different* thread, the
    /// owner of the evicted line (destructive inter-thread interaction).
    pub evicted_other: Option<ThreadId>,
    /// Line (base byte address) of any valid line evicted by this access —
    /// used by an inclusive hierarchy to back-invalidate the L1s.
    pub evicted_line: Option<u64>,
    /// The evicted line was dirty and was written back to memory.
    pub wrote_back: bool,
    /// The hit consumed a prefetched line (first demand reference after a
    /// prefetch fill — a *useful* prefetch).
    pub prefetched_hit: bool,
}

/// A shared, way-partitionable, set-associative L2 cache.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::{CacheConfig, PartitionedL2};
///
/// // A 4-thread shared cache; give thread 0 half the ways.
/// let mut l2 = PartitionedL2::new(CacheConfig::new(64 * 1024, 16, 64), 4);
/// l2.set_targets(&[8, 4, 2, 2]);
/// let miss = l2.access(0, 0x1000);
/// assert!(!miss.hit); // cold
/// assert!(l2.access(0, 0x1000).hit);
/// assert!(l2.access(3, 0x1000).hit); // other threads may hit thread 0's line
/// ```
#[derive(Clone, Debug)]
pub struct PartitionedL2 {
    cfg: CacheConfig,
    /// Shift/mask address math precomputed from `cfg`.
    pub(crate) geom: L2Geometry,
    pub(crate) threads: usize,
    pub(crate) mode: PartitionMode,
    pub(crate) replacement: ReplacementKind,
    enforcement: EnforcementKind,
    /// One PLRU tree (u64 of node bits) per set; unused under `TrueLru`.
    plru_bits: Vec<u64>,
    // Per-line metadata in struct-of-arrays form, `sets * ways` row-major by
    // set: the hit path touches only the 8-byte tag row of one set (a
    // branch-light `&[u64]` scan) instead of striding through 32-byte line
    // records, and the miss path reads each parallel array on demand.
    /// Line tags; [`INVALID_TAG`] marks an empty way.
    pub(crate) tags: Vec<u64>,
    /// LRU clocks (valid ways only). `u32` halves the victim sweep's
    /// memory traffic versus `u64`; [`Self::bump_clock`] rank-compresses
    /// every stored clock if the counter ever reaches `u32::MAX`, so
    /// ordering (and therefore every replacement decision) is identical to
    /// an unbounded clock.
    pub(crate) lrus: Vec<u32>,
    /// Allocating thread of each line; partition bookkeeping follows the
    /// allocator, not later sharers.
    pub(crate) owners: Vec<u8>,
    /// Packed per-line metadata: low byte holds the dirty
    /// ([`META_DIRTY`]) and prefetched ([`META_PREFETCHED`]) flags, high
    /// byte the thread that last touched the line (drives interaction
    /// classification). One `u16` instead of three parallel arrays keeps
    /// the whole record on the cache line the hit path already fetches —
    /// the line metadata working set is far larger than the host caches,
    /// so every separate array is an extra random-access miss.
    pub(crate) meta: Vec<u16>,
    /// Per-set per-thread current way counts: `sets * threads`, row-major by
    /// set. These are the §V "current assignment" counters.
    pub(crate) owned: Vec<u16>,
    /// Per-thread target way quotas (the §V "target assignment" counters);
    /// meaningful only in `Partitioned` mode. Always sums to `cfg.ways`.
    pub(crate) targets: Vec<u32>,
    /// Sanitizer shadow state: per `(set, thread)` grandfathered quota
    /// excess — the amount by which `owned` may legally exceed `targets`
    /// (free-way fills and pre-repartition residue). Maintained by the
    /// `sanitize` module; absent from release builds.
    #[cfg(feature = "sanitize")]
    pub(crate) quota_baseline: Vec<u16>,
    /// Per-thread (start, len) set ranges; meaningful only in
    /// `SetPartitioned` mode.
    set_ranges: Vec<(u32, u32)>,
    pub(crate) clock: u32,
    hits: Vec<u64>,
    misses: Vec<u64>,
    /// Dirty evictions written back to memory, attributed to the line's
    /// owner.
    writebacks: Vec<u64>,
    interactions: InteractionStats,
    /// SIMD tier detected at construction (see [`SimdTier`]).
    simd: SimdTier,
    /// Way predictor: last known way of a line, indexed by [`hint_index`]
    /// of its tag. Purely advisory — every prediction is verified with one
    /// tag load before use and falls back to the full row scan, and a tag
    /// occurs at most once per set (fills only follow failed scans), so a
    /// verified hint is exactly what the scan would return. Typical L2
    /// reference streams re-touch recently installed lines (every L1
    /// writeback does), making this a 1-load fast path past the 64-way
    /// sweep.
    way_hints: Vec<u8>,
}

impl PartitionedL2 {
    /// Creates an empty shared L2 for `threads` threads, initially
    /// unpartitioned.
    ///
    /// # Panics
    /// Panics if `threads` is 0, exceeds 256 (owner stored in a `u8`), or
    /// exceeds the way count.
    pub fn new(cfg: CacheConfig, threads: usize) -> Self {
        assert!(threads > 0 && threads <= 256, "1..=256 threads supported");
        assert!(
            cfg.ways as usize >= threads,
            "need at least one way per thread"
        );
        let n = (cfg.num_sets() * cfg.ways as u64) as usize;
        let sets = cfg.num_sets() as usize;
        PartitionedL2 {
            cfg,
            geom: cfg.geometry(),
            threads,
            mode: PartitionMode::Unpartitioned,
            replacement: ReplacementKind::TrueLru,
            enforcement: EnforcementKind::Replacement,
            plru_bits: vec![0; sets],
            tags: vec![INVALID_TAG; n],
            lrus: vec![0; n],
            owners: vec![0; n],
            meta: vec![0; n],
            owned: vec![0; sets * threads],
            targets: equal_split(cfg.ways, threads),
            #[cfg(feature = "sanitize")]
            quota_baseline: vec![0; sets * threads],
            set_ranges: Vec::new(),
            clock: 0,
            hits: vec![0; threads],
            misses: vec![0; threads],
            writebacks: vec![0; threads],
            interactions: InteractionStats::default(),
            simd: SimdTier::detect(),
            way_hints: vec![NO_HINT; WAY_HINT_ENTRIES],
        }
    }

    /// [`find_tag`] with the dispatch branch resolved from the cached
    /// [`SimdTier`] instead of the detection macro's atomic check.
    #[inline]
    #[hot_path]
    fn find_tag_cached(&self, row: &[u64], tag: u64) -> Option<usize> {
        #[cfg(target_arch = "x86_64")]
        {
            if self.simd == SimdTier::Avx512 {
                // SAFETY: `simd` holds `Avx512` only when runtime detection
                // saw AVX-512F at construction.
                #[allow(unsafe_code)]
                return unsafe { find_tag_avx512(row, tag) };
            }
            if self.simd == SimdTier::Avx2 {
                // SAFETY: `simd` holds `Avx2` only when runtime detection
                // saw AVX2 at construction.
                #[allow(unsafe_code)]
                return unsafe { find_tag_avx2(row, tag) };
            }
        }
        find_tag_generic(row, tag)
    }

    /// Selects the replacement policy (builder style).
    ///
    /// # Panics
    /// Panics if `TreePlru` is requested with a non-power-of-two way count
    /// or more than 64 ways.
    pub fn with_replacement(mut self, kind: ReplacementKind) -> Self {
        self.set_replacement(kind);
        self
    }

    /// Switches the replacement policy in place (PLRU state starts cold).
    ///
    /// # Panics
    /// Same conditions as [`Self::with_replacement`].
    pub fn set_replacement(&mut self, kind: ReplacementKind) {
        if kind == ReplacementKind::TreePlru {
            assert!(
                self.cfg.ways.is_power_of_two() && self.cfg.ways <= 64,
                "tree PLRU needs a power-of-two way count <= 64"
            );
        }
        self.replacement = kind;
    }

    /// The replacement policy in use.
    pub fn replacement(&self) -> ReplacementKind {
        self.replacement
    }

    /// Selects how new partitions take effect (builder style).
    pub fn with_enforcement(mut self, kind: EnforcementKind) -> Self {
        self.enforcement = kind;
        self
    }

    /// Switches the enforcement mode in place.
    pub fn set_enforcement(&mut self, kind: EnforcementKind) {
        self.enforcement = kind;
    }

    /// The enforcement mode in use.
    pub fn enforcement(&self) -> EnforcementKind {
        self.enforcement
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of threads sharing the cache.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current partition mode.
    pub fn mode(&self) -> PartitionMode {
        self.mode
    }

    /// Switches to plain shared (global LRU) operation.
    pub fn set_unpartitioned(&mut self) {
        self.mode = PartitionMode::Unpartitioned;
    }

    /// Sets the per-thread way quotas and enables partitioned operation.
    ///
    /// The cache is *not* flushed: per §V the partition takes effect
    /// gradually through replacement decisions.
    ///
    /// # Panics
    /// Panics if `targets.len() != threads` or the quotas don't sum to the
    /// way count.
    pub fn set_targets(&mut self, targets: &[u32]) {
        assert_eq!(targets.len(), self.threads, "one quota per thread");
        let sum: u32 = targets.iter().sum();
        assert_eq!(
            sum, self.cfg.ways,
            "quotas must sum to the way count ({} != {})",
            sum, self.cfg.ways
        );
        self.targets.clear();
        self.targets.extend_from_slice(targets);
        self.mode = PartitionMode::Partitioned;
        if self.enforcement == EnforcementKind::Reconfigure {
            self.reconfigure_to_targets();
        }
        #[cfg(feature = "sanitize")]
        self.sanitize_rebaseline();
    }

    /// Instantly trims every thread to its quota in every set by
    /// invalidating its oldest excess lines (the reconfigurable-cache data
    /// loss §V warns about). Dirty victims count as writebacks.
    fn reconfigure_to_targets(&mut self) {
        let ways = self.geom.ways;
        for set in 0..self.geom.num_sets() as usize {
            for t in 0..self.threads {
                let quota = self.targets[t];
                loop {
                    let owned = self.owned[set * self.threads + t] as u32;
                    if owned <= quota {
                        break;
                    }
                    // Invalidate this thread's LRU line in the set.
                    let base = set * ways;
                    let victim = (0..ways)
                        .filter(|&w| {
                            self.tags[base + w] != INVALID_TAG
                                && self.owners[base + w] as usize == t
                        })
                        .min_by_key(|&w| self.lrus[base + w])
                        .expect("owned counter says lines exist");
                    if self.meta[base + victim] & META_DIRTY != 0 {
                        self.writebacks[t] += 1;
                    }
                    self.tags[base + victim] = INVALID_TAG;
                    self.meta[base + victim] = 0;
                    self.owned[set * self.threads + t] -= 1;
                }
            }
        }
    }

    /// The current per-thread way quotas.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Enables set partitioning (page-coloring style): thread `t` gets a
    /// contiguous range of sets proportional to `quotas[t]` (same units as
    /// way quotas, so policies are interchangeable) and all of its accesses
    /// fold into that range. Contents are not flushed; stale lines in
    /// foreign ranges age out naturally (they can no longer be referenced).
    ///
    /// # Panics
    /// Same contract as [`Self::set_targets`]; additionally every thread
    /// must receive at least one set.
    pub fn set_set_partition(&mut self, quotas: &[u32]) {
        assert_eq!(quotas.len(), self.threads, "one quota per thread");
        let sum: u32 = quotas.iter().sum();
        assert_eq!(
            sum, self.cfg.ways,
            "quotas must sum to the way count ({} != {})",
            sum, self.cfg.ways
        );
        let sets = self.cfg.num_sets() as u32;
        assert!(
            sets >= self.threads as u32,
            "need at least one set per thread"
        );
        // Largest-remainder apportionment of sets, 1-set floor.
        let spare = sets - self.threads as u32;
        let shares: Vec<f64> = quotas
            .iter()
            .map(|&q| q as f64 / sum as f64 * spare as f64)
            .collect();
        let mut lens: Vec<u32> = shares.iter().map(|s| 1 + s.floor() as u32).collect();
        let mut leftover = sets - lens.iter().sum::<u32>();
        let mut order: Vec<usize> = (0..self.threads).collect();
        order.sort_by(|&a, &b| {
            let ra = shares[a] - shares[a].floor();
            let rb = shares[b] - shares[b].floor();
            rb.partial_cmp(&ra).expect("finite").then(a.cmp(&b))
        });
        let mut i = 0;
        while leftover > 0 {
            lens[order[i % self.threads]] += 1;
            leftover -= 1;
            i += 1;
        }
        let mut start = 0u32;
        self.set_ranges = lens
            .iter()
            .map(|&len| {
                let r = (start, len);
                start += len;
                r
            })
            .collect();
        self.targets.clear();
        self.targets.extend_from_slice(quotas);
        self.mode = PartitionMode::SetPartitioned;
    }

    /// The per-thread set ranges (empty unless set-partitioned).
    pub fn set_ranges(&self) -> &[(u32, u32)] {
        &self.set_ranges
    }

    /// Performs a read access by `thread` to `addr`.
    pub fn access(&mut self, thread: ThreadId, addr: u64) -> L2AccessResult {
        self.access_rw(thread, addr, false)
    }

    /// Performs a read or write access by `thread` to `addr`
    /// (write-allocate, write-back).
    #[hot_path]
    pub fn access_rw(&mut self, thread: ThreadId, addr: u64, write: bool) -> L2AccessResult {
        debug_assert!(thread < self.threads);
        self.bump_clock();
        let tag = self.geom.tag(addr);
        debug_assert_ne!(tag, INVALID_TAG, "address too close to u64::MAX");
        let set = self.map_set(thread, addr);
        let ways = self.geom.ways;
        let base = set * ways;
        self.interactions.total_accesses += 1;

        // Hit path: any thread can hit on any line. The way predictor
        // short-circuits the row sweep with a single verified tag load;
        // on a stale or cold hint the scan runs as before (invalid ways
        // hold INVALID_TAG and can never match) and refreshes the hint.
        let h = hint_index(tag);
        let hinted = self.way_hints[h] as usize;
        let hit_way = if hinted < ways && self.tags[base + hinted] == tag {
            Some(hinted)
        } else {
            let found = self.find_tag_cached(&self.tags[base..base + ways], tag);
            if let Some(w) = found {
                self.way_hints[h] = w as u8;
            }
            found
        };
        if let Some(w) = hit_way {
            let i = base + w;
            self.lrus[i] = self.clock;
            if self.replacement == ReplacementKind::TreePlru {
                plru::touch(&mut self.plru_bits[set], ways as u32, w as u32);
            }
            // One packed metadata word covers dirty, prefetched and
            // last-accessor; the store is conditional so the common
            // same-thread clean-read hit leaves the word unwritten.
            let m = self.meta[i];
            let inter = (m >> META_ACCESSOR_SHIFT) as usize != thread;
            if inter {
                self.interactions.inter_thread_hits += 1;
            }
            let prefetched_hit = m & META_PREFETCHED != 0;
            let mut nm = m & !META_PREFETCHED;
            if write {
                nm |= META_DIRTY;
            }
            if inter {
                nm = (nm & 0x00FF) | ((thread as u16) << META_ACCESSOR_SHIFT);
            }
            if nm != m {
                self.meta[i] = nm;
            }
            self.hits[thread] += 1;
            return L2AccessResult {
                hit: true,
                inter_thread_hit: inter,
                evicted_other: None,
                evicted_line: None,
                wrote_back: false,
                prefetched_hit,
            };
        }

        // Miss path.
        self.misses[thread] += 1;
        let victim = self.choose_victim(set, thread);
        #[cfg(feature = "sanitize")]
        self.sanitize_victim_check(set, victim, thread);
        let (evicted_other, evicted_line, wrote_back) =
            self.evict_for_fill(set, victim, thread);
        let i = base + victim;
        self.tags[i] = tag;
        self.way_hints[h] = victim as u8;
        self.lrus[i] = self.clock;
        self.meta[i] =
            ((thread as u16) << META_ACCESSOR_SHIFT) | if write { META_DIRTY } else { 0 };
        self.owners[i] = thread as u8;
        if self.replacement == ReplacementKind::TreePlru {
            plru::touch(&mut self.plru_bits[set], ways as u32, victim as u32);
        }
        self.owned[set * self.threads + thread] += 1;
        #[cfg(feature = "sanitize")]
        self.sanitize_note_fill(set, thread, evicted_line.is_none());
        L2AccessResult {
            hit: false,
            inter_thread_hit: false,
            evicted_other,
            evicted_line,
            wrote_back,
            prefetched_hit: false,
        }
    }

    /// Maps `addr` to the set `thread` uses: the natural index, or folded
    /// into the thread's private range under set partitioning.
    #[inline]
    #[hot_path]
    fn map_set(&self, thread: ThreadId, addr: u64) -> usize {
        match self.mode {
            PartitionMode::SetPartitioned => {
                // Fold the natural set index into the accessor's range:
                // the page-coloring constraint on physical placement.
                let (start, len) = self.set_ranges[thread];
                (start + (self.geom.set_index(addr) as u32 % len)) as usize
            }
            _ => self.geom.set_index(addr) as usize,
        }
    }

    /// Victim bookkeeping shared by demand fills and prefetch fills:
    /// decrements the previous owner's counter, accounts the writeback, and
    /// classifies the eviction. Returns
    /// `(evicted_other, evicted_line, wrote_back)`.
    #[inline]
    #[hot_path]
    fn evict_for_fill(
        &mut self,
        set: usize,
        victim: usize,
        thread: ThreadId,
    ) -> (Option<ThreadId>, Option<u64>, bool) {
        let i = set * self.geom.ways + victim;
        if self.tags[i] == INVALID_TAG {
            return (None, None, false);
        }
        let prev_owner = self.owners[i] as usize;
        self.owned[set * self.threads + prev_owner] -= 1;
        #[cfg(feature = "sanitize")]
        self.sanitize_note_evict(set, prev_owner, thread);
        let was_dirty = self.meta[i] & META_DIRTY != 0;
        if was_dirty {
            self.writebacks[prev_owner] += 1;
        }
        let inter = if prev_owner != thread {
            self.interactions.inter_thread_evictions += 1;
            Some(prev_owner)
        } else {
            None
        };
        (inter, Some(self.geom.tag_to_addr(self.tags[i])), was_dirty)
    }

    /// Installs `addr`'s line on behalf of `thread`'s prefetcher. Does
    /// nothing if the line is already resident. The fill follows the same
    /// victim-selection rules as a demand miss (prefetches respect the
    /// partition and can pollute exactly like demand fills), but does not
    /// touch the demand hit/miss or interaction counters. Returns the
    /// evicted line (for inclusive back-invalidation) and whether the fill
    /// displaced another thread's line.
    #[hot_path]
    pub fn prefetch_fill(&mut self, thread: ThreadId, addr: u64) -> L2AccessResult {
        debug_assert!(thread < self.threads);
        let tag = self.geom.tag(addr);
        debug_assert_ne!(tag, INVALID_TAG, "address too close to u64::MAX");
        let set = self.map_set(thread, addr);
        let ways = self.geom.ways;
        let base = set * ways;
        // Presence probe with the same verified way-hint fast path as
        // `access_rw` (residency is all that matters here).
        let h = hint_index(tag);
        let hinted = self.way_hints[h] as usize;
        let resident = (hinted < ways && self.tags[base + hinted] == tag)
            || match self.find_tag_cached(&self.tags[base..base + ways], tag) {
                Some(w) => {
                    self.way_hints[h] = w as u8;
                    true
                }
                None => false,
            };
        if resident {
            return L2AccessResult {
                hit: true,
                inter_thread_hit: false,
                evicted_other: None,
                evicted_line: None,
                wrote_back: false,
                prefetched_hit: false,
            };
        }
        self.bump_clock();
        let victim = self.choose_victim(set, thread);
        #[cfg(feature = "sanitize")]
        self.sanitize_victim_check(set, victim, thread);
        let (evicted_other, evicted_line, wrote_back) =
            self.evict_for_fill(set, victim, thread);
        // Prefetched lines are inserted at LRU-adjacent priority (half a
        // clock behind MRU would need fractions; inserting with the current
        // clock is the common simplification).
        let i = base + victim;
        self.tags[i] = tag;
        self.way_hints[h] = victim as u8;
        self.lrus[i] = self.clock;
        self.meta[i] = ((thread as u16) << META_ACCESSOR_SHIFT) | META_PREFETCHED;
        self.owners[i] = thread as u8;
        if self.replacement == ReplacementKind::TreePlru {
            plru::touch(&mut self.plru_bits[set], ways as u32, victim as u32);
        }
        self.owned[set * self.threads + thread] += 1;
        #[cfg(feature = "sanitize")]
        self.sanitize_note_fill(set, thread, evicted_line.is_none());
        L2AccessResult {
            hit: false,
            inter_thread_hit: false,
            evicted_other,
            evicted_line,
            wrote_back,
            prefetched_hit: false,
        }
    }

    /// Advances the LRU clock. The clock and every stored LRU stamp are
    /// `u32` (half the victim sweep's memory traffic); if the counter ever
    /// reaches the last assignable value the stored clocks are
    /// rank-compressed to `1..=k` in order — distinctness and relative
    /// order are preserved exactly, so replacement decisions match an
    /// unbounded clock bit for bit. `u32::MAX` itself is never assigned:
    /// it is the sweep sentinel for "not a candidate".
    #[inline]
    #[hot_path]
    fn bump_clock(&mut self) {
        if self.clock >= u32::MAX - 1 {
            self.rebase_lru_clocks();
        }
        self.clock += 1;
    }

    /// Rank-compresses all stored LRU clocks to `1..=k` preserving order
    /// (cold: runs at most once per ~4 billion accesses). Zero entries
    /// (never-used ways) stay zero; nonzero stamps are globally distinct —
    /// every one came from a distinct clock value — so ranking keeps them
    /// distinct.
    #[cold]
    fn rebase_lru_clocks(&mut self) {
        let mut stamps: Vec<u32> = self.lrus.iter().copied().filter(|&l| l != 0).collect();
        stamps.sort_unstable();
        for l in self.lrus.iter_mut() {
            if *l != 0 {
                // Distinct stamps make the rank unambiguous; the stamp is
                // present by construction, so `partition_point` finds it.
                *l = stamps.partition_point(|&x| x < *l) as u32 + 1;
            }
        }
        self.clock = stamps.len() as u32;
    }

    /// Picks a victim way in `set` for a miss by `thread`, per §V.
    #[hot_path]
    fn choose_victim(&self, set: usize, thread: ThreadId) -> usize {
        let ways = self.geom.ways;
        let base = set * ways;

        // The per-set assignment counters double as an occupancy count
        // (every valid line has exactly one owner — `check_invariants`
        // holds us to it), so a full set skips the free-way scan entirely.
        // Steady state after warmup is "always full": the scan below runs
        // only while the set is still filling.
        let owned_row = &self.owned[set * self.threads..(set + 1) * self.threads];
        let valid: usize = owned_row.iter().map(|&c| c as usize).sum();
        if valid < ways {
            return self.find_tag_cached(&self.tags[base..base + ways], INVALID_TAG)
                .expect("assignment counters say a way is free");
        }

        if self.replacement == ReplacementKind::TreePlru {
            return self.choose_victim_masked(set, thread, owned_row);
        }

        #[cfg(target_arch = "x86_64")]
        if ways == 64 && self.simd == SimdTier::Avx512 {
            // SAFETY: `simd` holds `Avx512` only when runtime detection saw
            // AVX-512F + AVX-512BW at construction, and `ways == 64` gives
            // the exact row lengths the kernels require.
            #[allow(unsafe_code)]
            return unsafe {
                self.choose_victim_avx512(set, thread, owned_row, &self.lrus[base..base + ways])
            };
        }

        // True LRU over a full set: one fused sweep computes every
        // candidate class the §V policy can ask for (own LRU, other-thread
        // LRU, over-quota-owner LRU), instead of one predicate scan per
        // class. LRU clocks are globally unique (each access writes a
        // fresh clock), so taking each class's first minimum here selects
        // exactly the way a dedicated scan would.
        let lrus = &self.lrus[base..base + ways];
        if self.mode != PartitionMode::Partitioned {
            // Unpartitioned: global LRU. Set-partitioned: the range is
            // exclusively the accessor's, so plain LRU within the set is
            // already isolation.
            let mut best_w = 0;
            let mut best_lru = lrus[0];
            for (w, &lru) in lrus.iter().enumerate().skip(1) {
                if lru < best_lru {
                    best_lru = lru;
                    best_w = w;
                }
            }
            return best_w;
        }
        let owners = &self.owners[base..base + ways];
        if (owned_row[thread] as u32) >= self.targets[thread] {
            // At/over quota — the steady state once quotas have phased in:
            // evict our own LRU line ("thread-wise LRU"). With AVX2 the
            // owner row collapses to a match bitmask (32 ways per compare)
            // and only the matching ways' LRU clocks are loaded — a
            // thread's quota is typically a fraction of the set. Bits are
            // consumed lowest-first, preserving way order.
            let th = thread as u8;
            let mut best_w = usize::MAX;
            let mut best_lru = u32::MAX;
            let mut w = 0;
            #[cfg(target_arch = "x86_64")]
            if self.simd != SimdTier::Portable {
                while w + 32 <= ways {
                    // SAFETY: any non-portable tier implies AVX2 was
                    // detected at construction; slice has >= 32 bytes.
                    #[allow(unsafe_code)]
                    let mut bits = unsafe { owner_match_mask_avx2(&owners[w..], th) };
                    while bits != 0 {
                        let j = w + bits.trailing_zeros() as usize;
                        if lrus[j] < best_lru {
                            best_lru = lrus[j];
                            best_w = j;
                        }
                        bits &= bits - 1;
                    }
                    w += 32;
                }
            }
            // Portable path and tail: foreign ways map to a `u32::MAX` key
            // so the sweep stays branchless (valid LRU clocks never reach
            // the sentinel, so a foreign way can't win).
            while w < ways {
                let key = if owners[w] == th { lrus[w] } else { u32::MAX };
                if key < best_lru {
                    best_lru = key;
                    best_w = w;
                }
                w += 1;
            }
            if best_w != usize::MAX {
                return best_w;
            }
            // We own nothing in this set yet: steal the set-global victim
            // — a thread must always be able to make progress.
            let mut best_w = 0;
            let mut best_lru = lrus[0];
            for (w, &lru) in lrus.iter().enumerate().skip(1) {
                if lru < best_lru {
                    best_lru = lru;
                    best_w = w;
                }
            }
            return best_w;
        }
        // Under quota (a transient while a repartition phases in): take a
        // way from another thread. Prefer victims whose owners are over
        // their own quota so the set converges to the target; fall back to
        // any other thread's LRU line; if every line is ours already
        // (inconsistent quotas), self-evict.
        let mut best_over = (u32::MAX, usize::MAX);
        let mut best_other = (u32::MAX, usize::MAX);
        let mut best_own = (u32::MAX, usize::MAX);
        for w in 0..ways {
            let lru = lrus[w];
            let o = owners[w] as usize;
            if o == thread {
                if lru < best_own.0 {
                    best_own = (lru, w);
                }
            } else {
                if lru < best_other.0 {
                    best_other = (lru, w);
                }
                if lru < best_over.0 && (owned_row[o] as u32) > self.targets[o] {
                    best_over = (lru, w);
                }
            }
        }
        if best_over.1 != usize::MAX {
            return best_over.1;
        }
        if best_other.1 != usize::MAX {
            return best_other.1;
        }
        debug_assert_ne!(best_own.1, usize::MAX, "set is full");
        best_own.1
    }

    /// The full-set true-LRU §V victim policy for 64-way sets on AVX-512:
    /// every candidate class (own lines, other threads' lines, over-quota
    /// owners' lines) is built as a `__mmask64` — one byte-compare per
    /// involved thread — and fed to the masked LRU argmin, replacing the
    /// scalar per-way classification sweeps. Globally-unique LRU clocks
    /// make this pick exactly the way the scalar path would.
    ///
    /// # Safety
    ///
    /// The caller must verify at runtime that the CPU supports AVX-512F and
    /// AVX-512BW, and must pass the set's full LRU row with
    /// `self.geom.ways == 64` (so owner rows are exactly 64 bytes). The set
    /// must be full (every way valid), which the occupancy check in
    /// [`Self::choose_victim`] establishes.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw")]
    #[allow(unsafe_code)]
    unsafe fn choose_victim_avx512(
        &self,
        set: usize,
        thread: ThreadId,
        owned_row: &[u16],
        lrus: &[u32],
    ) -> usize {
        let base = set * self.geom.ways;
        let owners = &self.owners[base..base + 64];
        if self.mode != PartitionMode::Partitioned {
            // Unpartitioned: global LRU. Set-partitioned: the range is
            // exclusively the accessor's, so plain LRU within the set is
            // already isolation.
            // SAFETY: preconditions forwarded from the caller.
            return unsafe { masked_lru_argmin_avx512(lrus, u64::MAX) }.unwrap_or(0);
        }
        // SAFETY: preconditions forwarded from the caller (64-byte row).
        let own = unsafe { owner_match_mask_avx512(owners, thread as u8) };
        if (owned_row[thread] as u32) >= self.targets[thread] {
            // At/over quota: evict our own LRU line ("thread-wise LRU");
            // owning nothing in this set, steal the set-global victim.
            // SAFETY: preconditions forwarded from the caller.
            if let Some(w) = unsafe { masked_lru_argmin_avx512(lrus, own) } {
                return w;
            }
            // SAFETY: preconditions forwarded from the caller.
            return unsafe { masked_lru_argmin_avx512(lrus, u64::MAX) }.unwrap_or(0);
        }
        // Under quota: prefer victims whose owners are over their own quota
        // so the set converges to the target; fall back to any other
        // thread's LRU line; if every line is ours (inconsistent quotas),
        // self-evict. The set is full, so `!own` is exactly "other".
        let mut over = 0u64;
        for (o, &owned) in owned_row.iter().enumerate() {
            if o != thread && (owned as u32) > self.targets[o] {
                // SAFETY: preconditions forwarded from the caller.
                over |= unsafe { owner_match_mask_avx512(owners, o as u8) };
            }
        }
        // SAFETY: preconditions forwarded from the caller.
        if let Some(w) = unsafe { masked_lru_argmin_avx512(lrus, over) } {
            return w;
        }
        // SAFETY: preconditions forwarded from the caller.
        if let Some(w) = unsafe { masked_lru_argmin_avx512(lrus, !own) } {
            return w;
        }
        // SAFETY: preconditions forwarded from the caller.
        unsafe { masked_lru_argmin_avx512(lrus, own) }.unwrap_or(0)
    }

    /// The §V victim policy via masked (P)LRU predicate walks — the
    /// tree-PLRU path, where candidate masks feed the tree descent and a
    /// fused LRU sweep doesn't apply. `owned_row` is the set's assignment
    /// counter row; the set is known to be full.
    fn choose_victim_masked(&self, set: usize, thread: ThreadId, owned_row: &[u16]) -> usize {
        if self.mode != PartitionMode::Partitioned {
            return self.victim_among(set, |_| true).expect("set is full");
        }
        if (owned_row[thread] as u32) < self.targets[thread] {
            let over_quota = self.victim_among(set, |o| {
                o != thread && owned_row[o] as u32 > self.targets[o]
            });
            if let Some(i) = over_quota {
                return i;
            }
            if let Some(i) = self.victim_among(set, |o| o != thread) {
                return i;
            }
        }
        self.victim_among(set, |o| o == thread)
            .or_else(|| self.victim_among(set, |_| true))
            .expect("set is full")
    }

    /// The replacement policy's victim among the valid lines of `set` whose
    /// *owner* satisfies `pred`: exact LRU ordering or a masked PLRU tree
    /// walk. Ties in LRU clocks break toward the lowest way index (the
    /// first minimum), matching the original AoS scan order.
    fn victim_among<F: Fn(usize) -> bool>(&self, set: usize, pred: F) -> Option<usize> {
        let ways = self.geom.ways;
        let base = set * ways;
        match self.replacement {
            ReplacementKind::TrueLru => {
                let mut best: Option<(u32, usize)> = None;
                for w in 0..ways {
                    if self.tags[base + w] != INVALID_TAG && pred(self.owners[base + w] as usize)
                    {
                        let lru = self.lrus[base + w];
                        if best.is_none_or(|(b, _)| lru < b) {
                            best = Some((lru, w));
                        }
                    }
                }
                best.map(|(_, w)| w)
            }
            ReplacementKind::TreePlru => {
                let mut mask = 0u64;
                for w in 0..ways {
                    if self.tags[base + w] != INVALID_TAG && pred(self.owners[base + w] as usize)
                    {
                        mask |= 1 << w;
                    }
                }
                plru::victim(self.plru_bits[set], ways as u32, mask).map(|w| w as usize)
            }
        }
    }

    /// Per-thread hit counters.
    pub fn hits(&self) -> &[u64] {
        &self.hits
    }

    /// Per-thread miss counters.
    pub fn misses(&self) -> &[u64] {
        &self.misses
    }

    /// Per-thread memory writeback counters (dirty evictions, attributed
    /// to the line owner).
    pub fn writebacks(&self) -> &[u64] {
        &self.writebacks
    }

    /// Inter-thread interaction statistics.
    pub fn interactions(&self) -> &InteractionStats {
        &self.interactions
    }

    /// Total ways currently owned by `thread` across all sets.
    pub fn ways_owned(&self, thread: ThreadId) -> u64 {
        (0..self.cfg.num_sets() as usize)
            .map(|s| self.owned[s * self.threads + thread] as u64)
            .sum()
    }

    /// Ways owned by `thread` in one set (tests/diagnostics).
    pub fn ways_owned_in_set(&self, set: usize, thread: ThreadId) -> u32 {
        self.owned[set * self.threads + thread] as u32
    }

    /// Zeroes hit/miss/interaction counters; contents and quotas persist.
    pub fn reset_counters(&mut self) {
        self.hits.fill(0);
        self.misses.fill(0);
        self.writebacks.fill(0);
        self.interactions = InteractionStats::default();
    }

    /// Verifies internal consistency: ownership counters match line owners.
    /// O(cache size); intended for tests and debug assertions.
    pub fn check_invariants(&self) {
        let ways = self.geom.ways;
        for set in 0..self.geom.num_sets() as usize {
            let mut counts = vec![0u16; self.threads];
            for w in set * ways..(set + 1) * ways {
                if self.tags[w] != INVALID_TAG {
                    counts[self.owners[w] as usize] += 1;
                }
            }
            for (t, &count) in counts.iter().enumerate() {
                assert_eq!(
                    count,
                    self.owned[set * self.threads + t],
                    "ownership counter mismatch: set {set} thread {t}"
                );
            }
        }
    }
}

/// Splits `ways` into `threads` near-equal integer quotas summing exactly.
pub fn equal_split(ways: u32, threads: usize) -> Vec<u32> {
    let base = ways / threads as u32;
    let extra = (ways as usize % threads) as u32;
    (0..threads as u32)
        .map(|t| base + if t < extra { 1 } else { 0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miri smoke tests run `cargo miri test -p icp-cmp-sim portable_`:
    /// these exercise only the portable scalar paths (no runtime SIMD
    /// dispatch), so the interpreter can check them without AVX2 shims.
    #[test]
    fn portable_find_tag_generic_matches_reference() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64] {
            let row: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            for needle in 0..(n as u64 * 3 + 4) {
                let expect = row.iter().position(|&t| t == needle);
                assert_eq!(find_tag_generic(&row, needle), expect, "n={n} needle={needle}");
            }
        }
    }

    #[test]
    fn portable_find_tag_generic_finds_first_duplicate() {
        let mut row = vec![7u64; 20];
        row[3] = 9;
        assert_eq!(find_tag_generic(&row, 7), Some(0));
        assert_eq!(find_tag_generic(&row, 9), Some(3));
        assert_eq!(find_tag_generic(&row, 8), None);
    }

    #[test]
    fn portable_partitioned_access_and_repartition() {
        let mut l2 = one_set();
        l2.set_targets(&[4, 2, 1, 1]);
        for t in 0..4 {
            for i in 0..4u64 {
                l2.access(t, line(t as u64 * 4 + i));
            }
        }
        l2.check_invariants();
        l2.set_targets(&[1, 1, 2, 4]);
        for t in 0..4 {
            for i in 0..4u64 {
                l2.access(t, line(16 + t as u64 * 4 + i));
            }
        }
        l2.check_invariants();
    }

    /// 1 set x 8 ways cache: makes quota interactions easy to reason about.
    fn one_set() -> PartitionedL2 {
        PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 4)
    }

    /// Address of distinct line `i` (all map to set 0 in `one_set`).
    fn line(i: u64) -> u64 {
        i * 64
    }

    #[test]
    fn find_tag_matches_position_semantics() {
        // Exercise odd lengths (remainder path), duplicates (first index
        // wins) and absence, against the reference implementation — for
        // both the dispatcher and the portable fallback.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65] {
            let row: Vec<u64> = (0..len as u64).map(|i| (i * 37) % 11).collect();
            for needle in 0..12u64 {
                let expect = row.iter().position(|&t| t == needle);
                assert_eq!(find_tag(&row, needle), expect, "len {len} needle {needle}");
                assert_eq!(find_tag_generic(&row, needle), expect, "len {len} needle {needle}");
            }
        }
    }

    #[test]
    fn equal_split_sums() {
        assert_eq!(equal_split(64, 4), vec![16, 16, 16, 16]);
        assert_eq!(equal_split(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(equal_split(64, 8), vec![8; 8]);
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut l2 = one_set();
        assert!(!l2.access(0, line(1)).hit);
        assert!(l2.access(0, line(1)).hit);
        assert!(l2.access(1, line(1)).hit); // cross-thread hit allowed
        assert_eq!(l2.hits(), &[1, 1, 0, 0]);
        assert_eq!(l2.misses(), &[1, 0, 0, 0]);
    }

    #[test]
    fn cross_thread_hit_is_constructive_interaction() {
        let mut l2 = one_set();
        l2.access(0, line(1));
        let r = l2.access(1, line(1));
        assert!(r.hit && r.inter_thread_hit);
        // Same thread again: now intra-thread.
        let r = l2.access(1, line(1));
        assert!(r.hit && !r.inter_thread_hit);
        assert_eq!(l2.interactions().inter_thread_hits, 1);
    }

    #[test]
    fn unpartitioned_uses_global_lru() {
        let mut l2 = one_set();
        for i in 0..8 {
            l2.access(0, line(i));
        }
        // Thread 1 misses: evicts the globally-LRU line 0 despite thread 0
        // owning everything.
        let r = l2.access(1, line(100));
        assert_eq!(r.evicted_other, Some(0));
        assert!(!l2.access(0, line(0)).hit); // line 0 is gone
        l2.check_invariants();
    }

    #[test]
    fn partitioned_blocks_cross_thread_eviction_when_at_quota() {
        let mut l2 = one_set();
        l2.set_targets(&[2, 2, 2, 2]);
        // Thread 0 fills its quota of 2 and keeps missing: it must now evict
        // only its own lines, never other threads'.
        l2.access(1, line(50));
        l2.access(1, line(51));
        for i in 0..20 {
            let r = l2.access(0, line(i));
            assert!(
                r.evicted_other.is_none(),
                "thread 0 evicted another thread's line at i={i}"
            );
        }
        // Thread 1's lines survived thread 0's thrashing.
        assert!(l2.access(1, line(50)).hit);
        assert!(l2.access(1, line(51)).hit);
        // Thread 0 legitimately filled the 6 free ways (eviction control
        // only restricts *evictions*, not allocation into invalid ways) and
        // then recycled its own lines.
        assert_eq!(l2.ways_owned_in_set(0, 0), 6);
        assert_eq!(l2.ways_owned_in_set(0, 1), 2);
        l2.check_invariants();
    }

    #[test]
    fn under_quota_thread_takes_from_over_quota_thread() {
        let mut l2 = one_set();
        // Unpartitioned warm-up: thread 0 grabs all 8 ways.
        for i in 0..8 {
            l2.access(0, line(i));
        }
        // Now partition 4/4 between threads 0 and 1 (others 0... quotas must
        // sum to 8 with 4 threads; give mins elsewhere).
        l2.set_targets(&[3, 3, 1, 1]);
        // Thread 1 misses: must evict thread 0's lines (over quota).
        for i in 0..3 {
            let r = l2.access(1, line(20 + i));
            assert_eq!(r.evicted_other, Some(0), "miss {i}");
        }
        assert_eq!(l2.ways_owned_in_set(0, 1), 3);
        assert_eq!(l2.ways_owned_in_set(0, 0), 5);
        l2.check_invariants();
    }

    #[test]
    fn gradual_convergence_to_targets() {
        let mut l2 = one_set();
        l2.set_targets(&[5, 1, 1, 1]);
        // All four threads continuously miss over disjoint line pools.
        for round in 0..50u64 {
            for t in 0..4usize {
                l2.access(t, line(1000 * (t as u64 + 1) + round));
            }
        }
        // Converged to the target partition.
        assert_eq!(l2.ways_owned_in_set(0, 0), 5);
        assert_eq!(l2.ways_owned_in_set(0, 1), 1);
        assert_eq!(l2.ways_owned_in_set(0, 2), 1);
        assert_eq!(l2.ways_owned_in_set(0, 3), 1);
        l2.check_invariants();
    }

    #[test]
    fn repartition_shifts_ownership_without_flush() {
        let mut l2 = one_set();
        l2.set_targets(&[5, 1, 1, 1]);
        for round in 0..50u64 {
            for t in 0..4usize {
                l2.access(t, line(1000 * (t as u64 + 1) + round));
            }
        }
        let occupied_before: u64 = (0..4).map(|t| l2.ways_owned(t)).sum();
        // Flip the partition; keep streaming.
        l2.set_targets(&[1, 5, 1, 1]);
        for round in 50..120u64 {
            for t in 0..4usize {
                l2.access(t, line(1000 * (t as u64 + 1) + round));
            }
        }
        assert_eq!(l2.ways_owned_in_set(0, 0), 1);
        assert_eq!(l2.ways_owned_in_set(0, 1), 5);
        // No lines were lost in the transition.
        let occupied_after: u64 = (0..4).map(|t| l2.ways_owned(t)).sum();
        assert_eq!(occupied_before, occupied_after);
        l2.check_invariants();
    }

    #[test]
    fn destructive_evictions_counted() {
        let mut l2 = one_set();
        for i in 0..8 {
            l2.access(0, line(i));
        }
        l2.access(1, line(100)); // evicts a thread-0 line
        assert_eq!(l2.interactions().inter_thread_evictions, 1);
        // Self-eviction is not inter-thread: pin thread 1 at quota 1 (it
        // already owns exactly one line) and let it thrash against itself.
        let before = l2.interactions().inter_thread_evictions;
        l2.set_targets(&[7, 1, 0, 0]);
        for i in 200..210 {
            l2.access(1, line(i));
        }
        assert_eq!(l2.interactions().inter_thread_evictions, before);
        l2.check_invariants();
    }

    #[test]
    #[should_panic(expected = "sum to the way count")]
    fn bad_targets_rejected() {
        one_set().set_targets(&[1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "one quota per thread")]
    fn wrong_target_len_rejected() {
        one_set().set_targets(&[4, 4]);
    }

    #[test]
    fn multi_set_cache_partitions_each_set() {
        // 4 sets x 4 ways, 2 threads.
        let mut l2 = PartitionedL2::new(CacheConfig::new(16 * 64, 4, 64), 2);
        l2.set_targets(&[3, 1]);
        // Both threads stream over many lines in all sets.
        for i in 0..400u64 {
            l2.access(0, i * 64);
            l2.access(1, (1000 + i) * 64);
        }
        for set in 0..4 {
            assert_eq!(l2.ways_owned_in_set(set, 0), 3, "set {set}");
            assert_eq!(l2.ways_owned_in_set(set, 1), 1, "set {set}");
        }
        l2.check_invariants();
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut l2 = one_set();
        l2.access(0, line(1));
        l2.reset_counters();
        assert_eq!(l2.hits(), &[0, 0, 0, 0]);
        assert!(l2.access(0, line(1)).hit); // still cached
    }

    #[test]
    fn plru_partitioning_enforces_quotas() {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 4)
            .with_replacement(ReplacementKind::TreePlru);
        l2.set_targets(&[5, 1, 1, 1]);
        for round in 0..50u64 {
            for t in 0..4usize {
                l2.access(t, line(1000 * (t as u64 + 1) + round));
            }
        }
        assert_eq!(l2.ways_owned_in_set(0, 0), 5);
        assert_eq!(l2.ways_owned_in_set(0, 1), 1);
        assert_eq!(l2.ways_owned_in_set(0, 2), 1);
        assert_eq!(l2.ways_owned_in_set(0, 3), 1);
        l2.check_invariants();
    }

    #[test]
    fn plru_blocks_cross_thread_eviction_at_quota() {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 4)
            .with_replacement(ReplacementKind::TreePlru);
        l2.set_targets(&[2, 2, 2, 2]);
        l2.access(1, line(50));
        l2.access(1, line(51));
        for i in 0..20 {
            let r = l2.access(0, line(i));
            assert!(r.evicted_other.is_none(), "i={i}");
        }
        assert!(l2.access(1, line(50)).hit);
        assert!(l2.access(1, line(51)).hit);
        l2.check_invariants();
    }

    #[test]
    fn plru_hit_rate_close_to_lru_for_looping_thread(){
        // A loop fitting in the ways: after warmup both policies hit 100%.
        for kind in [ReplacementKind::TrueLru, ReplacementKind::TreePlru] {
            let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 1)
                .with_replacement(kind);
            for _ in 0..10 {
                for i in 0..8 {
                    l2.access(0, line(i));
                }
            }
            assert_eq!(l2.misses()[0], 8, "{kind:?}: only compulsory misses");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two_ways() {
        // 3-way cache: PLRU cannot be used.
        let _ = PartitionedL2::new(CacheConfig::new(2 * 3 * 64, 3, 64), 2)
            .with_replacement(ReplacementKind::TreePlru);
    }

    #[test]
    fn reconfigure_enforcement_trims_instantly() {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 4)
            .with_enforcement(EnforcementKind::Reconfigure);
        // Thread 0 fills the whole set.
        for i in 0..8 {
            l2.access(0, line(i));
        }
        assert_eq!(l2.ways_owned_in_set(0, 0), 8);
        // Applying a 2/2/2/2 partition instantly drops thread 0 to 2 lines.
        l2.set_targets(&[2, 2, 2, 2]);
        assert_eq!(l2.ways_owned_in_set(0, 0), 2);
        l2.check_invariants();
        // The data is gone: the most recent two lines survive, the rest
        // miss on re-access.
        assert!(l2.access(0, line(7)).hit);
        assert!(l2.access(0, line(6)).hit);
        assert!(!l2.access(0, line(0)).hit);
    }

    #[test]
    fn reconfigure_writes_back_dirty_victims() {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 2)
            .with_enforcement(EnforcementKind::Reconfigure);
        for i in 0..4 {
            l2.access_rw(0, line(i), true); // dirty lines
        }
        l2.set_targets(&[1, 7]);
        assert_eq!(l2.ways_owned_in_set(0, 0), 1);
        assert_eq!(l2.writebacks()[0], 3);
        l2.check_invariants();
    }

    #[test]
    fn replacement_enforcement_keeps_data() {
        // Contrast case: the default mechanism keeps all lines resident
        // when the partition is applied.
        let mut l2 = one_set();
        for i in 0..8 {
            l2.access(0, line(i));
        }
        l2.set_targets(&[2, 2, 2, 2]);
        assert_eq!(l2.ways_owned_in_set(0, 0), 8); // nothing dropped yet
        for i in 0..8 {
            assert!(l2.access(0, line(i)).hit, "line {i} must survive");
        }
    }

    #[test]
    fn set_partition_ranges_cover_all_sets() {
        // 8 sets x 8 ways, 4 threads.
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 8 * 64, 8, 64), 4);
        l2.set_set_partition(&[4, 2, 1, 1]);
        let ranges = l2.set_ranges().to_vec();
        assert_eq!(ranges.len(), 4);
        let total: u32 = ranges.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 8);
        // Contiguous and ordered.
        let mut next = 0;
        for (start, len) in ranges {
            assert_eq!(start, next);
            assert!(len >= 1);
            next = start + len;
        }
        // Proportionality: thread 0 (half the quota) gets the biggest range.
        assert!(l2.set_ranges()[0].1 >= l2.set_ranges()[1].1);
    }

    #[test]
    fn set_partition_isolates_threads_completely() {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 8 * 64, 8, 64), 2);
        l2.set_set_partition(&[4, 4]);
        // Thread 0 warms lines; thread 1 thrashes over a huge pool. Thread
        // 0's lines must be untouchable.
        for i in 0..16 {
            l2.access(0, line(i));
        }
        let misses_before = l2.misses()[0];
        for i in 0..500 {
            l2.access(1, line(1000 + i));
        }
        for i in 0..16 {
            l2.access(0, line(i));
        }
        // Thread 0's second pass: all hits (its range holds 4 sets x 8
        // ways = 32 lines >= 16).
        assert_eq!(l2.misses()[0], misses_before);
        assert_eq!(l2.interactions().inter_thread_evictions, 0);
        l2.check_invariants();
    }

    #[test]
    fn set_partition_replicates_shared_lines() {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 8 * 64, 8, 64), 2);
        l2.set_set_partition(&[4, 4]);
        // Both threads access the same address: each misses once (the line
        // is replicated into both ranges) — no constructive sharing, the
        // private-cache drawback the paper describes.
        assert!(!l2.access(0, line(7)).hit);
        assert!(!l2.access(1, line(7)).hit);
        assert!(l2.access(0, line(7)).hit);
        assert!(l2.access(1, line(7)).hit);
        l2.check_invariants();
    }

    #[test]
    fn way_partition_shares_where_set_partition_replicates() {
        // The contrast case: way partitioning lets thread 1 hit thread 0's
        // line.
        let mut l2 = one_set();
        l2.set_targets(&[2, 2, 2, 2]);
        assert!(!l2.access(0, line(7)).hit);
        assert!(l2.access(1, line(7)).hit); // constructive sharing survives
    }

    #[test]
    #[should_panic(expected = "sum to the way count")]
    fn set_partition_validates_quotas() {
        let mut l2 = PartitionedL2::new(CacheConfig::new(8 * 8 * 64, 8, 64), 2);
        l2.set_set_partition(&[3, 3]);
    }

    #[test]
    fn zero_quota_thread_still_progresses() {
        let mut l2 = one_set();
        l2.set_targets(&[8, 0, 0, 0]);
        // Thread 1 has quota 0 but must still be able to allocate (it evicts
        // its own lines once it has any; the first allocation steals LRU).
        assert!(!l2.access(1, line(1)).hit);
        assert!(l2.access(1, line(1)).hit);
        l2.check_invariants();
    }
}
