//! The sliced-LLC machine model: an L2 split into address-hashed slices.
//!
//! # The machine model
//!
//! Commodity many-core LLCs are not monolithic: the cache is physically
//! distributed into *slices*, one per tile/cluster, and a hash of the line
//! address routes each access to its home slice. [`Llc`] models exactly
//! that regime on top of the existing simulator: an L2 of `N` slices
//! ([`crate::config::LlcConfig::slices`]), each slice an independent cache
//! with its own geometry (`1/N` of the capacity, same associativity), its
//! own way-partition state, and its own UMON. The paper's monolithic L2 is
//! the `N = 1` degenerate case — bit-identical to the legacy serial
//! simulator, enforced by `tests/slice_equivalence.rs`.
//!
//! # Slice hashing
//!
//! [`SliceTopology::slice_of`] maps a line address to its home slice with
//! a Fibonacci multiplicative hash (golden-ratio constant, top `log2 N`
//! bits). Unlike taking the low set bits, the multiplicative hash spreads
//! *any* regular pattern — sequential walks, power-of-two strides, and the
//! head-heavy line distribution of Zipf-like streams — near-uniformly
//! across slices, which is what makes slice-level parallelism an
//! effective scaling axis (no slice starves; see the distribution tests).
//!
//! # Execution and determinism
//!
//! Execution reuses the set-sharded engine ([`crate::shard`]) with the
//! demux keyed by the slice hash instead of `set_index mod k`: each core's
//! stream is split once into `N` per-slice packed sub-traces
//! ([`crate::shard::demux_stream_by`]), slice `j` is simulated by a full
//! [`Simulator`](crate::simulator::Simulator) over the slice geometry, and
//! per-slice intervals run on scoped worker threads, merged in fixed slice
//! order ([`Llc::new`] degrades to the bit-identical in-order engine on
//! hosts without a second core, where workers could only time-slice). The
//! shard engine's bitwise promises carry over unchanged:
//!
//! 1. **`N = 1` is the legacy serial simulator** — same geometry, same
//!    interval boundary, every event in order through one slice.
//! 2. **Parallel == serial reference at every `N`** — worker-thread
//!    execution is bit-identical to [`Llc::serial_reference`], the same
//!    decomposition run on one thread.
//!
//! At `N > 1` the machine *model* deliberately changes (slices are
//! independent caches; a thread's way quota applies per slice), so sliced
//! results are not comparable to monolithic ones — the experiment caches
//! key on the slice count for exactly that reason.

use std::sync::Arc;

use icp_hot_path::deterministic;

use crate::config::{CacheConfig, LlcConfig, SystemConfig};
use crate::l2::{EnforcementKind, ReplacementKind};
use crate::perf::Measurable;
use crate::shard::{demux_stream_by, ShardedSimulator};
use crate::simulator::IntervalReport;
use crate::stats::GlobalStats;
use crate::stream::AccessStream;
use crate::umon::UtilityMonitor;
use crate::ThreadId;

/// The 64-bit golden-ratio constant of the Fibonacci multiplicative hash.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Address-to-slice mapping plus the per-slice geometry, precomputed from
/// a [`SystemConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceTopology {
    /// Number of slices (>= 1).
    slices: u32,
    /// `log2(line_bytes)`: shift that turns a byte address into a line
    /// address before hashing, so all bytes of a line share a slice.
    line_shift: u32,
    /// `log2(slices)`: how many top hash bits select the slice.
    slice_bits: u32,
    /// Geometry of one slice: `1/slices` of the L2 at the same
    /// associativity and line size.
    slice_l2: CacheConfig,
}

impl SliceTopology {
    /// Derives the slice topology of `cfg` (which must validate).
    #[deterministic]
    pub fn of(cfg: &SystemConfig) -> Self {
        cfg.validate();
        let slices = cfg.llc.slices.max(1);
        SliceTopology {
            slices,
            line_shift: cfg.l2.line_bytes.trailing_zeros(),
            slice_bits: slices.trailing_zeros(),
            slice_l2: cfg.slice_l2(),
        }
    }

    /// Number of slices.
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.slices as usize
    }

    /// Geometry of one slice.
    #[inline]
    pub fn slice_l2(&self) -> CacheConfig {
        self.slice_l2
    }

    /// Home slice of a byte address: Fibonacci hash of the line address,
    /// top `log2(slices)` bits. Always 0 for a monolithic LLC.
    #[inline]
    #[deterministic]
    pub fn slice_of(&self, addr: u64) -> usize {
        if self.slices <= 1 {
            return 0;
        }
        let line = addr >> self.line_shift;
        (line.wrapping_mul(GOLDEN_GAMMA) >> (64 - self.slice_bits)) as usize
    }
}

/// A sliced-LLC CMP machine — see the [module docs](self) for the model
/// and determinism guarantees.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::config::LlcConfig;
/// use icp_cmp_sim::slice::Llc;
/// use icp_cmp_sim::stream::ReplayStream;
/// use icp_cmp_sim::{SystemConfig, ThreadEvent};
///
/// let mut cfg = SystemConfig::scaled_down();
/// cfg.cores = 2;
/// cfg.llc = LlcConfig::sliced(4);
/// let walk = |stride: u64| -> ReplayStream {
///     ReplayStream::new((0..100).map(|i| ThreadEvent::access(3, i * stride * 64)).collect())
/// };
/// let mut llc = Llc::new(cfg, vec![walk(1), walk(7)]);
/// llc.set_partition(&[48, 16]);
/// while let Some(report) = llc.run_interval() {
///     if report.finished {
///         break;
///     }
/// }
/// assert!(llc.wall_cycles() > 0);
/// ```
pub struct Llc {
    /// The slice-hash-demuxed shard engine: shard `j` simulates slice `j`
    /// at the slice geometry.
    inner: ShardedSimulator,
    topology: SliceTopology,
}

impl Llc {
    /// Builds a sliced-LLC machine from `cfg` (slice count taken from
    /// `cfg.llc`), run slice-parallel on scoped worker threads — unless
    /// the process core budget ([`crate::budget`]: `--jobs` / `ICP_CORES`
    /// / host cores) is a single core, where worker threads could only
    /// time-slice against each other and the machine degrades to the
    /// (bit-identical) in-order serial engine instead, exactly as
    /// [`PipelinedStream`](crate::pipeline::PipelinedStream) degrades to
    /// inline generation. Parallel mode itself is arbitrated per interval:
    /// each interval leases its workers from the budget and returns them
    /// at the merge barrier. Use [`Llc::with_mode`] to force either mode.
    ///
    /// # Panics
    /// Panics if the config is invalid or the stream count doesn't match
    /// `cfg.cores`.
    #[deterministic]
    pub fn new<S: AccessStream>(cfg: SystemConfig, streams: Vec<S>) -> Self {
        Self::with_mode(cfg, streams, crate::budget::current().total() >= 2)
    }

    /// Like [`Llc::new`], but every slice interval runs on the calling
    /// thread, in slice order — the reference the equivalence suite pins
    /// the worker-thread path against.
    #[deterministic]
    pub fn serial_reference<S: AccessStream>(cfg: SystemConfig, streams: Vec<S>) -> Self {
        Self::with_mode(cfg, streams, false)
    }

    /// Builds the machine with an explicit execution mode: `parallel`
    /// forces scoped worker threads (one per slice) regardless of host
    /// parallelism; `!parallel` is [`Llc::serial_reference`]. Both modes
    /// produce bit-identical results (`tests/slice_equivalence.rs`); the
    /// mode only decides where slice intervals execute.
    #[deterministic]
    pub fn with_mode<S: AccessStream>(cfg: SystemConfig, streams: Vec<S>, parallel: bool) -> Self {
        cfg.validate();
        assert_eq!(streams.len(), cfg.cores, "one stream per core");
        let topology = SliceTopology::of(&cfg);
        let n = topology.num_slices();
        // Each slice simulator runs the slice geometry with a 1/N share of
        // the interval budget (rounded up, as in the shard engine); the
        // outer config keeps the full geometry so merged reports and way
        // quotas stay in whole-LLC terms. At N = 1 this is `cfg` verbatim.
        let mut slice_cfg = cfg;
        slice_cfg.l2 = topology.slice_l2();
        slice_cfg.llc = LlcConfig::monolithic();
        slice_cfg.interval_instructions = cfg.interval_instructions.div_ceil(n as u64);
        let per_core = streams
            .into_iter()
            .map(|s| {
                demux_stream_by(s, n, |addr| topology.slice_of(addr))
                    .into_iter()
                    .map(Arc::new)
                    .collect()
            })
            .collect();
        Llc {
            inner: ShardedSimulator::from_demuxed(cfg, slice_cfg, per_core, parallel),
            topology,
        }
    }

    /// The system configuration (full-LLC geometry, undivided interval).
    pub fn config(&self) -> &SystemConfig {
        self.inner.config()
    }

    /// The address-to-slice mapping in force.
    pub fn topology(&self) -> &SliceTopology {
        &self.topology
    }

    /// Number of LLC slices (and worker threads in parallel mode).
    pub fn num_slices(&self) -> usize {
        self.topology.num_slices()
    }

    /// Whether slice intervals run on worker threads.
    pub fn is_parallel(&self) -> bool {
        self.inner.is_parallel()
    }

    /// Applies a way partition to every slice (quotas in way units; ways
    /// are not divided across slices, so a thread's quota applies in each
    /// slice independently).
    pub fn set_partition(&mut self, targets: &[u32]) {
        self.inner.set_partition(targets);
    }

    /// Reverts every slice to plain shared (global LRU) operation.
    pub fn set_unpartitioned(&mut self) {
        self.inner.set_unpartitioned();
    }

    /// Applies a set partition (quotas in way units, converted to set
    /// ranges within each slice).
    pub fn set_set_partition(&mut self, quotas: &[u32]) {
        self.inner.set_set_partition(quotas);
    }

    /// Selects the L2 replacement policy on every slice.
    pub fn set_replacement(&mut self, kind: ReplacementKind) {
        self.inner.set_replacement(kind);
    }

    /// Selects the partition enforcement mechanism on every slice.
    pub fn set_enforcement(&mut self, kind: EnforcementKind) {
        self.inner.set_enforcement(kind);
    }

    /// Attaches a utility monitor to every slice. `sample_every` is
    /// clamped to the slice set count so callers can pass whole-LLC
    /// sampling rates unchanged.
    pub fn enable_umon(&mut self, sample_every: u64) {
        self.inner.enable_umon(sample_every.min(self.topology.slice_l2().num_sets()));
    }

    /// The machine-wide utility profile: every slice monitor's counters
    /// summed in slice order ([`UtilityMonitor::merge_counters`] — slices
    /// observe disjoint address subsets, so the sum reconstitutes the
    /// whole hits-vs-ways curve). `None` when UMON was never enabled.
    #[deterministic]
    pub fn merged_umon(&self) -> Option<UtilityMonitor> {
        self.inner.merged_umon()
    }

    /// Halves every slice monitor's counters (see
    /// [`UtilityMonitor::decay_counters`]).
    pub fn decay_umon(&mut self) {
        self.inner.decay_umon();
    }

    /// Merged cumulative statistics, current as of the last interval
    /// boundary.
    pub fn stats(&self) -> &GlobalStats {
        self.inner.stats()
    }

    /// Core `t`'s merged clock: the sum of its per-slice clocks.
    pub fn core_clock(&self, t: ThreadId) -> u64 {
        self.inner.core_clock(t)
    }

    /// Merged wall clock: the maximum merged core clock.
    pub fn wall_cycles(&self) -> u64 {
        self.inner.wall_cycles()
    }

    /// Stream events consumed so far, summed over slices.
    pub fn events_processed(&self) -> u64 {
        self.inner.events_processed()
    }

    /// Whether every thread of every slice has finished.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    /// Runs every slice to its next interval boundary — concurrently in
    /// parallel mode — and merges the per-slice reports in slice order.
    /// Returns `None` once the workload has completed.
    #[deterministic]
    pub fn run_interval(&mut self) -> Option<IntervalReport> {
        self.inner.run_interval()
    }

    /// Runs every remaining interval, invoking `on_interval` at each
    /// boundary; the callback may inspect the report and repartition.
    /// Returns total wall cycles at completion.
    pub fn run_to_completion<F: FnMut(&mut Self, &IntervalReport)>(
        &mut self,
        mut on_interval: F,
    ) -> u64 {
        while let Some(report) = self.run_interval() {
            let r = report;
            on_interval(self, &r);
        }
        self.wall_cycles()
    }
}

impl Measurable for Llc {
    fn stats(&self) -> &GlobalStats {
        Llc::stats(self)
    }

    fn events_processed(&self) -> u64 {
        Llc::events_processed(self)
    }

    fn wall_cycles(&self) -> u64 {
        Llc::wall_cycles(self)
    }

    fn run_interval(&mut self) -> Option<IntervalReport> {
        Llc::run_interval(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, LatencyConfig};
    use crate::simulator::Simulator;
    use crate::stream::{ReplayStream, ThreadEvent};

    fn tiny_cfg(slices: u32) -> SystemConfig {
        SystemConfig {
            cores: 2,
            l1: CacheConfig::new(2 * 64 * 2, 2, 64), // 2 sets x 2 ways
            l2: CacheConfig::new(8 * 64 * 4, 4, 64), // 8 sets x 4 ways
            llc: LlcConfig::sliced(slices),
            latency: LatencyConfig { l1_hit: 1, l2_hit: 10, memory: 100 },
            interval_instructions: 64,
            inclusive: false,
            coherence: false,
            prefetch_degree: 0,
            l2_banks: 0,
            victim_cache_lines: 0,
        }
    }

    fn walk(lines: u64, stride: u64, n: u64) -> Vec<ThreadEvent> {
        (0..n).map(|i| ThreadEvent::access(2, ((i * stride) % lines) * 64)).collect()
    }

    fn streams(n: u64) -> Vec<ReplayStream> {
        vec![ReplayStream::new(walk(32, 3, n)), ReplayStream::new(walk(32, 7, n))]
    }

    fn run(llc: &mut Llc) -> (u64, GlobalStats, Vec<u64>) {
        let mut insts = Vec::new();
        while let Some(r) = llc.run_interval() {
            insts.push(r.threads.iter().map(|t| t.counters.instructions).sum());
            if r.finished {
                break;
            }
        }
        (llc.wall_cycles(), llc.stats().clone(), insts)
    }

    /// N = 1 is the legacy serial simulator, bit for bit.
    #[test]
    fn one_slice_equals_serial() {
        let cfg = tiny_cfg(1);
        let mut serial = Simulator::from_streams(cfg, streams(200));
        while serial.run_interval().is_some() {}
        let mut llc = Llc::new(cfg, streams(200));
        while llc.run_interval().is_some() {}
        assert_eq!(serial.wall_cycles(), llc.wall_cycles());
        assert_eq!(serial.stats(), llc.stats());
    }

    /// Worker-thread execution is bit-identical to the serial reference at
    /// every slice count.
    #[test]
    fn parallel_matches_serial_reference() {
        for slices in [1u32, 2, 4, 8] {
            let cfg = tiny_cfg(slices);
            let (wall_p, stats_p, insts_p) =
                run(&mut Llc::with_mode(cfg, streams(300), true));
            let (wall_s, stats_s, insts_s) =
                run(&mut Llc::serial_reference(cfg, streams(300)));
            assert_eq!(wall_p, wall_s, "N={slices}: wall diverged");
            assert_eq!(stats_p, stats_s, "N={slices}: stats diverged");
            assert_eq!(insts_p, insts_s, "N={slices}: interval shape diverged");
        }
    }

    /// Every slice count conserves total instructions and accesses — the
    /// slice-hash demux loses nothing.
    #[test]
    fn slicing_conserves_work() {
        let (_, base, _) = run(&mut Llc::new(tiny_cfg(1), streams(250)));
        for slices in [2u32, 4, 8] {
            let (_, stats, _) = run(&mut Llc::new(tiny_cfg(slices), streams(250)));
            for t in 0..2 {
                assert_eq!(
                    stats.threads[t].instructions, base.threads[t].instructions,
                    "N={slices} thread {t}"
                );
                assert_eq!(
                    stats.threads[t].l1_hits + stats.threads[t].l1_misses,
                    base.threads[t].l1_hits + base.threads[t].l1_misses,
                    "N={slices} thread {t}"
                );
            }
        }
    }

    /// The monolithic topology maps everything to slice 0; sliced
    /// topologies stay in range and agree per line.
    #[test]
    fn slice_hash_is_line_granular_and_in_range() {
        let mono = SliceTopology::of(&tiny_cfg(1));
        let quad = SliceTopology::of(&tiny_cfg(4));
        for addr in [0u64, 63, 64, 4095, 0xDEAD_BEEF, u64::MAX / 3] {
            assert_eq!(mono.slice_of(addr), 0);
            let s = quad.slice_of(addr);
            assert!(s < 4);
            // All bytes of one line share a slice.
            assert_eq!(quad.slice_of(addr), quad.slice_of(addr | 63));
        }
    }

    /// The Fibonacci hash spreads sequential and strided line patterns
    /// near-uniformly: no slice takes more than twice its fair share.
    #[test]
    fn slice_hash_spreads_regular_patterns() {
        let topo = SliceTopology::of(&tiny_cfg(8));
        for stride in [1u64, 2, 8, 64, 4096] {
            let mut counts = [0u64; 8];
            for i in 0..4096u64 {
                counts[topo.slice_of(i * stride * 64)] += 1;
            }
            let fair = 4096 / 8;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c > fair / 2 && c < fair * 2,
                    "stride {stride}: slice {s} got {c} of 4096 (fair {fair})"
                );
            }
        }
    }

    /// The per-slice geometry divides sets, not ways, and UMON profiles
    /// merge across slices.
    #[test]
    fn sliced_umon_merges() {
        let cfg = tiny_cfg(4);
        let mut llc = Llc::new(cfg, streams(200));
        llc.enable_umon(cfg.l2.num_sets()); // clamped to the slice set count
        while llc.run_interval().is_some() {}
        let umon = llc.merged_umon().expect("umon enabled");
        let observed: u64 = (0..2)
            .map(|t| {
                umon.way_histogram(t).iter().sum::<u64>() + umon.compulsory_capacity_misses(t)
            })
            .sum();
        assert!(observed > 0, "merged profile saw no sampled accesses");
    }
}
