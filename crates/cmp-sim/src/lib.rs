//! A from-scratch chip-multiprocessor (CMP) cache and timing simulator.
//!
//! This crate is the substrate the ICP paper ran on Simics: a multi-core
//! system with per-core private L1 caches and a shared, highly-associative
//! L2 whose ways can be partitioned among threads. Partitioning is enforced
//! exactly as the paper's §V describes — not by reconfiguring the cache, but
//! by modifying the replacement policy (eviction control): a thread under
//! its way quota may evict other threads' lines; a thread at or over quota
//! may only evict its own. Any thread can *hit* on any line, so constructive
//! inter-thread sharing still works.
//!
//! The timing model is a blocking in-order core: non-memory instructions
//! retire one per cycle, memory instructions stall for the hierarchy
//! latency. Threads interleave deterministically via a min-clock event
//! scheduler, and synchronise at barriers exactly like the OpenMP parallel
//! sections of the paper's workloads (§III-B): a parallel section ends when
//! its slowest thread — the critical path thread — arrives.
//!
//! The simulator exposes per-thread, per-interval performance counters
//! (instructions, cycles, hits, misses, inter-thread interactions) that the
//! `icp-core` runtime reads at each execution interval, mirroring the
//! hardware performance monitors of the paper's runtime system (§VI-C).

// Deny (not forbid): the single exception is the runtime-dispatched SIMD
// tag scan in `l2`, which carries its own scoped `allow` and safety
// comments. Everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod budget;
pub mod cache;
pub mod config;
pub mod l2;
pub mod packed;
pub mod perf;
pub mod pipeline;
pub mod plru;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod shard;
pub mod simulator;
pub mod slice;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod umon;
pub mod victim;

pub use budget::{CoreBudget, Lease};
pub use config::{CacheConfig, L2Geometry, LatencyConfig, LlcConfig, SystemConfig};
pub use l2::{EnforcementKind, PartitionMode, PartitionedL2, ReplacementKind};
pub use packed::{PackedBlock, PackedReplayStream, PackedTrace};
pub use perf::{Machine, Measurable, PerfReport};
pub use pipeline::{PipelinedStream, TakeStream};
pub use shard::ShardedSimulator;
pub use simulator::{IntervalReport, Simulator, ThreadIntervalStats};
pub use slice::{Llc, SliceTopology};
pub use stats::{GlobalStats, InteractionStats, ThreadCounters};
pub use stream::{AccessStream, ThreadEvent};
pub use trace::Trace;
pub use umon::{UmonProfile, UtilityMonitor};
pub use victim::VictimCache;

/// Identifies a hardware thread / core. The paper uses "thread" and "core"
/// interchangeably (one pinned thread per core, §III-A); so do we.
pub type ThreadId = usize;
