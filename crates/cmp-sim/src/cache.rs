//! A plain set-associative LRU cache, used for the private L1s and as the
//! building block for the UMON auxiliary tag directories.
//!
//! The model tracks only presence (tags + LRU ordering) — no data, no
//! coherence — which is all a cache-partitioning study needs: the paper's
//! policies observe hit/miss counters, not contents.

use crate::config::{CacheConfig, L2Geometry};
use icp_hot_path::hot_path;

/// Tag value marking an invalid way. Real tags are line addresses, which
/// can't reach `u64::MAX` for any plausible address (the L2 asserts the
/// same convention).
pub(crate) const INVALID_TAG: u64 = u64::MAX;

/// Outcome of one read/write access to a [`SetAssocCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// Line address (byte address of the line base) of an evicted dirty
    /// line, which must be written back to the next level.
    pub writeback: Option<u64>,
}

/// A set-associative cache with exact LRU replacement.
///
/// Line metadata is struct-of-arrays, row-major by set, like the L2: the
/// hit scan is an equality sweep over a contiguous tag row, with validity
/// folded into the tag via [`INVALID_TAG`] and the LRU victim choice
/// folded into the timestamp (invalid ways hold `lru == 0`, below every
/// valid timestamp because the clock pre-increments).
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// Shift/mask address math precomputed from `cfg`.
    pub(crate) geom: L2Geometry,
    /// `sets * ways` tags; `INVALID_TAG` marks an invalid way.
    pub(crate) tags: Vec<u64>,
    /// Per-way LRU timestamps; 0 = never used (invalid ways stay 0).
    pub(crate) lrus: Vec<u64>,
    /// Per-way dirty bits; a dirty victim must be written back.
    dirty: Vec<bool>,
    /// Monotonic access counter used as the LRU clock.
    pub(crate) clock: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let n = (cfg.num_sets() * cfg.ways as u64) as usize;
        SetAssocCache {
            cfg,
            geom: cfg.geometry(),
            tags: vec![INVALID_TAG; n],
            lrus: vec![0; n],
            dirty: vec![false; n],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Performs a read access: returns `true` on hit. On a miss the line
    /// is allocated, evicting the set's LRU line if the set is full.
    /// (Writeback information is discarded; use [`Self::access_rw`] when
    /// modelling dirty traffic.)
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_rw(addr, false).hit
    }

    /// Performs a read or write access (write-allocate, write-back): on a
    /// store the line is marked dirty; evicting a dirty line reports a
    /// writeback to the next level.
    #[hot_path]
    pub fn access_rw(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.clock += 1;
        let tag = self.geom.tag(addr);
        debug_assert_ne!(tag, INVALID_TAG, "address too close to u64::MAX");
        let set = self.geom.set_index(addr) as usize;
        let ways = self.geom.ways;
        let base = set * ways;

        // Hit scan first, victim scan only on a miss: hits (the common
        // case) never touch the LRU row beyond their own slot, and the
        // branchless equality sweep over a short contiguous tag row
        // vectorises. A matching tag is unique, so the last assignment is
        // the only one.
        let tags = &self.tags[base..base + ways];
        let mut hit_way = usize::MAX;
        for (w, &t) in tags.iter().enumerate() {
            if t == tag {
                hit_way = w;
            }
        }
        if hit_way != usize::MAX {
            let i = base + hit_way;
            self.lrus[i] = self.clock;
            // Store only on writes: a clean-read hit (the common case)
            // leaves the dirty row untouched.
            if write {
                self.dirty[i] = true;
            }
            self.hits += 1;
            return CacheAccess { hit: true, writeback: None };
        }
        // Miss: fill an invalid way, else evict LRU. Invalid ways hold
        // `lru == 0`, below every valid timestamp, so the first minimum
        // fills invalid ways before evicting (and in way order, matching
        // the pre-SoA behaviour).
        self.misses += 1;
        let lrus = &self.lrus[base..base + ways];
        let mut victim = 0;
        let mut best = lrus[0];
        for (w, &l) in lrus.iter().enumerate().skip(1) {
            if l < best {
                best = l;
                victim = w;
            }
        }
        let i = base + victim;
        let writeback = if self.tags[i] != INVALID_TAG && self.dirty[i] {
            Some(self.geom.tag_to_addr(self.tags[i]))
        } else {
            None
        };
        self.tags[i] = tag;
        self.lrus[i] = self.clock;
        self.dirty[i] = write;
        CacheAccess { hit: false, writeback }
    }

    /// Invalidates the line holding `addr` if present (inclusive-hierarchy
    /// back-invalidation). Returns `true` if the line was present and
    /// dirty — its data is lost to this level and must be considered
    /// written back by the caller.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let tag = self.geom.tag(addr);
        let set = self.geom.set_index(addr) as usize;
        let ways = self.geom.ways;
        let base = set * ways;
        if let Some(w) = self.tags[base..base + ways].iter().position(|&t| t == tag) {
            let i = base + w;
            let was_dirty = self.dirty[i];
            self.tags[i] = INVALID_TAG;
            self.lrus[i] = 0;
            self.dirty[i] = false;
            return was_dirty;
        }
        false
    }

    /// Checks presence without touching LRU state or counters.
    pub fn probe(&self, addr: u64) -> bool {
        let tag = self.geom.tag(addr);
        let set = self.geom.set_index(addr) as usize;
        let ways = self.geom.ways;
        let base = set * ways;
        self.tags[base..base + ways].contains(&tag)
    }

    /// Total hits since construction (or the last [`Self::reset_counters`]).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction (or the last [`Self::reset_counters`]).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Zeroes the hit/miss counters (contents are kept).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidates every line and zeroes counters.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.lrus.fill(0);
        self.dirty.fill(false);
        self.clock = 0;
        self.reset_counters();
    }

    /// Number of currently valid lines (for tests/diagnostics).
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Portable (miri-friendly) smoke test: hit/miss/LRU/writeback logic
    /// touches no SIMD and no platform intrinsics.
    #[test]
    fn portable_l1_hit_miss_and_writeback() {
        let mut c = SetAssocCache::new(CacheConfig::new(2 * 64, 2, 64));
        assert!(!c.access_rw(0, true).hit);
        assert!(!c.access_rw(128, false).hit);
        assert!(c.access(0));
        // Third distinct line in a 2-way set evicts the LRU (128), and the
        // dirty line 0 stays.
        let res = c.access_rw(256, false);
        assert!(!res.hit);
        assert_eq!(res.writeback, None);
        assert!(c.access(0), "dirty line 0 was MRU and must survive");
    }

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B lines = 256B.
        SetAssocCache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(32)); // same line, different offset
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with even line numbers (2 sets).
        let a = 0u64; // set 0
        let b = 128; // set 0 (line 2)
        let d = 256; // set 0 (line 4)
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        c.access(d); // evicts b (LRU)
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(64); // set 1
        c.access(128); // set 0
        c.access(192); // set 1
        // Both sets full; nothing evicted yet.
        assert_eq!(c.occupancy(), 4);
        assert!(c.probe(0) && c.probe(64) && c.probe(128) && c.probe(192));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.access(0);
        c.access(128);
        // Probe the LRU line; it must still be the eviction victim.
        assert!(c.probe(0));
        c.access(256); // evicts line 0 despite the probe
        assert!(!c.probe(0));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // 6 distinct lines cycling through a 4-line cache, round robin:
        // with true LRU every access misses.
        for round in 0..10 {
            for i in 0..6u64 {
                let hit = c.access(i * 64);
                if round > 0 {
                    assert!(!hit, "unexpected hit on round {round} line {i}");
                }
            }
        }
    }

    #[test]
    fn working_set_fitting_cache_all_hits_after_warmup() {
        let mut c = tiny();
        for _ in 0..3 {
            for i in 0..4u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 4); // only compulsory misses
        assert_eq!(c.hits(), 8);
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_writeback() {
        let mut c = tiny();
        c.access_rw(0, true); // store to set 0
        c.access_rw(128, false);
        // Two more misses in set 0 evict the dirty line 0 eventually.
        let r1 = c.access_rw(256, false); // evicts line 0 (dirty LRU)
        assert_eq!(r1.writeback, Some(0));
        let r2 = c.access_rw(384, false); // evicts clean line 2
        assert_eq!(r2.writeback, None);
    }

    #[test]
    fn write_hit_dirties_existing_line() {
        let mut c = tiny();
        c.access_rw(0, false);
        c.access_rw(0, true); // hit-store
        c.access_rw(128, false);
        let r = c.access_rw(256, false); // evicts line 0
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn invalidate_removes_line_and_reports_dirtiness() {
        let mut c = tiny();
        c.access_rw(0, true);
        c.access_rw(64, false);
        assert!(c.invalidate(0)); // dirty
        assert!(!c.invalidate(64)); // clean line: present but not dirty
        assert!(!c.probe(0));
        assert!(!c.probe(64));
        assert!(!c.invalidate(512)); // absent
    }

    #[test]
    fn flush_and_reset() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.hits(), 0);
        assert!(!c.access(0)); // compulsory miss again after flush
    }
}
