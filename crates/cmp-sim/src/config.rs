//! System configuration: cache geometries and latencies.
//!
//! Defaults mirror the paper's Figure 2 table: a 4-core CMP, 8 KB 4-way
//! private L1s, a 1 MB 64-way shared L2, 64-byte lines.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line (block) size in bytes. Must be a power of two.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Creates a config, validating that the geometry is realisable.
    ///
    /// # Panics
    /// Panics if the line size is not a power of two, if the capacity is not
    /// an exact multiple of `ways * line_bytes`, or if the resulting set
    /// count is not a power of two (required for mask-based set indexing).
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways > 0, "cache needs at least one way");
        let way_bytes = ways as u64 * line_bytes;
        assert!(
            size_bytes.is_multiple_of(way_bytes) && size_bytes > 0,
            "capacity {size_bytes} not divisible into {ways} ways of {line_bytes}B lines"
        );
        let sets = size_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        CacheConfig { size_bytes, ways, line_bytes }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes)
    }

    /// Maps an address to its set index.
    #[inline]
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr >> self.line_bytes.trailing_zeros()) & (self.num_sets() - 1)
    }

    /// Maps an address to its tag (line address; set bits retained for
    /// simplicity — uniqueness per set still holds).
    #[inline]
    pub fn tag(&self, addr: u64) -> u64 {
        addr >> self.line_bytes.trailing_zeros()
    }

    /// Precomputed shift/mask address math for this geometry. Hot paths
    /// hold one of these instead of re-deriving set counts per access.
    #[inline]
    pub fn geometry(&self) -> L2Geometry {
        L2Geometry::new(self)
    }
}

/// Precomputed shift/mask address decomposition for a cache level.
///
/// [`CacheConfig`]'s `set_index`/`tag` recompute the set count (a hardware
/// division) on every call; the simulator's per-access paths instead hold
/// this precomputed form, where every mapping is a shift and a mask. Line
/// sizes and set counts are powers of two by construction
/// ([`CacheConfig::new`] validates), so the mappings are exact.
///
/// The name reflects its main client — the shared L2's hot paths — but the
/// private L1s and the UMON use the same decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Geometry {
    /// `log2(line_bytes)`: shift that turns a byte address into a line
    /// address.
    pub line_shift: u32,
    /// `num_sets - 1`: mask applied to the line address to get the set.
    pub set_mask: u64,
    /// Associativity, as a `usize` for direct indexing.
    pub ways: usize,
    /// Line size in bytes (kept for size conversions).
    pub line_bytes: u64,
}

impl L2Geometry {
    /// Derives the shift/mask form of `cfg`.
    pub fn new(cfg: &CacheConfig) -> Self {
        L2Geometry {
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: cfg.num_sets() - 1,
            ways: cfg.ways as usize,
            line_bytes: cfg.line_bytes,
        }
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        self.set_mask + 1
    }

    /// Rounds a byte address down to its line base address.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) << self.line_shift
    }

    /// Maps an address to its set index.
    #[inline]
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) & self.set_mask
    }

    /// Maps an address to its tag (full line address, as in
    /// [`CacheConfig::tag`]).
    #[inline]
    pub fn tag(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Turns a tag back into the line's base byte address.
    #[inline]
    pub fn tag_to_addr(&self, tag: u64) -> u64 {
        tag << self.line_shift
    }
}

/// Topology of the shared LLC: how many address-hashed slices the L2 is
/// split into.
///
/// `slices = 1` is the paper's monolithic L2 (the degenerate case — nothing
/// in the simulator changes). At `slices > 1` the L2 capacity is divided
/// into `slices` independent slices of `size_bytes / slices` each (same
/// associativity and line size), and a line-address hash assigns every
/// access to one slice — the machine model of [`crate::slice::Llc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlcConfig {
    /// Number of address-hashed L2 slices. Must be a power of two, at
    /// least 1, and small enough that each slice keeps a valid geometry
    /// (at least one set per slice).
    pub slices: u32,
}

impl LlcConfig {
    /// The monolithic LLC (one slice — the paper's machine).
    pub fn monolithic() -> Self {
        LlcConfig { slices: 1 }
    }

    /// A sliced LLC with `slices` address-hashed slices.
    pub fn sliced(slices: u32) -> Self {
        LlcConfig { slices }
    }
}

impl Default for LlcConfig {
    fn default() -> Self {
        Self::monolithic()
    }
}

/// Access latencies in core cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Latency of an L1 hit (total memory-instruction cost on a hit).
    pub l1_hit: u64,
    /// Additional latency when the access misses L1 but hits L2.
    pub l2_hit: u64,
    /// Additional latency when the access misses L2 and goes to memory.
    pub memory: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        // Representative of a ~1 GHz in-order core of the paper's era
        // (UltraSPARC III): fast L1, ~12-cycle L2, ~150-cycle DRAM. The
        // DRAM figure is on the low side of that era to keep per-thread
        // CPIs in the 3–12 band the paper reports (a blocking core model
        // has no memory-level parallelism to hide latency behind).
        LatencyConfig { l1_hit: 1, l2_hit: 12, memory: 150 }
    }
}

/// Full system configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores (= application threads; one thread pinned per core).
    pub cores: usize,
    /// Private per-core L1 geometry.
    pub l1: CacheConfig,
    /// Shared L2 geometry (the *total* LLC capacity; see `llc` for how it
    /// is divided into slices).
    pub l2: CacheConfig,
    /// LLC topology: number of address-hashed L2 slices.
    /// [`LlcConfig::monolithic`] (1 slice) reproduces the paper's machine.
    pub llc: LlcConfig,
    /// Hierarchy latencies.
    pub latency: LatencyConfig,
    /// Execution interval length in instructions, summed over all threads
    /// (the paper uses 15 M-instruction intervals; tests and benches scale
    /// this down — the paper reports little sensitivity to it, §VII).
    pub interval_instructions: u64,
    /// Enforce L1 ⊆ L2 inclusion: an L2 eviction back-invalidates the line
    /// in every L1. Off by default (the paper does not specify the
    /// hierarchy's inclusion policy; non-inclusive is the neutral choice).
    pub inclusive: bool,
    /// Write-invalidate coherence between the private L1s: a store
    /// invalidates the line in every other L1 (MSI-style, modelled without
    /// timing cost). Off by default; the synthetic workloads' shared data
    /// is read-mostly so the paper's experiments are insensitive to it, but
    /// the flag matters for write-heavy sharing studies.
    pub coherence: bool,
    /// Sequential L2 prefetch degree: on a demand miss to line `L`, lines
    /// `L+1 ..= L+degree` are installed off the critical path. 0 (default)
    /// disables prefetching. Prefetch fills obey the partition and can
    /// pollute like demand fills — the `ablation_prefetch` bench measures
    /// the interplay with partitioning.
    pub prefetch_degree: u32,
    /// Number of L2 banks (sets striped across banks). Concurrent accesses
    /// to the same bank serialise: each demand access occupies its bank for
    /// the L2-hit latency. 0 (default) models unlimited bank bandwidth.
    /// Bank conflicts interact with the partitioning mechanism: set
    /// partitioning confines threads to disjoint banks, way partitioning
    /// does not.
    pub l2_banks: u32,
    /// Capacity (in lines) of a fully-associative victim cache behind the
    /// L2 (Zhang & Asanović lineage, related work §II): L2 evictions land
    /// there and an L2 miss that hits it is serviced at L2-hit latency.
    /// 0 (default) disables it.
    pub victim_cache_lines: u32,
}

impl SystemConfig {
    /// The paper's Figure 2 configuration: 4 cores, 8 KB 4-way L1s,
    /// 1 MB 64-way shared L2, 64 B lines, 15 M-instruction intervals.
    pub fn paper_default() -> Self {
        SystemConfig {
            cores: 4,
            l1: CacheConfig::new(8 * 1024, 4, 64),
            l2: CacheConfig::new(1024 * 1024, 64, 64),
            llc: LlcConfig::monolithic(),
            latency: LatencyConfig::default(),
            interval_instructions: 15_000_000,
            inclusive: false,
            coherence: false,
            prefetch_degree: 0,
            l2_banks: 0,
            victim_cache_lines: 0,
        }
    }

    /// The 8-core sensitivity configuration (paper §VII-C, Figure 22):
    /// 8 threads on 8 cores, same 1 MB shared L2.
    pub fn paper_eight_core() -> Self {
        SystemConfig { cores: 8, ..Self::paper_default() }
    }

    /// A scaled-down configuration for fast tests and benches: same shape
    /// (4 cores, 64-way shared L2) with a smaller L2 and short intervals so
    /// runs finish in milliseconds while exercising identical code paths.
    pub fn scaled_down() -> Self {
        SystemConfig {
            cores: 4,
            l1: CacheConfig::new(2 * 1024, 4, 64),
            l2: CacheConfig::new(256 * 1024, 64, 64),
            llc: LlcConfig::monolithic(),
            latency: LatencyConfig::default(),
            interval_instructions: 200_000,
            inclusive: false,
            coherence: false,
            prefetch_degree: 0,
            l2_banks: 0,
            victim_cache_lines: 0,
        }
    }

    /// Validates cross-field invariants (panics on violation). Called by the
    /// simulator constructor.
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.cores <= 64, "ownership bookkeeping supports up to 64 cores");
        assert!(
            self.l2.ways as usize >= self.cores,
            "L2 must have at least one way per core"
        );
        assert_eq!(
            self.l1.line_bytes, self.l2.line_bytes,
            "L1/L2 line sizes must match"
        );
        assert!(self.interval_instructions > 0, "interval length must be positive");
        assert!(
            self.l2_banks == 0 || self.l2_banks.is_power_of_two(),
            "L2 bank count must be 0 (unbanked) or a power of two for mask-based striping"
        );
        assert!(
            self.llc.slices >= 1 && self.llc.slices.is_power_of_two(),
            "LLC slice count must be a power of two (got {})",
            self.llc.slices
        );
        assert!(
            (self.llc.slices as u64) <= self.l2.num_sets(),
            "LLC slice count {} exceeds the L2 set count {}",
            self.llc.slices,
            self.l2.num_sets()
        );
    }

    /// Geometry of one LLC slice: `1/slices` of the L2 capacity at the same
    /// associativity and line size. Equals `l2` for a monolithic LLC.
    ///
    /// # Panics
    /// Panics (via [`CacheConfig::new`]) if the slice count does not divide
    /// the L2 into a valid geometry; [`SystemConfig::validate`] rules that
    /// out for power-of-two slice counts up to the set count.
    pub fn slice_l2(&self) -> CacheConfig {
        if self.llc.slices <= 1 {
            return self.l2;
        }
        CacheConfig::new(
            self.l2.size_bytes / self.llc.slices as u64,
            self.l2.ways,
            self.l2.line_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_figure2() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1.size_bytes, 8 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l2.ways, 64);
        assert_eq!(c.interval_instructions, 15_000_000);
        c.validate();
    }

    #[test]
    fn eight_core_config() {
        let c = SystemConfig::paper_eight_core();
        assert_eq!(c.cores, 8);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        c.validate();
    }

    #[test]
    fn set_counts() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.l1.num_sets(), 32); // 8KB / (4 * 64B)
        assert_eq!(c.l2.num_sets(), 256); // 1MB / (64 * 64B)
    }

    #[test]
    fn set_index_and_tag() {
        let c = CacheConfig::new(1024 * 1024, 64, 64);
        let sets = c.num_sets();
        // Addresses one line apart land in consecutive sets.
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(64), 1);
        assert_eq!(c.set_index(64 * sets), 0); // wraps
        // Tags of distinct lines in the same set differ.
        assert_ne!(c.tag(0), c.tag(64 * sets));
        // Same line, different byte offsets: same tag and set.
        assert_eq!(c.tag(7), c.tag(63));
        assert_eq!(c.set_index(7), c.set_index(63));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        CacheConfig::new(8 * 1024, 4, 48);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_capacity() {
        CacheConfig::new(1000, 4, 64);
    }

    #[test]
    #[should_panic(expected = "at least one way per core")]
    fn rejects_fewer_ways_than_cores() {
        let mut c = SystemConfig::paper_default();
        c.l2 = CacheConfig::new(4 * 64 * 2, 2, 64);
        c.validate();
    }

    #[test]
    fn scaled_down_is_valid() {
        SystemConfig::scaled_down().validate();
    }

    #[test]
    fn geometry_matches_division_form() {
        for cfg in [
            CacheConfig::new(1024 * 1024, 64, 64),
            CacheConfig::new(8 * 1024, 4, 64),
            CacheConfig::new(256, 2, 64),
            CacheConfig::new(4 * 128 * 8, 8, 128),
        ] {
            let g = cfg.geometry();
            assert_eq!(g.num_sets(), cfg.num_sets());
            for addr in [0u64, 1, 63, 64, 65, 4095, 0xDEAD_BEEF, 1 << 50, u64::MAX / 2] {
                assert_eq!(g.set_index(addr), cfg.set_index(addr), "addr {addr:#x}");
                assert_eq!(g.tag(addr), cfg.tag(addr), "addr {addr:#x}");
                assert_eq!(
                    g.line_addr(addr),
                    addr / cfg.line_bytes * cfg.line_bytes,
                    "addr {addr:#x}"
                );
                assert_eq!(g.tag_to_addr(g.tag(addr)), g.line_addr(addr));
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_banks() {
        let mut c = SystemConfig::paper_default();
        c.l2_banks = 3;
        c.validate();
    }

    #[test]
    fn default_llc_is_monolithic() {
        assert_eq!(LlcConfig::default(), LlcConfig::monolithic());
        assert_eq!(SystemConfig::paper_default().llc.slices, 1);
        assert_eq!(SystemConfig::paper_default().slice_l2(), SystemConfig::paper_default().l2);
    }

    #[test]
    fn sliced_llc_divides_sets_not_ways() {
        let mut c = SystemConfig::paper_default();
        c.llc = LlcConfig::sliced(8);
        c.validate();
        let s = c.slice_l2();
        assert_eq!(s.ways, c.l2.ways);
        assert_eq!(s.line_bytes, c.l2.line_bytes);
        assert_eq!(s.num_sets(), c.l2.num_sets() / 8);
        assert_eq!(s.size_bytes * 8, c.l2.size_bytes);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_slices() {
        let mut c = SystemConfig::paper_default();
        c.llc = LlcConfig::sliced(3);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds the L2 set count")]
    fn rejects_more_slices_than_sets() {
        let mut c = SystemConfig::paper_default();
        c.llc = LlcConfig::sliced(512);
        c.validate();
    }

    #[test]
    fn sixty_four_threads_eight_slices_is_valid() {
        let mut c = SystemConfig::paper_default();
        c.cores = 64;
        c.llc = LlcConfig::sliced(8);
        c.validate();
        // Ways are not divided across slices, so the one-way-per-core
        // invariant holds per slice even at 64 threads.
        assert!(c.slice_l2().ways as usize >= c.cores);
    }
}
