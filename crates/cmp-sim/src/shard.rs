//! Set-sharded parallel simulation: scale the sim loop across host cores.
//!
//! # The machine model
//!
//! A [`ShardedSimulator`] with `k` shards models a *sliced* (banked-LLC)
//! CMP: the L2 set space is striped across `k` independent slices
//! (`slice = set_index mod k`), and each core's access stream is demuxed
//! into `k` per-slice sub-streams. Slice `j` is simulated by a complete
//! [`Simulator`] instance — full geometry, all cores — whose streams carry
//! only the events that touch slice `j`'s sets. Unowned sets simply stay
//! empty (the struct-of-arrays caches make an untouched set cost nothing
//! but its memory), so per-set behaviour inside a slice is identical to
//! what the serial simulator computes for those sets.
//!
//! Between interval boundaries the `k` slices share no mutable state, so
//! they run on `k` worker threads with no synchronisation at all; at each
//! boundary their counters are merged **in fixed shard order** into one
//! [`IntervalReport`], so repartition decisions and digests see a single
//! coherent machine.
//!
//! # Determinism guarantees
//!
//! Exact bit-equality with the *global min-clock interleave* of the serial
//! simulator is only possible at `k = 1`: with more than one slice, the
//! serial path's cross-set couplings (a single per-core clock, bank
//! contention, inclusive back-invalidation, the shared victim cache, and
//! the global instruction-sum interval boundary) are intentionally cut at
//! slice edges. What this module *does* guarantee, bitwise and enforced by
//! `tests/shard_equivalence.rs`:
//!
//! 1. **`k = 1` is the legacy simulator.** One shard receives every event
//!    in order with the original interval length, so every counter, report
//!    and digest equals the serial path exactly.
//! 2. **Parallel == serial reference at every `k`.** Running the `k`
//!    slices on worker threads produces bit-identical reports to running
//!    the same `k`-decomposition on one thread
//!    ([`ShardedSimulator::serial_reference`]): shard simulations are
//!    deterministic, workers are joined in shard order, and the merge is a
//!    fixed-order fold — thread scheduling cannot reach the result.
//!
//! # Merge rules
//!
//! * Counters: summed per thread over shards `0..k` ([`ThreadCounters`] is
//!   a bag of `u64`s, so addition order is irrelevant — but the order is
//!   fixed anyway).
//! * Interval CPI: recomputed from the merged deltas (not averaged).
//! * Wall clock: core `t`'s merged clock is the *sum* of its per-slice
//!   clocks (each slice advances the core only while it works that slice),
//!   and the wall clock is the max over cores — collapsing to the serial
//!   definition at `k = 1`.
//! * UMON: per-shard monitors observe disjoint set slices, so summing
//!   their way-hit histograms ([`UtilityMonitor::merge_counters`])
//!   reconstitutes the whole hits-vs-ways curve.
//! * Interval boundaries: each shard retires `ceil(interval / k)`
//!   instructions per interval, so a merged interval covers the original
//!   instruction budget.

use std::sync::Arc;

use icp_hot_path::deterministic;

use crate::config::SystemConfig;
use crate::packed::{PackedBlock, PackedReplayStream, PackedTrace};
use crate::perf::Measurable;
use crate::simulator::{IntervalReport, Simulator, ThreadIntervalStats};
use crate::stats::{GlobalStats, ThreadCounters};
use crate::stream::{AccessStream, ThreadEvent};
use crate::umon::UtilityMonitor;
use crate::ThreadId;

/// Events drained per demux refill.
const DEMUX_BATCH: usize = 4096;

/// Demuxes one core's event stream into `k` packed sub-traces, routing
/// each access by an arbitrary address key (`key(addr)` must be `< k`).
///
/// The instruction gap travels with its access; barriers are replicated
/// into every sub-trace so cross-core ordering around a barrier holds
/// within each slice. This is the shared demux engine behind both the
/// set-striped decomposition here and the slice-hash decomposition in
/// [`crate::slice`].
#[deterministic]
pub(crate) fn demux_stream_by<S: AccessStream>(
    mut stream: S,
    k: usize,
    mut key: impl FnMut(u64) -> usize,
) -> Vec<PackedTrace> {
    let mut out: Vec<PackedTrace> = (0..k).map(|_| PackedTrace::new()).collect();
    let mut block = PackedBlock::with_capacity(DEMUX_BATCH);
    loop {
        stream.fill_packed(&mut block, DEMUX_BATCH);
        for e in block.to_events() {
            match e {
                ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                    out[key(addr)].push_access(gap, addr, write, mlp_tenths);
                }
                ThreadEvent::Barrier => {
                    for t in &mut out {
                        t.push_barrier();
                    }
                }
                ThreadEvent::Finished => {}
            }
        }
        if block.finished() {
            break;
        }
        assert!(!block.is_empty(), "stream stalled without finishing");
    }
    out
}

/// Demuxes one core's event stream into `k` per-slice packed sub-traces
/// using the set-striped key (`set_index mod k`).
#[deterministic]
fn demux_stream<S: AccessStream>(
    stream: S,
    cfg: &SystemConfig,
    k: usize,
) -> Vec<PackedTrace> {
    let geom = cfg.l2.geometry();
    demux_stream_by(stream, k, |addr| (geom.set_index(addr) as usize) % k)
}

/// A set-sharded CMP simulator — see the [module docs](self) for the
/// machine model, determinism guarantees and merge rules.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::stream::ReplayStream;
/// use icp_cmp_sim::{ShardedSimulator, SystemConfig, ThreadEvent};
///
/// let mut cfg = SystemConfig::scaled_down();
/// cfg.cores = 2;
/// let walk = |stride: u64| -> ReplayStream {
///     ReplayStream::new((0..100).map(|i| ThreadEvent::access(3, i * stride * 64)).collect())
/// };
/// let mut sim = ShardedSimulator::new(cfg, vec![walk(1), walk(7)], 2);
/// sim.set_partition(&[48, 16]);
/// while let Some(report) = sim.run_interval() {
///     if report.finished {
///         break;
///     }
/// }
/// assert!(sim.wall_cycles() > 0);
/// ```
pub struct ShardedSimulator {
    cfg: SystemConfig,
    /// One full-geometry simulator per set slice, indexed by slice id.
    shards: Vec<Simulator<PackedReplayStream>>,
    /// Run shard intervals on scoped worker threads (`false` = the
    /// serial-reference engine the equivalence tests compare against).
    parallel: bool,
    /// Merged cumulative statistics, rebuilt at each interval boundary.
    stats: GlobalStats,
    interval_index: usize,
    done: bool,
}

impl ShardedSimulator {
    /// Builds a sharded simulator over `shards` set slices, run in
    /// parallel on scoped worker threads at each interval.
    ///
    /// # Panics
    /// Panics if `shards` is zero, the stream count doesn't match
    /// `cfg.cores`, or the config is invalid.
    #[deterministic]
    pub fn new<S: AccessStream>(cfg: SystemConfig, streams: Vec<S>, shards: usize) -> Self {
        Self::with_mode(cfg, streams, shards, true)
    }

    /// Like [`ShardedSimulator::new`], but every shard interval runs on
    /// the calling thread, in shard order. Bit-identical to the parallel
    /// engine by construction — the reference the equivalence suite pins
    /// the worker-thread path against.
    #[deterministic]
    pub fn serial_reference<S: AccessStream>(
        cfg: SystemConfig,
        streams: Vec<S>,
        shards: usize,
    ) -> Self {
        Self::with_mode(cfg, streams, shards, false)
    }

    /// Builds a parallel sharded simulator sized from the process core
    /// budget ([`crate::budget`]: `--jobs` / `ICP_CORES` / host cores),
    /// clamped to the L2 set count (one set per slice is the finest useful
    /// decomposition). Falls back to one shard — the exact serial machine —
    /// at a budget of 1. Note the budget total picks the *decomposition*
    /// here; how many worker threads each interval actually gets is leased
    /// separately in [`ShardedSimulator::run_interval`].
    #[deterministic]
    pub fn auto<S: AccessStream>(cfg: SystemConfig, streams: Vec<S>) -> Self {
        let shards = crate::budget::current().total().clamp(1, cfg.l2.num_sets() as usize);
        Self::new(cfg, streams, shards)
    }

    fn with_mode<S: AccessStream>(
        cfg: SystemConfig,
        streams: Vec<S>,
        shards: usize,
        parallel: bool,
    ) -> Self {
        cfg.validate();
        assert!(shards > 0, "at least one shard");
        assert_eq!(streams.len(), cfg.cores, "one stream per core");
        // Each shard retires a 1/k share of the interval budget, rounded
        // up, so a merged interval covers >= the configured instruction
        // count and k = 1 keeps the exact serial boundary.
        let mut shard_cfg = cfg;
        shard_cfg.interval_instructions = cfg.interval_instructions.div_ceil(shards as u64);
        // Demux core-by-core, then transpose: shard j simulates every
        // core's slice-j sub-trace.
        let per_core: Vec<Vec<Arc<PackedTrace>>> = streams
            .into_iter()
            .map(|s| demux_stream(s, &cfg, shards).into_iter().map(Arc::new).collect())
            .collect();
        Self::from_demuxed(cfg, shard_cfg, per_core, parallel)
    }

    /// Assembles a sharded simulator from already-demuxed per-core traces:
    /// `per_core[c][j]` holds core `c`'s sub-trace for shard `j`. `cfg` is
    /// the outer machine config; `shard_cfg` is what each shard simulator
    /// runs (possibly a different L2 geometry and interval share — the
    /// sliced-LLC machine in [`crate::slice`] passes the per-slice
    /// geometry here).
    ///
    /// # Panics
    /// Panics if either config is invalid, the per-core trace matrix is
    /// ragged or empty, or the core count doesn't match `cfg.cores`.
    pub(crate) fn from_demuxed(
        cfg: SystemConfig,
        shard_cfg: SystemConfig,
        per_core: Vec<Vec<Arc<PackedTrace>>>,
        parallel: bool,
    ) -> Self {
        cfg.validate();
        shard_cfg.validate();
        assert_eq!(per_core.len(), cfg.cores, "one demuxed trace set per core");
        let shards = per_core.first().map_or(0, Vec::len);
        assert!(shards > 0, "at least one shard");
        assert!(
            per_core.iter().all(|traces| traces.len() == shards),
            "every core must be demuxed into the same shard count"
        );
        let sims = (0..shards)
            .map(|j| {
                let slice_streams: Vec<PackedReplayStream> = per_core
                    .iter()
                    .map(|traces| PackedTrace::stream(&traces[j]))
                    .collect();
                Simulator::from_streams(shard_cfg, slice_streams)
            })
            .collect();
        ShardedSimulator {
            cfg,
            shards: sims,
            parallel,
            stats: GlobalStats::new(cfg.cores),
            interval_index: 0,
            done: false,
        }
    }

    /// The system configuration (the original, with the undivided interval
    /// length).
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Number of set slices (and worker threads in parallel mode).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether shard intervals run on worker threads.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Applies a way partition to every slice's L2 (see
    /// [`Simulator::set_partition`]).
    pub fn set_partition(&mut self, targets: &[u32]) {
        for s in &mut self.shards {
            s.set_partition(targets);
        }
    }

    /// Reverts every slice to plain shared (global LRU) operation.
    pub fn set_unpartitioned(&mut self) {
        for s in &mut self.shards {
            s.set_unpartitioned();
        }
    }

    /// Applies a set partition (quotas in way units, converted to set
    /// ranges per slice — see [`Simulator::set_set_partition`]) to every
    /// slice's L2.
    pub fn set_set_partition(&mut self, quotas: &[u32]) {
        for s in &mut self.shards {
            s.set_set_partition(quotas);
        }
    }

    /// Halves every slice monitor's counters (exponential decay at
    /// interval boundaries — see [`UtilityMonitor::decay_counters`]).
    /// No-op when UMON was never enabled.
    pub fn decay_umon(&mut self) {
        for s in &mut self.shards {
            if let Some(u) = s.umon_mut() {
                u.decay_counters();
            }
        }
    }

    /// Selects the L2 replacement policy on every slice.
    pub fn set_replacement(&mut self, kind: crate::l2::ReplacementKind) {
        for s in &mut self.shards {
            s.set_replacement(kind);
        }
    }

    /// Selects the partition enforcement mechanism on every slice.
    pub fn set_enforcement(&mut self, kind: crate::l2::EnforcementKind) {
        for s in &mut self.shards {
            s.set_enforcement(kind);
        }
    }

    /// Attaches a utility monitor to every slice; read the merged profile
    /// via [`ShardedSimulator::merged_umon`].
    pub fn enable_umon(&mut self, sample_every: u64) {
        for s in &mut self.shards {
            s.enable_umon(sample_every);
        }
    }

    /// The system-wide utility profile: shard 0's monitor with every other
    /// shard's counters summed in (shard order). `None` when
    /// [`ShardedSimulator::enable_umon`] was never called.
    #[deterministic]
    pub fn merged_umon(&self) -> Option<UtilityMonitor> {
        let mut iter = self.shards.iter().filter_map(|s| s.umon());
        let mut merged = iter.next()?.clone();
        for m in iter {
            merged.merge_counters(m);
        }
        Some(merged)
    }

    /// Merged cumulative statistics, current as of the last interval
    /// boundary.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Core `t`'s merged clock: the sum of its per-slice clocks.
    pub fn core_clock(&self, t: ThreadId) -> u64 {
        self.shards.iter().map(|s| s.core_clock(t)).sum()
    }

    /// Merged wall clock: the maximum merged core clock.
    pub fn wall_cycles(&self) -> u64 {
        (0..self.cfg.cores).map(|t| self.core_clock(t)).max().unwrap_or(0)
    }

    /// Stream events consumed so far, summed over slices.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed()).sum()
    }

    /// Whether every thread of every slice has finished.
    pub fn is_finished(&self) -> bool {
        self.done
    }

    /// Runs every shard to its next interval boundary — concurrently in
    /// parallel mode — and merges the per-shard reports in shard order.
    /// Returns `None` once the workload has completed.
    ///
    /// Parallel mode means *allowed* to use worker threads: each interval
    /// leases its extra workers from the process core budget
    /// ([`crate::budget`]) and returns them at the merge barrier, so a
    /// busy machine degrades this engine to the bit-identical serial walk
    /// while a draining outer pool lets later intervals widen again.
    #[deterministic]
    pub fn run_interval(&mut self) -> Option<IntervalReport> {
        if self.done {
            return None;
        }
        let reports: Vec<Option<IntervalReport>> = if self.parallel && self.shards.len() > 1 {
            // Lease per interval; the guard drops at the merge boundary.
            let lease = crate::budget::current().lease(self.shards.len() - 1);
            let workers = 1 + lease.tokens();
            if workers > 1 {
                run_shard_chunks(&mut self.shards, workers)
            } else {
                self.shards.iter_mut().map(|s| s.run_interval()).collect()
            }
        } else {
            self.shards.iter_mut().map(|s| s.run_interval()).collect()
        };
        self.merge(reports)
    }

    /// Runs every remaining interval, invoking `on_interval` at each
    /// boundary; the callback may inspect the report and repartition.
    /// Returns total wall cycles at completion.
    pub fn run_to_completion<F: FnMut(&mut Self, &IntervalReport)>(
        &mut self,
        mut on_interval: F,
    ) -> u64 {
        while let Some(report) = self.run_interval() {
            let r = report;
            on_interval(self, &r);
        }
        self.wall_cycles()
    }

    /// Fixed-order reduction of one round of per-shard interval reports.
    /// A `None` entry (shard already finished) contributes a zero delta.
    #[deterministic]
    fn merge(&mut self, reports: Vec<Option<IntervalReport>>) -> Option<IntervalReport> {
        if reports.iter().all(Option::is_none) {
            self.done = true;
            return None;
        }
        let cores = self.cfg.cores;
        let mut deltas = vec![ThreadCounters::default(); cores];
        let mut ways = vec![0u32; cores];
        for r in reports.iter().flatten() {
            for (t, ts) in r.threads.iter().enumerate() {
                deltas[t].add(&ts.counters);
            }
        }
        // Partition state is replicated, so any shard's quota view works;
        // shard order makes the choice deterministic.
        if let Some(first) = reports.iter().flatten().next() {
            for (t, w) in ways.iter_mut().enumerate() {
                *w = first.threads[t].ways;
            }
        }
        // Rebuild the merged cumulative stats from scratch in shard order.
        let mut stats = GlobalStats::new(cores);
        for s in &self.shards {
            let shard_stats = s.stats();
            for (t, acc) in stats.threads.iter_mut().enumerate() {
                acc.add(&shard_stats.threads[t]);
            }
            stats.interactions.add(&shard_stats.interactions);
        }
        self.stats = stats;
        let finished = self.shards.iter().all(Simulator::is_finished);
        self.done = finished;
        let report = IntervalReport {
            index: self.interval_index,
            threads: deltas
                .into_iter()
                .zip(ways)
                .map(|(counters, ways)| ThreadIntervalStats {
                    counters,
                    cpi: counters.cpi(),
                    ways,
                })
                .collect(),
            finished,
            wall_cycles: self.wall_cycles(),
        };
        self.interval_index += 1;
        Some(report)
    }
}

/// Runs one interval of every shard on `workers` threads: the calling
/// thread takes the first contiguous chunk of shards, `workers - 1`
/// scoped workers take the rest, and the per-chunk report vectors are
/// concatenated in chunk (= shard) order. Bit-identical to the serial
/// walk and to one-thread-per-shard execution because each shard still
/// advances exactly one interval, independently — chunking only decides
/// which OS thread hosts which shard.
fn run_shard_chunks(
    shards: &mut [Simulator<PackedReplayStream>],
    workers: usize,
) -> Vec<Option<IntervalReport>> {
    let n = shards.len();
    let workers = workers.clamp(1, n);
    let base = n / workers;
    let extra = n % workers;
    let mut rest = shards;
    let mut chunks: Vec<&mut [Simulator<PackedReplayStream>]> = Vec::with_capacity(workers);
    for i in 0..workers {
        let take = base + usize::from(i < extra);
        let (head, tail) = rest.split_at_mut(take);
        chunks.push(head);
        rest = tail;
    }
    std::thread::scope(|scope| {
        let mut iter = chunks.into_iter();
        let mine = iter.next();
        let handles: Vec<_> = iter
            .map(|chunk| {
                scope.spawn(move || {
                    chunk.iter_mut().map(|s| s.run_interval()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut reports: Vec<Option<IntervalReport>> = Vec::with_capacity(n);
        // The calling thread works its own chunk while the workers run.
        if let Some(chunk) = mine {
            reports.extend(chunk.iter_mut().map(|s| s.run_interval()));
        }
        // Joining in spawn (= shard-chunk) order makes the concatenated
        // sequence independent of completion order.
        for h in handles {
            match h.join() {
                Ok(part) => reports.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        reports
    })
}

impl Measurable for ShardedSimulator {
    fn stats(&self) -> &GlobalStats {
        ShardedSimulator::stats(self)
    }

    fn events_processed(&self) -> u64 {
        ShardedSimulator::events_processed(self)
    }

    fn wall_cycles(&self) -> u64 {
        ShardedSimulator::wall_cycles(self)
    }

    fn run_interval(&mut self) -> Option<IntervalReport> {
        ShardedSimulator::run_interval(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, LatencyConfig};
    use crate::stream::ReplayStream;

    fn tiny_cfg() -> SystemConfig {
        SystemConfig {
            cores: 2,
            l1: CacheConfig::new(2 * 64 * 2, 2, 64), // 2 sets x 2 ways
            l2: CacheConfig::new(4 * 64 * 4, 4, 64), // 4 sets x 4 ways
            llc: Default::default(),
            latency: LatencyConfig { l1_hit: 1, l2_hit: 10, memory: 100 },
            interval_instructions: 64,
            inclusive: false,
            coherence: false,
            prefetch_degree: 0,
            l2_banks: 0,
            victim_cache_lines: 0,
        }
    }

    fn walk(lines: u64, stride: u64, n: u64) -> Vec<ThreadEvent> {
        (0..n).map(|i| ThreadEvent::access(2, ((i * stride) % lines) * 64)).collect()
    }

    fn streams(n: u64) -> Vec<ReplayStream> {
        vec![ReplayStream::new(walk(16, 3, n)), ReplayStream::new(walk(16, 7, n))]
    }

    fn run(sim: &mut ShardedSimulator) -> (u64, GlobalStats, Vec<u64>) {
        let mut insts = Vec::new();
        while let Some(r) = sim.run_interval() {
            insts.push(r.threads.iter().map(|t| t.counters.instructions).sum());
            if r.finished {
                break;
            }
        }
        (sim.wall_cycles(), sim.stats().clone(), insts)
    }

    /// One shard is the legacy serial machine, bit for bit.
    #[test]
    fn one_shard_equals_serial() {
        let cfg = tiny_cfg();
        let mut serial = Simulator::from_streams(cfg, streams(200));
        let mut reports = Vec::new();
        while let Some(r) = serial.run_interval() {
            reports.push(r.clone());
            if r.finished {
                break;
            }
        }
        let mut sharded = ShardedSimulator::new(cfg, streams(200), 1);
        let mut sharded_reports = Vec::new();
        while let Some(r) = sharded.run_interval() {
            sharded_reports.push(r.clone());
            if r.finished {
                break;
            }
        }
        assert_eq!(serial.wall_cycles(), sharded.wall_cycles());
        assert_eq!(serial.stats(), sharded.stats());
        assert_eq!(reports.len(), sharded_reports.len());
        for (a, b) in reports.iter().zip(&sharded_reports) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.finished, b.finished);
            assert_eq!(a.wall_cycles, b.wall_cycles);
            for (x, y) in a.threads.iter().zip(&b.threads) {
                assert_eq!(x.counters, y.counters);
                assert_eq!(x.ways, y.ways);
                assert_eq!(x.cpi.to_bits(), y.cpi.to_bits());
            }
        }
    }

    /// Worker-thread execution is bit-identical to the serial reference at
    /// several shard counts, including a non-power-of-two.
    #[test]
    fn parallel_matches_serial_reference() {
        let cfg = tiny_cfg();
        for k in [1usize, 2, 3, 4] {
            let (wall_p, stats_p, insts_p) =
                run(&mut ShardedSimulator::new(cfg, streams(300), k));
            let (wall_s, stats_s, insts_s) =
                run(&mut ShardedSimulator::serial_reference(cfg, streams(300), k));
            assert_eq!(wall_p, wall_s, "k={k}: wall diverged");
            assert_eq!(stats_p, stats_s, "k={k}: stats diverged");
            assert_eq!(insts_p, insts_s, "k={k}: interval shape diverged");
        }
    }

    /// Every shard count conserves total instructions and accesses — the
    /// demux loses nothing.
    #[test]
    fn sharding_conserves_work() {
        let cfg = tiny_cfg();
        let (_, base, _) = run(&mut ShardedSimulator::new(cfg, streams(250), 1));
        for k in [2usize, 3, 5] {
            let (_, stats, _) = run(&mut ShardedSimulator::new(cfg, streams(250), k));
            for t in 0..2 {
                assert_eq!(
                    stats.threads[t].instructions, base.threads[t].instructions,
                    "k={k} thread {t}"
                );
                assert_eq!(
                    stats.threads[t].l1_hits + stats.threads[t].l1_misses,
                    base.threads[t].l1_hits + base.threads[t].l1_misses,
                    "k={k} thread {t}"
                );
            }
        }
    }

    /// Barriers are replicated into every slice and still release.
    #[test]
    fn barriers_release_in_every_slice() {
        let cfg = tiny_cfg();
        let with_barriers = |stride: u64| -> ReplayStream {
            let mut ev = Vec::new();
            for i in 0..60u64 {
                ev.push(ThreadEvent::access(1, ((i * stride) % 16) * 64));
                if i % 10 == 9 {
                    ev.push(ThreadEvent::Barrier);
                }
            }
            ReplayStream::new(ev)
        };
        let mut sim =
            ShardedSimulator::new(cfg, vec![with_barriers(3), with_barriers(5)], 3);
        let (wall, stats, _) = run(&mut sim);
        assert!(sim.is_finished());
        assert!(wall > 0);
        // 60 accesses at gap 1 retire (1 + 1) x 60 instructions each.
        assert_eq!(stats.threads[0].instructions, 120);
        assert_eq!(stats.threads[1].instructions, 120);
    }

    /// The merged UMON profile equals the serial profile at k = 1 and
    /// conserves total observations at k > 1.
    #[test]
    fn umon_merge_reconstitutes_profile() {
        let cfg = tiny_cfg();
        let mut serial = Simulator::from_streams(cfg, streams(200));
        serial.enable_umon(1);
        while serial.run_interval().is_some() {}
        let reference = serial.umon().expect("umon enabled");

        for k in [1usize, 2, 4] {
            let mut sharded = ShardedSimulator::new(cfg, streams(200), k);
            sharded.enable_umon(1);
            while sharded.run_interval().is_some() {}
            let merged = sharded.merged_umon().expect("umon enabled");
            for t in 0..2 {
                if k == 1 {
                    assert_eq!(merged.way_histogram(t), reference.way_histogram(t));
                }
                let total: u64 = merged.way_histogram(t).iter().sum::<u64>()
                    + merged.compulsory_capacity_misses(t);
                let ref_total: u64 = reference.way_histogram(t).iter().sum::<u64>()
                    + reference.compulsory_capacity_misses(t);
                assert_eq!(total, ref_total, "k={k} thread {t}: observations lost");
            }
        }
    }

    /// `auto` picks at least one shard and still finishes.
    #[test]
    fn auto_sizing_runs() {
        let cfg = tiny_cfg();
        let mut sim = ShardedSimulator::auto(cfg, streams(100));
        assert!(sim.num_shards() >= 1);
        assert!(sim.num_shards() <= cfg.l2.num_sets() as usize);
        let (wall, _, _) = run(&mut sim);
        assert!(wall > 0);
        assert!(sim.is_finished());
    }

    /// Repartitioning mid-run applies to every slice and stays consistent
    /// between the parallel and serial-reference engines.
    #[test]
    fn repartitioning_consistent_across_engines() {
        let cfg = tiny_cfg();
        let drive = |mut sim: ShardedSimulator| -> (u64, GlobalStats) {
            let mut flip = false;
            while let Some(r) = sim.run_interval() {
                if r.finished {
                    break;
                }
                if flip {
                    sim.set_partition(&[3, 1]);
                } else {
                    sim.set_partition(&[1, 3]);
                }
                flip = !flip;
            }
            (sim.wall_cycles(), sim.stats().clone())
        };
        for k in [2usize, 3] {
            let a = drive(ShardedSimulator::new(cfg, streams(400), k));
            let b = drive(ShardedSimulator::serial_reference(cfg, streams(400), k));
            assert_eq!(a, b, "k={k}");
        }
    }
}
