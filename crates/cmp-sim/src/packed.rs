//! Packed struct-of-arrays trace storage and zero-copy shared replay.
//!
//! [`Trace`] keeps a `Vec<ThreadEvent>` — 24 bytes per event of which a
//! replay touches every byte. A [`PackedTrace`] stores the same sequence
//! column-wise (`gaps`/`addrs`/`mlps` arrays, a write bitmap, and barrier
//! positions), cutting the replay's memory traffic to ~14 bytes per event,
//! and is immutable after construction so any number of replay streams can
//! share one materialisation behind an [`Arc`] — the record-once,
//! simulate-many-schemes pattern the experiment sweeps use (each suite
//! workload is generated exactly once per sweep and replayed zero-copy for
//! every partitioning scheme).
//!
//! [`PackedBlock`] is the *mutable, bounded* counterpart: the same columns
//! as a chunk. It is the unit of columnar event transport everywhere events
//! move between stages — generators write columns straight into a block
//! ([`AccessStream::fill_packed`]), the pipeline hands whole blocks across
//! its channel by ownership, the simulator's per-core ring drains blocks in
//! place, and [`PackedTrace::record`] assembles blocks into a trace with
//! column memcpys. No stage materialises per-event `ThreadEvent`s.

use std::sync::Arc;

use icp_hot_path::{deterministic, hot_path};

use crate::stream::{AccessStream, ThreadEvent};
use crate::trace::Trace;

/// Copies `len` bits from `src` starting at bit `src_start` into `dst`
/// starting at bit `dst_start`, growing `dst` to hold them.
///
/// Both bitmaps follow the packed-write-column invariant: bits at or past
/// the logical length are zero. `dst`'s tail word is OR-merged, so
/// `dst_start` must be `dst`'s current logical bit length.
fn copy_bits(dst: &mut Vec<u64>, dst_start: usize, src: &[u64], src_start: usize, len: usize) {
    if len == 0 {
        return;
    }
    let total = dst_start + len;
    dst.resize(total.div_ceil(64), 0);
    let words = len.div_ceil(64);
    for wi in 0..words {
        // Gather 64 source bits at an arbitrary bit offset from up to two
        // adjacent words (shifts stay in 1..=63 by the `sub != 0` guards).
        let bit = src_start + wi * 64;
        let sub = bit & 63;
        let mut w = src[bit >> 6] >> sub;
        let next = (bit >> 6) + 1;
        if sub != 0 && next < src.len() {
            w |= src[next] << (64 - sub);
        }
        let rem = len - wi * 64;
        if rem < 64 {
            w &= (1u64 << rem) - 1;
        }
        // Scatter them at the destination offset, again over two words.
        let db = dst_start + wi * 64;
        let dsub = db & 63;
        dst[db >> 6] |= w << dsub;
        let dnext = (db >> 6) + 1;
        if dsub != 0 && dnext < dst.len() {
            dst[dnext] |= w >> (64 - dsub);
        }
    }
}

/// A bounded, reusable chunk of events in packed column form.
///
/// The columns mirror [`PackedTrace`]'s (gap/addr/mlp arrays, write bitmap,
/// barrier positions *within the chunk*), plus a `finished` flag standing in
/// for the trailing [`ThreadEvent::Finished`]. Blocks are built to be
/// recycled: [`Self::clear`] keeps the column allocations, so steady-state
/// producers and consumers exchange them without touching the allocator.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::{PackedBlock, ThreadEvent};
///
/// let mut block = PackedBlock::with_capacity(16);
/// block.push_access(3, 0x40, true, 10);
/// block.push_barrier();
/// assert_eq!(block.len(), 2);
/// assert_eq!(block.access_at(0), ThreadEvent::Access { gap: 3, addr: 0x40, write: true, mlp_tenths: 10 });
/// block.clear(); // keeps capacity for reuse
/// assert!(block.is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedBlock {
    /// Non-memory instruction gap of each access.
    gaps: Vec<u32>,
    /// Byte address of each access.
    addrs: Vec<u64>,
    /// Memory-level parallelism (tenths) of each access.
    mlps: Vec<u16>,
    /// Store flags, one bit per access (bit `i & 63` of word `i >> 6`);
    /// bits at or past `gaps.len()` are zero.
    writes: Vec<u64>,
    /// Barrier markers: entry `b` fires after `b` of this block's accesses
    /// have been delivered. Non-decreasing; duplicates are consecutive
    /// barriers.
    barriers: Vec<u32>,
    /// The stream terminated within (or at the end of) this block.
    finished: bool,
}

impl PackedBlock {
    /// An empty block with column capacity for `cap` accesses.
    pub fn with_capacity(cap: usize) -> Self {
        PackedBlock {
            gaps: Vec::with_capacity(cap),
            addrs: Vec::with_capacity(cap),
            mlps: Vec::with_capacity(cap),
            writes: Vec::with_capacity(cap.div_ceil(64)),
            barriers: Vec::new(),
            finished: false,
        }
    }

    /// Empties the block for refilling, keeping every column's allocation.
    pub fn clear(&mut self) {
        self.gaps.clear();
        self.addrs.clear();
        self.mlps.clear();
        self.writes.clear();
        self.barriers.clear();
        self.finished = false;
    }

    /// Appends one access.
    #[inline]
    pub fn push_access(&mut self, gap: u32, addr: u64, write: bool, mlp_tenths: u16) {
        let i = self.gaps.len();
        if i.is_multiple_of(64) {
            self.writes.push(0);
        }
        if write {
            self.writes[i >> 6] |= 1 << (i & 63);
        }
        self.gaps.push(gap);
        self.addrs.push(addr);
        self.mlps.push(mlp_tenths);
    }

    /// Appends a barrier at the current position.
    #[inline]
    pub fn push_barrier(&mut self) {
        self.barriers.push(self.gaps.len() as u32);
    }

    /// Marks (or unmarks) the stream as terminating with this block.
    pub fn set_finished(&mut self, finished: bool) {
        self.finished = finished;
    }

    /// Whether the stream terminated within this block.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Number of packed accesses.
    pub fn accesses(&self) -> usize {
        self.gaps.len()
    }

    /// Number of packed barriers.
    pub fn barrier_count(&self) -> usize {
        self.barriers.len()
    }

    /// Packed events (accesses + barriers; the `finished` flag is not an
    /// event).
    pub fn len(&self) -> usize {
        self.gaps.len() + self.barriers.len()
    }

    /// True when the block holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The gap column.
    pub fn gaps(&self) -> &[u32] {
        &self.gaps
    }

    /// The address column.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The barrier marker of index `b` (accesses delivered before it
    /// fires).
    #[inline]
    pub fn barrier_at(&self, b: usize) -> usize {
        self.barriers[b] as usize
    }

    /// Whether access `i` is a store.
    #[inline]
    pub fn write_at(&self, i: usize) -> bool {
        (self.writes[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Decodes access `i` into an event.
    #[inline]
    #[hot_path]
    pub fn access_at(&self, i: usize) -> ThreadEvent {
        ThreadEvent::Access {
            gap: self.gaps[i],
            addr: self.addrs[i],
            write: self.write_at(i),
            mlp_tenths: self.mlps[i],
        }
    }

    /// Decodes the event at cursor (`pos` accesses and `nb` barriers
    /// already delivered), or `None` when the cursor is past the block's
    /// events (delivery of `finished` is the caller's job).
    #[inline]
    pub fn event_at(&self, pos: usize, nb: usize) -> Option<ThreadEvent> {
        if nb < self.barriers.len() && self.barriers[nb] as usize == pos {
            return Some(ThreadEvent::Barrier);
        }
        if pos < self.gaps.len() {
            return Some(self.access_at(pos));
        }
        None
    }

    /// Appends a run of accesses copied out of packed columns: the
    /// subslices plus `run` write bits starting at bit `write_bit` of
    /// `writes` — the column-memcpy primitive replay and hand-off paths
    /// use instead of per-event decoding.
    pub fn extend_accesses(
        &mut self,
        gaps: &[u32],
        addrs: &[u64],
        mlps: &[u16],
        writes: &[u64],
        write_bit: usize,
    ) {
        let run = gaps.len();
        debug_assert_eq!(run, addrs.len());
        debug_assert_eq!(run, mlps.len());
        copy_bits(&mut self.writes, self.gaps.len(), writes, write_bit, run);
        self.gaps.extend_from_slice(gaps);
        self.addrs.extend_from_slice(addrs);
        self.mlps.extend_from_slice(mlps);
    }

    /// Unpacks into the equivalent event sequence, `finished` rendered as a
    /// trailing [`ThreadEvent::Finished`] (tests/interchange).
    pub fn to_events(&self) -> Vec<ThreadEvent> {
        let mut out = Vec::with_capacity(self.len() + 1);
        let (mut pos, mut nb) = (0, 0);
        while let Some(e) = self.event_at(pos, nb) {
            match e {
                ThreadEvent::Barrier => nb += 1,
                _ => pos += 1,
            }
            out.push(e);
        }
        if self.finished {
            out.push(ThreadEvent::Finished);
        }
        out
    }
}

/// An immutable event sequence in packed struct-of-arrays form.
///
/// Accesses live in parallel columns indexed by *access number*; barriers
/// are stored out of line as the access number they precede (non-decreasing,
/// with duplicates encoding consecutive barriers). The trailing `Finished`
/// is implicit, as in [`Trace`].
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::{PackedTrace, ThreadEvent};
/// use icp_cmp_sim::stream::AccessStream;
///
/// let packed = PackedTrace::from_events(&[
///     ThreadEvent::access(3, 0x40),
///     ThreadEvent::Barrier,
///     ThreadEvent::access(0, 0x80),
/// ]);
/// let shared = std::sync::Arc::new(packed);
/// let mut replay = PackedTrace::stream(&shared); // zero-copy
/// assert_eq!(replay.next_event(), ThreadEvent::access(3, 0x40));
/// assert_eq!(replay.next_event(), ThreadEvent::Barrier);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedTrace {
    /// Non-memory instruction gap of each access.
    gaps: Vec<u32>,
    /// Byte address of each access.
    addrs: Vec<u64>,
    /// Memory-level parallelism (tenths) of each access.
    mlps: Vec<u16>,
    /// Store flags, one bit per access (bit `i & 63` of word `i >> 6`).
    writes: Vec<u64>,
    /// Barrier markers: entry `b` means a barrier fires after `b` accesses
    /// have been delivered. Non-decreasing; equal entries are consecutive
    /// barriers.
    barriers: Vec<u64>,
}

impl PackedTrace {
    /// Creates an empty packed trace.
    pub fn new() -> Self {
        PackedTrace::default()
    }

    /// Packs an explicit event sequence (ignoring anything after a
    /// `Finished`).
    pub fn from_events(events: &[ThreadEvent]) -> Self {
        let mut p = PackedTrace::new();
        for &e in events {
            match e {
                ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                    p.push_access(gap, addr, write, mlp_tenths);
                }
                ThreadEvent::Barrier => p.push_barrier(),
                ThreadEvent::Finished => break,
            }
        }
        p
    }

    /// Packs a recorded [`Trace`].
    pub fn from_trace(trace: &Trace) -> Self {
        PackedTrace::from_events(trace.events())
    }

    /// Drains `stream` until it finishes (or `max_events` events — accesses
    /// plus barriers — have been recorded) and packs everything, pulling
    /// whole column blocks through [`AccessStream::fill_packed`] so
    /// columnar generators never materialise per-event enums and block
    /// assembly is a handful of column memcpys.
    ///
    /// The recorded prefix is exactly what [`Trace::record`] would store;
    /// `fill_packed`'s exact cap means no surplus events are generated when
    /// the limit truncates mid-stream.
    #[deterministic]
    pub fn record<S: AccessStream>(stream: &mut S, max_events: usize) -> Self {
        const RECORD_BATCH: usize = 4096;
        // Bounded recordings up to this size (128 MB of columns) are
        // generated as one whole-trace fill whose columns are *adopted* —
        // moved into the trace, not copied. Open-ended (`usize::MAX`)
        // recordings can't pre-size a block and go through the batched
        // append path.
        const ADOPT_MAX: usize = 1 << 23;
        let mut p = PackedTrace::new();
        let mut block = PackedBlock::default();
        if max_events > 0 && max_events <= ADOPT_MAX {
            // Pre-sized so the fill never pays column-growth reallocation
            // copies; over-allocation for short streams is only untouched
            // virtual memory, released with the adopted columns.
            block = PackedBlock::with_capacity(max_events);
            stream.fill_packed(&mut block, max_events);
            let done = block.finished() || block.is_empty();
            p.adopt_block(&mut block);
            if done {
                return p;
            }
        }
        while p.len() < max_events {
            stream.fill_packed(&mut block, RECORD_BATCH.min(max_events - p.len()));
            p.append_block(&block);
            if block.finished() || block.is_empty() {
                break;
            }
        }
        p
    }

    /// Moves `block`'s events into this trace, stealing the access columns
    /// outright when the trace is still empty (the whole-trace recording
    /// fast path: zero column copies) and falling back to
    /// [`Self::append_block`] otherwise. `block` is left cleared either
    /// way, with its allocations gone on the move path and retained on the
    /// copy path.
    pub fn adopt_block(&mut self, block: &mut PackedBlock) {
        if self.gaps.is_empty() && self.barriers.is_empty() {
            self.gaps = std::mem::take(&mut block.gaps);
            self.addrs = std::mem::take(&mut block.addrs);
            self.mlps = std::mem::take(&mut block.mlps);
            self.writes = std::mem::take(&mut block.writes);
            // Block-relative barrier positions are already absolute here;
            // only the width changes (barrier counts stay tiny).
            self.barriers = block.barriers.drain(..).map(u64::from).collect();
            block.clear();
        } else {
            self.append_block(block);
            block.clear();
        }
    }

    /// Appends a block's events — column memcpys plus barrier markers
    /// rebased onto the trace's current access count.
    pub fn append_block(&mut self, block: &PackedBlock) {
        let base = self.gaps.len();
        copy_bits(&mut self.writes, base, &block.writes, 0, block.gaps.len());
        self.gaps.extend_from_slice(&block.gaps);
        self.addrs.extend_from_slice(&block.addrs);
        self.mlps.extend_from_slice(&block.mlps);
        self.barriers.reserve(block.barriers.len());
        for &b in &block.barriers {
            self.barriers.push(base as u64 + b as u64);
        }
    }

    /// Appends one access.
    pub fn push_access(&mut self, gap: u32, addr: u64, write: bool, mlp_tenths: u16) {
        let i = self.gaps.len();
        if i.is_multiple_of(64) {
            self.writes.push(0);
        }
        if write {
            self.writes[i >> 6] |= 1 << (i & 63);
        }
        self.gaps.push(gap);
        self.addrs.push(addr);
        self.mlps.push(mlp_tenths);
    }

    /// Appends a barrier at the current position.
    pub fn push_barrier(&mut self) {
        self.barriers.push(self.gaps.len() as u64);
    }

    /// Number of packed accesses.
    pub fn accesses(&self) -> usize {
        self.gaps.len()
    }

    /// Number of packed barriers.
    pub fn barriers(&self) -> usize {
        self.barriers.len()
    }

    /// Total packed events (accesses + barriers, excluding the implicit
    /// `Finished`).
    pub fn len(&self) -> usize {
        self.gaps.len() + self.barriers.len()
    }

    /// True when nothing was packed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total instructions the trace retires when replayed.
    pub fn instructions(&self) -> u64 {
        self.gaps.iter().map(|&g| g as u64 + 1).sum()
    }

    /// Heap bytes held by the packed columns (capacity, not length) —
    /// lets harnesses report the footprint advantage over `Vec<ThreadEvent>`.
    pub fn packed_bytes(&self) -> usize {
        self.gaps.capacity() * 4
            + self.addrs.capacity() * 8
            + self.mlps.capacity() * 2
            + self.writes.capacity() * 8
            + self.barriers.capacity() * 8
    }

    /// Unpacks into the equivalent event sequence (tests/interchange; the
    /// hot path replays in place via [`PackedReplayStream`]).
    pub fn to_events(&self) -> Vec<ThreadEvent> {
        let mut out = Vec::with_capacity(self.len());
        let mut stream = PackedReplayStream::new(Arc::new(self.clone()));
        loop {
            match stream.next_event() {
                ThreadEvent::Finished => break,
                e => out.push(e),
            }
        }
        out
    }

    /// Unpacks into a [`Trace`].
    pub fn to_trace(&self) -> Trace {
        Trace::from_events(self.to_events())
    }

    /// A zero-copy replay stream over a shared packed trace.
    #[deterministic]
    pub fn stream(this: &Arc<Self>) -> PackedReplayStream {
        PackedReplayStream::new(Arc::clone(this))
    }
}

/// A stream replaying a shared [`PackedTrace`], then `Finished` forever.
///
/// Cloning the stream (or creating several via [`PackedTrace::stream`])
/// shares the packed columns — replays for different partitioning schemes
/// cost two cursor words each, not a copy of the trace.
#[derive(Clone, Debug)]
pub struct PackedReplayStream {
    trace: Arc<PackedTrace>,
    /// Next access column index to deliver.
    next_access: usize,
    /// Next barrier marker to fire.
    next_barrier: usize,
}

impl PackedReplayStream {
    /// Creates a replay cursor at the start of `trace`.
    pub fn new(trace: Arc<PackedTrace>) -> Self {
        PackedReplayStream { trace, next_access: 0, next_barrier: 0 }
    }

    /// Decodes access `i` from the packed columns.
    #[inline]
    #[hot_path]
    fn access_at(t: &PackedTrace, i: usize) -> ThreadEvent {
        ThreadEvent::Access {
            gap: t.gaps[i],
            addr: t.addrs[i],
            write: (t.writes[i >> 6] >> (i & 63)) & 1 != 0,
            mlp_tenths: t.mlps[i],
        }
    }
}

impl AccessStream for PackedReplayStream {
    fn next_event(&mut self) -> ThreadEvent {
        let t = &self.trace;
        if self.next_barrier < t.barriers.len()
            && t.barriers[self.next_barrier] == self.next_access as u64
        {
            self.next_barrier += 1;
            return ThreadEvent::Barrier;
        }
        if self.next_access < t.gaps.len() {
            let e = Self::access_at(t, self.next_access);
            self.next_access += 1;
            return e;
        }
        ThreadEvent::Finished
    }

    /// Native batch delivery: runs of accesses between barrier markers are
    /// decoded straight out of the packed columns.
    #[hot_path]
    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        let trace = Arc::clone(&self.trace);
        let t = &*trace;
        let mut n = 0;
        while n < out.len() {
            // Barriers due at the cursor fire before the next access run.
            if self.next_barrier < t.barriers.len()
                && t.barriers[self.next_barrier] == self.next_access as u64
            {
                out[n] = ThreadEvent::Barrier;
                n += 1;
                self.next_barrier += 1;
                continue;
            }
            if self.next_access >= t.gaps.len() {
                // Exhausted: one synthesised `Finished` ends the batch, as
                // in `ReplayStream`.
                out[n] = ThreadEvent::Finished;
                n += 1;
                break;
            }
            // Copy the access run up to the next barrier or buffer end.
            let until = t
                .barriers
                .get(self.next_barrier)
                .map_or(t.gaps.len(), |&b| b as usize);
            let run = (until - self.next_access).min(out.len() - n);
            for k in 0..run {
                out[n + k] = Self::access_at(t, self.next_access + k);
            }
            self.next_access += run;
            n += run;
        }
        n
    }

    /// Native columnar delivery: access runs between barriers become
    /// column-range memcpys out of the shared trace — no per-event decode
    /// at all on the replay side.
    fn fill_packed(&mut self, out: &mut PackedBlock, cap: usize) {
        out.clear();
        let trace = Arc::clone(&self.trace);
        let t = &*trace;
        while out.len() < cap {
            if self.next_barrier < t.barriers.len()
                && t.barriers[self.next_barrier] == self.next_access as u64
            {
                out.push_barrier();
                self.next_barrier += 1;
                continue;
            }
            if self.next_access >= t.gaps.len() {
                out.set_finished(true);
                break;
            }
            let until = t
                .barriers
                .get(self.next_barrier)
                .map_or(t.gaps.len(), |&b| b as usize);
            let run = (until - self.next_access).min(cap - out.len());
            let (a, b) = (self.next_access, self.next_access + run);
            out.extend_accesses(&t.gaps[a..b], &t.addrs[a..b], &t.mlps[a..b], &t.writes, a);
            self.next_access += run;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ReplayStream;

    fn sample_events() -> Vec<ThreadEvent> {
        vec![
            ThreadEvent::Access { gap: 3, addr: 0x1234_5678_9abc, write: false, mlp_tenths: 10 },
            ThreadEvent::Access { gap: 0, addr: 64, write: true, mlp_tenths: 60 },
            ThreadEvent::Barrier,
            ThreadEvent::Barrier,
            ThreadEvent::Access { gap: 7, addr: 128, write: false, mlp_tenths: 10 },
            ThreadEvent::Barrier,
        ]
    }

    #[test]
    fn roundtrip_preserves_events() {
        let events = sample_events();
        let p = PackedTrace::from_events(&events);
        assert_eq!(p.to_events(), events);
        assert_eq!(p.accesses(), 3);
        assert_eq!(p.barriers(), 3);
        assert_eq!(p.len(), 6);
        assert_eq!(p.instructions(), 4 + 1 + 8);
    }

    #[test]
    fn replay_matches_replay_stream_exactly() {
        let events = sample_events();
        let p = Arc::new(PackedTrace::from_events(&events));
        let mut packed = PackedTrace::stream(&p);
        let mut plain = ReplayStream::new(events);
        for _ in 0..10 {
            assert_eq!(packed.next_event(), plain.next_event());
        }
    }

    #[test]
    fn fill_batch_matches_next_event_at_all_batch_sizes() {
        let events = sample_events();
        for batch in [1usize, 2, 3, 5, 16] {
            let p = Arc::new(PackedTrace::from_events(&events));
            let mut batched = PackedTrace::stream(&p);
            let mut single = PackedTrace::stream(&p);
            let mut buf = vec![ThreadEvent::Finished; batch];
            'outer: loop {
                let n = batched.fill_batch(&mut buf);
                assert!(n > 0);
                for &e in &buf[..n] {
                    assert_eq!(e, single.next_event(), "batch size {batch}");
                    if matches!(e, ThreadEvent::Finished) {
                        break 'outer;
                    }
                }
            }
        }
    }

    #[test]
    fn record_matches_trace_record() {
        let events = sample_events();
        for max in [0usize, 1, 2, 3, 4, 6, 100] {
            let mut s1 = ReplayStream::new(events.clone());
            let mut s2 = ReplayStream::new(events.clone());
            let t = Trace::record(&mut s1, max);
            let p = PackedTrace::record(&mut s2, max);
            assert_eq!(p.to_events(), t.events(), "max_events {max}");
        }
    }

    #[test]
    fn shared_streams_are_independent_cursors() {
        let p = Arc::new(PackedTrace::from_events(&sample_events()));
        let mut a = PackedTrace::stream(&p);
        let mut b = PackedTrace::stream(&p);
        assert_eq!(a.next_event(), b.next_event());
        a.next_event();
        // `b` is unaffected by `a`'s progress.
        assert_eq!(b.next_event(), ThreadEvent::Access { gap: 0, addr: 64, write: true, mlp_tenths: 60 });
    }

    #[test]
    fn exhausted_stream_keeps_yielding_finished() {
        let p = Arc::new(PackedTrace::from_events(&[ThreadEvent::access(0, 0)]));
        let mut s = PackedTrace::stream(&p);
        s.next_event();
        assert_eq!(s.next_event(), ThreadEvent::Finished);
        assert_eq!(s.next_event(), ThreadEvent::Finished);
        let mut buf = [ThreadEvent::Barrier; 4];
        assert_eq!(s.fill_batch(&mut buf), 1);
        assert_eq!(buf[0], ThreadEvent::Finished);
    }

    #[test]
    fn empty_trace_is_finished_immediately() {
        let p = Arc::new(PackedTrace::new());
        assert!(p.is_empty());
        let mut s = PackedTrace::stream(&p);
        assert_eq!(s.next_event(), ThreadEvent::Finished);
    }

    #[test]
    fn leading_and_trailing_barriers_survive() {
        let events = vec![
            ThreadEvent::Barrier,
            ThreadEvent::access(1, 64),
            ThreadEvent::Barrier,
        ];
        let p = PackedTrace::from_events(&events);
        assert_eq!(p.to_events(), events);
    }

    #[test]
    fn write_bitmap_crosses_word_boundaries() {
        // 130 accesses with writes on a stride: exercises bits in three
        // bitmap words.
        let events: Vec<ThreadEvent> = (0..130)
            .map(|i| ThreadEvent::Access {
                gap: i as u32,
                addr: i as u64 * 64,
                write: i % 3 == 0,
                mlp_tenths: 10,
            })
            .collect();
        let p = PackedTrace::from_events(&events);
        assert_eq!(p.to_events(), events);
    }

    #[test]
    fn trace_interop_roundtrips() {
        let t = Trace::from_events(sample_events());
        let p = PackedTrace::from_trace(&t);
        assert_eq!(p.to_trace(), t);
        assert!(p.packed_bytes() > 0);
    }

    #[test]
    fn copy_bits_matches_per_bit_copy_at_all_offsets() {
        // A fixed pseudo-random source bitmap, copied at every combination
        // of small src/dst misalignments and lengths crossing word
        // boundaries, must equal the bit-by-bit reference.
        let src: Vec<u64> = (0..4u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) | 1)
            .collect();
        for src_start in [0usize, 1, 7, 63, 64, 65, 100] {
            for dst_start in [0usize, 1, 31, 63, 64, 77] {
                for len in [0usize, 1, 5, 63, 64, 65, 130] {
                    if src_start + len > src.len() * 64 {
                        continue;
                    }
                    // Seed dst with the bits below dst_start set to a known
                    // pattern and everything above zero (the invariant).
                    let mut dst = vec![0u64; dst_start.div_ceil(64)];
                    for b in 0..dst_start {
                        if b % 3 == 0 {
                            dst[b / 64] |= 1 << (b % 64);
                        }
                    }
                    let mut expect = dst.clone();
                    expect.resize((dst_start + len).div_ceil(64).max(expect.len()), 0);
                    for k in 0..len {
                        let bit = (src[(src_start + k) / 64] >> ((src_start + k) % 64)) & 1;
                        expect[(dst_start + k) / 64] |= bit << ((dst_start + k) % 64);
                    }
                    copy_bits(&mut dst, dst_start, &src, src_start, len);
                    assert_eq!(dst, expect, "src_start={src_start} dst_start={dst_start} len={len}");
                }
            }
        }
    }

    #[test]
    fn block_roundtrips_events_and_recycles() {
        let mut block = PackedBlock::with_capacity(4);
        block.push_barrier();
        block.push_access(3, 0x40, true, 10);
        block.push_access(0, 0x80, false, 60);
        block.push_barrier();
        block.set_finished(true);
        assert_eq!(block.accesses(), 2);
        assert_eq!(block.barrier_count(), 2);
        assert_eq!(block.len(), 4);
        assert_eq!(
            block.to_events(),
            vec![
                ThreadEvent::Barrier,
                ThreadEvent::Access { gap: 3, addr: 0x40, write: true, mlp_tenths: 10 },
                ThreadEvent::Access { gap: 0, addr: 0x80, write: false, mlp_tenths: 60 },
                ThreadEvent::Barrier,
                ThreadEvent::Finished,
            ]
        );
        block.clear();
        assert!(block.is_empty());
        assert!(!block.finished());
        assert_eq!(block.to_events(), vec![]);
    }

    #[test]
    fn append_block_matches_event_pushes() {
        // Appending blocks of awkward sizes (bitmap tails at non-word
        // boundaries) equals pushing the same events one at a time.
        let events: Vec<ThreadEvent> = (0..300)
            .map(|i| {
                if i % 71 == 0 {
                    ThreadEvent::Barrier
                } else {
                    ThreadEvent::Access {
                        gap: i as u32,
                        addr: i as u64 * 64,
                        write: i % 5 == 0,
                        mlp_tenths: 10,
                    }
                }
            })
            .collect();
        let reference = PackedTrace::from_events(&events);
        let mut assembled = PackedTrace::new();
        let mut block = PackedBlock::default();
        let mut it = events.iter();
        for chunk in [1usize, 3, 64, 65, 90, 200] {
            block.clear();
            for &e in it.by_ref().take(chunk) {
                match e {
                    ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                        block.push_access(gap, addr, write, mlp_tenths);
                    }
                    ThreadEvent::Barrier => block.push_barrier(),
                    ThreadEvent::Finished => unreachable!(),
                }
            }
            assembled.append_block(&block);
        }
        assert_eq!(assembled, reference);
    }

    #[test]
    fn replay_fill_packed_matches_fill_batch() {
        // The columnar replay override must deliver the same sequence as
        // the enum batch path, for caps that land on and off barrier and
        // word boundaries.
        let events: Vec<ThreadEvent> = (0..300)
            .map(|i| {
                if i % 67 == 0 {
                    ThreadEvent::Barrier
                } else {
                    ThreadEvent::Access {
                        gap: (i % 7) as u32,
                        addr: ((i * 31) % 256) * 64,
                        write: i % 4 == 1,
                        mlp_tenths: 10,
                    }
                }
            })
            .collect();
        let p = Arc::new(PackedTrace::from_events(&events));
        for cap in [1usize, 2, 63, 64, 65, 67, 256] {
            let mut packed = PackedTrace::stream(&p);
            let mut plain = ReplayStream::new(events.clone());
            let mut block = PackedBlock::default();
            loop {
                packed.fill_packed(&mut block, cap);
                for e in block.to_events() {
                    assert_eq!(e, plain.next_event(), "cap {cap}");
                }
                if block.finished() {
                    break;
                }
                assert_eq!(block.len(), cap, "unfinished block must be full");
            }
        }
    }

    #[test]
    fn default_fill_packed_bridges_fill_batch() {
        // `ReplayStream` has no override, so this exercises the trait
        // default — including the finished-flag handoff and that an
        // exhausted stream keeps yielding empty finished blocks.
        let events = sample_events();
        let mut s = ReplayStream::new(events.clone());
        let mut block = PackedBlock::default();
        s.fill_packed(&mut block, 4);
        assert_eq!(block.len(), 4);
        assert!(!block.finished());
        s.fill_packed(&mut block, 100);
        assert_eq!(block.len(), 2);
        assert!(block.finished());
        s.fill_packed(&mut block, 100);
        assert!(block.is_empty());
        assert!(block.finished());
        // cap == 0 consumes nothing.
        let mut fresh = ReplayStream::new(events);
        fresh.fill_packed(&mut block, 0);
        assert!(block.is_empty());
        assert!(!block.finished());
        assert_eq!(fresh.next_event(), sample_events()[0]);
    }

    #[test]
    fn record_is_exact_under_truncation() {
        // The packed record path must stop at exactly `max_events` without
        // drawing surplus events from the stream.
        let events = sample_events();
        let mut s = ReplayStream::new(events.clone());
        let p = PackedTrace::record(&mut s, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(s.next_event(), events[3], "no surplus events consumed");
    }

    #[test]
    fn packed_simulation_digest_matches_vec_replay() {
        use crate::config::SystemConfig;
        use crate::simulator::Simulator;

        let events: Vec<ThreadEvent> = (0..500)
            .map(|i| ThreadEvent::Access {
                gap: (i % 5) as u32,
                addr: ((i * 37) % 512) * 64,
                write: i % 3 == 0,
                mlp_tenths: 10,
            })
            .collect();
        let mut cfg = SystemConfig::scaled_down();
        cfg.cores = 1;
        cfg.interval_instructions = 100;
        let run = |stream: Box<dyn AccessStream>| {
            let mut sim = Simulator::new(cfg, vec![stream]);
            while sim.run_interval().is_some() {}
            (sim.wall_cycles(), sim.stats().threads[0])
        };
        let packed = Arc::new(PackedTrace::from_events(&events));
        let (w1, c1) = run(Box::new(ReplayStream::new(events)));
        let (w2, c2) = run(Box::new(PackedTrace::stream(&packed)));
        assert_eq!(w1, w2);
        assert_eq!(c1, c2);
    }
}
