//! Packed struct-of-arrays trace storage and zero-copy shared replay.
//!
//! [`Trace`] keeps a `Vec<ThreadEvent>` — 24 bytes per event of which a
//! replay touches every byte. A [`PackedTrace`] stores the same sequence
//! column-wise (`gaps`/`addrs`/`mlps` arrays, a write bitmap, and barrier
//! positions), cutting the replay's memory traffic to ~14 bytes per event,
//! and is immutable after construction so any number of replay streams can
//! share one materialisation behind an [`Arc`] — the record-once,
//! simulate-many-schemes pattern the experiment sweeps use (each suite
//! workload is generated exactly once per sweep and replayed zero-copy for
//! every partitioning scheme).

use std::sync::Arc;

use icp_hot_path::hot_path;

use crate::stream::{AccessStream, ThreadEvent};
use crate::trace::Trace;

/// An immutable event sequence in packed struct-of-arrays form.
///
/// Accesses live in parallel columns indexed by *access number*; barriers
/// are stored out of line as the access number they precede (non-decreasing,
/// with duplicates encoding consecutive barriers). The trailing `Finished`
/// is implicit, as in [`Trace`].
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::{PackedTrace, ThreadEvent};
/// use icp_cmp_sim::stream::AccessStream;
///
/// let packed = PackedTrace::from_events(&[
///     ThreadEvent::access(3, 0x40),
///     ThreadEvent::Barrier,
///     ThreadEvent::access(0, 0x80),
/// ]);
/// let shared = std::sync::Arc::new(packed);
/// let mut replay = PackedTrace::stream(&shared); // zero-copy
/// assert_eq!(replay.next_event(), ThreadEvent::access(3, 0x40));
/// assert_eq!(replay.next_event(), ThreadEvent::Barrier);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedTrace {
    /// Non-memory instruction gap of each access.
    gaps: Vec<u32>,
    /// Byte address of each access.
    addrs: Vec<u64>,
    /// Memory-level parallelism (tenths) of each access.
    mlps: Vec<u16>,
    /// Store flags, one bit per access (bit `i & 63` of word `i >> 6`).
    writes: Vec<u64>,
    /// Barrier markers: entry `b` means a barrier fires after `b` accesses
    /// have been delivered. Non-decreasing; equal entries are consecutive
    /// barriers.
    barriers: Vec<u64>,
}

impl PackedTrace {
    /// Creates an empty packed trace.
    pub fn new() -> Self {
        PackedTrace::default()
    }

    /// Packs an explicit event sequence (ignoring anything after a
    /// `Finished`).
    pub fn from_events(events: &[ThreadEvent]) -> Self {
        let mut p = PackedTrace::new();
        for &e in events {
            match e {
                ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                    p.push_access(gap, addr, write, mlp_tenths);
                }
                ThreadEvent::Barrier => p.push_barrier(),
                ThreadEvent::Finished => break,
            }
        }
        p
    }

    /// Packs a recorded [`Trace`].
    pub fn from_trace(trace: &Trace) -> Self {
        PackedTrace::from_events(trace.events())
    }

    /// Drains `stream` until it finishes (or `max_events` events — accesses
    /// plus barriers — have been recorded) and packs everything, pulling
    /// through the batch API so native generators amortise their dispatch.
    ///
    /// The recorded prefix is exactly what [`Trace::record`] would store;
    /// when the limit truncates mid-stream, up to one batch of surplus
    /// events may have been generated and discarded.
    pub fn record<S: AccessStream>(stream: &mut S, max_events: usize) -> Self {
        let mut p = PackedTrace::new();
        let mut buf = [ThreadEvent::Finished; 256];
        'record: while p.len() < max_events {
            let n = stream.fill_batch(&mut buf);
            if n == 0 {
                break;
            }
            for &e in &buf[..n] {
                if p.len() == max_events {
                    break 'record;
                }
                match e {
                    ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                        p.push_access(gap, addr, write, mlp_tenths);
                    }
                    ThreadEvent::Barrier => p.push_barrier(),
                    ThreadEvent::Finished => break 'record,
                }
            }
        }
        p
    }

    /// Appends one access.
    pub fn push_access(&mut self, gap: u32, addr: u64, write: bool, mlp_tenths: u16) {
        let i = self.gaps.len();
        if i.is_multiple_of(64) {
            self.writes.push(0);
        }
        if write {
            self.writes[i >> 6] |= 1 << (i & 63);
        }
        self.gaps.push(gap);
        self.addrs.push(addr);
        self.mlps.push(mlp_tenths);
    }

    /// Appends a barrier at the current position.
    pub fn push_barrier(&mut self) {
        self.barriers.push(self.gaps.len() as u64);
    }

    /// Number of packed accesses.
    pub fn accesses(&self) -> usize {
        self.gaps.len()
    }

    /// Number of packed barriers.
    pub fn barriers(&self) -> usize {
        self.barriers.len()
    }

    /// Total packed events (accesses + barriers, excluding the implicit
    /// `Finished`).
    pub fn len(&self) -> usize {
        self.gaps.len() + self.barriers.len()
    }

    /// True when nothing was packed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total instructions the trace retires when replayed.
    pub fn instructions(&self) -> u64 {
        self.gaps.iter().map(|&g| g as u64 + 1).sum()
    }

    /// Heap bytes held by the packed columns (capacity, not length) —
    /// lets harnesses report the footprint advantage over `Vec<ThreadEvent>`.
    pub fn packed_bytes(&self) -> usize {
        self.gaps.capacity() * 4
            + self.addrs.capacity() * 8
            + self.mlps.capacity() * 2
            + self.writes.capacity() * 8
            + self.barriers.capacity() * 8
    }

    /// Unpacks into the equivalent event sequence (tests/interchange; the
    /// hot path replays in place via [`PackedReplayStream`]).
    pub fn to_events(&self) -> Vec<ThreadEvent> {
        let mut out = Vec::with_capacity(self.len());
        let mut stream = PackedReplayStream::new(Arc::new(self.clone()));
        loop {
            match stream.next_event() {
                ThreadEvent::Finished => break,
                e => out.push(e),
            }
        }
        out
    }

    /// Unpacks into a [`Trace`].
    pub fn to_trace(&self) -> Trace {
        Trace::from_events(self.to_events())
    }

    /// A zero-copy replay stream over a shared packed trace.
    pub fn stream(this: &Arc<Self>) -> PackedReplayStream {
        PackedReplayStream::new(Arc::clone(this))
    }
}

/// A stream replaying a shared [`PackedTrace`], then `Finished` forever.
///
/// Cloning the stream (or creating several via [`PackedTrace::stream`])
/// shares the packed columns — replays for different partitioning schemes
/// cost two cursor words each, not a copy of the trace.
#[derive(Clone, Debug)]
pub struct PackedReplayStream {
    trace: Arc<PackedTrace>,
    /// Next access column index to deliver.
    next_access: usize,
    /// Next barrier marker to fire.
    next_barrier: usize,
}

impl PackedReplayStream {
    /// Creates a replay cursor at the start of `trace`.
    pub fn new(trace: Arc<PackedTrace>) -> Self {
        PackedReplayStream { trace, next_access: 0, next_barrier: 0 }
    }

    /// Decodes access `i` from the packed columns.
    #[inline]
    #[hot_path]
    fn access_at(t: &PackedTrace, i: usize) -> ThreadEvent {
        ThreadEvent::Access {
            gap: t.gaps[i],
            addr: t.addrs[i],
            write: (t.writes[i >> 6] >> (i & 63)) & 1 != 0,
            mlp_tenths: t.mlps[i],
        }
    }
}

impl AccessStream for PackedReplayStream {
    fn next_event(&mut self) -> ThreadEvent {
        let t = &self.trace;
        if self.next_barrier < t.barriers.len()
            && t.barriers[self.next_barrier] == self.next_access as u64
        {
            self.next_barrier += 1;
            return ThreadEvent::Barrier;
        }
        if self.next_access < t.gaps.len() {
            let e = Self::access_at(t, self.next_access);
            self.next_access += 1;
            return e;
        }
        ThreadEvent::Finished
    }

    /// Native batch delivery: runs of accesses between barrier markers are
    /// decoded straight out of the packed columns.
    #[hot_path]
    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        let trace = Arc::clone(&self.trace);
        let t = &*trace;
        let mut n = 0;
        while n < out.len() {
            // Barriers due at the cursor fire before the next access run.
            if self.next_barrier < t.barriers.len()
                && t.barriers[self.next_barrier] == self.next_access as u64
            {
                out[n] = ThreadEvent::Barrier;
                n += 1;
                self.next_barrier += 1;
                continue;
            }
            if self.next_access >= t.gaps.len() {
                // Exhausted: one synthesised `Finished` ends the batch, as
                // in `ReplayStream`.
                out[n] = ThreadEvent::Finished;
                n += 1;
                break;
            }
            // Copy the access run up to the next barrier or buffer end.
            let until = t
                .barriers
                .get(self.next_barrier)
                .map_or(t.gaps.len(), |&b| b as usize);
            let run = (until - self.next_access).min(out.len() - n);
            for k in 0..run {
                out[n + k] = Self::access_at(t, self.next_access + k);
            }
            self.next_access += run;
            n += run;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ReplayStream;

    fn sample_events() -> Vec<ThreadEvent> {
        vec![
            ThreadEvent::Access { gap: 3, addr: 0x1234_5678_9abc, write: false, mlp_tenths: 10 },
            ThreadEvent::Access { gap: 0, addr: 64, write: true, mlp_tenths: 60 },
            ThreadEvent::Barrier,
            ThreadEvent::Barrier,
            ThreadEvent::Access { gap: 7, addr: 128, write: false, mlp_tenths: 10 },
            ThreadEvent::Barrier,
        ]
    }

    #[test]
    fn roundtrip_preserves_events() {
        let events = sample_events();
        let p = PackedTrace::from_events(&events);
        assert_eq!(p.to_events(), events);
        assert_eq!(p.accesses(), 3);
        assert_eq!(p.barriers(), 3);
        assert_eq!(p.len(), 6);
        assert_eq!(p.instructions(), 4 + 1 + 8);
    }

    #[test]
    fn replay_matches_replay_stream_exactly() {
        let events = sample_events();
        let p = Arc::new(PackedTrace::from_events(&events));
        let mut packed = PackedTrace::stream(&p);
        let mut plain = ReplayStream::new(events);
        for _ in 0..10 {
            assert_eq!(packed.next_event(), plain.next_event());
        }
    }

    #[test]
    fn fill_batch_matches_next_event_at_all_batch_sizes() {
        let events = sample_events();
        for batch in [1usize, 2, 3, 5, 16] {
            let p = Arc::new(PackedTrace::from_events(&events));
            let mut batched = PackedTrace::stream(&p);
            let mut single = PackedTrace::stream(&p);
            let mut buf = vec![ThreadEvent::Finished; batch];
            'outer: loop {
                let n = batched.fill_batch(&mut buf);
                assert!(n > 0);
                for &e in &buf[..n] {
                    assert_eq!(e, single.next_event(), "batch size {batch}");
                    if matches!(e, ThreadEvent::Finished) {
                        break 'outer;
                    }
                }
            }
        }
    }

    #[test]
    fn record_matches_trace_record() {
        let events = sample_events();
        for max in [0usize, 1, 2, 3, 4, 6, 100] {
            let mut s1 = ReplayStream::new(events.clone());
            let mut s2 = ReplayStream::new(events.clone());
            let t = Trace::record(&mut s1, max);
            let p = PackedTrace::record(&mut s2, max);
            assert_eq!(p.to_events(), t.events(), "max_events {max}");
        }
    }

    #[test]
    fn shared_streams_are_independent_cursors() {
        let p = Arc::new(PackedTrace::from_events(&sample_events()));
        let mut a = PackedTrace::stream(&p);
        let mut b = PackedTrace::stream(&p);
        assert_eq!(a.next_event(), b.next_event());
        a.next_event();
        // `b` is unaffected by `a`'s progress.
        assert_eq!(b.next_event(), ThreadEvent::Access { gap: 0, addr: 64, write: true, mlp_tenths: 60 });
    }

    #[test]
    fn exhausted_stream_keeps_yielding_finished() {
        let p = Arc::new(PackedTrace::from_events(&[ThreadEvent::access(0, 0)]));
        let mut s = PackedTrace::stream(&p);
        s.next_event();
        assert_eq!(s.next_event(), ThreadEvent::Finished);
        assert_eq!(s.next_event(), ThreadEvent::Finished);
        let mut buf = [ThreadEvent::Barrier; 4];
        assert_eq!(s.fill_batch(&mut buf), 1);
        assert_eq!(buf[0], ThreadEvent::Finished);
    }

    #[test]
    fn empty_trace_is_finished_immediately() {
        let p = Arc::new(PackedTrace::new());
        assert!(p.is_empty());
        let mut s = PackedTrace::stream(&p);
        assert_eq!(s.next_event(), ThreadEvent::Finished);
    }

    #[test]
    fn leading_and_trailing_barriers_survive() {
        let events = vec![
            ThreadEvent::Barrier,
            ThreadEvent::access(1, 64),
            ThreadEvent::Barrier,
        ];
        let p = PackedTrace::from_events(&events);
        assert_eq!(p.to_events(), events);
    }

    #[test]
    fn write_bitmap_crosses_word_boundaries() {
        // 130 accesses with writes on a stride: exercises bits in three
        // bitmap words.
        let events: Vec<ThreadEvent> = (0..130)
            .map(|i| ThreadEvent::Access {
                gap: i as u32,
                addr: i as u64 * 64,
                write: i % 3 == 0,
                mlp_tenths: 10,
            })
            .collect();
        let p = PackedTrace::from_events(&events);
        assert_eq!(p.to_events(), events);
    }

    #[test]
    fn trace_interop_roundtrips() {
        let t = Trace::from_events(sample_events());
        let p = PackedTrace::from_trace(&t);
        assert_eq!(p.to_trace(), t);
        assert!(p.packed_bytes() > 0);
    }

    #[test]
    fn packed_simulation_digest_matches_vec_replay() {
        use crate::config::SystemConfig;
        use crate::simulator::Simulator;

        let events: Vec<ThreadEvent> = (0..500)
            .map(|i| ThreadEvent::Access {
                gap: (i % 5) as u32,
                addr: ((i * 37) % 512) * 64,
                write: i % 3 == 0,
                mlp_tenths: 10,
            })
            .collect();
        let mut cfg = SystemConfig::scaled_down();
        cfg.cores = 1;
        cfg.interval_instructions = 100;
        let run = |stream: Box<dyn AccessStream>| {
            let mut sim = Simulator::new(cfg, vec![stream]);
            while sim.run_interval().is_some() {}
            (sim.wall_cycles(), sim.stats().threads[0])
        };
        let packed = Arc::new(PackedTrace::from_events(&events));
        let (w1, c1) = run(Box::new(ReplayStream::new(events)));
        let (w2, c2) = run(Box::new(PackedTrace::stream(&packed)));
        assert_eq!(w1, w2);
        assert_eq!(c1, c2);
    }
}
