//! The interface between workloads and the simulator.
//!
//! A thread's execution is abstracted as a stream of [`ThreadEvent`]s:
//! memory accesses separated by runs of non-memory instructions, barrier
//! arrivals delimiting parallel sections (§III-B), and termination. The
//! `icp-workloads` crate provides synthetic generators; traces or other
//! sources can implement [`AccessStream`] too.

/// One event in a thread's instruction stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadEvent {
    /// `gap` non-memory instructions followed by one memory access to
    /// byte address `addr`.
    Access {
        /// Non-memory instructions retired before the access (1 cycle each).
        gap: u32,
        /// Byte address accessed.
        addr: u64,
        /// Whether the access is a store. Timing treats loads and stores
        /// identically (no write-buffer model); the flag exists so stream
        /// implementations can carry it and future models can use it.
        write: bool,
        /// Memory-level parallelism of this access, in tenths (10 = no
        /// overlap). On an L2 miss the DRAM portion of the latency is
        /// divided by `mlp_tenths / 10`: streaming/prefetchable access
        /// patterns overlap their misses (high MLP, cheap per-miss stall)
        /// while dependent pointer-chasing misses serialise (MLP 1.0).
        /// This is what lets a polluter thread insert lines at a high rate
        /// without its CPI exploding — the behaviour behind the paper's
        /// "threads with not so good cache behavior occupying most of the
        /// shared cache with very little performance gain" (§I).
        mlp_tenths: u16,
    },
    /// The thread arrived at a barrier ending the current parallel section.
    /// It stalls until every unfinished thread arrives.
    Barrier,
    /// The thread has retired all of its work.
    Finished,
}

impl ThreadEvent {
    /// A plain read access with no miss overlap (MLP 1.0) — the common
    /// case in tests and traces.
    pub fn access(gap: u32, addr: u64) -> Self {
        ThreadEvent::Access { gap, addr, write: false, mlp_tenths: 10 }
    }
}

/// A per-thread instruction/access stream consumed by the simulator.
pub trait AccessStream {
    /// Returns the next event. After returning [`ThreadEvent::Finished`]
    /// the stream will not be polled again.
    fn next_event(&mut self) -> ThreadEvent;
}

/// Blanket impl so closures can serve as streams in tests.
impl<F: FnMut() -> ThreadEvent> AccessStream for F {
    fn next_event(&mut self) -> ThreadEvent {
        self()
    }
}

/// A stream replaying a fixed event sequence, then `Finished`. Useful in
/// tests and for trace-driven simulation.
#[derive(Clone, Debug)]
pub struct ReplayStream {
    events: Vec<ThreadEvent>,
    pos: usize,
}

impl ReplayStream {
    /// Creates a stream that yields `events` in order, then `Finished`
    /// forever.
    pub fn new(events: Vec<ThreadEvent>) -> Self {
        ReplayStream { events, pos: 0 }
    }
}

impl AccessStream for ReplayStream {
    fn next_event(&mut self) -> ThreadEvent {
        let e = self.events.get(self.pos).copied().unwrap_or(ThreadEvent::Finished);
        self.pos += 1;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_yields_then_finishes() {
        let mut s = ReplayStream::new(vec![
            ThreadEvent::access(2, 64),
            ThreadEvent::Barrier,
        ]);
        assert_eq!(s.next_event(), ThreadEvent::access(2, 64));
        assert_eq!(s.next_event(), ThreadEvent::Barrier);
        assert_eq!(s.next_event(), ThreadEvent::Finished);
        assert_eq!(s.next_event(), ThreadEvent::Finished);
    }

    #[test]
    fn closure_stream() {
        let mut n = 0u32;
        let mut s = move || {
            n += 1;
            if n <= 2 {
                ThreadEvent::access(0, 0)
            } else {
                ThreadEvent::Finished
            }
        };
        assert!(matches!(AccessStream::next_event(&mut s), ThreadEvent::Access { .. }));
        assert!(matches!(AccessStream::next_event(&mut s), ThreadEvent::Access { .. }));
        assert!(matches!(AccessStream::next_event(&mut s), ThreadEvent::Finished));
    }
}
