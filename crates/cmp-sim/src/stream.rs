//! The interface between workloads and the simulator.
//!
//! A thread's execution is abstracted as a stream of [`ThreadEvent`]s:
//! memory accesses separated by runs of non-memory instructions, barrier
//! arrivals delimiting parallel sections (§III-B), and termination. The
//! `icp-workloads` crate provides synthetic generators; traces or other
//! sources can implement [`AccessStream`] too.

use icp_hot_path::hot_path;

use crate::packed::PackedBlock;

/// One event in a thread's instruction stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadEvent {
    /// `gap` non-memory instructions followed by one memory access to
    /// byte address `addr`.
    Access {
        /// Non-memory instructions retired before the access (1 cycle each).
        gap: u32,
        /// Byte address accessed.
        addr: u64,
        /// Whether the access is a store. Timing treats loads and stores
        /// identically (no write-buffer model); the flag exists so stream
        /// implementations can carry it and future models can use it.
        write: bool,
        /// Memory-level parallelism of this access, in tenths (10 = no
        /// overlap). On an L2 miss the DRAM portion of the latency is
        /// divided by `mlp_tenths / 10`: streaming/prefetchable access
        /// patterns overlap their misses (high MLP, cheap per-miss stall)
        /// while dependent pointer-chasing misses serialise (MLP 1.0).
        /// This is what lets a polluter thread insert lines at a high rate
        /// without its CPI exploding — the behaviour behind the paper's
        /// "threads with not so good cache behavior occupying most of the
        /// shared cache with very little performance gain" (§I).
        mlp_tenths: u16,
    },
    /// The thread arrived at a barrier ending the current parallel section.
    /// It stalls until every unfinished thread arrives.
    Barrier,
    /// The thread has retired all of its work.
    Finished,
}

impl ThreadEvent {
    /// A plain read access with no miss overlap (MLP 1.0) — the common
    /// case in tests and traces.
    pub fn access(gap: u32, addr: u64) -> Self {
        ThreadEvent::Access { gap, addr, write: false, mlp_tenths: 10 }
    }
}

/// A per-thread instruction/access stream consumed by the simulator.
///
/// Streams are *generation-only*: the simulator never feeds timing or cache
/// state back into them, so events may be produced ahead of consumption.
/// The simulator exploits that with [`Self::fill_batch`], pulling events
/// into a per-core ring so the per-event virtual dispatch amortises over a
/// whole batch.
pub trait AccessStream {
    /// Returns the next event. After returning [`ThreadEvent::Finished`]
    /// the stream will not be polled again.
    fn next_event(&mut self) -> ThreadEvent;

    /// Fills `out` with upcoming events and returns how many were written.
    ///
    /// The batch ends early (possibly with fewer events than `out` holds)
    /// after a [`ThreadEvent::Finished`] is written; the stream is not
    /// polled again afterwards. Returns 0 only when `out` is empty.
    /// Implementations must produce exactly the sequence `next_event` would
    /// — batching is a delivery detail, never a semantic one (the
    /// `batch_equivalence` integration suite holds implementations to
    /// this).
    ///
    /// The default forwards to [`Self::next_event`]; generators override it
    /// to produce batches natively.
    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        let mut n = 0;
        while n < out.len() {
            let e = self.next_event();
            out[n] = e;
            n += 1;
            if matches!(e, ThreadEvent::Finished) {
                break;
            }
        }
        n
    }

    /// Clears `out` and refills it with at most `cap` upcoming events
    /// (accesses plus barriers) in packed column form.
    ///
    /// Stream termination is carried as the block's `finished` flag rather
    /// than an in-band event, and — exactly like a `Finished` written by
    /// [`Self::fill_batch`] — ends delivery: the block may hold fewer than
    /// `cap` events, and the stream is not polled again afterwards (if it
    /// is, it must keep yielding empty finished blocks). The delivered
    /// column sequence must decode to exactly what `next_event` would
    /// produce; `cap == 0` yields an empty, unfinished block with nothing
    /// consumed.
    ///
    /// The default bridges through [`Self::fill_batch`]; columnar
    /// generators and replays override it to write columns directly.
    fn fill_packed(&mut self, out: &mut PackedBlock, cap: usize) {
        out.clear();
        let mut buf = [ThreadEvent::Finished; 256];
        while out.len() < cap {
            let want = (cap - out.len()).min(buf.len());
            let n = self.fill_batch(&mut buf[..want]);
            if n == 0 {
                break;
            }
            for &e in &buf[..n] {
                match e {
                    ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                        out.push_access(gap, addr, write, mlp_tenths);
                    }
                    ThreadEvent::Barrier => out.push_barrier(),
                    ThreadEvent::Finished => {
                        out.set_finished(true);
                        return;
                    }
                }
            }
        }
    }

    /// Like [`Self::fill_packed`], but `cap` is *advisory*: the stream may
    /// deliver more events when a larger block is already materialised —
    /// the pipelined consumer swaps whole producer blocks into `out` by
    /// ownership instead of copying columns. Consumers sized for exact
    /// batches must use `fill_packed`; the simulator's per-core ring
    /// drains whatever arrives.
    fn next_block(&mut self, out: &mut PackedBlock, cap: usize) {
        self.fill_packed(out, cap);
    }
}

/// Blanket impl so closures can serve as streams in tests.
impl<F: FnMut() -> ThreadEvent> AccessStream for F {
    fn next_event(&mut self) -> ThreadEvent {
        self()
    }
}

/// Delegation for boxed streams, so wrappers and adaptors can hold a
/// `Box<dyn AccessStream>` and still be streams themselves. Forwards
/// `fill_batch` too — a boxed generator keeps its native batching.
impl AccessStream for Box<dyn AccessStream + '_> {
    fn next_event(&mut self) -> ThreadEvent {
        (**self).next_event()
    }

    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        (**self).fill_batch(out)
    }

    fn fill_packed(&mut self, out: &mut PackedBlock, cap: usize) {
        (**self).fill_packed(out, cap);
    }

    fn next_block(&mut self, out: &mut PackedBlock, cap: usize) {
        (**self).next_block(out, cap);
    }
}

/// A stream replaying a fixed event sequence, then `Finished`. Useful in
/// tests and for trace-driven simulation.
#[derive(Clone, Debug)]
pub struct ReplayStream {
    events: Vec<ThreadEvent>,
    pos: usize,
}

impl ReplayStream {
    /// Creates a stream that yields `events` in order, then `Finished`
    /// forever.
    pub fn new(events: Vec<ThreadEvent>) -> Self {
        ReplayStream { events, pos: 0 }
    }
}

impl AccessStream for ReplayStream {
    fn next_event(&mut self) -> ThreadEvent {
        let e = self.events.get(self.pos).copied().unwrap_or(ThreadEvent::Finished);
        self.pos += 1;
        e
    }

    /// Native batch delivery: one slice copy instead of per-event calls.
    #[hot_path]
    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        // `pos` can sit past the end once the synthesised `Finished` has
        // been delivered; clamp before slicing.
        let pos = self.pos.min(self.events.len());
        let n = (self.events.len() - pos).min(out.len());
        out[..n].copy_from_slice(&self.events[pos..pos + n]);
        self.pos = pos + n;
        if n < out.len() {
            out[n] = ThreadEvent::Finished;
            self.pos += 1;
            return n + 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_yields_then_finishes() {
        let mut s = ReplayStream::new(vec![
            ThreadEvent::access(2, 64),
            ThreadEvent::Barrier,
        ]);
        assert_eq!(s.next_event(), ThreadEvent::access(2, 64));
        assert_eq!(s.next_event(), ThreadEvent::Barrier);
        assert_eq!(s.next_event(), ThreadEvent::Finished);
        assert_eq!(s.next_event(), ThreadEvent::Finished);
    }

    #[test]
    fn replay_fill_batch_matches_next_event() {
        let events = vec![
            ThreadEvent::access(2, 64),
            ThreadEvent::Barrier,
            ThreadEvent::access(0, 128),
        ];
        let mut batched = ReplayStream::new(events.clone());
        let mut single = ReplayStream::new(events);
        let mut buf = [ThreadEvent::Finished; 2];
        // First batch: full buffer, no Finished yet.
        assert_eq!(batched.fill_batch(&mut buf), 2);
        assert_eq!(buf[0], single.next_event());
        assert_eq!(buf[1], single.next_event());
        // Second batch: last event + the synthesised Finished.
        assert_eq!(batched.fill_batch(&mut buf), 2);
        assert_eq!(buf[0], single.next_event());
        assert_eq!(buf[1], ThreadEvent::Finished);
        // Exhausted stream keeps yielding Finished-only batches.
        assert_eq!(batched.fill_batch(&mut buf), 1);
        assert_eq!(buf[0], ThreadEvent::Finished);
    }

    #[test]
    fn default_fill_batch_stops_after_finished() {
        // The blanket closure impl uses the default fill_batch.
        let mut n = 0u32;
        let mut s = move || {
            n += 1;
            if n <= 3 {
                ThreadEvent::access(0, n as u64 * 64)
            } else {
                ThreadEvent::Finished
            }
        };
        let mut buf = [ThreadEvent::Barrier; 8];
        let filled = AccessStream::fill_batch(&mut s, &mut buf);
        assert_eq!(filled, 4);
        assert!(matches!(buf[2], ThreadEvent::Access { .. }));
        assert_eq!(buf[3], ThreadEvent::Finished);
    }

    #[test]
    fn fill_batch_with_empty_buffer_is_zero() {
        let mut s = ReplayStream::new(vec![ThreadEvent::access(0, 0)]);
        assert_eq!(s.fill_batch(&mut []), 0);
        // Nothing consumed.
        assert_eq!(s.next_event(), ThreadEvent::access(0, 0));
    }

    #[test]
    fn closure_stream() {
        let mut n = 0u32;
        let mut s = move || {
            n += 1;
            if n <= 2 {
                ThreadEvent::access(0, 0)
            } else {
                ThreadEvent::Finished
            }
        };
        assert!(matches!(AccessStream::next_event(&mut s), ThreadEvent::Access { .. }));
        assert!(matches!(AccessStream::next_event(&mut s), ThreadEvent::Access { .. }));
        assert!(matches!(AccessStream::next_event(&mut s), ThreadEvent::Finished));
    }
}
