//! Performance counters: per-thread execution statistics and inter-thread
//! cache interaction tracking.
//!
//! These are the software analogue of the hardware performance monitors the
//! paper's runtime system reads at each execution interval (§VI-C): cycle
//! counts, instruction counts, hits and misses per thread, plus the
//! interaction classification used for Figures 8 and 9.

use icp_hot_path::deterministic;

use crate::ThreadId;

/// Inter-thread cache interaction counters (paper §IV-A2).
///
/// An access is an *inter-thread interaction* when the previous access to
/// the same cache line came from a different thread. The constructive form
/// is a cross-thread **hit** (data one thread brought in serving another);
/// the destructive form is a cross-thread **eviction**.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InteractionStats {
    /// All L2 accesses observed.
    pub total_accesses: u64,
    /// Hits on a line last touched by a different thread (constructive).
    pub inter_thread_hits: u64,
    /// Evictions of a line owned by a different thread (destructive).
    pub inter_thread_evictions: u64,
}

impl InteractionStats {
    /// Fraction of all interactions that are inter-thread (Figure 8).
    pub fn inter_thread_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        (self.inter_thread_hits + self.inter_thread_evictions) as f64
            / self.total_accesses as f64
    }

    /// Fraction of inter-thread interactions that are constructive
    /// (Figure 9).
    pub fn constructive_fraction(&self) -> f64 {
        let inter = self.inter_thread_hits + self.inter_thread_evictions;
        if inter == 0 {
            return 0.0;
        }
        self.inter_thread_hits as f64 / inter as f64
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &InteractionStats) {
        self.total_accesses += other.total_accesses;
        self.inter_thread_hits += other.inter_thread_hits;
        self.inter_thread_evictions += other.inter_thread_evictions;
    }
}

/// Cumulative per-thread execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadCounters {
    /// Instructions retired (memory and non-memory).
    pub instructions: u64,
    /// Cycles spent executing (excludes barrier-wait stalls).
    pub active_cycles: u64,
    /// Cycles spent stalled at barriers waiting for slower threads — the
    /// paper's "slack time".
    pub barrier_stall_cycles: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses (these proceed to the L2).
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (these go to memory).
    pub l2_misses: u64,
    /// Dirty L1 victims written back into the L2.
    pub l1_writebacks: u64,
    /// Dirty L2 victims written back to memory (attributed to the line
    /// owner).
    pub l2_writebacks: u64,
    /// Peer-L1 lines invalidated by this thread's stores (write-invalidate
    /// coherence; 0 unless [`crate::SystemConfig::coherence`] is on).
    pub coherence_invalidations: u64,
    /// L2 lines installed by this thread's prefetcher (0 unless
    /// [`crate::SystemConfig::prefetch_degree`] > 0).
    pub prefetch_fills: u64,
    /// Demand hits on lines the prefetcher installed (useful prefetches).
    pub prefetch_hits: u64,
    /// L2 misses serviced by the victim cache (0 unless
    /// [`crate::SystemConfig::victim_cache_lines`] > 0).
    pub victim_hits: u64,
}

impl ThreadCounters {
    /// Cycles-per-instruction over the *active* (non-stalled) execution —
    /// the metric the paper's policies use to find the critical path thread.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.active_cycles as f64 / self.instructions as f64
    }

    /// Element-wise accumulation.
    #[deterministic]
    pub fn add(&mut self, other: &ThreadCounters) {
        self.instructions += other.instructions;
        self.active_cycles += other.active_cycles;
        self.barrier_stall_cycles += other.barrier_stall_cycles;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l1_writebacks += other.l1_writebacks;
        self.l2_writebacks += other.l2_writebacks;
        self.coherence_invalidations += other.coherence_invalidations;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_hits += other.prefetch_hits;
        self.victim_hits += other.victim_hits;
    }

    /// Element-wise difference (`self - earlier`); used to derive interval
    /// deltas from cumulative counters.
    pub fn delta_since(&self, earlier: &ThreadCounters) -> ThreadCounters {
        ThreadCounters {
            instructions: self.instructions - earlier.instructions,
            active_cycles: self.active_cycles - earlier.active_cycles,
            barrier_stall_cycles: self.barrier_stall_cycles - earlier.barrier_stall_cycles,
            l1_hits: self.l1_hits - earlier.l1_hits,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l2_hits: self.l2_hits - earlier.l2_hits,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l1_writebacks: self.l1_writebacks - earlier.l1_writebacks,
            l2_writebacks: self.l2_writebacks - earlier.l2_writebacks,
            coherence_invalidations: self.coherence_invalidations
                - earlier.coherence_invalidations,
            prefetch_fills: self.prefetch_fills - earlier.prefetch_fills,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            victim_hits: self.victim_hits - earlier.victim_hits,
        }
    }
}

/// Whole-run statistics for all threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GlobalStats {
    /// Cumulative per-thread counters.
    pub threads: Vec<ThreadCounters>,
    /// Cumulative interaction stats.
    pub interactions: InteractionStats,
}

impl GlobalStats {
    /// Creates zeroed stats for `n` threads.
    pub fn new(n: usize) -> Self {
        GlobalStats { threads: vec![ThreadCounters::default(); n], interactions: InteractionStats::default() }
    }

    /// Counters of one thread.
    pub fn thread(&self, t: ThreadId) -> &ThreadCounters {
        &self.threads[t]
    }

    /// Total instructions retired across all threads.
    pub fn total_instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.instructions).sum()
    }

    /// Application-level CPI: total cycles (max thread wall time) would
    /// require the scheduler's view; this helper gives the aggregate
    /// instruction-weighted CPI the paper's Figure 18 reports as "overall
    /// CPI" — total active cycles over total instructions.
    pub fn overall_cpi(&self) -> f64 {
        let insts = self.total_instructions();
        if insts == 0 {
            return 0.0;
        }
        let cycles: u64 = self.threads.iter().map(|t| t.active_cycles).sum();
        cycles as f64 / insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_basic() {
        let c = ThreadCounters { instructions: 100, active_cycles: 450, ..Default::default() };
        assert!((c.cpi() - 4.5).abs() < 1e-12);
        assert_eq!(ThreadCounters::default().cpi(), 0.0);
    }

    #[test]
    fn delta_since() {
        let a = ThreadCounters {
            instructions: 100,
            active_cycles: 400,
            l2_misses: 10,
            ..Default::default()
        };
        let b = ThreadCounters {
            instructions: 250,
            active_cycles: 900,
            l2_misses: 25,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.instructions, 150);
        assert_eq!(d.active_cycles, 500);
        assert_eq!(d.l2_misses, 15);
    }

    #[test]
    fn interaction_fractions() {
        let i = InteractionStats {
            total_accesses: 200,
            inter_thread_hits: 15,
            inter_thread_evictions: 5,
        };
        assert!((i.inter_thread_fraction() - 0.1).abs() < 1e-12);
        assert!((i.constructive_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(InteractionStats::default().inter_thread_fraction(), 0.0);
        assert_eq!(InteractionStats::default().constructive_fraction(), 0.0);
    }

    #[test]
    fn accumulation() {
        let mut a = ThreadCounters { instructions: 10, ..Default::default() };
        a.add(&ThreadCounters { instructions: 5, l1_hits: 3, ..Default::default() });
        assert_eq!(a.instructions, 15);
        assert_eq!(a.l1_hits, 3);

        let mut i = InteractionStats::default();
        i.add(&InteractionStats { total_accesses: 7, inter_thread_hits: 2, inter_thread_evictions: 1 });
        assert_eq!(i.total_accesses, 7);
    }

    #[test]
    fn overall_cpi_weights_by_instructions() {
        let mut g = GlobalStats::new(2);
        g.threads[0] = ThreadCounters { instructions: 100, active_cycles: 100, ..Default::default() };
        g.threads[1] = ThreadCounters { instructions: 100, active_cycles: 300, ..Default::default() };
        assert!((g.overall_cpi() - 2.0).abs() < 1e-12);
        assert_eq!(g.total_instructions(), 200);
    }
}
