//! Utility monitors (UMON): per-thread way-utility profiling via sampled
//! auxiliary tag directories.
//!
//! The throughput-oriented baseline the paper compares against (§IV-B,
//! Figure 21) descends from Suh et al. / UCP-style schemes, which need to
//! know how many hits each thread would get *as a function of allocated
//! ways*. The standard hardware for that is an auxiliary tag directory
//! (ATD): for a sample of cache sets, each thread gets a private, full-width
//! LRU tag stack that behaves as if the thread owned the whole cache. A hit
//! at LRU stack position `d` means "this access hits iff the thread has at
//! least `d+1` ways", so a histogram of hit positions yields the whole
//! hits-vs-ways curve at once (the LRU *inclusion* property).
//!
//! This module is also exposed as a public profiling API: the `icp-core`
//! runtime does not need it (the paper's scheme learns CPI curves from
//! observed behaviour instead), but the UCP baseline and the ablation
//! benches do.

use icp_hot_path::deterministic;

use crate::config::CacheConfig;
use crate::ThreadId;

/// A sampled-set, per-thread auxiliary tag directory with LRU stack-position
/// hit counters.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::{CacheConfig, UtilityMonitor};
///
/// let l2 = CacheConfig::new(64 * 1024, 16, 64);
/// let mut umon = UtilityMonitor::new(&l2, 2, 1);
/// // Thread 0 loops over two lines: one extra way doubles its hits.
/// for _ in 0..10 {
///     umon.observe(0, 0x000);
///     umon.observe(0, 0x40_000); // same set, different tag
/// }
/// assert!(umon.hits_with_ways(0, 2) > umon.hits_with_ways(0, 1));
/// ```
#[derive(Clone, Debug)]
pub struct UtilityMonitor {
    ways: usize,
    threads: usize,
    set_mask: u64,
    /// `sample_every - 1`: the stride is a power of two, so "is this set
    /// sampled" is one AND.
    sample_mask: u64,
    /// `log2(sample_every)`, for compressing a sampled set index.
    sample_shift: u32,
    /// `log2(line_bytes)`, for shift-based line/tag extraction.
    line_shift: u32,
    /// Number of sampled sets (`num_sets >> sample_shift`), cached.
    sampled: usize,
    /// `threads * sampled_sets` MRU-first tag stacks (each at most `ways`
    /// long).
    stacks: Vec<Vec<u64>>,
    /// `threads * ways` hit counters by stack position.
    way_hits: Vec<u64>,
    /// Per-thread ATD misses (would miss even with all ways).
    atd_misses: Vec<u64>,
}

impl UtilityMonitor {
    /// Creates a monitor for the given L2 geometry, sampling one in
    /// `sample_every` sets (must divide the set count and be a power of
    /// two; pass 1 to sample every set).
    pub fn new(l2: &CacheConfig, threads: usize, sample_every: u64) -> Self {
        assert!(threads > 0);
        assert!(sample_every.is_power_of_two(), "sampling stride must be a power of two");
        let num_sets = l2.num_sets();
        assert!(sample_every <= num_sets, "stride exceeds set count");
        let sampled = (num_sets / sample_every) as usize;
        UtilityMonitor {
            ways: l2.ways as usize,
            threads,
            set_mask: num_sets - 1,
            sample_mask: sample_every - 1,
            sample_shift: sample_every.trailing_zeros(),
            line_shift: l2.line_bytes.trailing_zeros(),
            sampled,
            stacks: vec![Vec::new(); threads * sampled],
            way_hits: vec![0; threads * l2.ways as usize],
            atd_misses: vec![0; threads],
        }
    }

    /// Number of sampled sets.
    pub fn sampled_sets(&self) -> usize {
        self.sampled
    }

    /// Number of profiled threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Way count of the monitored cache.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Feeds one access into the monitor. Non-sampled sets are ignored, so
    /// this is cheap to call for every access.
    #[deterministic]
    pub fn observe(&mut self, thread: ThreadId, addr: u64) {
        debug_assert!(thread < self.threads);
        let line = addr >> self.line_shift;
        let set = line & self.set_mask;
        if set & self.sample_mask != 0 {
            return;
        }
        let tag = line;
        let sampled_idx = (set >> self.sample_shift) as usize;
        let stack = &mut self.stacks[thread * self.sampled + sampled_idx];
        if let Some(pos) = stack.iter().position(|&t| t == tag) {
            // Hit at stack distance `pos`: counts toward every allocation of
            // more than `pos` ways. Move to MRU.
            self.way_hits[thread * self.ways + pos] += 1;
            stack.remove(pos);
            stack.insert(0, tag);
        } else {
            self.atd_misses[thread] += 1;
            if stack.len() == self.ways {
                stack.pop();
            }
            stack.insert(0, tag);
        }
    }

    /// Hits `thread` would have received with an allocation of `ways` ways
    /// (over the sampled sets), by the LRU inclusion property.
    pub fn hits_with_ways(&self, thread: ThreadId, ways: u32) -> u64 {
        let w = (ways as usize).min(self.ways);
        self.way_hits[thread * self.ways..thread * self.ways + w]
            .iter()
            .sum()
    }

    /// The full per-way marginal hit histogram for `thread` (index `d` =
    /// hits at stack distance `d`).
    pub fn way_histogram(&self, thread: ThreadId) -> &[u64] {
        &self.way_hits[thread * self.ways..(thread + 1) * self.ways]
    }

    /// Misses `thread` would incur even with the full cache (sampled sets).
    pub fn compulsory_capacity_misses(&self, thread: ThreadId) -> u64 {
        self.atd_misses[thread]
    }

    /// Misses `thread` would incur with `ways` ways: ATD misses plus all
    /// hits beyond the allocation.
    pub fn misses_with_ways(&self, thread: ThreadId, ways: u32) -> u64 {
        let total_hits: u64 = self.way_histogram(thread).iter().sum();
        self.atd_misses[thread] + (total_hits - self.hits_with_ways(thread, ways))
    }

    /// Zeroes the counters (tag stacks persist, mirroring hardware UMONs
    /// which age rather than flush; good enough at interval granularity).
    pub fn reset_counters(&mut self) {
        self.way_hits.fill(0);
        self.atd_misses.fill(0);
    }

    /// Accumulates another monitor's counters into this one. Used by the
    /// set-sharded simulator to reduce per-shard UMONs into one system-wide
    /// profile: each shard observes a disjoint slice of the set space, so
    /// summing `way_hits` and `atd_misses` in shard order reconstitutes the
    /// whole hits-vs-ways curve. Tag stacks are left alone (they are
    /// per-set state and the shards' sets never overlap).
    ///
    /// # Panics
    /// Panics if the two monitors have different thread or way counts.
    #[deterministic]
    pub fn merge_counters(&mut self, other: &UtilityMonitor) {
        assert_eq!(self.threads, other.threads, "thread counts must match");
        assert_eq!(self.ways, other.ways, "way counts must match");
        for (acc, &x) in self.way_hits.iter_mut().zip(&other.way_hits) {
            *acc += x;
        }
        for (acc, &x) in self.atd_misses.iter_mut().zip(&other.atd_misses) {
            *acc += x;
        }
    }

    /// Snapshots the counters into an owned, serialisable profile.
    ///
    /// Taken once at the end of a run (off the per-access hot path), this
    /// is what lets the analytical fast path consume a *recorded* profile
    /// instead of re-instrumenting: the snapshot carries everything needed
    /// to reconstruct the hits-vs-ways and misses-vs-ways curves.
    pub fn snapshot(&self) -> UmonProfile {
        UmonProfile {
            ways: self.ways as u32,
            sampled_sets: self.sampled as u64,
            total_sets: self.set_mask + 1,
            way_hits: (0..self.threads).map(|t| self.way_histogram(t).to_vec()).collect(),
            atd_misses: self.atd_misses.clone(),
        }
    }

    /// Halves the counters — the exponential-decay aging UCP hardware uses
    /// between repartition points. Compared to a hard reset this keeps a
    /// window of history, damping oscillation when a thread is
    /// barrier-stalled (and hence silent) for a whole interval.
    pub fn decay_counters(&mut self) {
        for c in &mut self.way_hits {
            *c /= 2;
        }
        for c in &mut self.atd_misses {
            *c /= 2;
        }
    }
}

/// An owned snapshot of a [`UtilityMonitor`]'s counters at one point in
/// time: the per-thread way-hit histograms and ATD miss counts over the
/// sampled sets, plus the geometry needed to interpret them.
///
/// This is the recorded-profile currency of the analytical fast path: one
/// profiling simulation exports its snapshot, and the miss-curve predictor
/// reconstructs misses-at-any-allocation from it without touching the
/// simulator again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UmonProfile {
    /// Way count of the monitored cache (histogram width).
    pub ways: u32,
    /// Number of sets the monitor sampled.
    pub sampled_sets: u64,
    /// Total sets in the monitored cache (`sampled_sets * stride`).
    pub total_sets: u64,
    /// Per-thread way-hit histograms: `way_hits[t][d]` counts hits at LRU
    /// stack distance `d` (a hit iff the thread holds > `d` ways).
    pub way_hits: Vec<Vec<u64>>,
    /// Per-thread ATD misses (would miss even with every way).
    pub atd_misses: Vec<u64>,
}

impl UmonProfile {
    /// Number of profiled threads.
    pub fn threads(&self) -> usize {
        self.way_hits.len()
    }

    /// Sampling scale factor: multiply sampled-set counts by this to
    /// estimate whole-cache counts (1.0 when every set was sampled).
    pub fn sample_scale(&self) -> f64 {
        if self.sampled_sets == 0 {
            return 1.0;
        }
        self.total_sets as f64 / self.sampled_sets as f64
    }

    /// Hits `thread` would have received with `ways` ways (sampled sets),
    /// by the LRU inclusion property.
    pub fn hits_with_ways(&self, thread: usize, ways: u32) -> u64 {
        let hist = self.way_hits.get(thread).map(Vec::as_slice).unwrap_or(&[]);
        hist.iter().take(ways as usize).sum()
    }

    /// Misses `thread` would incur with `ways` ways (sampled sets): ATD
    /// misses plus every hit beyond the allocation.
    pub fn misses_with_ways(&self, thread: usize, ways: u32) -> u64 {
        let hist = self.way_hits.get(thread).map(Vec::as_slice).unwrap_or(&[]);
        let beyond: u64 = hist.iter().skip(ways as usize).sum();
        self.atd_misses.get(thread).copied().unwrap_or(0) + beyond
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon() -> UtilityMonitor {
        // 4 sets x 8 ways, sample every set.
        UtilityMonitor::new(&CacheConfig::new(4 * 8 * 64, 8, 64), 2, 1)
    }

    /// Address for line `i` of set `s` (4 sets).
    fn addr(s: u64, i: u64) -> u64 {
        (i * 4 + s) * 64
    }

    #[test]
    fn repeated_access_hits_at_mru() {
        let mut m = mon();
        m.observe(0, addr(0, 0));
        m.observe(0, addr(0, 0));
        m.observe(0, addr(0, 0));
        assert_eq!(m.way_histogram(0)[0], 2);
        assert_eq!(m.compulsory_capacity_misses(0), 1);
        // One way suffices for this pattern.
        assert_eq!(m.hits_with_ways(0, 1), 2);
        assert_eq!(m.misses_with_ways(0, 1), 1);
    }

    #[test]
    fn stack_distance_reflects_reuse_distance() {
        let mut m = mon();
        // Access lines a, b, a: the second 'a' has stack distance 1.
        m.observe(0, addr(0, 0));
        m.observe(0, addr(0, 1));
        m.observe(0, addr(0, 0));
        assert_eq!(m.way_histogram(0)[1], 1);
        // With only 1 way the re-access of 'a' would have missed.
        assert_eq!(m.hits_with_ways(0, 1), 0);
        assert_eq!(m.hits_with_ways(0, 2), 1);
    }

    #[test]
    fn inclusion_property_monotone_hits() {
        let mut m = mon();
        // A loop over 6 lines of one set, repeated: distances spread out.
        for _ in 0..5 {
            for i in 0..6 {
                m.observe(0, addr(1, i));
            }
        }
        let mut prev = 0;
        for w in 1..=8 {
            let h = m.hits_with_ways(0, w);
            assert!(h >= prev, "hits must be non-decreasing in ways");
            prev = h;
        }
        // 6-line loop under true LRU: needs all 6 ways to hit at all.
        assert_eq!(m.hits_with_ways(0, 5), 0);
        assert!(m.hits_with_ways(0, 6) > 0);
    }

    #[test]
    fn threads_profiled_independently() {
        let mut m = mon();
        // Both threads hammer the same set; each ATD is private, so neither
        // pollutes the other.
        for _ in 0..10 {
            m.observe(0, addr(0, 0));
            m.observe(1, addr(0, 1));
        }
        assert_eq!(m.hits_with_ways(0, 1), 9);
        assert_eq!(m.hits_with_ways(1, 1), 9);
        assert_eq!(m.compulsory_capacity_misses(0), 1);
        assert_eq!(m.compulsory_capacity_misses(1), 1);
    }

    #[test]
    fn sampling_skips_unsampled_sets() {
        // Sample every 2nd set of 4.
        let mut m = UtilityMonitor::new(&CacheConfig::new(4 * 8 * 64, 8, 64), 1, 2);
        assert_eq!(m.sampled_sets(), 2);
        m.observe(0, addr(1, 0)); // set 1: not sampled
        m.observe(0, addr(1, 0));
        assert_eq!(m.compulsory_capacity_misses(0), 0);
        assert_eq!(m.hits_with_ways(0, 8), 0);
        m.observe(0, addr(0, 0)); // set 0: sampled
        m.observe(0, addr(0, 0));
        assert_eq!(m.hits_with_ways(0, 8), 1);
    }

    #[test]
    fn atd_capacity_bounded_by_ways() {
        let mut m = mon();
        // Stream 20 distinct lines through one set twice: all ATD misses
        // (20 > 8 ways), stack stays at 8 entries.
        for _ in 0..2 {
            for i in 0..20 {
                m.observe(0, addr(0, i));
            }
        }
        assert_eq!(m.compulsory_capacity_misses(0), 40);
        assert_eq!(m.hits_with_ways(0, 8), 0);
    }

    #[test]
    fn snapshot_matches_live_counters() {
        let mut m = mon();
        for _ in 0..5 {
            for i in 0..6 {
                m.observe(0, addr(1, i));
            }
        }
        m.observe(1, addr(0, 0));
        m.observe(1, addr(0, 0));
        let p = m.snapshot();
        assert_eq!(p.ways, 8);
        assert_eq!(p.threads(), 2);
        assert_eq!(p.sampled_sets, 4);
        assert_eq!(p.total_sets, 4);
        assert!((p.sample_scale() - 1.0).abs() < 1e-12);
        for t in 0..2 {
            for w in 0..=8u32 {
                assert_eq!(p.hits_with_ways(t, w), m.hits_with_ways(t, w), "t{t} w{w}");
                assert_eq!(p.misses_with_ways(t, w), m.misses_with_ways(t, w), "t{t} w{w}");
            }
        }
        // Out-of-range thread indices degrade to zero rather than panicking.
        assert_eq!(p.hits_with_ways(9, 4), 0);
        assert_eq!(p.misses_with_ways(9, 4), 0);
    }

    #[test]
    fn reset_counters() {
        let mut m = mon();
        m.observe(0, addr(0, 0));
        m.observe(0, addr(0, 0));
        m.reset_counters();
        assert_eq!(m.hits_with_ways(0, 8), 0);
        assert_eq!(m.compulsory_capacity_misses(0), 0);
        // Tags persist: next access is a hit counted fresh.
        m.observe(0, addr(0, 0));
        assert_eq!(m.hits_with_ways(0, 8), 1);
    }
}
