//! Pipeline parallelism: decoupling event generation from simulation.
//!
//! Synthetic generation (Zipf sampling, address scrambling) and simulation
//! (cache walks, timing) are independent stages — the simulator never feeds
//! state back into a stream (see [`AccessStream`]). [`PipelinedStream`]
//! exploits that by running any stream's generator on its own producer
//! thread: batches of events flow through a bounded channel (backpressure
//! keeps the producer at most `depth` batches ahead) and drained buffers
//! are recycled back to the producer, so steady state allocates nothing.
//!
//! Because each workload thread owns an independent RNG (forked per thread
//! from the master seed, see `icp-workloads`), moving its generator to
//! another OS thread changes *when* events are produced but never *which*
//! events — simulations over pipelined streams are bit-identical to inline
//! generation, which the `pipeline_equivalence` integration suite and the
//! `pipeline_4t` bench scenario both pin.
//!
//! [`TakeStream`] is the companion adaptor that truncates a stream after a
//! fixed number of events, matching how [`crate::Trace::record`] bounds a
//! recording — it lets a pipelined run consume "the first N events" exactly
//! like a record-then-replay run does.

use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use crate::stream::{AccessStream, ThreadEvent};

/// Default events per pipeline batch. Large enough to amortise channel
/// hand-off to noise, small enough that three in-flight buffers stay cheap.
pub const DEFAULT_BATCH: usize = 4096;

/// Default channel depth (batches the producer may run ahead).
pub const DEFAULT_DEPTH: usize = 2;

/// A stream whose events are generated on a dedicated producer thread.
///
/// The producer fills event buffers ahead of the consumer and parks once
/// `depth` full batches are queued (bounded-channel backpressure); the
/// consumer hands drained buffers back for reuse. Dropping the stream —
/// even mid-sequence — closes both channels, unblocking and joining the
/// producer.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::{PipelinedStream, ThreadEvent};
/// use icp_cmp_sim::stream::{AccessStream, ReplayStream};
///
/// let inner = ReplayStream::new(vec![ThreadEvent::access(3, 0x40)]);
/// let mut piped = PipelinedStream::spawn(inner);
/// assert_eq!(piped.next_event(), ThreadEvent::access(3, 0x40));
/// assert_eq!(piped.next_event(), ThreadEvent::Finished);
/// ```
#[derive(Debug)]
pub struct PipelinedStream {
    /// Full batches from the producer. `None` once shut down.
    rx_full: Option<Receiver<Vec<ThreadEvent>>>,
    /// Drained buffers back to the producer. `None` once shut down.
    tx_empty: Option<Sender<Vec<ThreadEvent>>>,
    handle: Option<JoinHandle<()>>,
    /// Batch currently being drained.
    cur: Vec<ThreadEvent>,
    pos: usize,
    done: bool,
}

impl PipelinedStream {
    /// Moves `stream`'s generation onto a producer thread with default
    /// batch size and channel depth.
    pub fn spawn<S: AccessStream + Send + 'static>(stream: S) -> Self {
        PipelinedStream::spawn_with(stream, DEFAULT_BATCH, DEFAULT_DEPTH)
    }

    /// [`Self::spawn`] with explicit knobs. `batch` and `depth` are clamped
    /// to at least 1; tiny values are valid (the deadlock regression tests
    /// run `batch = depth = 1`) just slow.
    pub fn spawn_with<S: AccessStream + Send + 'static>(
        mut stream: S,
        batch: usize,
        depth: usize,
    ) -> Self {
        let batch = batch.max(1);
        let depth = depth.max(1);
        let (tx_full, rx_full): (SyncSender<Vec<ThreadEvent>>, _) = sync_channel(depth);
        let (tx_empty, rx_empty) = std::sync::mpsc::channel::<Vec<ThreadEvent>>();
        // Pre-seed the recycle loop: depth in-flight + one being drained.
        for _ in 0..=depth {
            // Sends cannot fail here: we hold the receiver.
            let _ = tx_empty.send(Vec::with_capacity(batch));
        }
        let handle = std::thread::spawn(move || {
            // Ends when the stream finishes or the consumer hangs up
            // (either channel end dropped).
            while let Ok(mut buf) = rx_empty.recv() {
                buf.clear();
                buf.resize(batch, ThreadEvent::Finished);
                let n = stream.fill_batch(&mut buf);
                buf.truncate(n);
                let finished = buf.last().is_none_or(|e| matches!(e, ThreadEvent::Finished));
                if tx_full.send(buf).is_err() || finished {
                    break;
                }
            }
        });
        PipelinedStream {
            rx_full: Some(rx_full),
            tx_empty: Some(tx_empty),
            handle: Some(handle),
            cur: Vec::new(),
            pos: 0,
            done: false,
        }
    }

    /// Recycles the drained batch and blocks for the next full one. Sets
    /// `done` if the producer has hung up.
    fn refill(&mut self) {
        let drained = std::mem::take(&mut self.cur);
        if let Some(tx) = &self.tx_empty {
            // Failure just means the producer exited; the full channel may
            // still hold its final batches.
            let _ = tx.send(drained);
        }
        self.pos = 0;
        match self.rx_full.as_ref().and_then(|rx| rx.recv().ok()) {
            Some(buf) => self.cur = buf,
            // Producer gone with no pending batch: treat as finished
            // (defensive — a well-formed producer always delivers a final
            // `Finished` batch first).
            None => self.done = true,
        }
    }
}

impl AccessStream for PipelinedStream {
    fn next_event(&mut self) -> ThreadEvent {
        loop {
            if self.done {
                return ThreadEvent::Finished;
            }
            if self.pos < self.cur.len() {
                let e = self.cur[self.pos];
                self.pos += 1;
                if matches!(e, ThreadEvent::Finished) {
                    self.done = true;
                }
                return e;
            }
            self.refill();
        }
    }

    /// Native batch delivery: slice copies out of the current producer
    /// batch. A producer batch only ever carries `Finished` as its last
    /// element (the [`AccessStream::fill_batch`] contract), so the
    /// end-of-copy check suffices.
    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        let mut n = 0;
        while n < out.len() {
            if self.done {
                if n == 0 {
                    out[0] = ThreadEvent::Finished;
                    n = 1;
                }
                break;
            }
            if self.pos >= self.cur.len() {
                self.refill();
                continue;
            }
            let take = (self.cur.len() - self.pos).min(out.len() - n);
            out[n..n + take].copy_from_slice(&self.cur[self.pos..self.pos + take]);
            self.pos += take;
            n += take;
            if matches!(out[n - 1], ThreadEvent::Finished) {
                self.done = true;
                break;
            }
        }
        n
    }
}

impl Drop for PipelinedStream {
    fn drop(&mut self) {
        // Drop both channel ends *before* joining: a producer parked in
        // `send` (full channel) or `recv` (awaiting a recycled buffer)
        // unblocks with an error and exits. Joining first would deadlock.
        drop(self.tx_empty.take());
        drop(self.rx_full.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Truncates a stream after `limit` events, then yields `Finished` forever.
///
/// The delivered sequence is exactly what recording the inner stream with
/// [`crate::Trace::record`]`(stream, limit)` and replaying would deliver —
/// the adaptor that lets pipelined runs bound work the way record-based
/// runs do.
#[derive(Debug)]
pub struct TakeStream<S> {
    inner: S,
    remaining: usize,
    done: bool,
}

impl<S: AccessStream> TakeStream<S> {
    /// Wraps `inner`, passing through at most `limit` events.
    pub fn new(inner: S, limit: usize) -> Self {
        TakeStream { inner, remaining: limit, done: false }
    }
}

impl<S: AccessStream> AccessStream for TakeStream<S> {
    fn next_event(&mut self) -> ThreadEvent {
        if self.done || self.remaining == 0 {
            self.done = true;
            return ThreadEvent::Finished;
        }
        let e = self.inner.next_event();
        if matches!(e, ThreadEvent::Finished) {
            self.done = true;
            return e;
        }
        self.remaining -= 1;
        e
    }

    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        if out.is_empty() {
            return 0;
        }
        if self.done || self.remaining == 0 {
            self.done = true;
            out[0] = ThreadEvent::Finished;
            return 1;
        }
        let want = self.remaining.min(out.len());
        let n = self.inner.fill_batch(&mut out[..want]);
        if n == 0 || matches!(out[n.saturating_sub(1)], ThreadEvent::Finished) {
            // Inner finished inside the window (its `Finished` doesn't
            // count against the limit).
            self.done = true;
            if n == 0 {
                out[0] = ThreadEvent::Finished;
                return 1;
            }
            return n;
        }
        self.remaining -= n;
        if self.remaining == 0 && n < out.len() {
            // Limit hit with room to spare: synthesise the `Finished`, as
            // a replayed recording would.
            self.done = true;
            out[n] = ThreadEvent::Finished;
            return n + 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ReplayStream;

    fn sample_events(n: usize) -> Vec<ThreadEvent> {
        (0..n)
            .map(|i| {
                if i % 7 == 6 {
                    ThreadEvent::Barrier
                } else {
                    ThreadEvent::Access {
                        gap: (i % 11) as u32,
                        addr: (i as u64 * 37 % 4096) * 64,
                        write: i % 3 == 0,
                        mlp_tenths: 10 + (i % 4) as u16 * 10,
                    }
                }
            })
            .collect()
    }

    fn drain<S: AccessStream>(s: &mut S) -> Vec<ThreadEvent> {
        let mut out = Vec::new();
        loop {
            let e = s.next_event();
            out.push(e);
            if matches!(e, ThreadEvent::Finished) {
                return out;
            }
        }
    }

    #[test]
    fn pipelined_matches_inline_sequence() {
        let events = sample_events(10_000);
        let mut inline = ReplayStream::new(events.clone());
        let mut piped = PipelinedStream::spawn(ReplayStream::new(events));
        assert_eq!(drain(&mut piped), drain(&mut inline));
    }

    #[test]
    fn pipelined_fill_batch_matches_next_event() {
        let events = sample_events(5_000);
        let mut single = PipelinedStream::spawn(ReplayStream::new(events.clone()));
        let mut batched = PipelinedStream::spawn(ReplayStream::new(events));
        let mut buf = [ThreadEvent::Finished; 33];
        'outer: loop {
            let n = batched.fill_batch(&mut buf);
            assert!(n > 0);
            for &e in &buf[..n] {
                assert_eq!(e, single.next_event());
                if matches!(e, ThreadEvent::Finished) {
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn tiny_batch_and_depth_do_not_deadlock() {
        // batch = depth = 1 forces maximal producer/consumer contention —
        // the regression shape for ring-buffer deadlocks.
        let events = sample_events(300);
        let mut inline = ReplayStream::new(events.clone());
        let mut piped = PipelinedStream::spawn_with(ReplayStream::new(events), 1, 1);
        assert_eq!(drain(&mut piped), drain(&mut inline));
    }

    #[test]
    fn dropping_mid_stream_joins_producer() {
        // Endless stream: the producer can only exit via consumer hang-up.
        let endless = || ThreadEvent::access(1, 64);
        let mut piped = PipelinedStream::spawn_with(endless, 8, 2);
        for _ in 0..20 {
            assert_eq!(piped.next_event(), ThreadEvent::access(1, 64));
        }
        drop(piped); // must not hang
    }

    #[test]
    fn exhausted_pipeline_keeps_yielding_finished() {
        let mut piped = PipelinedStream::spawn(ReplayStream::new(sample_events(3)));
        drain(&mut piped);
        assert_eq!(piped.next_event(), ThreadEvent::Finished);
        let mut buf = [ThreadEvent::Barrier; 4];
        assert_eq!(piped.fill_batch(&mut buf), 1);
        assert_eq!(buf[0], ThreadEvent::Finished);
    }

    #[test]
    fn take_matches_record_then_replay() {
        let events = sample_events(50);
        for limit in [0usize, 1, 7, 49, 50, 51, 1000] {
            let mut src = ReplayStream::new(events.clone());
            let recorded = crate::trace::Trace::record(&mut src, limit);
            let mut replay = recorded.into_stream();
            let mut take = TakeStream::new(ReplayStream::new(events.clone()), limit);
            assert_eq!(drain(&mut take), drain(&mut replay), "limit {limit}");
        }
    }

    #[test]
    fn take_fill_batch_matches_next_event() {
        let events = sample_events(100);
        for (limit, batch) in [(30usize, 7usize), (100, 16), (120, 1), (64, 64)] {
            let mut single = TakeStream::new(ReplayStream::new(events.clone()), limit);
            let mut batched = TakeStream::new(ReplayStream::new(events.clone()), limit);
            let mut buf = vec![ThreadEvent::Barrier; batch];
            'outer: loop {
                let n = batched.fill_batch(&mut buf);
                assert!(n > 0);
                for &e in &buf[..n] {
                    assert_eq!(e, single.next_event(), "limit {limit} batch {batch}");
                    if matches!(e, ThreadEvent::Finished) {
                        break 'outer;
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_take_composition() {
        // The shape the pipeline_4t bench scenario uses: generator →
        // TakeStream → PipelinedStream must equal record-then-replay.
        let events = sample_events(500);
        let limit = 123;
        let mut src = ReplayStream::new(events.clone());
        let recorded = crate::trace::Trace::record(&mut src, limit);
        let mut replay = recorded.into_stream();
        let mut piped = PipelinedStream::spawn_with(
            TakeStream::new(ReplayStream::new(events), limit),
            16,
            2,
        );
        assert_eq!(drain(&mut piped), drain(&mut replay));
    }
}
