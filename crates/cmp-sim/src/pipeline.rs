//! Pipeline parallelism: decoupling event generation from simulation.
//!
//! Synthetic generation (Zipf sampling, address scrambling) and simulation
//! (cache walks, timing) are independent stages — the simulator never feeds
//! state back into a stream (see [`AccessStream`]). [`PipelinedStream`]
//! exploits that by running any stream's generator on its own producer
//! thread: [`PackedBlock`]s of column-packed events flow through a bounded
//! channel (backpressure keeps the producer at most `depth` blocks ahead)
//! and drained blocks are recycled back to the producer, so steady state
//! allocates nothing. The hand-off is by *ownership* — a block is filled
//! once on the producer ([`AccessStream::fill_packed`]) and drained in
//! place on the consumer (ideally via [`AccessStream::next_block`], which
//! swaps whole blocks and copies no event data at all).
//!
//! Because each workload thread owns an independent RNG (forked per thread
//! from the master seed, see `icp-workloads`), moving its generator to
//! another OS thread changes *when* events are produced but never *which*
//! events — simulations over pipelined streams are bit-identical to inline
//! generation, which the `pipeline_equivalence` integration suite and the
//! `pipeline_4t` bench scenario both pin.
//!
//! [`TakeStream`] is the companion adaptor that truncates a stream after a
//! fixed number of events, matching how [`crate::Trace::record`] bounds a
//! recording — it lets a pipelined run consume "the first N events" exactly
//! like a record-then-replay run does.

use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use icp_hot_path::deterministic;

use crate::packed::PackedBlock;
use crate::stream::{AccessStream, ThreadEvent};

/// Default events per pipeline batch. Large enough to amortise channel
/// hand-off to noise, small enough that three in-flight buffers stay cheap.
pub const DEFAULT_BATCH: usize = 4096;

/// Default channel depth (batches the producer may run ahead).
pub const DEFAULT_DEPTH: usize = 2;

/// A stream whose events are generated on a dedicated producer thread.
///
/// The producer packs events into column blocks ahead of the consumer and
/// parks once `depth` full blocks are queued (bounded-channel
/// backpressure); the consumer hands drained blocks back for reuse.
/// Dropping the stream — even mid-sequence — closes both channels,
/// unblocking and joining the producer.
///
/// Consumers that speak columns ([`AccessStream::next_block`]) receive the
/// producer's blocks by ownership swap — zero event copies end to end; the
/// enum APIs (`next_event`/`fill_batch`) decode the same blocks in place,
/// one pass, with no intermediate buffer.
///
/// When the process core budget ([`crate::budget`]) has no spare token —
/// producers would only time-slice against the consumer and lose to
/// inline generation — [`PipelinedStream::spawn`] degrades to a
/// thread-free wrapper that generates inline on demand. The delivered
/// event sequence is identical either way; only where generation runs
/// changes.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::{PipelinedStream, ThreadEvent};
/// use icp_cmp_sim::stream::{AccessStream, ReplayStream};
///
/// let inner = ReplayStream::new(vec![ThreadEvent::access(3, 0x40)]);
/// let mut piped = PipelinedStream::spawn(inner);
/// assert_eq!(piped.next_event(), ThreadEvent::access(3, 0x40));
/// assert_eq!(piped.next_event(), ThreadEvent::Finished);
/// ```
pub struct PipelinedStream {
    /// Thread-free fallback: the wrapped stream itself, generating inline
    /// on the consumer thread. When set, the channel fields stay `None`.
    inline: Option<Box<dyn AccessStream + Send>>,
    /// Full blocks from the producer. `None` once shut down.
    rx_full: Option<Receiver<PackedBlock>>,
    /// Drained blocks back to the producer. `None` once shut down.
    tx_empty: Option<Sender<PackedBlock>>,
    handle: Option<JoinHandle<()>>,
    /// Block currently being drained (only by the enum APIs; `next_block`
    /// hands blocks straight through and leaves this empty).
    cur: PackedBlock,
    /// Accesses delivered from `cur`.
    pos: usize,
    /// Barriers delivered from `cur`.
    nb: usize,
    done: bool,
}

impl std::fmt::Debug for PipelinedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedStream")
            .field("inline", &self.inline.is_some())
            .field("cur", &self.cur)
            .field("pos", &self.pos)
            .field("nb", &self.nb)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl PipelinedStream {
    /// Moves `stream`'s generation onto a producer thread with default
    /// batch size and channel depth — unless the process core budget
    /// ([`crate::budget`]) has no spare token for the producer, in which
    /// case the stream is wrapped inline instead (same events, no thread),
    /// so pipelining never loses to serial generation on busy or small
    /// hosts. A granted token rides with the producer thread and returns
    /// to the pool at the join boundary (when the stream drops).
    #[deterministic]
    pub fn spawn<S: AccessStream + Send + 'static>(stream: S) -> Self {
        let lease = crate::budget::current().lease(1);
        if lease.tokens() == 0 {
            return PipelinedStream::inline(stream);
        }
        PipelinedStream::spawn_with_lease(stream, DEFAULT_BATCH, DEFAULT_DEPTH, Some(lease))
    }

    /// The thread-free fallback behind [`Self::spawn`]: wraps `stream`
    /// without a producer thread, generating inline on demand. Public so
    /// callers (and the equivalence tests) can request the degraded mode
    /// explicitly.
    pub fn inline<S: AccessStream + Send + 'static>(stream: S) -> Self {
        PipelinedStream {
            inline: Some(Box::new(stream)),
            rx_full: None,
            tx_empty: None,
            handle: None,
            cur: PackedBlock::default(),
            pos: 0,
            nb: 0,
            done: false,
        }
    }

    /// [`Self::spawn`] with explicit knobs. `batch` and `depth` are clamped
    /// to at least 1; tiny values are valid (the deadlock regression tests
    /// run `batch = depth = 1`) just slow. Spawns unconditionally — budget
    /// arbitration lives in [`Self::spawn`]; explicit-knob callers opt out.
    pub fn spawn_with<S: AccessStream + Send + 'static>(
        stream: S,
        batch: usize,
        depth: usize,
    ) -> Self {
        Self::spawn_with_lease(stream, batch, depth, None)
    }

    /// Shared producer-thread construction: the optional core-token lease
    /// is moved into the producer closure so it is returned exactly when
    /// the producer exits (the join boundary).
    fn spawn_with_lease<S: AccessStream + Send + 'static>(
        mut stream: S,
        batch: usize,
        depth: usize,
        lease: Option<crate::budget::Lease>,
    ) -> Self {
        let batch = batch.max(1);
        let depth = depth.max(1);
        let (tx_full, rx_full): (SyncSender<PackedBlock>, _) = sync_channel(depth);
        let (tx_empty, rx_empty) = std::sync::mpsc::channel::<PackedBlock>();
        // Pre-seed the recycle loop: depth in-flight + one being drained.
        for _ in 0..=depth {
            // Sends cannot fail here: we hold the receiver.
            let _ = tx_empty.send(PackedBlock::with_capacity(batch));
        }
        let handle = std::thread::spawn(move || {
            // The producer holds its core token for its whole lifetime;
            // dropping it here returns the token at the join boundary.
            let _token = lease;
            // Ends when the stream finishes or the consumer hangs up
            // (either channel end dropped).
            while let Ok(mut block) = rx_empty.recv() {
                stream.fill_packed(&mut block, batch);
                let finished = block.finished() || block.is_empty();
                if tx_full.send(block).is_err() || finished {
                    break;
                }
            }
        });
        PipelinedStream {
            inline: None,
            rx_full: Some(rx_full),
            tx_empty: Some(tx_empty),
            handle: Some(handle),
            cur: PackedBlock::default(),
            pos: 0,
            nb: 0,
            done: false,
        }
    }

    /// True once every event of the current block has been delivered.
    fn cur_drained(&self) -> bool {
        self.pos >= self.cur.accesses() && self.nb >= self.cur.barrier_count()
    }

    /// Recycles the drained block and blocks for the next full one. Sets
    /// `done` if the producer has hung up.
    fn refill(&mut self) {
        let drained = std::mem::take(&mut self.cur);
        if let Some(tx) = &self.tx_empty {
            // Failure just means the producer exited; the full channel may
            // still hold its final blocks.
            let _ = tx.send(drained);
        }
        self.pos = 0;
        self.nb = 0;
        match self.rx_full.as_ref().and_then(|rx| rx.recv().ok()) {
            Some(block) => self.cur = block,
            // Producer gone with no pending block: treat as finished
            // (defensive — a well-formed producer always delivers a final
            // `finished` block first).
            None => self.done = true,
        }
    }
}

impl AccessStream for PipelinedStream {
    fn next_event(&mut self) -> ThreadEvent {
        if let Some(s) = self.inline.as_mut() {
            return s.next_event();
        }
        loop {
            if self.done {
                return ThreadEvent::Finished;
            }
            if let Some(e) = self.cur.event_at(self.pos, self.nb) {
                match e {
                    ThreadEvent::Barrier => self.nb += 1,
                    _ => self.pos += 1,
                }
                return e;
            }
            if self.cur.finished() {
                self.done = true;
                return ThreadEvent::Finished;
            }
            self.refill();
        }
    }

    /// Native batch delivery: access runs between barriers are decoded
    /// straight out of the producer's columns into `out` — one pass, no
    /// intermediate enum buffer.
    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        if let Some(s) = self.inline.as_mut() {
            return s.fill_batch(out);
        }
        let mut n = 0;
        while n < out.len() {
            if self.done {
                if n == 0 {
                    out[0] = ThreadEvent::Finished;
                    n = 1;
                }
                break;
            }
            // Barriers due at the cursor fire before the next access run.
            if self.nb < self.cur.barrier_count() && self.cur.barrier_at(self.nb) == self.pos {
                out[n] = ThreadEvent::Barrier;
                n += 1;
                self.nb += 1;
                continue;
            }
            if self.pos < self.cur.accesses() {
                let until = if self.nb < self.cur.barrier_count() {
                    self.cur.barrier_at(self.nb)
                } else {
                    self.cur.accesses()
                };
                let run = (until - self.pos).min(out.len() - n);
                for k in 0..run {
                    out[n + k] = self.cur.access_at(self.pos + k);
                }
                self.pos += run;
                n += run;
                continue;
            }
            if self.cur.finished() {
                self.done = true;
                out[n] = ThreadEvent::Finished;
                n += 1;
                break;
            }
            self.refill();
        }
        n
    }

    /// The zero-copy fast path: hand the producer's next block to the
    /// caller whole, recycling the block it drained — an ownership swap,
    /// no event data copied (`cap` is advisory; the producer's batch size
    /// governs block length).
    fn next_block(&mut self, out: &mut PackedBlock, _cap: usize) {
        if let Some(s) = self.inline.as_mut() {
            // No producer blocks to swap: generate a block's worth inline,
            // at the batch size the producer would have used.
            return s.fill_packed(out, DEFAULT_BATCH);
        }
        if !self.done && self.cur_drained() && !self.cur.finished() {
            if !self.cur.is_empty() {
                // A leftover from mixed enum-API use: put it back into the
                // recycle pool so the rotation keeps its block count.
                let drained = std::mem::take(&mut self.cur);
                if let Some(tx) = &self.tx_empty {
                    let _ = tx.send(drained);
                }
            }
            self.pos = 0;
            self.nb = 0;
            match self.rx_full.as_ref().and_then(|rx| rx.recv().ok()) {
                Some(block) => {
                    let drained = std::mem::replace(out, block);
                    if let Some(tx) = &self.tx_empty {
                        let _ = tx.send(drained);
                    }
                    if out.finished() || out.is_empty() {
                        // Terminal block (`is_empty` without `finished` is
                        // the defensive producer-hung-up shape).
                        self.done = true;
                        out.set_finished(true);
                    }
                    return;
                }
                None => self.done = true,
            }
        }
        if self.done || (self.cur_drained() && self.cur.finished()) {
            self.done = true;
            out.clear();
            out.set_finished(true);
            return;
        }
        // The current block is partially drained (mixed API use): finish it
        // by copying the remainder — correctness path, not the fast path.
        out.clear();
        while let Some(e) = self.cur.event_at(self.pos, self.nb) {
            match e {
                ThreadEvent::Access { gap, addr, write, mlp_tenths } => {
                    out.push_access(gap, addr, write, mlp_tenths);
                    self.pos += 1;
                }
                ThreadEvent::Barrier => {
                    out.push_barrier();
                    self.nb += 1;
                }
                ThreadEvent::Finished => break,
            }
        }
        if self.cur.finished() {
            self.done = true;
            out.set_finished(true);
        }
    }
}

impl Drop for PipelinedStream {
    fn drop(&mut self) {
        // Drop both channel ends *before* joining: a producer parked in
        // `send` (full channel) or `recv` (awaiting a recycled buffer)
        // unblocks with an error and exits. Joining first would deadlock.
        drop(self.tx_empty.take());
        drop(self.rx_full.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Truncates a stream after `limit` events, then yields `Finished` forever.
///
/// The delivered sequence is exactly what recording the inner stream with
/// [`crate::Trace::record`]`(stream, limit)` and replaying would deliver —
/// the adaptor that lets pipelined runs bound work the way record-based
/// runs do.
#[derive(Debug)]
pub struct TakeStream<S> {
    inner: S,
    remaining: usize,
    done: bool,
}

impl<S: AccessStream> TakeStream<S> {
    /// Wraps `inner`, passing through at most `limit` events.
    pub fn new(inner: S, limit: usize) -> Self {
        TakeStream { inner, remaining: limit, done: false }
    }
}

impl<S: AccessStream> AccessStream for TakeStream<S> {
    fn next_event(&mut self) -> ThreadEvent {
        if self.done || self.remaining == 0 {
            self.done = true;
            return ThreadEvent::Finished;
        }
        let e = self.inner.next_event();
        if matches!(e, ThreadEvent::Finished) {
            self.done = true;
            return e;
        }
        self.remaining -= 1;
        e
    }

    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        if out.is_empty() {
            return 0;
        }
        if self.done || self.remaining == 0 {
            self.done = true;
            out[0] = ThreadEvent::Finished;
            return 1;
        }
        let want = self.remaining.min(out.len());
        let n = self.inner.fill_batch(&mut out[..want]);
        if n == 0 || matches!(out[n.saturating_sub(1)], ThreadEvent::Finished) {
            // Inner finished inside the window (its `Finished` doesn't
            // count against the limit).
            self.done = true;
            if n == 0 {
                out[0] = ThreadEvent::Finished;
                return 1;
            }
            return n;
        }
        self.remaining -= n;
        if self.remaining == 0 && n < out.len() {
            // Limit hit with room to spare: synthesise the `Finished`, as
            // a replayed recording would.
            self.done = true;
            out[n] = ThreadEvent::Finished;
            return n + 1;
        }
        n
    }

    /// Columnar truncation: clamps the cap to the remaining budget so the
    /// inner stream is never asked to generate past the limit, and raises
    /// the `finished` flag the moment the budget is spent — the block-level
    /// analogue of the synthesised in-batch `Finished` above.
    fn fill_packed(&mut self, out: &mut PackedBlock, cap: usize) {
        if cap == 0 {
            out.clear();
            return;
        }
        if self.done || self.remaining == 0 {
            self.done = true;
            out.clear();
            out.set_finished(true);
            return;
        }
        self.inner.fill_packed(out, self.remaining.min(cap));
        if out.finished() {
            // Inner finished inside the window (its termination doesn't
            // count against the limit).
            self.done = true;
            return;
        }
        let n = out.len();
        self.remaining -= n;
        if self.remaining == 0 || n == 0 {
            // Budget spent — or a non-conforming inner stream stalled
            // without finishing; either way the truncated stream ends here.
            self.done = true;
            out.set_finished(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ReplayStream;

    fn sample_events(n: usize) -> Vec<ThreadEvent> {
        (0..n)
            .map(|i| {
                if i % 7 == 6 {
                    ThreadEvent::Barrier
                } else {
                    ThreadEvent::Access {
                        gap: (i % 11) as u32,
                        addr: (i as u64 * 37 % 4096) * 64,
                        write: i % 3 == 0,
                        mlp_tenths: 10 + (i % 4) as u16 * 10,
                    }
                }
            })
            .collect()
    }

    fn drain<S: AccessStream>(s: &mut S) -> Vec<ThreadEvent> {
        let mut out = Vec::new();
        loop {
            let e = s.next_event();
            out.push(e);
            if matches!(e, ThreadEvent::Finished) {
                return out;
            }
        }
    }

    #[test]
    fn pipelined_matches_inline_sequence() {
        let events = sample_events(10_000);
        let mut inline = ReplayStream::new(events.clone());
        let mut piped = PipelinedStream::spawn(ReplayStream::new(events));
        assert_eq!(drain(&mut piped), drain(&mut inline));
    }

    #[test]
    fn pipelined_fill_batch_matches_next_event() {
        let events = sample_events(5_000);
        let mut single = PipelinedStream::spawn(ReplayStream::new(events.clone()));
        let mut batched = PipelinedStream::spawn(ReplayStream::new(events));
        let mut buf = [ThreadEvent::Finished; 33];
        'outer: loop {
            let n = batched.fill_batch(&mut buf);
            assert!(n > 0);
            for &e in &buf[..n] {
                assert_eq!(e, single.next_event());
                if matches!(e, ThreadEvent::Finished) {
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn tiny_batch_and_depth_do_not_deadlock() {
        // batch = depth = 1 forces maximal producer/consumer contention —
        // the regression shape for ring-buffer deadlocks.
        let events = sample_events(300);
        let mut inline = ReplayStream::new(events.clone());
        let mut piped = PipelinedStream::spawn_with(ReplayStream::new(events), 1, 1);
        assert_eq!(drain(&mut piped), drain(&mut inline));
    }

    #[test]
    fn dropping_mid_stream_joins_producer() {
        // Endless stream: the producer can only exit via consumer hang-up.
        let endless = || ThreadEvent::access(1, 64);
        let mut piped = PipelinedStream::spawn_with(endless, 8, 2);
        for _ in 0..20 {
            assert_eq!(piped.next_event(), ThreadEvent::access(1, 64));
        }
        drop(piped); // must not hang
    }

    #[test]
    fn exhausted_pipeline_keeps_yielding_finished() {
        let mut piped = PipelinedStream::spawn(ReplayStream::new(sample_events(3)));
        drain(&mut piped);
        assert_eq!(piped.next_event(), ThreadEvent::Finished);
        let mut buf = [ThreadEvent::Barrier; 4];
        assert_eq!(piped.fill_batch(&mut buf), 1);
        assert_eq!(buf[0], ThreadEvent::Finished);
    }

    #[test]
    fn inline_fallback_matches_threaded_sequence() {
        // The small-host degraded mode must deliver the exact sequence the
        // producer-thread mode does, through every API.
        let events = sample_events(3_000);
        let mut threaded = PipelinedStream::spawn_with(ReplayStream::new(events.clone()), 64, 2);
        let mut inline = PipelinedStream::inline(ReplayStream::new(events.clone()));
        assert_eq!(drain(&mut inline), drain(&mut threaded));

        let mut threaded = PipelinedStream::spawn_with(ReplayStream::new(events.clone()), 64, 2);
        let mut inline = PipelinedStream::inline(ReplayStream::new(events));
        let mut a = PackedBlock::default();
        let mut b = PackedBlock::default();
        loop {
            inline.next_block(&mut a, 64);
            for e in a.to_events() {
                let mut buf = [ThreadEvent::Finished; 1];
                assert_eq!(threaded.fill_batch(&mut buf), 1);
                assert_eq!(e, buf[0]);
            }
            if a.finished() {
                break;
            }
        }
        threaded.next_block(&mut b, 64);
        // Inline consumed everything the threaded stream still owes except
        // its terminal marker.
        assert!(b.finished());
    }

    #[test]
    fn inline_fallback_spawns_no_thread() {
        let piped = PipelinedStream::inline(ReplayStream::new(sample_events(10)));
        assert!(piped.handle.is_none());
        assert!(piped.rx_full.is_none());
        drop(piped); // must not hang in Drop's join path
    }

    #[test]
    fn take_matches_record_then_replay() {
        let events = sample_events(50);
        for limit in [0usize, 1, 7, 49, 50, 51, 1000] {
            let mut src = ReplayStream::new(events.clone());
            let recorded = crate::trace::Trace::record(&mut src, limit);
            let mut replay = recorded.into_stream();
            let mut take = TakeStream::new(ReplayStream::new(events.clone()), limit);
            assert_eq!(drain(&mut take), drain(&mut replay), "limit {limit}");
        }
    }

    #[test]
    fn take_fill_batch_matches_next_event() {
        let events = sample_events(100);
        for (limit, batch) in [(30usize, 7usize), (100, 16), (120, 1), (64, 64)] {
            let mut single = TakeStream::new(ReplayStream::new(events.clone()), limit);
            let mut batched = TakeStream::new(ReplayStream::new(events.clone()), limit);
            let mut buf = vec![ThreadEvent::Barrier; batch];
            'outer: loop {
                let n = batched.fill_batch(&mut buf);
                assert!(n > 0);
                for &e in &buf[..n] {
                    assert_eq!(e, single.next_event(), "limit {limit} batch {batch}");
                    if matches!(e, ThreadEvent::Finished) {
                        break 'outer;
                    }
                }
            }
        }
    }

    #[test]
    fn next_block_swaps_producer_blocks_verbatim() {
        // Draining via `next_block` must deliver the same event sequence
        // as inline generation, across many producer block boundaries.
        let events = sample_events(2_000);
        let mut inline = ReplayStream::new(events.clone());
        let mut piped = PipelinedStream::spawn_with(ReplayStream::new(events), 64, 2);
        let mut block = PackedBlock::default();
        loop {
            piped.next_block(&mut block, 64);
            for e in block.to_events() {
                assert_eq!(e, inline.next_event());
            }
            if block.finished() {
                break;
            }
        }
        // Exhausted stream keeps yielding empty finished blocks.
        piped.next_block(&mut block, 64);
        assert!(block.is_empty());
        assert!(block.finished());
    }

    #[test]
    fn next_block_after_partial_enum_drain_loses_nothing() {
        // Mixed API use: pull a few events through `next_event`, then
        // switch to blocks. The remainder of the in-flight block must be
        // delivered before fresh producer blocks.
        let events = sample_events(500);
        let mut inline = ReplayStream::new(events.clone());
        let mut piped = PipelinedStream::spawn_with(ReplayStream::new(events), 64, 2);
        for _ in 0..10 {
            assert_eq!(piped.next_event(), inline.next_event());
        }
        let mut block = PackedBlock::default();
        loop {
            piped.next_block(&mut block, 64);
            for e in block.to_events() {
                assert_eq!(e, inline.next_event());
            }
            if block.finished() {
                break;
            }
        }
        assert_eq!(inline.next_event(), ThreadEvent::Finished);
    }

    #[test]
    fn take_fill_packed_matches_next_event() {
        let events = sample_events(100);
        for (limit, cap) in [(30usize, 7usize), (100, 16), (120, 1), (64, 64), (0, 8)] {
            let mut single = TakeStream::new(ReplayStream::new(events.clone()), limit);
            let mut packed = TakeStream::new(ReplayStream::new(events.clone()), limit);
            let mut block = PackedBlock::default();
            loop {
                packed.fill_packed(&mut block, cap);
                for e in block.to_events() {
                    assert_eq!(e, single.next_event(), "limit {limit} cap {cap}");
                }
                if block.finished() {
                    break;
                }
            }
            assert_eq!(single.next_event(), ThreadEvent::Finished, "limit {limit} cap {cap}");
        }
    }

    #[test]
    fn pipelined_take_composition() {
        // The shape the pipeline_4t bench scenario uses: generator →
        // TakeStream → PipelinedStream must equal record-then-replay.
        let events = sample_events(500);
        let limit = 123;
        let mut src = ReplayStream::new(events.clone());
        let recorded = crate::trace::Trace::record(&mut src, limit);
        let mut replay = recorded.into_stream();
        let mut piped = PipelinedStream::spawn_with(
            TakeStream::new(ReplayStream::new(events), limit),
            16,
            2,
        );
        assert_eq!(drain(&mut piped), drain(&mut replay));
    }
}
