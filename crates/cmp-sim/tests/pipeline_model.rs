//! Exhaustive interleaving model check of the [`PipelinedStream`] channel
//! protocol (`src/pipeline.rs`).
//!
//! No model-checking crate is available in this build environment, so this
//! is the loom idiom hand-rolled for one protocol: the producer/consumer
//! pair is abstracted into a small state machine whose *every* atomic step
//! (channel receive, channel send, consumer hang-up) is a separate
//! transition, and a depth-first search drives the pair through **every
//! reachable interleaving**, asserting the protocol's safety properties in
//! each visited state:
//!
//! * **No deadlock** — in every non-terminal state at least one side can
//!   step. The classic failure shape (producer parked on a full channel,
//!   consumer parked on an empty one) is unreachable because the two
//!   queues can never be full and empty at the same time.
//! * **FIFO delivery** — the consumer receives blocks in exactly the
//!   sequence the producer filled them; no interleaving reorders them.
//! * **Block conservation** — the `depth + 2` blocks that exist after
//!   pre-seeding (the `0..=depth` recycle loop plus the consumer's
//!   initial block) are never duplicated or leaked: every block is in the
//!   empty queue, the full queue, one side's hands, or accounted dropped.
//! * **Termination** — every maximal path ends with both sides done, and
//!   without a hang-up the consumer has received every block, the last
//!   one carrying the `finished` flag.
//!
//! The hang-up variant additionally lets the consumer drop both channel
//! ends at any step (the mid-stream `Drop` the simulator performs when a
//! run ends early) and proves the producer still reaches `Done` in every
//! interleaving — the property behind `dropping_mid_stream_joins_producer`.
//!
//! The states explored here are the abstraction of what the `loom` CI job
//! would explore natively; the nightly TSan job covers the *implementation*
//! of the same protocol over the real `std::sync::mpsc` channels.

use std::collections::BTreeSet;
use std::collections::VecDeque;

/// Producer thread state: parked in `rx_empty.recv()`, holding a filled
/// block at `tx_full.send(..)`, or exited.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Producer {
    Recv,
    Send { seq: u32, finished: bool },
    Done,
}

/// Consumer state: holding a drained block (about to recycle it), parked
/// in `rx_full.recv()`, finished, or hung up (dropped both channel ends).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Consumer {
    Drain,
    Await,
    Done,
    Hungup,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    producer: Producer,
    consumer: Consumer,
    /// Next block sequence number the producer will fill.
    next_seq: u32,
    /// The bounded full channel: (seq, finished) in send order.
    full: VecDeque<(u32, bool)>,
    /// Blocks queued in the unbounded empty (recycle) channel.
    empties: u32,
    /// Blocks the consumer has received, in order (FIFO-checked).
    delivered: u32,
    /// Blocks dropped by failed sends or the consumer hang-up.
    dropped: u32,
}

impl State {
    fn initial(depth: u32) -> State {
        State {
            producer: Producer::Recv,
            consumer: Consumer::Drain,
            next_seq: 0,
            // The real constructor pre-seeds `0..=depth` blocks.
            empties: depth + 1,
            full: VecDeque::new(),
            delivered: 0,
            dropped: 0,
        }
    }

    fn terminal(&self) -> bool {
        self.producer == Producer::Done
            && matches!(self.consumer, Consumer::Done | Consumer::Hungup)
    }

    /// Every block is somewhere: conservation of the `depth + 2` pool.
    fn check_conservation(&self, depth: u32) {
        let in_producer = matches!(self.producer, Producer::Send { .. }) as u32;
        // `Drain` holds the block it is about to recycle; `Done` holds the
        // final `finished` block (the real consumer keeps it in `cur`).
        let in_consumer = matches!(self.consumer, Consumer::Drain | Consumer::Done) as u32;
        assert_eq!(
            self.empties + self.full.len() as u32 + in_producer + in_consumer + self.dropped,
            depth + 2,
            "block pool not conserved: {self:?}"
        );
    }
}

/// All transitions enabled in `s`. Each models one atomic channel
/// operation with `std::sync::mpsc` semantics: `recv` errors only once the
/// channel is empty *and* all senders are gone; `send` errors once the
/// receiver is gone; queued messages survive a sender's exit.
fn successors(s: &State, depth: u32, n_blocks: u32, allow_hangup: bool) -> Vec<State> {
    let mut out = Vec::new();

    match &s.producer {
        // rx_empty.recv(): take a recycled block and fill it, or observe
        // hang-up (empty queue, consumer's sender dropped) and exit.
        Producer::Recv => {
            if s.empties > 0 {
                let mut n = s.clone();
                n.empties -= 1;
                n.producer =
                    Producer::Send { seq: s.next_seq, finished: s.next_seq + 1 == n_blocks };
                n.next_seq += 1;
                out.push(n);
            } else if s.consumer == Consumer::Hungup {
                let mut n = s.clone();
                n.producer = Producer::Done;
                out.push(n);
            }
        }
        // tx_full.send(block): enqueue when below the bound; error (and
        // exit, dropping the block) once the consumer hung up.
        Producer::Send { seq, finished } => {
            if s.consumer == Consumer::Hungup {
                let mut n = s.clone();
                n.producer = Producer::Done;
                n.dropped += 1;
                out.push(n);
            } else if (s.full.len() as u32) < depth {
                let mut n = s.clone();
                n.full.push_back((*seq, *finished));
                n.producer = if *finished { Producer::Done } else { Producer::Recv };
                out.push(n);
            }
        }
        Producer::Done => {}
    }

    match &s.consumer {
        // tx_empty.send(drained): always completes (unbounded channel);
        // the block lands in the queue, or is dropped if the producer
        // already exited (its receiver is gone).
        Consumer::Drain => {
            let mut n = s.clone();
            if s.producer == Producer::Done {
                n.dropped += 1;
            } else {
                n.empties += 1;
            }
            n.consumer = Consumer::Await;
            out.push(n);
        }
        // rx_full.recv(): FIFO-checked delivery, or the defensive
        // producer-gone path.
        Consumer::Await => {
            if let Some(&(seq, finished)) = s.full.front() {
                assert_eq!(seq, s.delivered, "FIFO violated: {s:?}");
                let mut n = s.clone();
                n.full.pop_front();
                n.delivered += 1;
                n.consumer = if finished { Consumer::Done } else { Consumer::Drain };
                out.push(n);
            } else if s.producer == Producer::Done {
                // recv error with no queued block: only reachable if the
                // producer exited without delivering its finished block,
                // which a well-formed run (no hang-up) never does.
                panic!("producer exited without a finished block: {s:?}");
            }
        }
        Consumer::Done | Consumer::Hungup => {}
    }

    // Mid-stream Drop: the consumer drops rx_full (discarding queued
    // blocks and its own) and tx_empty, at any point before finishing.
    if allow_hangup && matches!(s.consumer, Consumer::Drain | Consumer::Await) {
        let mut n = s.clone();
        n.dropped += n.full.len() as u32 + matches!(n.consumer, Consumer::Drain) as u32;
        n.full.clear();
        n.consumer = Consumer::Hungup;
        out.push(n);
    }

    out
}

/// DFS over every reachable interleaving, checking invariants at each
/// state. Returns (states visited, terminal states reached).
fn explore(depth: u32, n_blocks: u32, allow_hangup: bool) -> (usize, usize) {
    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut terminals = 0usize;
    let mut stack = vec![State::initial(depth)];
    while let Some(s) = stack.pop() {
        if !visited.insert(s.clone()) {
            continue;
        }
        s.check_conservation(depth);
        let next = successors(&s, depth, n_blocks, allow_hangup);
        if next.is_empty() {
            assert!(s.terminal(), "deadlock: no transition from non-terminal {s:?}");
            if s.consumer == Consumer::Done {
                assert_eq!(
                    s.delivered, n_blocks,
                    "terminated without delivering every block: {s:?}"
                );
            }
            terminals += 1;
            continue;
        }
        stack.extend(next);
    }
    assert!(terminals > 0, "no terminal state reached");
    (visited.len(), terminals)
}

/// Every interleaving of the clean run delivers all blocks in order and
/// terminates, for the bench-relevant depths (including the
/// `batch = depth = 1` maximal-contention shape) and stream lengths that
/// under-fill, exactly fill, and over-fill the channel.
#[test]
fn all_interleavings_deliver_in_order_and_terminate() {
    for depth in [1u32, 2, 3] {
        for n_blocks in [1u32, 2, 3, 5, 8] {
            let (states, terminals) = explore(depth, n_blocks, false);
            assert!(states > 0 && terminals > 0, "depth={depth} n={n_blocks}");
        }
    }
}

/// With the consumer allowed to hang up at *any* step, every interleaving
/// still drives the producer to `Done` — no schedule leaves it parked on
/// either channel forever (the `Drop` guarantee).
#[test]
fn consumer_hangup_always_releases_producer() {
    for depth in [1u32, 2, 3] {
        for n_blocks in [1u32, 3, 8] {
            let (states, terminals) = explore(depth, n_blocks, true);
            assert!(states > 0 && terminals > 0, "depth={depth} n={n_blocks}");
        }
    }
}

/// The model is not vacuous: the maximal-contention configuration visits
/// the states the deadlock argument actually turns on — producer parked
/// at a full channel, and the recycled-but-not-yet-received handoff where
/// the consumer has returned a block while the producer still waits.
#[test]
fn model_reaches_the_contended_states()  {
    let depth = 1;
    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut stack = vec![State::initial(depth)];
    while let Some(s) = stack.pop() {
        if visited.insert(s.clone()) {
            stack.extend(successors(&s, depth, 5, false));
        }
    }
    let producer_blocked = visited.iter().any(|s| {
        matches!(s.producer, Producer::Send { .. }) && s.full.len() as u32 == depth
    });
    let handoff = visited.iter().any(|s| {
        s.producer == Producer::Recv && s.empties > 0 && s.consumer == Consumer::Await
    });
    assert!(producer_blocked, "never saw the producer parked on a full channel");
    assert!(handoff, "never saw the recycle handoff race");
}
