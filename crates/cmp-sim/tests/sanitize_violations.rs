//! The sanitizer must actually catch corruption: each test hand-injects one
//! class of invariant violation and asserts the check reports it with the
//! right context. Only built with `--features sanitize`.

#![cfg(feature = "sanitize")]

use icp_cmp_sim::sanitize::Violation;
use icp_cmp_sim::stream::ReplayStream;
use icp_cmp_sim::{CacheConfig, PartitionedL2, Simulator, SystemConfig, ThreadEvent};

/// 1 set x 8 ways, 4 threads; every line maps to set 0.
fn one_set() -> PartitionedL2 {
    PartitionedL2::new(CacheConfig::new(8 * 64, 8, 64), 4)
}

fn fill_partitioned(l2: &mut PartitionedL2) {
    l2.set_targets(&[4, 2, 1, 1]);
    for t in 0..4 {
        for i in 0..2u64 {
            l2.access(t, (t as u64 * 2 + i) * 64);
        }
    }
    l2.sanitize_assert(); // healthy state is clean
}

#[test]
fn clean_cache_passes() {
    let mut l2 = one_set();
    fill_partitioned(&mut l2);
    assert_eq!(l2.sanitize_check(), Ok(()));
}

#[test]
fn corrupted_occupancy_counter_is_caught() {
    let mut l2 = one_set();
    fill_partitioned(&mut l2);
    l2.corrupt_owned_for_test(0, 1, 1);
    match l2.sanitize_check() {
        Err(Violation::OccupancyMismatch { set: 0, thread: 1, counter: 3, recount: 2 }) => {}
        other => panic!("expected an occupancy mismatch, got {other:?}"),
    }
}

#[test]
fn quota_violation_is_caught() {
    let mut l2 = one_set();
    fill_partitioned(&mut l2);
    // Hand thread 3 (quota 1) one of thread 0's lines, keeping the
    // occupancy counters consistent: only the quota check can see this.
    // (Ways fill in order, so way 0 belongs to thread 0; thread 3's two
    // cold free-way fills grandfathered a baseline of 1 over its quota.)
    assert_eq!(l2.ways_owned_in_set(0, 3), 2);
    l2.corrupt_owner_for_test(0, 0, 3);
    match l2.sanitize_check() {
        Err(Violation::QuotaExceeded { set: 0, thread: 3, owned: 3, target: 1, baseline: 1 }) => {}
        other => panic!("expected a quota violation, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "quota exceeded")]
fn sanitize_assert_panics_on_quota_violation() {
    let mut l2 = one_set();
    fill_partitioned(&mut l2);
    l2.corrupt_owner_for_test(0, 0, 3);
    l2.sanitize_assert();
}

#[test]
fn lru_ahead_of_clock_is_caught() {
    let mut l2 = one_set();
    fill_partitioned(&mut l2);
    l2.corrupt_lru_for_test(0, 0, u32::MAX - 1);
    match l2.sanitize_check() {
        Err(Violation::LruOutOfRange { set: 0, way: 0, .. }) => {}
        other => panic!("expected an LRU range violation, got {other:?}"),
    }
}

#[test]
fn duplicate_lru_clock_is_caught() {
    let mut l2 = one_set();
    fill_partitioned(&mut l2);
    // Two valid lines sharing a timestamp.
    l2.corrupt_lru_for_test(0, 0, 1);
    l2.corrupt_lru_for_test(0, 1, 1);
    match l2.sanitize_check() {
        Err(Violation::DuplicateLru { set: 0, first_way: 0, second_way: 1, lru: 1 }) => {}
        other => panic!("expected a duplicate-LRU violation, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "occupancy mismatch")]
fn simulator_batch_check_catches_injected_corruption() {
    let cfg = SystemConfig::scaled_down();
    let events: Vec<ThreadEvent> = (0..512).map(|i| ThreadEvent::access(1, i * 64)).collect();
    let streams: Vec<Box<dyn icp_cmp_sim::AccessStream>> = (0..cfg.cores)
        .map(|_| Box::new(ReplayStream::new(events.clone())) as Box<dyn icp_cmp_sim::AccessStream>)
        .collect();
    let mut sim = Simulator::new(cfg, streams);
    sim.l2_mut_for_test().corrupt_owned_for_test(0, 0, 1);
    // The corruption sits in set 0; the batch check at the first ring
    // refill must trip over it.
    while sim.run_interval().is_some() {}
}

#[test]
fn full_simulation_runs_clean_under_sanitize() {
    let cfg = SystemConfig::scaled_down();
    let events: Vec<ThreadEvent> =
        (0..2048).map(|i| ThreadEvent::access(2, (i * 37) % 4096 * 64)).collect();
    let streams: Vec<Box<dyn icp_cmp_sim::AccessStream>> = (0..cfg.cores)
        .map(|_| Box::new(ReplayStream::new(events.clone())) as Box<dyn icp_cmp_sim::AccessStream>)
        .collect();
    let mut sim = Simulator::new(cfg, streams);
    sim.set_partition(&[32, 16, 8, 8]);
    while let Some(r) = sim.run_interval() {
        if r.finished {
            break;
        }
    }
    sim.sanitize_batch_check();
}
