//! Hand-rolled property test for packed trace storage (the environment has
//! no `proptest`; `icp_numeric::rng::Xoshiro256` drives the case
//! generation).
//!
//! Properties, over random event sequences (random gaps/addresses/write
//! flags/MLP, random barrier placement including leading, trailing and
//! consecutive barriers):
//!
//! * **Round-trip**: `PackedTrace::from_events(e).to_events() == e` — the
//!   struct-of-arrays columns (including the write bitmap across word
//!   boundaries and the barrier position encoding) are lossless.
//! * **Replay equivalence**: a `PackedReplayStream` delivers exactly the
//!   `ReplayStream` sequence, event-by-event and under random batch sizes.
//! * **Record equivalence**: `PackedTrace::record` with a random event
//!   limit stores exactly what `Trace::record` stores.
//! * **Columnar drain equivalence**: draining a stream through
//!   `fill_packed` blocks under a random cap schedule reconstructs the
//!   exact event sequence — for both the default bridging implementation
//!   and `PackedReplayStream`'s zero-copy override — with every block
//!   respecting its cap and the finished flag replacing the in-band
//!   `Finished` event.

use icp_cmp_sim::stream::{AccessStream, ReplayStream, ThreadEvent};
use icp_cmp_sim::{PackedBlock, PackedTrace, Trace};
use icp_numeric::rng::Xoshiro256;
use std::sync::Arc;

/// Random event sequence: mostly accesses, ~1-in-8 barriers (so runs of
/// consecutive barriers occur), wide value ranges.
fn random_events(rng: &mut Xoshiro256, len: usize) -> Vec<ThreadEvent> {
    (0..len)
        .map(|_| {
            if rng.next_bool(0.125) {
                ThreadEvent::Barrier
            } else {
                ThreadEvent::Access {
                    gap: rng.next_bounded(1 << 20) as u32,
                    addr: rng.next_u64() >> rng.next_bounded(30),
                    write: rng.next_bool(0.5),
                    mlp_tenths: rng.next_bounded(160) as u16 + 10,
                }
            }
        })
        .collect()
}

#[test]
fn packed_roundtrip_property() {
    let mut rng = Xoshiro256::seed_from_u64(0x9ACC_ED01);
    for case in 0..300u64 {
        let len = rng.next_bounded(400) as usize;
        let events = random_events(&mut rng, len);
        let packed = PackedTrace::from_events(&events);
        assert_eq!(packed.to_events(), events, "case {case} len {len}");
        assert_eq!(
            packed.accesses() + packed.barriers(),
            events.len(),
            "case {case}: event count"
        );
        assert_eq!(
            packed.instructions(),
            Trace::from_events(events).instructions(),
            "case {case}: instruction count"
        );
    }
}

#[test]
fn packed_replay_matches_vec_replay_property() {
    let mut rng = Xoshiro256::seed_from_u64(0xC0DE_CAFE);
    for case in 0..150u64 {
        let len = rng.next_bounded(300) as usize;
        let events = random_events(&mut rng, len);
        let packed = Arc::new(PackedTrace::from_events(&events));

        // Event-by-event.
        let mut a = PackedTrace::stream(&packed);
        let mut b = ReplayStream::new(events.clone());
        for step in 0..len + 3 {
            assert_eq!(a.next_event(), b.next_event(), "case {case} step {step}");
        }

        // Random batch sizes, fresh cursors.
        let mut a = PackedTrace::stream(&packed);
        let mut b = ReplayStream::new(events);
        loop {
            let batch = rng.next_bounded(17) as usize + 1;
            let mut buf_a = vec![ThreadEvent::Barrier; batch];
            let mut buf_b = vec![ThreadEvent::Barrier; batch];
            let na = a.fill_batch(&mut buf_a);
            let nb = b.fill_batch(&mut buf_b);
            assert_eq!(na, nb, "case {case} batch {batch}");
            assert_eq!(buf_a[..na], buf_b[..nb], "case {case} batch {batch}");
            if buf_a[..na].contains(&ThreadEvent::Finished) {
                break;
            }
        }
    }
}

/// Drains `s` through `fill_packed` using the cyclic `caps` schedule,
/// re-expanding each block. The returned sequence ends with the `Finished`
/// that `to_events` synthesises from the block's finished flag.
fn drain_packed<S: AccessStream>(mut s: S, caps: &[usize], tag: &str) -> Vec<ThreadEvent> {
    let mut block = PackedBlock::default();
    let mut out = Vec::new();
    let mut stalls = 0;
    for &cap in caps.iter().cycle() {
        s.fill_packed(&mut block, cap);
        assert!(block.len() <= cap, "{tag}: block overshot cap {cap}");
        out.extend(block.to_events());
        if block.finished() {
            return out;
        }
        // An unfinished empty block means no progress; tolerate none.
        stalls += usize::from(block.is_empty());
        assert_eq!(stalls, 0, "{tag}: unfinished stream stalled");
    }
    unreachable!("caps schedule is non-empty")
}

#[test]
fn fill_packed_drain_matches_events_property() {
    let mut rng = Xoshiro256::seed_from_u64(0xF111_9ACD);
    for case in 0..150u64 {
        let len = rng.next_bounded(300) as usize;
        let events = random_events(&mut rng, len);
        let packed = Arc::new(PackedTrace::from_events(&events));
        // One random cap schedule (1..=23, so blocks straddle every event
        // pattern) shared by both implementations.
        let caps: Vec<usize> =
            (0..8).map(|_| rng.next_bounded(23) as usize + 1).collect();
        let mut expect = events.clone();
        expect.push(ThreadEvent::Finished);
        // PackedReplayStream's zero-copy column-slice override.
        let zero_copy =
            drain_packed(PackedTrace::stream(&packed), &caps, &format!("case {case} zero-copy"));
        assert_eq!(zero_copy, expect, "case {case}: zero-copy drain");
        // The trait's default bridging implementation over `fill_batch`.
        let bridged = drain_packed(
            ReplayStream::new(events),
            &caps,
            &format!("case {case} bridged"),
        );
        assert_eq!(bridged, expect, "case {case}: bridged drain");
    }
}

#[test]
fn packed_record_matches_trace_record_property() {
    let mut rng = Xoshiro256::seed_from_u64(0xBEEF_F00D);
    for case in 0..150u64 {
        let len = rng.next_bounded(300) as usize;
        let events = random_events(&mut rng, len);
        // Random limit spanning under-, exact- and over-length recordings.
        let limit = rng.next_bounded(2 * len as u64 + 2) as usize;
        let mut s1 = ReplayStream::new(events.clone());
        let mut s2 = ReplayStream::new(events);
        let reference = Trace::record(&mut s1, limit);
        let packed = PackedTrace::record(&mut s2, limit);
        assert_eq!(packed.to_events(), reference.events(), "case {case} limit {limit}");
    }
}
