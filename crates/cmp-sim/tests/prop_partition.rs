//! Hand-rolled property test for the partitioned L2 (the environment has no
//! `proptest`; `icp_numeric::rng::Xoshiro256` drives the case generation).
//!
//! Property: under any random access sequence interleaved with random
//! repartitions,
//!
//! * the per-set ownership counters always equal a recount of the lines
//!   (checked by [`PartitionedL2::check_invariants`], and by the sanitizer's
//!   stricter [`sanitize_check`] when the `sanitize` feature is on);
//! * no thread's per-set ownership ever exceeds its quota by more than the
//!   excess it already held when the current partition was applied plus any
//!   free-way cold fills — i.e. while a set is full, quota excess only
//!   shrinks ("quota-excess monotonicity").
//!
//! Runs both with and without `--features sanitize`: the shadow tracking
//! below is independent of the sanitizer's own baseline bookkeeping, so each
//! cross-checks the other.

use icp_cmp_sim::{CacheConfig, PartitionedL2, ReplacementKind};
use icp_numeric::rng::Xoshiro256;

/// Random quota vector: `threads` non-negative integers summing to `ways`.
fn random_targets(rng: &mut Xoshiro256, threads: usize, ways: u32) -> Vec<u32> {
    let mut t = vec![0u32; threads];
    for _ in 0..ways {
        t[rng.next_bounded(threads as u64) as usize] += 1;
    }
    t
}

/// Per-(set, thread) allowed excess, recomputed the way the invariant is
/// stated: at each repartition it grandfathers current holdings; a cold
/// free-way fill may raise it; otherwise observed excess must not grow.
struct ExcessShadow {
    sets: usize,
    threads: usize,
    allowed: Vec<u32>,
}

impl ExcessShadow {
    fn new(sets: usize, threads: usize) -> Self {
        ExcessShadow { sets, threads, allowed: vec![0; sets * threads] }
    }

    fn rebaseline(&mut self, l2: &PartitionedL2, targets: &[u32]) {
        for set in 0..self.sets {
            for (t, &target) in targets.iter().enumerate() {
                self.allowed[set * self.threads + t] =
                    l2.ways_owned_in_set(set, t).saturating_sub(target);
            }
        }
    }

    /// Checks every (set, thread) excess against the allowance; cold fills
    /// (set not yet full) may still legally raise it.
    fn check(&mut self, l2: &PartitionedL2, targets: &[u32], ways: u32, case: u64, step: usize) {
        for set in 0..self.sets {
            let filled: u32 = (0..self.threads).map(|t| l2.ways_owned_in_set(set, t)).sum();
            for (t, &target) in targets.iter().enumerate() {
                let excess = l2.ways_owned_in_set(set, t).saturating_sub(target);
                let slot = &mut self.allowed[set * self.threads + t];
                if excess > *slot {
                    // Legal only while the set still had free ways (cold
                    // fills) or as a first-line steal by a zero-quota
                    // thread; both imply the thread now owns >= 1 way and
                    // the new excess becomes the allowance.
                    assert!(
                        filled <= ways || l2.ways_owned_in_set(set, t) == 1,
                        "case {case} step {step}: set {set} thread {t} excess grew \
                         {prev} -> {excess} with the set full",
                        prev = *slot,
                    );
                    *slot = excess;
                } else {
                    *slot = excess;
                }
            }
        }
    }
}

fn run_case(case: u64, replacement: ReplacementKind) {
    let mut rng = Xoshiro256::seed_from_u64(0x1C9_0000 + case);
    let threads = 2 + rng.next_bounded(3) as usize; // 2..=4
    let sets = 1 << rng.next_bounded(3); // 1, 2 or 4
    let ways: u32 = 8;
    let line = 64u64;
    let cfg = CacheConfig::new(sets as u64 * ways as u64 * line, ways, line);
    let mut l2 = PartitionedL2::new(cfg, threads);
    l2.set_replacement(replacement);

    let mut targets = random_targets(&mut rng, threads, ways);
    l2.set_targets(&targets);
    let mut shadow = ExcessShadow::new(sets, threads);
    shadow.rebaseline(&l2, &targets);

    // A working set a few times the cache so misses keep happening.
    let lines = (sets as u64) * (ways as u64) * 4;
    for step in 0..600 {
        if rng.next_bool(0.02) {
            // Random repartition mid-stream: contents are not flushed, the
            // new quotas phase in via replacement.
            targets = random_targets(&mut rng, threads, ways);
            l2.set_targets(&targets);
            shadow.rebaseline(&l2, &targets);
        }
        let t = rng.next_bounded(threads as u64) as usize;
        let addr = rng.next_bounded(lines) * line;
        l2.access_rw(t, addr, rng.next_bool(0.3));
        // Occupancy counters == recount, every step.
        l2.check_invariants();
        shadow.check(&l2, &targets, ways, case, step);
        // Quotas are never breached beyond the allowance even transiently.
        for set in 0..sets {
            let filled: u32 = (0..threads).map(|th| l2.ways_owned_in_set(set, th)).sum();
            assert!(filled <= ways, "case {case}: set {set} overfull ({filled}/{ways})");
        }
        #[cfg(feature = "sanitize")]
        l2.sanitize_assert();
    }
}

#[test]
fn random_accesses_and_repartitions_keep_invariants_true_lru() {
    for case in 0..40 {
        run_case(case, ReplacementKind::TrueLru);
    }
}

#[test]
fn random_accesses_and_repartitions_keep_invariants_tree_plru() {
    for case in 0..40 {
        run_case(case, ReplacementKind::TreePlru);
    }
}
