//! Tracked hot-path throughput runs → `BENCH_hotpath.json` at the repo root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin bench_hotpath                 # record current numbers
//! cargo run --release --bin bench_hotpath -- --set-baseline
//! cargo run --release --bin bench_hotpath -- --events 250000 --repeats 5 --out other.json
//! cargo run --release --bin bench_hotpath -- --only sharded --events 2000 --out smoke.json
//! ```
//!
//! A normal run re-measures the sixteen scenarios and rewrites the
//! `current` section while carrying the `baseline` section over from the
//! existing file, so the pre-optimisation numbers stay recorded alongside
//! every later measurement. `--set-baseline` (re)captures the baseline
//! section instead — run it once before a performance change, then compare
//! with a plain run afterwards.
//!
//! Schema `icp-bench-hotpath/v7` adds the core-budget scheduler scenarios
//! (`suite_figures`, `suite_figures_warm`): one whole figure pass (9
//! benchmarks × 4 schemes at experiment test scale, `--events` ignored)
//! through the LPT token-arbitrated scheduler, cold vs pre-populated
//! caches, plus per-scenario `utilization` and `peak_threads` stats (0
//! where no outer pool runs). `--jobs N` caps the process core budget for
//! the run (equivalent to `ICP_CORES=N`); results are bit-identical at
//! every budget. v6 added the sliced-LLC machine scenarios
//! (`sliced_16t`, `sliced_16t_serial`, `sliced_64t`): 16 threads on a
//! 4-slice and 64 threads on an 8-slice address-hashed LLC, slice-parallel
//! vs the in-order serial reference (digest bit-identical; the throughput
//! ratio is the tracked slice-scaling speedup). v5 added the end-to-end
//! sweep scenarios
//! (`sweep_axis`, `sweep_axis_warm`): one interval-axis sensitivity sweep
//! against a cold vs pre-populated result cache, with counters and digest
//! taken from the cache totals (the cold→warm `host_secs` drop is the
//! result cache's tracked speedup; these two scenarios run the experiment
//! test scale and ignore `--events`). v4 added the set-sharded parallel
//! scenarios (`sharded_4t`, `sharded_packed_4t`) and the per-scenario
//! simulator shard count (`shards`: 1 for the serial simulator, 0 for
//! generation-only scenarios) on top of v3's `gen_packed` and
//! `pipeline_packed`; a carried-over earlier-schema `baseline` section
//! simply lacks the keys its version predates. `--only SUBSTR` restricts a
//! run to the scenarios whose names contain `SUBSTR` (used by the CI smoke
//! matrix to exercise the sharded path in isolation).

use std::path::{Path, PathBuf};

use icp_experiments::hotpath::{self, HotpathResult, DEFAULT_EVENTS_PER_THREAD};
use icp_experiments::json::Json;

fn results_json(results: &[HotpathResult]) -> Json {
    Json::Obj(results.iter().map(|r| (r.name.to_string(), r.to_json())).collect())
}

/// Repo root: the outermost ancestor of the build-time manifest dir that
/// still has a `Cargo.toml` (works whether this bin is built from the
/// `icp-experiments` crate or re-exported from the workspace root).
fn default_out_path() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .filter(|p| p.join("Cargo.toml").exists())
        .last()
        .unwrap_or_else(|| Path::new("."))
        .join("BENCH_hotpath.json")
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: bench_hotpath [--set-baseline] [--events N] [--repeats N] [--out PATH] \
         [--only SUBSTR] [--jobs N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut set_baseline = false;
    let mut events = DEFAULT_EVENTS_PER_THREAD;
    let mut repeats = 3usize;
    let mut out_path = default_out_path();
    let mut only: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--set-baseline" => set_baseline = true,
            "--events" => {
                events = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage_error("--events takes a positive integer"));
            }
            "--repeats" => {
                repeats = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage_error("--repeats takes a positive integer"));
            }
            "--out" => {
                out_path = argv
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage_error("--out takes a path"));
            }
            "--only" => {
                only = Some(
                    argv.next().unwrap_or_else(|| usage_error("--only takes a substring")),
                );
            }
            "--jobs" => {
                let n: usize = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage_error("--jobs takes a positive integer"));
                icp_experiments::sched::budget::configure_total(n);
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
    }

    eprintln!("running hot-path scenarios ({events} events/thread, best of {repeats})...");
    let results = hotpath::run_best_of_matching(events, repeats, only.as_deref());
    if results.is_empty() {
        usage_error("--only matched no scenario");
    }
    for r in &results {
        eprintln!(
            "  {:<18} {:>12.0} accesses/s  {:>12.0} events/s  ({:.3}s host, digest {:016x})",
            r.name,
            r.accesses_per_sec(),
            r.events_per_sec(),
            r.host_secs,
            r.digest,
        );
    }

    let previous = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| Json::parse(&text));
    let carried = |key: &str| previous.as_ref().and_then(|j| j.get(key)).cloned();

    let measured = results_json(&results);
    let (baseline, current) = if set_baseline {
        // A fresh baseline invalidates any previously recorded current run.
        (Some(measured), None)
    } else {
        (carried("baseline"), Some(measured))
    };

    let mut pairs = vec![
        ("schema".to_string(), Json::str("icp-bench-hotpath/v7")),
        ("events_per_thread".to_string(), Json::u64(events as u64)),
    ];
    if let Some(b) = baseline {
        pairs.push(("baseline".to_string(), b));
    }
    if let Some(c) = current {
        pairs.push(("current".to_string(), c));
    }
    let doc = Json::Obj(pairs);

    std::fs::write(&out_path, format!("{doc}\n")).expect("write BENCH_hotpath.json");
    eprintln!("wrote {}", out_path.display());
}
