//! Reproduction driver: regenerates the paper's figures and tables.
//!
//! ```text
//! repro all                    # every figure, printed and saved to results/
//! repro fig3 fig19 ...         # selected figures
//! repro scorecard              # paper-band checks (PASS/OUT-OF-BAND)
//! repro eight-plus             # 8+ core sliced-LLC tier (lookahead vs
//!                              # hill-climb speedup, scaling gains)
//! repro calibrate              # raw calibration diagnostics
//! repro dump <bench> <scheme> [cores]   # per-interval execution dump
//! repro sweeps [--fast|--exact] [--axis NAME] [--cache DIR] [--assert-warm]
//!                              # sensitivity sweeps; --cache persists
//!                              # simulation results (e.g. results/cache/),
//!                              # --assert-warm fails unless everything hit
//! repro prediction [--max-mean-error PCT]  # fast-path error figure + gate
//! repro suite [--assert-warm]  # one cold + one warm figure pass through the
//!                              # core-budget scheduler, with utilization and
//!                              # peak-thread stats; --assert-warm fails unless
//!                              # the warm pass simulated nothing
//! repro sched-bench [--min-speedup X] [--repeats N]
//!                              # scheduled vs flat-pool suite pass at an 8x8
//!                              # topology: asserts bit-identical digests and
//!                              # (optionally) a cold wall-clock speedup floor
//!
//! options (apply to any command):
//!   --seed N        master seed (default: fixed)
//!   --cores N       simulated cores/threads (default 4)
//!   --scale test|figure   workload length (default figure)
//!   --jobs N        core budget for this process (like ICP_CORES=N): every
//!                   thread — suite workers, slice/shard workers, pipeline
//!                   producers — is leased from this pool; results are
//!                   bit-identical at every value
//! ```

use std::fs;
use std::path::Path;

use icp_experiments::figures::{self, SuiteData};
use icp_experiments::runner::ExperimentConfig;
use icp_experiments::scorecard;
use icp_experiments::table::Table;
use icp_experiments::Scheme;
use icp_workloads::WorkloadScale;

fn emit(out_dir: Option<&Path>, id: &str, table: &Table) {
    println!("{}", table.render());
    if let Some(dir) = out_dir {
        let _ = fs::write(dir.join(format!("{id}.txt")), table.render());
        let _ = fs::write(dir.join(format!("{id}.csv")), table.to_csv());
        let _ = fs::write(
            dir.join(format!("{id}.json")),
            icp_experiments::json::table_to_json(table).to_string(),
        );
    }
}

/// Pulls `--flag value` out of the argument list, returning the remainder.
fn take_option(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(jobs) = take_option(&mut args, "--jobs") {
        let n: usize = jobs.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--jobs expects a positive integer");
            std::process::exit(2);
        });
        // Must win the race with first use: nothing parallel has run yet.
        icp_experiments::sched::budget::configure_total(n);
    }

    let mut cfg = ExperimentConfig::quick();
    if let Some(seed) = take_option(&mut args, "--seed") {
        cfg.seed = seed.parse().unwrap_or_else(|_| {
            eprintln!("--seed expects an integer");
            std::process::exit(2);
        });
    }
    if let Some(scale) = take_option(&mut args, "--scale") {
        cfg.scale = match scale.as_str() {
            "test" => WorkloadScale::Test,
            "figure" => WorkloadScale::Figure,
            "paper" => WorkloadScale::Paper,
            other => {
                eprintln!("unknown scale {other} (expected test|figure|paper)");
                std::process::exit(2);
            }
        };
    }
    if let Some(cores) = take_option(&mut args, "--cores") {
        let n: usize = cores.parse().unwrap_or_else(|_| {
            eprintln!("--cores expects an integer");
            std::process::exit(2);
        });
        cfg = cfg.with_cores(n);
    }
    // Interval length tracks the chosen scale and core count so every run
    // covers ~50 execution intervals, like the paper's measurement window.
    let per_thread = 12_000.0 * 10.0 * cfg.scale.factor();
    cfg.system.interval_instructions =
        ((per_thread * cfg.system.cores as f64) / 50.0).max(1_000.0) as u64;

    if args.is_empty() {
        eprintln!(
            "usage: repro [all|scorecard|eight-plus|calibrate|suite|sched-bench|fig2|fig3|...|fig22|dump <bench> <scheme> [cores]]\n\
             options: --seed N  --cores N  --scale test|figure|paper  --jobs N"
        );
        return;
    }

    if let Some(pos) = args.iter().position(|a| a == "dump") {
        let bench = args.get(pos + 1).map(String::as_str).unwrap_or("swim");
        let cfg = match args.get(pos + 3).and_then(|c| c.parse::<usize>().ok()) {
            Some(n) => cfg.with_cores(n),
            None => cfg,
        };
        let scheme = match args.get(pos + 2).map(String::as_str).unwrap_or("model-based") {
            "shared" => Scheme::Shared,
            "static-equal" => Scheme::StaticEqual,
            "cpi-proportional" => Scheme::CpiProportional,
            "ucp-throughput" => Scheme::UcpThroughput,
            "model-throughput" => Scheme::ModelThroughput,
            "fairness" => Scheme::Fairness,
            _ => Scheme::ModelBased,
        };
        println!("{}", figures::interval_dump(&cfg, bench, &scheme).render());
        return;
    }

    if args.iter().any(|a| a == "robustness") {
        eprintln!("[repro] running the suite under 5 seeds ...");
        let _ = fs::create_dir_all("results");
        emit(
            Some(Path::new("results")),
            "robustness",
            &figures::robustness_table(&cfg, &[1, 42, 1337, 9999, 31_415_926]),
        );
        return;
    }

    if args.iter().any(|a| a == "report") {
        eprintln!("[repro] building the full report ...");
        let data = SuiteData::collect(&cfg);
        let mut doc = String::new();
        doc.push_str("# Reproduction report

");
        doc.push_str("Generated by `repro report` (deterministic seed ");
        doc.push_str(&cfg.seed.to_string());
        doc.push_str(", figure scale).

");
        let checks = scorecard::scorecard_from(&data);
        doc.push_str(&scorecard::scorecard_table(&checks).render());
        doc.push('\n');
        doc.push_str(&figures::calibration_report_from(&data).render());
        doc.push('\n');
        doc.push_str(&figures::fig19_vs_private(&data).render());
        doc.push('\n');
        doc.push_str(&figures::fig20_vs_shared(&data).render());
        doc.push('\n');
        doc.push_str(&figures::fig21_vs_throughput(&data).render());
        doc.push('\n');
        doc.push_str(&figures::slack_table(&data).render());
        doc.push('\n');
        doc.push_str(
            &figures::improvement_chart("Figure 20 (chart): dynamic vs shared", &data, &data.shared)
                .render(),
        );
        let _ = fs::create_dir_all("results");
        let _ = fs::write("results/REPORT.md", &doc);
        println!("{doc}");
        eprintln!("[repro] written to results/REPORT.md");
        return;
    }

    if args.iter().any(|a| a == "describe") {
        print!("{}", icp_workloads::suite::describe());
        return;
    }

    if args.iter().any(|a| a == "calibrate") {
        println!("{}", figures::calibration_report(&cfg).render());
        return;
    }

    if args.iter().any(|a| a == "sweeps") {
        use icp_experiments::sweeps::{self, SweepMode};
        let mode = if args.iter().any(|a| a == "--fast") {
            SweepMode::fast()
        } else {
            // --exact is the default; accept the flag for symmetry.
            SweepMode::Exact
        };
        let axis = take_option(&mut args, "--axis");
        let assert_warm = args.iter().any(|a| a == "--assert-warm");
        // A persistent result cache shares simulations across axes within
        // this run and across reruns (the CI cold/warm smoke relies on it).
        let cache = match take_option(&mut args, "--cache") {
            Some(dir) => icp_experiments::ResultCache::persistent(dir),
            None => icp_experiments::ResultCache::shared(),
        };
        let cfg = cfg.with_result_cache(cache.clone()).with_default_trace_cache();
        let _ = fs::create_dir_all("results");
        let out = Some(Path::new("results"));
        eprintln!("[repro] running sensitivity sweeps ({mode:?}) ...");
        let run_axis = |name: &str| match name {
            "cache-size" => emit(out, "sweep_cache_size", &sweeps::sweep_cache_size_with(&cfg, mode)),
            "thread-count" => emit(out, "sweep_thread_count", &sweeps::sweep_thread_count_with(&cfg, mode)),
            "interval" => emit(out, "sweep_interval", &sweeps::sweep_interval_with(&cfg, mode)),
            "memory-latency" => {
                emit(out, "sweep_memory_latency", &sweeps::sweep_memory_latency_with(&cfg, mode))
            }
            other => {
                eprintln!("unknown axis {other} (expected cache-size|thread-count|interval|memory-latency)");
                std::process::exit(2);
            }
        };
        match axis.as_deref() {
            Some(name) => run_axis(name),
            None => {
                for name in ["cache-size", "thread-count", "interval", "memory-latency"] {
                    run_axis(name);
                }
            }
        }
        eprintln!(
            "[repro] result cache: {} simulations, {} hits ({} from disk)",
            cache.simulations(),
            cache.hits(),
            cache.disk_hits()
        );
        if assert_warm && (cache.simulations() > 0 || cache.hits() == 0) {
            eprintln!(
                "[repro] --assert-warm failed: expected every run to come from the cache"
            );
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "prediction") {
        let max_mean = take_option(&mut args, "--max-mean-error")
            .map(|v| {
                v.parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("--max-mean-error expects a percentage");
                    std::process::exit(2);
                })
            });
        eprintln!("[repro] measuring fast-path prediction error ...");
        let cfg = cfg.with_default_trace_cache().with_default_result_cache();
        let errors = figures::prediction_errors(&cfg);
        let table = figures::prediction_error_table(&cfg);
        println!("{}", table.render());
        let _ = fs::create_dir_all("results");
        emit(Some(Path::new("results")), "prediction_error", &table);
        if let Some(limit) = max_mean {
            if errors.mean_pct() > limit {
                eprintln!(
                    "[repro] prediction gate failed: mean error {:.1}% > {limit}%",
                    errors.mean_pct()
                );
                std::process::exit(1);
            }
            eprintln!(
                "[repro] prediction gate passed: mean error {:.1}% <= {limit}%",
                errors.mean_pct()
            );
        }
        return;
    }

    if args.iter().any(|a| a == "suite") {
        let assert_warm = args.iter().any(|a| a == "--assert-warm");
        let cache = icp_experiments::ResultCache::shared();
        let cfg = cfg.with_result_cache(cache.clone()).with_default_trace_cache();
        let budget = icp_experiments::sched::budget::current();
        eprintln!(
            "[repro] cold figure pass through the core-budget scheduler (budget {}) ...",
            budget.total()
        );
        let (cold_data, cold) = SuiteData::collect_with_stats(&cfg);
        eprintln!(
            "[repro] cold: {:.3}s, {} jobs on {} workers, peak {} threads, {:.0}% utilization",
            cold.elapsed_secs,
            cold.jobs,
            cold.workers,
            cold.peak_threads,
            cold.utilization * 100.0
        );
        let cold_sims = cache.simulations();
        eprintln!("[repro] warm figure pass (same caches) ...");
        let (warm_data, warm) = SuiteData::collect_with_stats(&cfg);
        eprintln!(
            "[repro] warm: {:.3}s, {} simulations (cold pass ran {})",
            warm.elapsed_secs,
            cache.simulations() - cold_sims,
            cold_sims
        );
        if warm_data.digest() != cold_data.digest() {
            eprintln!("[repro] suite failed: warm digest differs from cold");
            std::process::exit(1);
        }
        eprintln!("[repro] digest {:016x} (cold == warm)", cold_data.digest());
        if assert_warm && (cache.simulations() != cold_sims || cache.hits() == 0) {
            eprintln!("[repro] --assert-warm failed: expected every warm run to come from the cache");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "sched-bench") {
        let min_speedup = take_option(&mut args, "--min-speedup").map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("--min-speedup expects a number");
                std::process::exit(2);
            })
        });
        let repeats: usize = take_option(&mut args, "--repeats")
            .map(|v| {
                v.parse().ok().filter(|&n: &usize| n > 0).unwrap_or_else(|| {
                    eprintln!("--repeats expects a positive integer");
                    std::process::exit(2);
                })
            })
            .unwrap_or(2);
        // The inner-parallelism stress topology: 8 cores × 8 LLC slices, so
        // every cell of the 9 × 4 suite matrix wants slice workers and
        // pipeline producers of its own. The flat baseline gives each cell a
        // private full-size budget (the pre-arbiter oversubscription); the
        // scheduled pass arbitrates everything against one pool.
        let mut bcfg = cfg.with_topology(8, 8);
        let per_thread = 12_000.0 * 10.0 * bcfg.scale.factor();
        bcfg.system.interval_instructions =
            ((per_thread * bcfg.system.cores as f64) / 50.0).max(1_000.0) as u64;
        let budget = icp_experiments::sched::budget::current();
        eprintln!(
            "[repro] sched-bench: flat pool vs core-budget scheduler, budget {}, best of {repeats} ...",
            budget.total()
        );
        let mut flat_best = f64::INFINITY;
        let mut sched_best = f64::INFINITY;
        let mut digests: Vec<u64> = Vec::new();
        for round in 0..repeats {
            // Cold passes: every round gets fresh trace/result caches.
            let t0 = std::time::Instant::now();
            let flat_data = SuiteData::collect_flat(&bcfg);
            let flat_secs = t0.elapsed().as_secs_f64();
            flat_best = flat_best.min(flat_secs);
            let (sched_data, stats) = SuiteData::collect_with_stats(&bcfg);
            sched_best = sched_best.min(stats.elapsed_secs);
            eprintln!(
                "[repro]   round {}: flat {:.3}s, scheduled {:.3}s (peak {} threads, {:.0}% utilization)",
                round + 1,
                flat_secs,
                stats.elapsed_secs,
                stats.peak_threads,
                stats.utilization * 100.0
            );
            digests.push(flat_data.digest());
            digests.push(sched_data.digest());
        }
        if digests.windows(2).any(|w| w[0] != w[1]) {
            eprintln!("[repro] sched-bench failed: digests differ across passes {digests:016x?}");
            std::process::exit(1);
        }
        let speedup = flat_best / sched_best;
        eprintln!(
            "[repro] digest {:016x} across all passes; cold speedup {speedup:.2}x (flat {flat_best:.3}s / scheduled {sched_best:.3}s)",
            digests[0]
        );
        if let Some(floor) = min_speedup {
            if speedup < floor {
                eprintln!("[repro] sched-bench gate failed: speedup {speedup:.2}x < {floor}x");
                std::process::exit(1);
            }
            eprintln!("[repro] sched-bench gate passed: speedup {speedup:.2}x >= {floor}x");
        }
        return;
    }

    if args.iter().any(|a| a == "occupancy") {
        let bench = args.iter().skip_while(|a| *a != "occupancy").nth(1)
            .cloned().unwrap_or_else(|| "mgrid".into());
        println!("{}", figures::occupancy_table(&cfg, &bench).render());
        println!("{}", figures::occupancy_chart(&cfg, &bench, &Scheme::Shared).render());
        println!("{}", figures::occupancy_chart(&cfg, &bench, &Scheme::ModelBased).render());
        return;
    }

    if args.iter().any(|a| a == "mechanism") {
        let _ = fs::create_dir_all("results");
        eprintln!("[repro] comparing way vs set partitioning ...");
        emit(Some(Path::new("results")), "mechanism", &figures::mechanism_table(&cfg));
        emit(
            Some(Path::new("results")),
            "mechanism_banked",
            &figures::mechanism_banked_table(&cfg, 8),
        );
        return;
    }

    if args.iter().any(|a| a == "overhead") {
        let _ = fs::create_dir_all("results");
        emit(Some(Path::new("results")), "overhead", &figures::overhead_table(&cfg));
        return;
    }

    if args.iter().any(|a| a == "slack") {
        eprintln!("[repro] running suite under 4 schemes ...");
        let data = SuiteData::collect(&cfg);
        let _ = fs::create_dir_all("results");
        let out = Some(Path::new("results"));
        emit(out, "slack_table", &figures::slack_table(&data));
        emit(out, "slack_critical_cpi_swim", &figures::critical_cpi_distribution(&data, "swim"));
        return;
    }

    if args.iter().any(|a| a == "scorecard") {
        let checks = scorecard::run_scorecard(&cfg);
        let table = scorecard::scorecard_table(&checks);
        println!("{}", table.render());
        let _ = fs::create_dir_all("results");
        let _ = fs::write("results/scorecard.txt", table.render());
        let failed = checks.iter().filter(|c| !c.pass()).count();
        if failed > 0 {
            eprintln!("{failed} claim(s) out of band");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "eight-plus") {
        eprintln!("[repro] running the 8+ core sliced-LLC tier (16t x 4 slices, 8t x 2 slices) ...");
        let checks = scorecard::eight_plus_core_tier(&cfg);
        let table = scorecard::scorecard_table(&checks);
        println!("{}", table.render());
        let _ = fs::create_dir_all("results");
        let _ = fs::write("results/eight_plus_core.txt", table.render());
        let failed = checks.iter().filter(|c| !c.pass()).count();
        if failed > 0 {
            eprintln!("{failed} claim(s) out of band");
            std::process::exit(1);
        }
        return;
    }

    let all = args.iter().any(|a| a == "all");
    let wants = |f: &str| all || args.iter().any(|a| a == f);

    let out_dir = Path::new("results");
    let _ = fs::create_dir_all(out_dir);
    let out_dir = Some(out_dir);

    if wants("fig2") {
        emit(out_dir, "fig02_config", &figures::fig02_config(&cfg.system));
    }

    // Motivation + time-series figures share the suite runs.
    let needs_suite = ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig19", "fig20", "fig21"]
        .iter()
        .any(|f| wants(f));
    if needs_suite {
        eprintln!("[repro] running suite under 4 schemes ...");
        let data = SuiteData::collect(&cfg);
        if wants("fig3") {
            emit(out_dir, "fig03_thread_performance", &figures::fig03_thread_performance(&data));
        }
        if wants("fig4") {
            emit(out_dir, "fig04_thread_misses", &figures::fig04_thread_misses(&data));
        }
        if wants("fig5") {
            emit(out_dir, "fig05_cpi_miss_correlation", &figures::fig05_cpi_miss_correlation(&data));
        }
        if wants("fig6") {
            emit(out_dir, "fig06_swim_cpi_timeline", &figures::fig06_swim_cpi_timeline(&data));
        }
        if wants("fig7") {
            emit(out_dir, "fig07_swim_miss_timeline", &figures::fig07_swim_miss_timeline(&data));
        }
        if wants("fig8") {
            emit(out_dir, "fig08_interthread_interaction", &figures::fig08_interthread_interaction(&data));
        }
        if wants("fig9") {
            emit(out_dir, "fig09_interaction_breakdown", &figures::fig09_interaction_breakdown(&data));
        }
        if wants("fig19") {
            emit(out_dir, "fig19_vs_private", &figures::fig19_vs_private(&data));
            println!("{}", figures::improvement_chart(
                "Figure 19 (chart): dynamic vs private", &data, &data.equal).render());
        }
        if wants("fig20") {
            emit(out_dir, "fig20_vs_shared", &figures::fig20_vs_shared(&data));
            println!("{}", figures::improvement_chart(
                "Figure 20 (chart): dynamic vs shared", &data, &data.shared).render());
        }
        if wants("fig21") {
            emit(out_dir, "fig21_vs_throughput", &figures::fig21_vs_throughput(&data));
            println!("{}", figures::improvement_chart(
                "Figure 21 (chart): dynamic vs throughput-oriented", &data, &data.ucp).render());
        }
        if wants("fig6") {
            println!("{}", figures::fig06_chart(&data).render());
        }
    }

    if wants("fig10") {
        emit(out_dir, "fig10_way_sensitivity", &figures::fig10_way_sensitivity(&cfg));
    }
    if wants("fig11") {
        emit(out_dir, "fig11_progress", &figures::fig11_progress_illustration(&cfg));
    }
    if wants("fig15") {
        emit(out_dir, "fig15_cpi_models", &figures::fig15_cpi_models(&cfg));
        println!("{}", figures::fig15_chart(&cfg).render());
    }
    if wants("fig18") {
        emit(out_dir, "fig18_cg_snapshot", &figures::fig18_cg_snapshot(&cfg));
    }
    if wants("fig22") {
        eprintln!("[repro] running 8-core sensitivity ...");
        emit(out_dir, "fig22_eight_core", &figures::fig22_eight_core(&cfg));
    }
}
