//! Core-budget scheduler: cost-aware suite execution over arbitrated
//! nested parallelism.
//!
//! Every parallelism layer in the workspace — this outer (benchmark ×
//! scheme) pool, the slice/shard workers inside each simulation, the
//! pipeline producers inside each workload thread — leases its OS threads
//! from one process-wide token pool ([`icp_cmp_sim::budget`], total =
//! `--jobs` / `ICP_CORES` / host cores). The outer pool here leases one
//! token per worker and returns each token the moment that worker runs
//! out of jobs, so the tail of a suite automatically widens the inner
//! engines' parallelism as outer jobs drain. With a dry pool everything
//! degrades to the caller's thread — bit-identical, just serial.
//!
//! On top of the arbiter, suite execution is *cost-aware*: callers pass a
//! per-job cost estimate ([`job_cost`] for simulation cells) and jobs are
//! claimed longest-processing-time-first from a shared queue. Greedy
//! claim from an LPT-sorted queue is list scheduling: an idle worker
//! always takes the longest job still unclaimed (the work-stealing
//! discipline, with the queue as the single victim), which bounds the
//! makespan at 4/3 · OPT instead of the naive submission-order schedule
//! whose last-claimed job can be the longest one. Scheduling only moves
//! *when and where* jobs run; outputs are stitched back into input order,
//! so results are bit-identical at every budget value (pinned by
//! `tests/determinism.rs`).

use std::sync::Arc;
use std::time::Instant;

use icp_workloads::BenchmarkSpec;

pub use icp_cmp_sim::budget;
use icp_cmp_sim::budget::Lease;

use crate::runner::ExperimentConfig;

/// What a scheduled pass actually used: observability for the bench
/// harness and the thread-ceiling regression tests.
#[derive(Clone, Copy, Debug)]
pub struct SchedStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Outer pool width (caller thread + leased workers).
    pub workers: usize,
    /// Peak live threads implied by the budget watermark over the pass
    /// (outer workers and inner engine workers both hold tokens).
    pub peak_threads: usize,
    /// Fraction of the outer workers' wall-clock spent inside jobs.
    pub utilization: f64,
    /// Wall-clock of the whole pass, seconds.
    pub elapsed_secs: f64,
}

/// Runs `f` over every element of `inputs` on budget-leased workers,
/// returning outputs in input order. Jobs are claimed in submission order
/// (uniform cost) — use [`weighted_map`] when per-job costs differ.
///
/// `f` must be deterministic per input for reproducibility (the
/// experiment runner's jobs are).
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    weighted_map(inputs, |_| 1, f)
}

/// [`parallel_map`] with longest-processing-time-first claim order:
/// `cost` estimates each job's relative duration (any monotone unit) and
/// workers claim expensive jobs first. Output order is input order
/// regardless.
pub fn weighted_map<I, O, F>(inputs: Vec<I>, cost: impl Fn(&I) -> u64, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    weighted_map_stats(inputs, cost, f).0
}

/// [`weighted_map`] returning [`SchedStats`] alongside the outputs.
pub fn weighted_map_stats<I, O, F>(
    inputs: Vec<I>,
    cost: impl Fn(&I) -> u64,
    f: F,
) -> (Vec<O>, SchedStats)
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let bud = budget::current();
    bud.reset_watermark();
    let start = Instant::now();
    let n = inputs.len();
    if n == 0 {
        return (
            Vec::new(),
            SchedStats {
                jobs: 0,
                workers: 0,
                peak_threads: 0,
                utilization: 0.0,
                elapsed_secs: 0.0,
            },
        );
    }
    // LPT order: stable descending sort by estimated cost, index as the
    // tiebreak so equal-cost jobs keep submission order.
    let costs: Vec<u64> = inputs.iter().map(&cost).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    // One token per extra worker, leased individually so each returns the
    // moment its worker exits the claim loop (tail widening).
    let mut extras: Vec<Option<Lease>> = Vec::new();
    while extras.len() + 1 < n.min(bud.total()) {
        let l = bud.lease(1);
        if l.tokens() == 0 {
            break;
        }
        extras.push(Some(l));
    }
    let workers = 1 + extras.len();
    let (buffers, busy) = pool_run(&inputs, &order, extras, &f);
    let elapsed = start.elapsed().as_secs_f64();
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, out) in buffers {
        slots[i] = Some(out);
    }
    let outs: Vec<O> = slots.into_iter().flatten().collect();
    assert_eq!(outs.len(), n, "every index claimed by exactly one worker");
    let stats = SchedStats {
        jobs: n,
        workers,
        peak_threads: bud.peak_threads(),
        utilization: if elapsed > 0.0 { (busy / (elapsed * workers as f64)).min(1.0) } else { 1.0 },
        elapsed_secs: elapsed,
    };
    (outs, stats)
}

/// The pre-arbiter baseline, kept callable for the `sched-bench` speedup
/// gate: a flat pool sized straight from the budget *total* (not from
/// leases), with every job run under a fresh private budget of the same
/// total — so each inner engine sizes itself as if it owned the whole
/// machine, reproducing the M outer × N inner oversubscription this
/// module exists to fix. At total = 1 this degrades to the same serial
/// execution as [`parallel_map`], which is what makes it a fair baseline.
pub fn flat_map_unarbitrated<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let total = budget::current().total();
    let order: Vec<usize> = (0..n).collect();
    let extras: Vec<Option<Lease>> = (1..n.min(total)).map(|_| None).collect();
    let wrapped = |input: &I| budget::scoped(budget::CoreBudget::new(total), || f(input));
    let (buffers, _busy) = pool_run(&inputs, &order, extras, &wrapped);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, out) in buffers {
        slots[i] = Some(out);
    }
    let outs: Vec<O> = slots.into_iter().flatten().collect();
    assert_eq!(outs.len(), n, "every index claimed by exactly one worker");
    outs
}

/// Estimated relative cost of simulating one (benchmark × scheme) cell:
/// instructions per thread at the configured scale × thread count ×
/// slice count — the same inputs [`crate::BenchPredictor`] and
/// [`crate::TraceCache`] keys already carry. Units are arbitrary; only
/// the ordering matters to the LPT queue.
pub fn job_cost(bench: &BenchmarkSpec, cfg: &ExperimentConfig) -> u64 {
    let insts = bench.instructions_per_thread(cfg.scale).max(1);
    let cores = cfg.system.cores.max(1) as u64;
    let slices = u64::from(cfg.system.llc.slices.max(1));
    insts.saturating_mul(cores).saturating_mul(slices)
}

/// Shared pool executor: spawns one scoped worker per `extras` entry
/// (moving the optional token lease into the worker so it is returned at
/// claim-loop exit), runs the caller as worker 0, and has every worker
/// claim `order` entries from a shared cursor. Returns the unordered
/// `(index, output)` pairs plus total seconds spent inside `f`.
///
/// The cursor is a sequentially-consistent atomic used *only* to hand
/// out queue positions — every output flows back through a scoped join,
/// never through shared state, so claim-order races cannot reach a
/// result (waived for D4 on that basis).
fn pool_run<I, O, F>(
    inputs: &[I],
    order: &[usize],
    extras: Vec<Option<Lease>>,
    f: &F,
) -> (Vec<(usize, O)>, f64)
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let worker = |token: Option<Lease>| {
        let _token = token;
        let mut local: Vec<(usize, O)> = Vec::new();
        let mut busy = 0.0f64;
        loop {
            let k = cursor.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            match order.get(k) {
                Some(&idx) => {
                    let t0 = Instant::now();
                    let out = f(&inputs[idx]);
                    busy += t0.elapsed().as_secs_f64();
                    local.push((idx, out));
                }
                None => break,
            }
        }
        (local, busy)
        // `_token` drops here: the worker's core returns to the pool the
        // moment it runs out of jobs.
    };
    // Scoped budget overrides are thread-local; capture the caller's and
    // re-enter it on every worker so inner engines see the same budget.
    let caller_budget = budget::current();
    std::thread::scope(|scope| {
        let handles: Vec<_> = extras
            .into_iter()
            .map(|token| {
                let b = Arc::clone(&caller_budget);
                scope.spawn(move || budget::scoped(b, || worker(token)))
            })
            .collect();
        let (mut pairs, mut busy) = worker(None);
        for h in handles {
            match h.join() {
                Ok((part, b)) => {
                    pairs.extend(part);
                    busy += b;
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        (pairs, busy)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |&x: &i32| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_input() {
        let calls = AtomicU32::new(0);
        let out = parallel_map((0..37).collect(), |&x: &i32| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn weighted_map_preserves_order_with_any_costs() {
        let inputs: Vec<i32> = (0..64).collect();
        let out = weighted_map(inputs, |&x| (x % 7) as u64, |&x| x * 3);
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn lpt_claims_expensive_jobs_first() {
        // Serial budget so the caller claims everything itself: the claim
        // sequence is then exactly the LPT order.
        let claimed = std::sync::Mutex::new(Vec::new());
        budget::scoped(budget::CoreBudget::new(1), || {
            let costs = [3u64, 9, 1, 9, 5];
            weighted_map((0..5usize).collect(), |&i| costs[i], |&i| {
                claimed.lock().unwrap().push(i);
            });
        });
        // Descending cost, index-stable for the tie at 9.
        assert_eq!(*claimed.lock().unwrap(), vec![1, 3, 4, 0, 2]);
    }

    #[test]
    fn serial_budget_spawns_no_workers() {
        budget::scoped(budget::CoreBudget::new(1), || {
            let (out, stats) = weighted_map_stats((0..10).collect(), |_| 1, |&x: &i32| x);
            assert_eq!(out.len(), 10);
            assert_eq!(stats.workers, 1);
            assert_eq!(stats.peak_threads, 1);
        });
    }

    #[test]
    fn stats_report_pool_shape() {
        budget::scoped(budget::CoreBudget::new(3), || {
            let (out, stats) = weighted_map_stats((0..50).collect(), |_| 1, |&x: &i32| x + 1);
            assert_eq!(out.len(), 50);
            assert_eq!(stats.jobs, 50);
            assert_eq!(stats.workers, 3, "budget of 3 leases two extra workers");
            assert!(stats.peak_threads <= 3, "never exceeds the budget");
            assert!(stats.utilization > 0.0 && stats.utilization <= 1.0);
        });
    }

    #[test]
    fn pool_tokens_return_after_the_map() {
        let b = budget::CoreBudget::new(4);
        budget::scoped(Arc::clone(&b), || {
            parallel_map((0..16).collect(), |&x: &i32| x);
        });
        assert_eq!(b.spare(), 3, "all worker tokens returned");
    }

    #[test]
    fn flat_baseline_matches_scheduled_results() {
        let inputs: Vec<i32> = (0..40).collect();
        let flat = flat_map_unarbitrated(inputs.clone(), |&x| x * x);
        let sched = parallel_map(inputs, |&x| x * x);
        assert_eq!(flat, sched);
    }

    #[test]
    fn worker_panic_propagates() {
        let hits = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map((0..8).collect(), |&x: &i32| {
                hits.fetch_add(1, Ordering::SeqCst);
                assert!(x != 3, "boom");
                x
            })
        }));
        assert!(result.is_err(), "job panic must reach the caller");
    }

    #[test]
    fn job_cost_scales_with_topology() {
        let bench = icp_workloads::suite::all().remove(0);
        let small = ExperimentConfig::test();
        let big = ExperimentConfig::test().with_topology(8, 8);
        assert!(job_cost(&bench, &big) > job_cost(&bench, &small));
    }
}
