//! Hot-path throughput scenarios: the tracked performance harness.
//!
//! Every figure in this reproduction is bottlenecked on the per-access cost
//! of the simulator (`Simulator::step_core` → `PartitionedL2::access_rw`),
//! so this module defines fixed, deterministic scenarios that time exactly
//! those paths and nothing else (simulation scenarios pre-record their
//! event sequences before the clock starts):
//!
//! * `single_access` — one core looping over an L2-resident working set:
//!   the L1-hit / L2-hit fast path.
//! * `l2_miss_prefetch` — one core streaming sequentially with a degree-4
//!   prefetcher: the miss + `prefetch_fill` path.
//! * `interleaved_4t` — four cores with mixed working sets, 10 % sharing
//!   and 8 L2 banks under an equal way partition: the full min-clock
//!   interleaved path the experiment sweeps spend their time in, replayed
//!   from packed (struct-of-arrays) traces.
//! * `gen_only` — synthetic generation of the interleaved workload into
//!   packed traces, no simulation: the producer half in isolation.
//! * `gen_packed` — the same workload drained through the columnar
//!   [`AccessStream::fill_packed`] path into recycled [`PackedBlock`]s: the
//!   direct-to-packed generation fast path with zero trace retention;
//!   digest bit-identical to `gen_only`.
//! * `pipeline_4t` — the interleaved workload with generation running on
//!   per-thread producer threads concurrently with simulation
//!   ([`PipelinedStream`]); digest bit-identical to `interleaved_4t`.
//! * `pipeline_packed` — full-workload materialisation via
//!   [`BenchmarkSpec::pack_streams_parallel`] (one producer per thread,
//!   columnar generation straight into packed traces): the trace-cache
//!   fill path; digest bit-identical to `gen_only`.
//! * `sharded_4t` — the interleaved workload on the set-sharded parallel
//!   simulator ([`ShardedSimulator`], 4 slices on 4 worker threads): the
//!   sliced-LLC machine that scales the sim loop with the host. Sharding
//!   is a (deliberate) machine-model change at `k > 1`, so its digest is
//!   its own — pinned deterministic, and bit-identical to
//!   `sharded_packed_4t`.
//! * `sharded_packed_4t` — the sharded machine fed from record-once packed
//!   traces instead of inline generation; digest bit-identical to
//!   `sharded_4t` (the demux sees the same events either way).
//! * `sliced_16t` — sixteen cores on a 4-slice address-hashed LLC
//!   ([`Llc`], one worker thread per slice): the 8+-core machine model the
//!   `eight_plus_core` scorecard tier runs on. Slicing at N > 1 is a
//!   machine-model change (per-slice geometry), so its digest is its own —
//!   pinned deterministic, and bit-identical to `sliced_16t_serial`.
//! * `sliced_16t_serial` — the same sliced machine with every slice
//!   interval on the calling thread, in slice order: the serial reference
//!   the slice-parallel digest is pinned against, and the denominator of
//!   the tracked slice-scaling speedup.
//! * `sliced_64t` — sixty-four cores on an 8-slice LLC: the top of the
//!   configured topology range, showing slice scaling holds at width.
//! * `sweep_axis` — one full interval-axis sensitivity sweep (test scale)
//!   against a cold [`crate::result_cache::ResultCache`]: the end-to-end
//!   sweep path the experiment campaigns spend their time in, baseline
//!   hoisting included. Counters and digest come from the cache totals, so
//!   they are machine-independent.
//! * `sweep_axis_warm` — the same sweep timed against a pre-populated
//!   result cache: zero simulations, pure cache reuse. Digest bit-identical
//!   to `sweep_axis` (same cached outcomes either way); the cold→warm
//!   `host_secs` drop is the result cache's tracked speedup.
//! * `suite_figures` — the whole figure pass (9 benchmarks × 4 schemes)
//!   through the core-budget scheduler ([`crate::sched`]): LPT-ordered
//!   jobs on budget-leased workers, trace generation overlapped with
//!   simulation, inner slice/shard/pipeline parallelism arbitrated
//!   against the same token pool. Counters and digest come from the
//!   result-cache totals (machine-independent); `utilization` and
//!   `peak_threads` report what the scheduler actually used.
//! * `suite_figures_warm` — the same pass against pre-populated caches:
//!   zero simulations, pure scheduling overhead. Digest bit-identical to
//!   `suite_figures`.
//!
//! The `bench_hotpath` binary runs these and records the numbers in
//! `BENCH_hotpath.json` at the repository root so subsequent changes have a
//! perf trajectory to regress against; the `hotpath` bench in `icp-bench`
//! wraps the same scenarios for quick interactive runs.

use std::time::Instant;

use icp_cmp_sim::stream::{AccessStream, ReplayStream};
use icp_cmp_sim::{
    perf, CacheConfig, Llc, LlcConfig, PackedBlock, PackedTrace, PipelinedStream,
    ShardedSimulator, Simulator, SystemConfig, TakeStream, ThreadEvent,
};
use icp_workloads::{BenchmarkSpec, SyntheticStream, WorkloadBuilder, WorkloadScale};

use crate::json::Json;

/// Throughput measurement of one scenario.
#[derive(Clone, Debug)]
pub struct HotpathResult {
    /// Scenario name (`single_access`, `l2_miss_prefetch`,
    /// `interleaved_4t`, `gen_only`, `gen_packed`, `pipeline_4t`,
    /// `pipeline_packed`, `sharded_4t`, `sharded_packed_4t`, `sliced_16t`,
    /// `sliced_16t_serial`, `sliced_64t`, `sweep_axis`, `sweep_axis_warm`,
    /// `suite_figures`, `suite_figures_warm`).
    pub name: &'static str,
    /// Simulator shards (set stripes or LLC slices / worker threads): 1
    /// for the serial simulator, the pinned shard or slice count for
    /// sharded and sliced scenarios, 0 for generation-only scenarios that
    /// never build a simulator.
    pub shards: u32,
    /// Demand memory accesses simulated (L1 hits + misses over all threads).
    pub accesses: u64,
    /// Thread events delivered (accesses + barriers + finishes).
    pub events: u64,
    /// Instructions retired across all threads.
    pub instructions: u64,
    /// Simulated wall-clock cycles of the run.
    pub sim_cycles: u64,
    /// Host seconds spent simulating.
    pub host_secs: f64,
    /// Behavioural digest: total active cycles + L2 misses over threads.
    /// Identical inputs must produce identical digests across harness
    /// versions — this is what lets the JSON trajectory double as a
    /// regression check on simulator semantics.
    pub digest: u64,
    /// Fraction of the scenario's worker wall-clock spent inside jobs
    /// (scheduler scenarios only; 0 where no outer pool runs).
    pub utilization: f64,
    /// Peak live threads observed via the core-budget watermark over the
    /// scenario (0 when the budget saw no leases).
    pub peak_threads: u32,
}

impl HotpathResult {
    /// Simulated accesses per host second.
    pub fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.host_secs
    }

    /// Delivered events per host second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.host_secs
    }

    /// JSON object for the trajectory file.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("accesses", Json::u64(self.accesses)),
            ("events", Json::u64(self.events)),
            ("instructions", Json::u64(self.instructions)),
            ("sim_cycles", Json::u64(self.sim_cycles)),
            ("host_secs", Json::Num(self.host_secs)),
            ("accesses_per_sec", Json::Num(self.accesses_per_sec().round())),
            ("events_per_sec", Json::Num(self.events_per_sec().round())),
            ("digest", Json::u64(self.digest)),
            ("shards", Json::u64(self.shards as u64)),
            ("utilization", Json::Num((self.utilization * 1_000.0).round() / 1_000.0)),
            ("peak_threads", Json::u64(self.peak_threads as u64)),
        ])
    }
}

/// Scale knob: number of recorded events per thread. The default (1 M)
/// gives sub-second scenario runs on a laptop-class machine while keeping
/// timer noise under a percent.
pub const DEFAULT_EVENTS_PER_THREAD: usize = 1_000_000;

/// Paper-shaped system (4-core, 1 MB 64-way L2) with intervals short
/// enough that the interval machinery is exercised during a run.
fn base_config(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.cores = cores;
    cfg.interval_instructions = 2_000_000;
    cfg
}

/// Runs `sim` to completion under [`perf::measure_to_completion`] and wraps
/// the report in a [`HotpathResult`]. Generic over [`perf::Measurable`], so
/// the serial and sharded engines share one measurement (and digest)
/// definition.
fn run_scenario<M: perf::Measurable>(name: &'static str, shards: u32, mut sim: M) -> HotpathResult {
    let report = perf::measure_to_completion(&mut sim);
    let stats = sim.stats();
    let digest: u64 = stats
        .threads
        .iter()
        .map(|t| {
            t.active_cycles
                .wrapping_mul(31)
                .wrapping_add(t.l2_misses)
                .wrapping_add(t.l2_hits.wrapping_mul(7))
        })
        .fold(sim.wall_cycles(), |acc, x| acc.wrapping_mul(1_000_003).wrapping_add(x));
    HotpathResult {
        name,
        shards,
        accesses: report.accesses,
        events: report.events,
        instructions: report.instructions,
        sim_cycles: sim.wall_cycles(),
        host_secs: report.host_secs,
        digest,
        utilization: 0.0,
        peak_threads: 0,
    }
}

/// The single-core single-access path: a Zipf-like loop over a working set
/// that overflows the L1 but fits the L2 (mostly L1 misses + L2 hits — the
/// way-scan fast path).
pub fn single_access(events_per_thread: usize) -> HotpathResult {
    let mut cfg = base_config(1);
    // One core, but keep the paper L2 so the 64-way scan cost is realistic.
    cfg.l1 = CacheConfig::new(8 * 1024, 4, 64);
    let l2_lines = cfg.l2.size_bytes / cfg.l2.line_bytes;
    let ws_lines = l2_lines / 2;
    // Multiplicative scramble walks the working set in a non-sequential but
    // deterministic order, touching every set.
    let events: Vec<ThreadEvent> = (0..events_per_thread as u64)
        .map(|i| ThreadEvent::access(1, ((i.wrapping_mul(0x9E37_79B1)) % ws_lines) * 64))
        .collect();
    let sim = Simulator::new(cfg, vec![Box::new(ReplayStream::new(events))]);
    run_scenario("single_access", 1, sim)
}

/// The L2-miss + prefetch path: one core streaming sequentially through a
/// region far larger than the L2 with a degree-4 sequential prefetcher, so
/// every demand access either misses (triggering 4 prefetch fills) or hits
/// a just-prefetched line.
pub fn l2_miss_prefetch(events_per_thread: usize) -> HotpathResult {
    let mut cfg = base_config(1);
    cfg.prefetch_degree = 4;
    let events: Vec<ThreadEvent> = (0..events_per_thread as u64)
        .map(|i| ThreadEvent::Access { gap: 2, addr: i * 64, write: false, mlp_tenths: 40 })
        .collect();
    let sim = Simulator::new(cfg, vec![Box::new(ReplayStream::new(events))]);
    run_scenario("l2_miss_prefetch", 1, sim)
}

/// The mixed 4-thread workload the interleaved scenarios share (one
/// streaming thread, one cache-friendly, two mid-size, 10 % sharing).
fn hotpath_4t_spec() -> BenchmarkSpec {
    WorkloadBuilder::new("hotpath-4t")
        .sections(1, 1_000_000_000_000)
        .shared_region(0.1, 0.8)
        .thread(|t| t.working_set(2.0).theta(0.5).memory_intensity(0.3).mlp(6.0))
        .thread(|t| t.working_set(0.05).theta(1.0).memory_intensity(0.25))
        .thread(|t| t.working_set(0.5).theta(0.8).memory_intensity(0.2))
        .thread(|t| t.working_set(0.3).theta(0.7).memory_intensity(0.15).mlp(2.0))
        .build()
}

/// Master seed of the interleaved scenarios.
const HOTPATH_4T_SEED: u64 = 0xB007_5EED;

/// The 4-thread interleaved path: the mixed [`hotpath_4t_spec`] workload
/// recorded once into packed (struct-of-arrays) traces and replayed
/// zero-copy under an equal way partition with 8 L2 banks — the same
/// record-once/replay pattern the experiment sweeps use, so the measured
/// path is exactly theirs.
pub fn interleaved_4t(events_per_thread: usize) -> HotpathResult {
    let mut cfg = base_config(4);
    cfg.l2_banks = 8;
    let spec = hotpath_4t_spec();
    let replays: Vec<Box<dyn AccessStream>> = spec
        .pack_streams(&cfg, WorkloadScale::Figure, HOTPATH_4T_SEED, events_per_thread)
        .iter()
        .map(|t| Box::new(PackedTrace::stream(t)) as Box<dyn AccessStream>)
        .collect();
    let mut sim = Simulator::new(cfg, replays);
    sim.set_partition(&icp_cmp_sim::l2::equal_split(cfg.l2.ways, cfg.cores));
    run_scenario("interleaved_4t", 1, sim)
}

/// Wraps per-thread generation counters `(instructions, accesses,
/// barriers)` in a [`HotpathResult`]. One content-digest definition shared
/// by every generation-side scenario — equal workloads must yield equal
/// digests whether generated into retained traces (`gen_only`,
/// `pipeline_packed`) or transient recycled blocks (`gen_packed`). Same
/// fold shape as `run_scenario` so trajectory tooling treats it alike.
fn gen_result(name: &'static str, per_thread: &[(u64, u64, u64)], host_secs: f64) -> HotpathResult {
    let accesses: u64 = per_thread.iter().map(|&(_, a, _)| a).sum();
    // Delivered events: recorded accesses + barriers plus one `Finished`
    // per thread, matching what a replay delivers.
    let events: u64 =
        per_thread.iter().map(|&(_, a, b)| a + b + 1).sum();
    let instructions: u64 = per_thread.iter().map(|&(i, _, _)| i).sum();
    let digest = per_thread
        .iter()
        .map(|&(i, a, b)| i.wrapping_mul(31).wrapping_add(a).wrapping_add(b.wrapping_mul(7)))
        .fold(accesses, |acc, x| acc.wrapping_mul(1_000_003).wrapping_add(x));
    HotpathResult {
        name,
        shards: 0,
        accesses,
        events,
        instructions,
        sim_cycles: 0,
        host_secs,
        digest,
        utilization: 0.0,
        peak_threads: 0,
    }
}

/// The per-thread counter triples of a set of recorded traces.
fn trace_counters(traces: &[std::sync::Arc<PackedTrace>]) -> Vec<(u64, u64, u64)> {
    traces
        .iter()
        .map(|t| (t.instructions(), t.accesses() as u64, t.barriers() as u64))
        .collect()
}

/// Generation-only throughput: materialises the [`hotpath_4t_spec`]
/// workload into packed traces and times nothing else — the producer half
/// of the pipeline, so generation and simulation regressions are tracked
/// separately.
pub fn gen_only(events_per_thread: usize) -> HotpathResult {
    let mut cfg = base_config(4);
    cfg.l2_banks = 8;
    let spec = hotpath_4t_spec();
    let start = Instant::now();
    let traces =
        spec.pack_streams(&cfg, WorkloadScale::Figure, HOTPATH_4T_SEED, events_per_thread);
    let host_secs = start.elapsed().as_secs_f64();
    gen_result("gen_only", &trace_counters(&traces), host_secs)
}

/// Columnar generation throughput: drains the same workload through the
/// [`AccessStream::fill_packed`] fast path into a single recycled
/// [`PackedBlock`] — no `ThreadEvent` materialisation, no trace retention,
/// so the number is pure generator speed. Digest is bit-identical to
/// `gen_only`'s: the columns carry the same content whether retained or
/// recycled.
pub fn gen_packed(events_per_thread: usize) -> HotpathResult {
    let mut cfg = base_config(4);
    cfg.l2_banks = 8;
    let spec = hotpath_4t_spec();
    const BATCH: usize = 4096;
    let start = Instant::now();
    let mut block = PackedBlock::with_capacity(BATCH);
    let per_thread: Vec<(u64, u64, u64)> = spec
        .threads
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let synth =
                SyntheticStream::new(&spec, ts, t, &cfg, WorkloadScale::Figure, HOTPATH_4T_SEED);
            let mut stream = TakeStream::new(synth, events_per_thread);
            let (mut insts, mut accs, mut bars) = (0u64, 0u64, 0u64);
            loop {
                stream.fill_packed(&mut block, BATCH);
                insts += block.gaps().iter().map(|&g| g as u64 + 1).sum::<u64>();
                accs += block.accesses() as u64;
                bars += block.barrier_count() as u64;
                if block.finished() || block.is_empty() {
                    break;
                }
            }
            (insts, accs, bars)
        })
        .collect();
    let host_secs = start.elapsed().as_secs_f64();
    gen_result("gen_packed", &per_thread, host_secs)
}

/// Parallel materialisation throughput: times
/// [`BenchmarkSpec::pack_streams_parallel`] — one producer thread per
/// workload thread generating straight into packed traces, the path the
/// trace cache fills through. Digest is bit-identical to `gen_only`'s.
pub fn pipeline_packed(events_per_thread: usize) -> HotpathResult {
    let mut cfg = base_config(4);
    cfg.l2_banks = 8;
    let spec = hotpath_4t_spec();
    let start = Instant::now();
    let traces =
        spec.pack_streams_parallel(&cfg, WorkloadScale::Figure, HOTPATH_4T_SEED, events_per_thread);
    let host_secs = start.elapsed().as_secs_f64();
    gen_result("pipeline_packed", &trace_counters(&traces), host_secs)
}

/// The pipelined 4-thread path: same workload, partition and event budget
/// as [`interleaved_4t`], but each thread's events are generated on its own
/// producer thread ([`PipelinedStream`]) while the simulator consumes —
/// generation overlaps simulation instead of preceding it. Per-thread
/// independent RNG derivation makes the digest bit-identical to
/// `interleaved_4t`'s (asserted in tests and checkable in the JSON
/// trajectory).
pub fn pipeline_4t(events_per_thread: usize) -> HotpathResult {
    let mut cfg = base_config(4);
    cfg.l2_banks = 8;
    let spec = hotpath_4t_spec();
    let streams: Vec<Box<dyn AccessStream>> = spec
        .threads
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let synth =
                SyntheticStream::new(&spec, ts, t, &cfg, WorkloadScale::Figure, HOTPATH_4T_SEED);
            let bounded = TakeStream::new(synth, events_per_thread);
            Box::new(PipelinedStream::spawn(bounded)) as Box<dyn AccessStream>
        })
        .collect();
    let mut sim = Simulator::new(cfg, streams);
    sim.set_partition(&icp_cmp_sim::l2::equal_split(cfg.l2.ways, cfg.cores));
    run_scenario("pipeline_4t", 1, sim)
}

/// Slice count of the sharded scenarios. Pinned (not host-sized) so the
/// recorded digests are machine-independent; 4 matches the paper-shaped
/// 4-core config and is enough to saturate typical CI hosts.
pub const SHARDED_4T_SHARDS: usize = 4;

/// The sharded machine over the [`hotpath_4t_spec`] workload at a given
/// slice count, fed from inline synthetic generation (the demux drains the
/// generators before the clock starts, mirroring how `interleaved_4t`
/// pre-records its traces).
fn sharded_4t_with(
    name: &'static str,
    events_per_thread: usize,
    shards: usize,
) -> HotpathResult {
    let mut cfg = base_config(4);
    cfg.l2_banks = 8;
    let spec = hotpath_4t_spec();
    let streams: Vec<_> = spec
        .threads
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let synth =
                SyntheticStream::new(&spec, ts, t, &cfg, WorkloadScale::Figure, HOTPATH_4T_SEED);
            TakeStream::new(synth, events_per_thread)
        })
        .collect();
    let mut sim = ShardedSimulator::new(cfg, streams, shards);
    sim.set_partition(&icp_cmp_sim::l2::equal_split(cfg.l2.ways, cfg.cores));
    run_scenario(name, shards as u32, sim)
}

/// Like [`sharded_4t_with`], but fed from record-once packed traces — the
/// sharded analogue of `interleaved_4t`'s replay path. Equal slice counts
/// must produce digests bit-identical to the inline-fed variant (the demux
/// sees the same events either way).
fn sharded_packed_4t_with(
    name: &'static str,
    events_per_thread: usize,
    shards: usize,
) -> HotpathResult {
    let mut cfg = base_config(4);
    cfg.l2_banks = 8;
    let spec = hotpath_4t_spec();
    let replays: Vec<_> = spec
        .pack_streams(&cfg, WorkloadScale::Figure, HOTPATH_4T_SEED, events_per_thread)
        .iter()
        .map(PackedTrace::stream)
        .collect();
    let mut sim = ShardedSimulator::new(cfg, replays, shards);
    sim.set_partition(&icp_cmp_sim::l2::equal_split(cfg.l2.ways, cfg.cores));
    run_scenario(name, shards as u32, sim)
}

/// The set-sharded parallel path: the interleaved workload on a
/// [`ShardedSimulator`] with [`SHARDED_4T_SHARDS`] slices, each interval
/// running on its own worker thread. The number that shows the sim loop
/// scaling with the host.
pub fn sharded_4t(events_per_thread: usize) -> HotpathResult {
    sharded_4t_with("sharded_4t", events_per_thread, SHARDED_4T_SHARDS)
}

/// The sharded machine fed from packed-trace replay — sharding composed
/// with the record-once/replay pattern the experiment sweeps use. Digest
/// bit-identical to [`sharded_4t`].
pub fn sharded_packed_4t(events_per_thread: usize) -> HotpathResult {
    sharded_packed_4t_with("sharded_packed_4t", events_per_thread, SHARDED_4T_SHARDS)
}

/// Master seed of the sliced-LLC scenarios.
const SLICED_SEED: u64 = 0x511C_ED16;

/// A many-thread mix cycling the four [`hotpath_4t_spec`] archetypes
/// (streaming, cache-friendly, two mid-size) across `threads` threads with
/// the same 10 % sharing — the wide-chip workload of the sliced scenarios.
fn sliced_spec(threads: usize) -> BenchmarkSpec {
    let mut b = WorkloadBuilder::new("hotpath-sliced")
        .sections(1, 1_000_000_000_000)
        .shared_region(0.1, 0.8);
    for i in 0..threads {
        b = match i % 4 {
            0 => b.thread(|t| t.working_set(2.0).theta(0.5).memory_intensity(0.3).mlp(6.0)),
            1 => b.thread(|t| t.working_set(0.05).theta(1.0).memory_intensity(0.25)),
            2 => b.thread(|t| t.working_set(0.5).theta(0.8).memory_intensity(0.2)),
            _ => b.thread(|t| t.working_set(0.3).theta(0.7).memory_intensity(0.15).mlp(2.0)),
        };
    }
    b.build()
}

/// The sliced-LLC machine over [`sliced_spec`] at a given topology, under
/// an equal way partition (the demux drains the generators before the
/// clock starts, like the other simulation scenarios).
fn sliced_with(
    name: &'static str,
    events_per_thread: usize,
    cores: usize,
    slices: u32,
    parallel: bool,
) -> HotpathResult {
    let mut cfg = base_config(cores);
    cfg.l2_banks = 8;
    cfg.llc = LlcConfig::sliced(slices);
    let spec = sliced_spec(cores);
    let streams: Vec<_> = spec
        .threads
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let synth =
                SyntheticStream::new(&spec, ts, t, &cfg, WorkloadScale::Figure, SLICED_SEED);
            TakeStream::new(synth, events_per_thread)
        })
        .collect();
    let mut sim = if parallel {
        Llc::new(cfg, streams)
    } else {
        Llc::serial_reference(cfg, streams)
    };
    sim.set_partition(&icp_cmp_sim::l2::equal_split(cfg.l2.ways, cfg.cores));
    run_scenario(name, slices, sim)
}

/// The slice-parallel 16-thread path: 16 cores on a 4-slice LLC, each
/// slice's interval on its own worker thread — the machine the
/// `eight_plus_core` scorecard tier measures. The tracked number for slice
/// scaling past the paper's 4-core chip. On a host without a second core
/// `Llc::new` degrades to the bit-identical in-order engine (same digest,
/// no worker threads), so this scenario never pays for time-sliced
/// workers.
pub fn sliced_16t(events_per_thread: usize) -> HotpathResult {
    sliced_with("sliced_16t", events_per_thread, 16, 4, true)
}

/// The serial sliced reference: identical machine and workload to
/// [`sliced_16t`] with all slices advanced on the calling thread. Digest
/// bit-identical to `sliced_16t`; the throughput ratio between the two is
/// the tracked slice-parallel speedup on this host.
pub fn sliced_16t_serial(events_per_thread: usize) -> HotpathResult {
    sliced_with("sliced_16t_serial", events_per_thread, 16, 4, false)
}

/// The widest configured topology: 64 cores on an 8-slice LLC,
/// slice-parallel. Tracks that slice scaling holds at the top of the
/// supported range (64 threads × 8 slices).
pub fn sliced_64t(events_per_thread: usize) -> HotpathResult {
    sliced_with("sliced_64t", events_per_thread, 64, 8, true)
}

/// The sweep-path scenario: one interval-axis sensitivity sweep
/// ([`crate::sweeps::sweep_interval`]) at experiment test scale against a
/// fresh result cache (`warm = false`) or against one pre-populated by an
/// untimed priming pass (`warm = true`). The sweep sizes its own workloads
/// from the experiment scale, so `events_per_thread` does not apply here —
/// the scenario measures the same fixed matrix at every `--events` setting,
/// keeping its trajectory comparable across runs. Accesses, instructions,
/// sim cycles and the behavioural digest are read from
/// [`crate::result_cache::CacheTotals`], folded in key order: equal cache
/// contents give equal digests whether the timed pass simulated (cold) or
/// reused (warm). Events are the cached demand accesses (barrier/finish
/// deliveries are not part of an outcome, so they are not counted here).
fn sweep_axis_run(name: &'static str, warm: bool) -> HotpathResult {
    let cache = crate::result_cache::ResultCache::shared();
    let cfg = crate::runner::ExperimentConfig::test()
        .with_result_cache(std::sync::Arc::clone(&cache))
        .with_default_trace_cache();
    if warm {
        // Untimed priming pass: fills the trace and result caches so the
        // timed pass below performs zero simulations.
        let _ = crate::sweeps::sweep_interval(&cfg);
    }
    let start = Instant::now();
    let _ = crate::sweeps::sweep_interval(&cfg);
    let host_secs = start.elapsed().as_secs_f64();
    let totals = cache.totals();
    HotpathResult {
        name,
        shards: 1,
        accesses: totals.accesses,
        events: totals.accesses,
        instructions: totals.instructions,
        sim_cycles: totals.sim_cycles,
        host_secs,
        digest: totals.digest,
        utilization: 0.0,
        peak_threads: 0,
    }
}

/// The cold sweep path: an interval-axis sweep simulated from scratch into
/// a fresh result cache. See [`sweep_axis_run`] for why `events_per_thread`
/// is unused.
pub fn sweep_axis(_events_per_thread: usize) -> HotpathResult {
    sweep_axis_run("sweep_axis", false)
}

/// The warm sweep path: the identical sweep served entirely from a
/// pre-populated result cache — zero simulations, digest bit-identical to
/// [`sweep_axis`].
pub fn sweep_axis_warm(_events_per_thread: usize) -> HotpathResult {
    sweep_axis_run("sweep_axis_warm", true)
}

/// The scheduler-path scenario: one whole figure pass (9 benchmarks × 4
/// schemes, [`crate::figures::context::SuiteData::collect_with_stats`]) at
/// experiment test scale through the core-budget scheduler — LPT job
/// order, budget-leased outer workers, generation overlapped with
/// simulation, inner engines arbitrated against the same token pool. Like
/// [`sweep_axis_run`], the suite sizes its own workloads from the
/// experiment scale (`--events` does not apply), and counters plus the
/// behavioural digest come from the result-cache totals, folded in key
/// order — machine- and schedule-independent. `utilization` and
/// `peak_threads` come from the pass's [`crate::sched::SchedStats`].
fn suite_figures_run(name: &'static str, warm: bool) -> HotpathResult {
    let cache = crate::result_cache::ResultCache::shared();
    let cfg = crate::runner::ExperimentConfig::test()
        .with_result_cache(std::sync::Arc::clone(&cache))
        .with_default_trace_cache();
    if warm {
        // Untimed priming pass: fills the trace and result caches so the
        // timed pass below performs zero simulations.
        let _ = crate::figures::context::SuiteData::collect(&cfg);
    }
    let start = Instant::now();
    let (_, sched_stats) = crate::figures::context::SuiteData::collect_with_stats(&cfg);
    let host_secs = start.elapsed().as_secs_f64();
    let totals = cache.totals();
    HotpathResult {
        name,
        shards: 1,
        accesses: totals.accesses,
        events: totals.accesses,
        instructions: totals.instructions,
        sim_cycles: totals.sim_cycles,
        host_secs,
        digest: totals.digest,
        utilization: sched_stats.utilization,
        peak_threads: sched_stats.peak_threads as u32,
    }
}

/// The cold scheduler path: the full figure pass simulated from scratch
/// under the core-budget scheduler. See [`suite_figures_run`] for why
/// `events_per_thread` is unused.
pub fn suite_figures(_events_per_thread: usize) -> HotpathResult {
    suite_figures_run("suite_figures", false)
}

/// The warm scheduler path: the identical figure pass served entirely
/// from pre-populated caches — zero simulations, pure scheduling
/// overhead. Digest bit-identical to [`suite_figures`].
pub fn suite_figures_warm(_events_per_thread: usize) -> HotpathResult {
    suite_figures_run("suite_figures_warm", true)
}

/// A registry entry: scenario name plus its runner.
pub type Scenario = (&'static str, fn(usize) -> HotpathResult);

/// The scenario registry, in trajectory order: name → runner. The names
/// double as the `--only` substring domain of the `bench_hotpath` binary.
pub const SCENARIOS: &[Scenario] = &[
    ("single_access", single_access),
    ("l2_miss_prefetch", l2_miss_prefetch),
    ("interleaved_4t", interleaved_4t),
    ("gen_only", gen_only),
    ("gen_packed", gen_packed),
    ("pipeline_4t", pipeline_4t),
    ("pipeline_packed", pipeline_packed),
    ("sharded_4t", sharded_4t),
    ("sharded_packed_4t", sharded_packed_4t),
    ("sliced_16t", sliced_16t),
    ("sliced_16t_serial", sliced_16t_serial),
    ("sliced_64t", sliced_64t),
    ("sweep_axis", sweep_axis),
    ("sweep_axis_warm", sweep_axis_warm),
    ("suite_figures", suite_figures),
    ("suite_figures_warm", suite_figures_warm),
];

/// Runs the scenarios whose names contain `filter` (all of them when
/// `None`) at the given scale, in registry order. Each scenario runs
/// against a freshly-reset budget watermark; scenarios that don't report
/// a peak themselves get the watermark reading (inner engine leases show
/// up there even without an outer pool).
pub fn run_matching(events_per_thread: usize, filter: Option<&str>) -> Vec<HotpathResult> {
    SCENARIOS
        .iter()
        .filter(|(name, _)| filter.is_none_or(|f| name.contains(f)))
        .map(|(_, scenario)| {
            let bud = crate::sched::budget::current();
            bud.reset_watermark();
            let mut r = scenario(events_per_thread);
            if r.peak_threads == 0 {
                r.peak_threads = bud.peak_threads() as u32;
            }
            r
        })
        .collect()
}

/// Runs all sixteen scenarios at the given scale.
pub fn run_all(events_per_thread: usize) -> Vec<HotpathResult> {
    run_matching(events_per_thread, None)
}

/// Runs every matching scenario `repeats` times and keeps the fastest run
/// of each (standard best-of-N to squeeze out scheduler/turbo noise).
/// Panics if repeats of a scenario disagree on the behavioural digest —
/// that would mean the simulator is not deterministic.
pub fn run_best_of_matching(
    events_per_thread: usize,
    repeats: usize,
    filter: Option<&str>,
) -> Vec<HotpathResult> {
    assert!(repeats > 0);
    let mut best: Vec<HotpathResult> = run_matching(events_per_thread, filter);
    for _ in 1..repeats {
        for (b, r) in best.iter_mut().zip(run_matching(events_per_thread, filter)) {
            assert_eq!(b.digest, r.digest, "{}: non-deterministic run", r.name);
            if r.host_secs < b.host_secs {
                *b = r;
            }
        }
    }
    best
}

/// [`run_best_of_matching`] over every scenario.
pub fn run_all_best_of(events_per_thread: usize, repeats: usize) -> Vec<HotpathResult> {
    run_best_of_matching(events_per_thread, repeats, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_run_and_report() {
        // Tiny scale: correctness of the harness, not throughput.
        for r in run_all(2_000) {
            assert!(r.accesses > 0, "{}: no accesses", r.name);
            assert!(r.events > r.accesses / 2, "{}: event undercount", r.name);
            assert!(r.accesses_per_sec() > 0.0);
            // Generation-side scenarios never enter the simulator, so they
            // have no sim clock.
            let gen_side = ["gen_only", "gen_packed", "pipeline_packed"].contains(&r.name);
            assert_eq!(r.sim_cycles > 0, !gen_side, "{}", r.name);
        }
    }

    #[test]
    fn digest_is_deterministic() {
        let a = interleaved_4t(2_000);
        let b = interleaved_4t(2_000);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.sim_cycles, b.sim_cycles);
    }

    #[test]
    fn pipeline_digest_matches_inline() {
        // The acceptance property of the pipelined path: moving generation
        // onto producer threads changes nothing observable.
        let inline = interleaved_4t(2_000);
        let piped = pipeline_4t(2_000);
        assert_eq!(piped.digest, inline.digest);
        assert_eq!(piped.sim_cycles, inline.sim_cycles);
        assert_eq!(piped.accesses, inline.accesses);
        assert_eq!(piped.instructions, inline.instructions);
    }

    #[test]
    fn sharded_digest_is_deterministic_and_feed_independent() {
        // The two acceptance properties of the sharded scenarios: repeats
        // agree, and inline-fed vs packed-replay-fed runs of the same
        // decomposition are bit-identical.
        let a = sharded_4t(2_000);
        let b = sharded_4t(2_000);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.sim_cycles, b.sim_cycles);
        assert_eq!(a.shards as usize, SHARDED_4T_SHARDS);
        let packed = sharded_packed_4t(2_000);
        assert_eq!(packed.digest, a.digest);
        assert_eq!(packed.sim_cycles, a.sim_cycles);
        assert_eq!(packed.accesses, a.accesses);
        assert_eq!(packed.instructions, a.instructions);
    }

    #[test]
    fn one_shard_matches_serial_interleaved() {
        // k = 1 sharding is the legacy serial machine: same digest as the
        // interleaved scenario, which runs the same workload and partition
        // through the plain simulator.
        let serial = interleaved_4t(2_000);
        let one = sharded_packed_4t_with("sharded_packed_1", 2_000, 1);
        assert_eq!(one.digest, serial.digest);
        assert_eq!(one.sim_cycles, serial.sim_cycles);
        assert_eq!(one.accesses, serial.accesses);
        assert_eq!(one.instructions, serial.instructions);
        let one_inline = sharded_4t_with("sharded_1", 2_000, 1);
        assert_eq!(one_inline.digest, serial.digest);
    }

    #[test]
    fn run_matching_filters_by_substring() {
        let sharded = run_matching(1_000, Some("sharded"));
        let names: Vec<_> = sharded.iter().map(|r| r.name).collect();
        assert_eq!(names, ["sharded_4t", "sharded_packed_4t"]);
        assert!(run_matching(1_000, Some("no-such-scenario")).is_empty());
        let sliced = run_matching(500, Some("sliced"));
        let names: Vec<_> = sliced.iter().map(|r| r.name).collect();
        assert_eq!(names, ["sliced_16t", "sliced_16t_serial", "sliced_64t"]);
    }

    #[test]
    fn sliced_parallel_digest_matches_serial_reference() {
        // The bitwise promise of the sliced scenarios: per-slice worker
        // threads change nothing observable vs the in-order serial
        // reference, and repeats agree.
        let par = sliced_16t(1_000);
        let ser = sliced_16t_serial(1_000);
        assert_eq!(par.digest, ser.digest);
        assert_eq!(par.sim_cycles, ser.sim_cycles);
        assert_eq!(par.accesses, ser.accesses);
        assert_eq!(par.instructions, ser.instructions);
        assert_eq!(par.shards, 4);
        let again = sliced_16t(1_000);
        assert_eq!(again.digest, par.digest);
    }

    #[test]
    fn sliced_64t_runs_the_full_width() {
        let r = sliced_64t(200);
        assert_eq!(r.shards, 8);
        assert!(r.accesses > 0 && r.sim_cycles > 0);
    }

    #[test]
    fn suite_figures_warm_matches_cold() {
        // The acceptance property of the scheduler scenarios: a warm pass
        // serves the identical outcome matrix from the caches, so every
        // counter and the behavioural digest match the cold pass.
        let cold = suite_figures(0);
        let warm = suite_figures_warm(0);
        assert_eq!(warm.digest, cold.digest);
        assert_eq!(warm.accesses, cold.accesses);
        assert_eq!(warm.instructions, cold.instructions);
        assert_eq!(warm.sim_cycles, cold.sim_cycles);
        assert!(cold.sim_cycles > 0);
        assert!(cold.utilization >= 0.0 && cold.utilization <= 1.0);
    }

    #[test]
    fn sweep_axis_warm_matches_cold() {
        // The acceptance property of the sweep scenarios: a warm rerun
        // serves the identical outcome matrix from the result cache, so
        // every counter and the behavioural digest match the cold run.
        let cold = sweep_axis(2_000);
        let warm = sweep_axis_warm(2_000);
        assert_eq!(warm.digest, cold.digest);
        assert_eq!(warm.accesses, cold.accesses);
        assert_eq!(warm.instructions, cold.instructions);
        assert_eq!(warm.sim_cycles, cold.sim_cycles);
        assert!(cold.sim_cycles > 0);
    }

    #[test]
    fn gen_only_is_deterministic_and_consistent() {
        let a = gen_only(2_000);
        let b = gen_only(2_000);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.sim_cycles, 0);
        // Generation feeds the interleaved scenario: the simulated run must
        // retire exactly the generated instructions.
        let sim = interleaved_4t(2_000);
        assert_eq!(sim.instructions, a.instructions);
        assert_eq!(sim.accesses, a.accesses);
    }

    #[test]
    fn packed_generation_scenarios_match_gen_only() {
        // The acceptance property of the columnar producers: retained
        // traces, recycled blocks and parallel materialisation all carry
        // the same content.
        let reference = gen_only(2_000);
        for r in [gen_packed(2_000), pipeline_packed(2_000)] {
            assert_eq!(r.digest, reference.digest, "{}", r.name);
            assert_eq!(r.accesses, reference.accesses, "{}", r.name);
            assert_eq!(r.events, reference.events, "{}", r.name);
            assert_eq!(r.instructions, reference.instructions, "{}", r.name);
            assert_eq!(r.sim_cycles, 0, "{}", r.name);
        }
    }
}
