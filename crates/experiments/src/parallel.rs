//! Outermost-level parallelism for experiment sweeps.
//!
//! Each simulation run is single-threaded and deterministic; sweeps over
//! (benchmark × scheme) pairs are embarrassingly parallel, so we fan those
//! out over OS threads with a shared atomic work index — the standard
//! "parallelise the outer loop" advice for HPC harnesses. Each worker
//! accumulates `(index, output)` pairs in a private buffer (claiming work
//! costs one atomic increment, finishing it costs nothing), and the buffers
//! are stitched back into input order after the threads join.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` over every element of `inputs` using up to
/// `std::thread::available_parallelism` worker threads, returning outputs
/// in input order.
///
/// `f` must be deterministic per input for reproducibility (the experiment
/// runner's jobs are).
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let buffers: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&inputs[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    // Stitch back into input order: each index appears exactly once across
    // the buffers (the atomic hands indices out uniquely).
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, out) in buffers.into_iter().flatten() {
        debug_assert!(slots[i].is_none());
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |&x: &i32| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_input() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let out = parallel_map((0..37).collect(), |&x: &i32| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }
}
