//! Content-addressed cache of full simulation *results*.
//!
//! [`crate::trace_cache::TraceCache`] memoises workload generation; this
//! module applies the same pattern one layer up, to the simulations
//! themselves. A [`ResultCache`] is keyed on every input that shapes an
//! [`ExecutionOutcome`] — the normalised benchmark spec, the whole
//! simulated-system configuration (geometry, latencies, cores, interval),
//! the workload scale, the master seed, replacement/enforcement kinds, the
//! scheme, and whether the run carried a profiling utility monitor. A
//! figures or sweeps rerun with a warm cache therefore performs zero full
//! simulations for unchanged points, and a policy-only change re-simulates
//! nothing but the changed scheme's points.
//!
//! Entries can optionally persist under a directory (`results/cache/` by
//! convention) as one versioned-JSON file per outcome, so warmth survives
//! process restarts. Files are named `<scheme>-<fnv64(key)>.json` and carry
//! the full key: collisions and stale schema versions are detected on load
//! and treated as misses. Wipe the directory (or a single scheme's
//! `<scheme>-*.json` glob) to invalidate.
//!
//! Determinism contract: the simulator is bit-deterministic, so a cached
//! outcome is byte-identical to the simulation it replaces (`f64` values
//! round-trip exactly through the shortest-representation JSON writer).
//! The map is a `BTreeMap` — iteration order (e.g. [`ResultCache::totals`])
//! is key order, never hash order.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use icp_cmp_sim::stats::{InteractionStats, ThreadCounters};
use icp_cmp_sim::UmonProfile;
use icp_core::{ExecutionOutcome, IntervalRecord};
use icp_hot_path::deterministic;
use icp_workloads::BenchmarkSpec;

use crate::json::Json;
use crate::runner::{ExperimentConfig, Scheme};

/// Schema tag of the persisted entry files; bump when the outcome layout
/// changes so stale files invalidate themselves.
const SCHEMA: &str = "icp-result-cache/v1";

/// Aggregate counters over every cached outcome, folded in key order.
/// The bench harness uses these to report sweep-matrix scale and a
/// machine-independent behavioural digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Demand accesses (L1 hits + misses) across all cached runs.
    pub accesses: u64,
    /// Instructions retired across all cached runs.
    pub instructions: u64,
    /// Simulated wall cycles summed over cached runs.
    pub sim_cycles: u64,
    /// Order-fixed fold of per-run digests (same shape as the hotpath
    /// scenario digests).
    pub digest: u64,
}

/// A thread-safe simulate-once store of execution outcomes, optionally
/// persisted to disk.
///
/// Counters mirror [`crate::trace_cache::TraceCache`]: `simulations()`
/// counts cache misses that ran the simulator, `hits()` counts runs served
/// from memory or disk, so "zero simulations on a warm rerun" is a testable
/// property.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: Mutex<BTreeMap<String, Arc<ExecutionOutcome>>>,
    dir: Option<PathBuf>,
    simulations: AtomicU64,
    hits: AtomicU64,
    disk_hits: AtomicU64,
}

impl ResultCache {
    /// Creates an empty in-memory cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Creates an empty in-memory cache ready for sharing across runs.
    pub fn shared() -> Arc<Self> {
        Arc::new(ResultCache::new())
    }

    /// Creates a cache persisted under `dir` (created on first store).
    /// Disk entries found under `dir` count as hits; unreadable, stale or
    /// colliding files are ignored.
    pub fn persistent(dir: impl Into<PathBuf>) -> Arc<Self> {
        Arc::new(ResultCache { dir: Some(dir.into()), ..ResultCache::default() })
    }

    /// The content address of one simulation.
    ///
    /// `spec` must already be normalised to the configured core count (the
    /// runner resolves `with_threads` before keying). The whole
    /// [`icp_cmp_sim::SystemConfig`] participates via `Debug` — geometry,
    /// way/set counts, latencies, cores, interval length, feature knobs —
    /// so any single-field perturbation changes the key. `Debug` for `f64`
    /// prints the shortest round-trip representation, so distinct values
    /// never alias.
    #[deterministic]
    pub fn key(spec: &BenchmarkSpec, cfg: &ExperimentConfig, scheme: &Scheme, umon: bool) -> String {
        format!(
            "{spec:?}|sys={:?}|scale={:?}|seed={:#x}|repl={:?}|enf={:?}|scheme={scheme:?}|umon={}",
            cfg.system, cfg.scale, cfg.seed, cfg.replacement, cfg.enforcement, u8::from(umon)
        )
    }

    /// Returns the outcome for `key`, running `simulate` on a miss.
    ///
    /// Lookup checks memory, then disk (when persistent). Simulation runs
    /// *outside* the lock so parallel scheme runs with distinct keys never
    /// serialise; keys within one figures/sweeps pass are distinct, so no
    /// work is duplicated in practice.
    pub fn get_or_run(
        &self,
        key: String,
        scheme_name: &'static str,
        simulate: impl FnOnce() -> ExecutionOutcome,
    ) -> ExecutionOutcome {
        {
            let map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(out) = map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return ExecutionOutcome::clone(out);
            }
        }
        if let Some(out) = self.load(&key, scheme_name) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            let out = Arc::new(out);
            let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            map.insert(key, Arc::clone(&out));
            return ExecutionOutcome::clone(&out);
        }
        let out = simulate();
        self.simulations.fetch_add(1, Ordering::Relaxed);
        self.store(&key, &out);
        let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(key, Arc::new(out.clone()));
        out
    }

    /// Number of simulations executed (cache misses).
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Alias for [`ResultCache::simulations`], mirroring
    /// [`crate::trace_cache::TraceCache::generations`].
    pub fn generations(&self) -> u64 {
        self.simulations()
    }

    /// Number of runs served from cache (memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of runs served from persisted files specifically.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Number of cached outcomes (in memory).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters over the cached outcomes, folded in key order.
    pub fn totals(&self) -> CacheTotals {
        let map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut t = CacheTotals::default();
        // ORDER: folded in BTreeMap key order — deterministic by contract.
        for out in map.values() {
            let mut acc = out.wall_cycles;
            for c in &out.thread_totals {
                t.accesses += c.l1_hits + c.l1_misses;
                t.instructions += c.instructions;
                acc = acc.wrapping_mul(1_000_003).wrapping_add(
                    c.active_cycles
                        .wrapping_mul(31)
                        .wrapping_add(c.l2_misses)
                        .wrapping_add(c.l2_hits.wrapping_mul(7)),
                );
            }
            t.sim_cycles += out.wall_cycles;
            t.digest = t.digest.wrapping_mul(1_000_003).wrapping_add(acc);
        }
        t
    }

    /// The file a key persists under: scheme-prefixed so one scheme's
    /// entries can be invalidated with a glob, FNV-64 hashed so the long
    /// key fits a file name.
    fn entry_path(dir: &Path, key: &str, scheme_name: &str) -> PathBuf {
        dir.join(format!("{scheme_name}-{:016x}.json", fnv1a64(key.as_bytes())))
    }

    fn load(&self, key: &str, scheme_name: &'static str) -> Option<ExecutionOutcome> {
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(Self::entry_path(dir, key, scheme_name)).ok()?;
        let doc = Json::parse(&text)?;
        if doc.get("schema").and_then(as_str) != Some(SCHEMA) {
            return None;
        }
        // Full-key verification: an FNV collision or a stale file for a
        // different configuration reads as a miss, never a wrong result.
        if doc.get("key").and_then(as_str) != Some(key) {
            return None;
        }
        outcome_from_json(doc.get("outcome")?, scheme_name)
    }

    fn store(&self, key: &str, out: &ExecutionOutcome) {
        let Some(dir) = self.dir.as_ref() else { return };
        // Best effort: a read-only results tree degrades to in-memory
        // caching rather than failing the run.
        let _ = std::fs::create_dir_all(dir);
        let doc = Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("key", Json::str(key)),
            ("outcome", outcome_to_json(out)),
        ]);
        let path = Self::entry_path(dir, key, out.scheme);
        let tmp = path.with_extension("json.tmp");
        if std::fs::write(&tmp, doc.to_string()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// 64-bit FNV-1a over the key bytes (file-name hashing only; correctness
/// never depends on it because the full key is verified on load).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn as_str(j: &Json) -> Option<&str> {
    match j {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn as_u64(j: &Json) -> Option<u64> {
    let n = j.as_f64()?;
    if n >= 0.0 && n.fract() == 0.0 && n < 9e15 {
        Some(n as u64)
    } else {
        None
    }
}

fn u64_arr(vals: &[u64]) -> Json {
    Json::Arr(vals.iter().map(|&v| Json::u64(v)).collect())
}

fn f64_arr(vals: &[f64]) -> Json {
    Json::Arr(vals.iter().map(|&v| Json::Num(v)).collect())
}

fn get_u64_vec(j: &Json, key: &str) -> Option<Vec<u64>> {
    match j.get(key)? {
        Json::Arr(items) => items.iter().map(as_u64).collect(),
        _ => None,
    }
}

fn get_f64_vec(j: &Json, key: &str) -> Option<Vec<f64>> {
    match j.get(key)? {
        Json::Arr(items) => items.iter().map(Json::as_f64).collect(),
        _ => None,
    }
}

fn get_u64(j: &Json, key: &str) -> Option<u64> {
    as_u64(j.get(key)?)
}

/// Complete, lossless serialisation of an outcome (unlike
/// [`crate::json::outcome_to_json`], which exports a reporting subset).
fn outcome_to_json(out: &ExecutionOutcome) -> Json {
    let totals: Vec<Json> = out.thread_totals.iter().map(counters_to_json).collect();
    let records: Vec<Json> = out.records.iter().map(record_to_json).collect();
    let umon = match &out.umon_profile {
        Some(p) => Json::obj(vec![
            ("ways", Json::u64(p.ways as u64)),
            ("sampled_sets", Json::u64(p.sampled_sets)),
            ("total_sets", Json::u64(p.total_sets)),
            ("atd_misses", u64_arr(&p.atd_misses)),
            ("way_hits", Json::Arr(p.way_hits.iter().map(|h| u64_arr(h)).collect())),
        ]),
        None => Json::Null,
    };
    Json::obj(vec![
        ("scheme", Json::str(out.scheme)),
        ("wall_cycles", Json::u64(out.wall_cycles)),
        ("decision_count", Json::u64(out.decision_count)),
        ("decision_nanos", Json::u64(out.decision_nanos)),
        (
            "interactions",
            Json::obj(vec![
                ("total_accesses", Json::u64(out.interactions.total_accesses)),
                ("inter_thread_hits", Json::u64(out.interactions.inter_thread_hits)),
                ("inter_thread_evictions", Json::u64(out.interactions.inter_thread_evictions)),
            ]),
        ),
        ("thread_totals", Json::Arr(totals)),
        ("records", Json::Arr(records)),
        ("umon_profile", umon),
    ])
}

fn counters_to_json(c: &ThreadCounters) -> Json {
    Json::obj(vec![
        ("instructions", Json::u64(c.instructions)),
        ("active_cycles", Json::u64(c.active_cycles)),
        ("barrier_stall_cycles", Json::u64(c.barrier_stall_cycles)),
        ("l1_hits", Json::u64(c.l1_hits)),
        ("l1_misses", Json::u64(c.l1_misses)),
        ("l2_hits", Json::u64(c.l2_hits)),
        ("l2_misses", Json::u64(c.l2_misses)),
        ("l1_writebacks", Json::u64(c.l1_writebacks)),
        ("l2_writebacks", Json::u64(c.l2_writebacks)),
        ("coherence_invalidations", Json::u64(c.coherence_invalidations)),
        ("prefetch_fills", Json::u64(c.prefetch_fills)),
        ("prefetch_hits", Json::u64(c.prefetch_hits)),
        ("victim_hits", Json::u64(c.victim_hits)),
    ])
}

fn record_to_json(r: &IntervalRecord) -> Json {
    Json::obj(vec![
        ("index", Json::u64(r.index as u64)),
        ("ways", u64_arr(&r.ways.iter().map(|&w| w as u64).collect::<Vec<_>>())),
        ("cpi", f64_arr(&r.cpi)),
        ("l2_misses", u64_arr(&r.l2_misses)),
        ("instructions", u64_arr(&r.instructions)),
        ("overall_cpi", Json::Num(r.overall_cpi)),
        ("wall_cycles", Json::u64(r.wall_cycles)),
    ])
}

fn counters_from_json(j: &Json) -> Option<ThreadCounters> {
    Some(ThreadCounters {
        instructions: get_u64(j, "instructions")?,
        active_cycles: get_u64(j, "active_cycles")?,
        barrier_stall_cycles: get_u64(j, "barrier_stall_cycles")?,
        l1_hits: get_u64(j, "l1_hits")?,
        l1_misses: get_u64(j, "l1_misses")?,
        l2_hits: get_u64(j, "l2_hits")?,
        l2_misses: get_u64(j, "l2_misses")?,
        l1_writebacks: get_u64(j, "l1_writebacks")?,
        l2_writebacks: get_u64(j, "l2_writebacks")?,
        coherence_invalidations: get_u64(j, "coherence_invalidations")?,
        prefetch_fills: get_u64(j, "prefetch_fills")?,
        prefetch_hits: get_u64(j, "prefetch_hits")?,
        victim_hits: get_u64(j, "victim_hits")?,
    })
}

fn record_from_json(j: &Json) -> Option<IntervalRecord> {
    Some(IntervalRecord {
        index: get_u64(j, "index")? as usize,
        ways: get_u64_vec(j, "ways")?.into_iter().map(|w| w as u32).collect(),
        cpi: get_f64_vec(j, "cpi")?,
        l2_misses: get_u64_vec(j, "l2_misses")?,
        instructions: get_u64_vec(j, "instructions")?,
        overall_cpi: j.get("overall_cpi").and_then(Json::as_f64)?,
        wall_cycles: get_u64(j, "wall_cycles")?,
    })
}

fn umon_from_json(j: &Json) -> Option<UmonProfile> {
    let way_hits = match j.get("way_hits")? {
        Json::Arr(items) => items
            .iter()
            .map(|h| match h {
                Json::Arr(vals) => vals.iter().map(as_u64).collect(),
                _ => None,
            })
            .collect::<Option<Vec<Vec<u64>>>>()?,
        _ => return None,
    };
    Some(UmonProfile {
        ways: get_u64(j, "ways")? as u32,
        sampled_sets: get_u64(j, "sampled_sets")?,
        total_sets: get_u64(j, "total_sets")?,
        way_hits,
        atd_misses: get_u64_vec(j, "atd_misses")?,
    })
}

fn outcome_from_json(j: &Json, scheme_name: &'static str) -> Option<ExecutionOutcome> {
    if j.get("scheme").and_then(as_str) != Some(scheme_name) {
        return None;
    }
    let inter = j.get("interactions")?;
    let totals = match j.get("thread_totals")? {
        Json::Arr(items) => items.iter().map(counters_from_json).collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let records = match j.get("records")? {
        Json::Arr(items) => items.iter().map(record_from_json).collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let umon_profile = match j.get("umon_profile")? {
        Json::Null => None,
        p => Some(umon_from_json(p)?),
    };
    Some(ExecutionOutcome {
        scheme: scheme_name,
        wall_cycles: get_u64(j, "wall_cycles")?,
        records,
        thread_totals: totals,
        interactions: InteractionStats {
            total_accesses: get_u64(inter, "total_accesses")?,
            inter_thread_hits: get_u64(inter, "inter_thread_hits")?,
            inter_thread_evictions: get_u64(inter, "inter_thread_evictions")?,
        },
        decision_count: get_u64(j, "decision_count")?,
        decision_nanos: get_u64(j, "decision_nanos")?,
        umon_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::context::SuiteData;
    use icp_workloads::suite;

    fn outcomes_equal(a: &ExecutionOutcome, b: &ExecutionOutcome) -> bool {
        a.scheme == b.scheme
            && a.wall_cycles == b.wall_cycles
            && a.thread_totals == b.thread_totals
            && a.interactions == b.interactions
            && a.decision_count == b.decision_count
            && a.decision_nanos == b.decision_nanos
            && a.umon_profile == b.umon_profile
            && a.records.len() == b.records.len()
            && a.records.iter().zip(&b.records).all(|(x, y)| {
                x.index == y.index
                    && x.ways == y.ways
                    && x.cpi == y.cpi
                    && x.l2_misses == y.l2_misses
                    && x.instructions == y.instructions
                    && x.overall_cpi == y.overall_cpi
                    && x.wall_cycles == y.wall_cycles
            })
    }

    #[test]
    fn any_single_field_key_perturbation_misses() {
        // The keying property test: perturb each key ingredient in turn
        // and require a distinct content address.
        let base_cfg = ExperimentConfig::test();
        let spec = suite::cg().with_threads(base_cfg.system.cores);
        let base = ResultCache::key(&spec, &base_cfg, &Scheme::ModelBased, false);

        let mut keys = vec![base.clone()];
        let mut push = |cfg: &ExperimentConfig, scheme: &Scheme, umon: bool| {
            keys.push(ResultCache::key(&spec, cfg, scheme, umon));
        };

        let mut seed = base_cfg.clone();
        seed.seed ^= 1;
        push(&seed, &Scheme::ModelBased, false); // seed

        let mut ways = base_cfg.clone();
        ways.system.l2 = icp_cmp_sim::CacheConfig::new(
            ways.system.l2.size_bytes * 2,
            ways.system.l2.ways * 2,
            ways.system.l2.line_bytes,
        );
        push(&ways, &Scheme::ModelBased, false); // ways

        let mut sets = base_cfg.clone();
        sets.system.l2 =
            icp_cmp_sim::CacheConfig::new(sets.system.l2.size_bytes * 2, sets.system.l2.ways, sets.system.l2.line_bytes);
        push(&sets, &Scheme::ModelBased, false); // sets (capacity at fixed ways)

        push(&base_cfg, &Scheme::Shared, false); // scheme
        push(&base_cfg, &Scheme::StaticCustom(vec![1; 4]), false); // scheme payload

        let mut interval = base_cfg.clone();
        interval.system.interval_instructions += 1;
        push(&interval, &Scheme::ModelBased, false); // interval

        let mut scale = base_cfg.clone();
        scale.scale = icp_workloads::WorkloadScale::Figure;
        push(&scale, &Scheme::ModelBased, false); // scale

        push(&base_cfg, &Scheme::ModelBased, true); // profiling umon

        let mut repl = base_cfg.clone();
        repl.replacement = icp_cmp_sim::ReplacementKind::TreePlru;
        push(&repl, &Scheme::ModelBased, false); // replacement

        let mut sliced = base_cfg.clone();
        sliced.system.llc = icp_cmp_sim::LlcConfig::sliced(4);
        push(&sliced, &Scheme::ModelBased, false); // LLC slice count

        push(&base_cfg, &Scheme::HierarchicalLookahead(2), false); // cluster topology
        push(&base_cfg, &Scheme::HierarchicalLookahead(4), false); // cluster count payload

        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "keys {i} and {j} alias");
            }
        }
    }

    #[test]
    fn cached_rerun_is_identical_and_simulates_nothing() {
        let cache = ResultCache::shared();
        let cfg = ExperimentConfig::test().with_result_cache(Arc::clone(&cache));
        let bench = suite::ft();
        let cold = cfg.run(&bench, &Scheme::ModelBased);
        assert_eq!(cache.simulations(), 1);
        assert_eq!(cache.hits(), 0);
        let warm = cfg.run(&bench, &Scheme::ModelBased);
        assert_eq!(cache.simulations(), 1, "warm run must not simulate");
        assert_eq!(cache.hits(), 1);
        assert!(outcomes_equal(&cold, &warm));
        // A different scheme is a different key: one more simulation.
        let _ = cfg.run(&bench, &Scheme::Shared);
        assert_eq!(cache.simulations(), 2);
    }

    #[test]
    fn warm_figures_rerun_reports_zero_simulations_and_identical_tables() {
        // The tentpole acceptance test: collect the whole figures matrix
        // twice against one result cache — the second pass simulates
        // nothing and renders byte-identical tables.
        let cache = ResultCache::shared();
        let cfg = ExperimentConfig::test().with_result_cache(Arc::clone(&cache));
        let cold = SuiteData::collect(&cfg);
        let cold_sims = cache.simulations();
        assert_eq!(cold_sims, 36, "9 benchmarks x 4 schemes");
        let cold_tables = [
            crate::figures::fig19_vs_private(&cold).render(),
            crate::figures::fig20_vs_shared(&cold).render(),
            crate::figures::fig21_vs_throughput(&cold).render(),
        ];
        let warm = SuiteData::collect(&cfg);
        assert_eq!(cache.simulations(), cold_sims, "warm rerun must simulate nothing");
        assert_eq!(cache.hits(), 36);
        let warm_tables = [
            crate::figures::fig19_vs_private(&warm).render(),
            crate::figures::fig20_vs_shared(&warm).render(),
            crate::figures::fig21_vs_throughput(&warm).render(),
        ];
        assert_eq!(cold_tables, warm_tables);
    }

    #[test]
    fn persisted_entries_survive_a_fresh_cache() {
        // Disk round-trip: a brand-new cache over the same directory serves
        // the outcome from its file, byte-identically, without simulating.
        let dir = std::env::temp_dir().join(format!("icp-result-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = suite::swim();
        let cold_cache = ResultCache::persistent(&dir);
        let cfg = ExperimentConfig::test().with_result_cache(Arc::clone(&cold_cache));
        let cold = cfg.run(&bench, &Scheme::ModelBased);
        let profiled_cold = cfg.run_profiled(&bench, &Scheme::StaticEqual);
        assert_eq!(cold_cache.simulations(), 2);

        let warm_cache = ResultCache::persistent(&dir);
        let cfg = ExperimentConfig::test().with_result_cache(Arc::clone(&warm_cache));
        let warm = cfg.run(&bench, &Scheme::ModelBased);
        let profiled_warm = cfg.run_profiled(&bench, &Scheme::StaticEqual);
        assert_eq!(warm_cache.simulations(), 0, "all entries must load from disk");
        assert_eq!(warm_cache.disk_hits(), 2);
        assert!(outcomes_equal(&cold, &warm));
        assert!(outcomes_equal(&profiled_cold, &profiled_warm));
        assert!(profiled_warm.umon_profile.is_some(), "profile survives the round-trip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn totals_accumulate_in_key_order() {
        let cache = ResultCache::shared();
        let cfg = ExperimentConfig::test().with_result_cache(Arc::clone(&cache));
        assert_eq!(cache.totals(), CacheTotals::default());
        let out = cfg.run(&suite::cg(), &Scheme::Shared);
        let t = cache.totals();
        assert_eq!(t.sim_cycles, out.wall_cycles);
        assert_eq!(
            t.accesses,
            out.thread_totals.iter().map(|c| c.l1_hits + c.l1_misses).sum::<u64>()
        );
        assert!(t.digest != 0);
        // A second entry changes the totals deterministically.
        let _ = cfg.run(&suite::cg(), &Scheme::StaticEqual);
        let t2 = cache.totals();
        assert!(t2.sim_cycles > t.sim_cycles);
        assert_ne!(t2.digest, t.digest);
    }
}
