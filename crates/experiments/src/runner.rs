//! Running one benchmark under one partitioning scheme, and sweep
//! utilities.

use icp_baselines::{
    FairnessOrientedPolicy, ModelThroughputPolicy, SharedCachePolicy, StaticEqualPolicy,
    StaticPolicy, UcpThroughputPolicy,
};
use icp_cmp_sim::{Llc, Machine, Simulator, SystemConfig};
use icp_core::policy::Partitioner;
use icp_core::{
    CpiProportionalPolicy, ExecutionOutcome, HierarchicalPolicy, IntraAppRuntime,
    ModelBasedPolicy,
};
use icp_workloads::{BenchmarkSpec, WorkloadScale};

/// The partitioning schemes the experiments compare.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Plain shared cache (global LRU) — Figure 20 baseline.
    Shared,
    /// Static equal partition (= private caches / optimal fairness) —
    /// Figure 19 baseline.
    StaticEqual,
    /// The paper's §VI-A CPI-proportional dynamic scheme.
    CpiProportional,
    /// The paper's §VI-B model-based dynamic scheme (the headline scheme).
    ModelBased,
    /// Model-based with the strict Figure 13 termination rule (revert on
    /// *any* critical-thread change) — ablation.
    ModelBasedStrict,
    /// Model-based with an alternative curve family — ablation.
    ModelBasedWith(icp_core::ModelKind),
    /// Model-based with phase-change detection (model reset on 50%
    /// prediction error) — extension/ablation.
    ModelBasedPhaseDetect,
    /// UCP-style throughput-oriented scheme — Figure 21 baseline.
    UcpThroughput,
    /// Throughput objective on the paper's spline machinery (ablation).
    ModelThroughput,
    /// Fairness objective on the paper's spline machinery (extension).
    Fairness,
    /// The dynamic model-based policy applied through OS-style *set*
    /// partitioning (page coloring) instead of way partitioning —
    /// mechanism comparison.
    SetPartitionDynamic,
    /// A fixed custom partition (sensitivity sweeps).
    StaticCustom(Vec<u32>),
    /// Hierarchical lookahead (LFOC-style cluster-then-partition): the
    /// given number of thread clusters, inter-cluster capacity by greedy
    /// lookahead over merged per-cluster UMON curves, the paper's
    /// CPI-proportional critical-path policy within each cluster — the
    /// scaling path for 8+ core sliced-LLC configs.
    HierarchicalLookahead(usize),
}

impl Scheme {
    /// Builds the policy object for this scheme.
    pub fn policy(&self) -> Box<dyn Partitioner + Send> {
        match self {
            Scheme::Shared => Box::new(SharedCachePolicy),
            Scheme::StaticEqual => Box::new(StaticEqualPolicy),
            Scheme::CpiProportional => Box::new(CpiProportionalPolicy::new()),
            Scheme::ModelBased => Box::new(ModelBasedPolicy::new()),
            Scheme::ModelBasedStrict => Box::new(ModelBasedPolicy::with_strict_termination()),
            Scheme::ModelBasedWith(kind) => Box::new(ModelBasedPolicy::with_model_kind(*kind)),
            Scheme::ModelBasedPhaseDetect => Box::new(ModelBasedPolicy::with_phase_detection(0.5)),
            Scheme::UcpThroughput => Box::new(UcpThroughputPolicy::new()),
            Scheme::ModelThroughput => Box::new(ModelThroughputPolicy::new()),
            Scheme::Fairness => Box::new(FairnessOrientedPolicy::new()),
            Scheme::SetPartitionDynamic => Box::new(
                icp_baselines::SetPartitionAdapter::new(ModelBasedPolicy::new()),
            ),
            Scheme::StaticCustom(ways) => Box::new(StaticPolicy::new(ways.clone())),
            Scheme::HierarchicalLookahead(clusters) => {
                Box::new(HierarchicalPolicy::clustered_lookahead(*clusters))
            }
        }
    }

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Shared => "shared",
            Scheme::StaticEqual => "static-equal",
            Scheme::CpiProportional => "cpi-proportional",
            Scheme::ModelBased => "model-based",
            Scheme::ModelBasedStrict => "model-based-strict",
            Scheme::ModelBasedWith(_) => "model-based-alt",
            Scheme::ModelBasedPhaseDetect => "model-based-phase",
            Scheme::UcpThroughput => "ucp-throughput",
            Scheme::ModelThroughput => "model-throughput",
            Scheme::Fairness => "fairness",
            Scheme::SetPartitionDynamic => "set-partition",
            Scheme::StaticCustom(_) => "static-custom",
            Scheme::HierarchicalLookahead(_) => "hier-lookahead",
        }
    }
}

/// Common configuration for all experiments.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The simulated system.
    pub system: SystemConfig,
    /// Workload length scaling.
    pub scale: WorkloadScale,
    /// Master seed; every (benchmark, scheme) run derives its streams from
    /// this, so whole figures are reproducible from one number.
    pub seed: u64,
    /// L2 replacement policy (exact LRU by default; tree PLRU for the
    /// hardware-realism ablation).
    pub replacement: icp_cmp_sim::ReplacementKind,
    /// Partition enforcement mechanism (gradual replacement per §V by
    /// default; instant reconfiguration for the enforcement ablation).
    pub enforcement: icp_cmp_sim::EnforcementKind,
    /// Optional shared trace cache: when set, each distinct workload is
    /// generated once, packed, and replayed zero-copy for every scheme run
    /// (see [`crate::trace_cache::TraceCache`]). `None` regenerates streams
    /// per run — bit-identical results either way.
    pub trace_cache: Option<std::sync::Arc<crate::trace_cache::TraceCache>>,
    /// Optional shared result cache: when set, each distinct
    /// (benchmark, system, scale, seed, scheme) simulation runs once and
    /// every later request for the same point is served from memory (or
    /// disk, for persistent caches) — see
    /// [`crate::result_cache::ResultCache`]. `None` simulates every run —
    /// bit-identical results either way.
    pub result_cache: Option<std::sync::Arc<crate::result_cache::ResultCache>>,
}

impl ExperimentConfig {
    /// Fast figure-reproduction defaults: the scaled-down 4-core system
    /// with the interval length chosen so a run covers ~50 execution
    /// intervals, like the paper's measurement window.
    pub fn quick() -> Self {
        let mut system = SystemConfig::scaled_down();
        let scale = WorkloadScale::Figure;
        // 9 benchmarks share the same section structure; pick the interval
        // so that (threads x per-thread instructions) / interval ≈ 50.
        let per_thread = 12_000.0 * 10.0 * scale.factor(); // section x count x scale
        system.interval_instructions = ((per_thread * system.cores as f64) / 50.0) as u64;
        ExperimentConfig {
            system,
            scale,
            seed: 0x1C9_2010,
            replacement: icp_cmp_sim::ReplacementKind::TrueLru,
            enforcement: icp_cmp_sim::EnforcementKind::Replacement,
            trace_cache: None,
            result_cache: None,
        }
    }

    /// Tiny configuration for unit tests of the harness itself.
    pub fn test() -> Self {
        let mut system = SystemConfig::scaled_down();
        let scale = WorkloadScale::Test;
        let per_thread = 12_000.0 * 10.0;
        system.interval_instructions = ((per_thread * system.cores as f64) / 25.0) as u64;
        ExperimentConfig {
            system,
            scale,
            seed: 7,
            replacement: icp_cmp_sim::ReplacementKind::TrueLru,
            enforcement: icp_cmp_sim::EnforcementKind::Replacement,
            trace_cache: None,
            result_cache: None,
        }
    }

    /// Re-targets the experiment to `n` cores (Figure 22).
    pub fn with_cores(mut self, n: usize) -> Self {
        self.system.cores = n;
        self
    }

    /// Re-targets the experiment to `cores` cores over an LLC of `slices`
    /// address-hashed slices (1 = the paper's monolithic L2). The shared
    /// entry point for the eight-core figure and the `eight_plus_core`
    /// scorecard tier, so both drive the same machine-model code path.
    pub fn with_topology(mut self, cores: usize, slices: u32) -> Self {
        self.system.cores = cores;
        self.system.llc = icp_cmp_sim::LlcConfig::sliced(slices);
        self
    }

    /// Attaches a trace cache: workloads are generated once and replayed
    /// from packed traces for every subsequent run with the same inputs.
    pub fn with_trace_cache(
        mut self,
        cache: std::sync::Arc<crate::trace_cache::TraceCache>,
    ) -> Self {
        self.trace_cache = Some(cache);
        self
    }

    /// Attaches a fresh trace cache unless one is already present — the
    /// figure/sweep entry points call this so every multi-run pass
    /// generates each workload exactly once by default.
    pub fn with_default_trace_cache(&self) -> Self {
        let mut cfg = self.clone();
        if cfg.trace_cache.is_none() {
            cfg.trace_cache = Some(crate::trace_cache::TraceCache::shared());
        }
        cfg
    }

    /// Attaches a result cache: each distinct simulation runs once and is
    /// served from the cache for every later request with the same inputs.
    pub fn with_result_cache(
        mut self,
        cache: std::sync::Arc<crate::result_cache::ResultCache>,
    ) -> Self {
        self.result_cache = Some(cache);
        self
    }

    /// Attaches a fresh in-memory result cache unless one is already
    /// present — the figure/sweep entry points call this so every
    /// multi-run pass simulates each (benchmark, scheme) point exactly
    /// once by default.
    pub fn with_default_result_cache(&self) -> Self {
        let mut cfg = self.clone();
        if cfg.result_cache.is_none() {
            cfg.result_cache = Some(crate::result_cache::ResultCache::shared());
        }
        cfg
    }

    /// Resolves `bench` to the configured core count.
    fn normalized(&self, bench: &BenchmarkSpec) -> BenchmarkSpec {
        if bench.threads.len() == self.system.cores {
            bench.clone()
        } else {
            bench.with_threads(self.system.cores)
        }
    }

    /// One full simulation of `spec` (already normalised) under `scheme`,
    /// with a profiling utility monitor attached when `profile` is set.
    /// Monolithic configs run the serial [`Simulator`]; sliced configs
    /// (`system.llc.slices > 1`) run the slice-parallel [`Llc`] machine —
    /// same runtime loop either way, via the [`Machine`] trait.
    fn simulate(&self, spec: &BenchmarkSpec, scheme: &Scheme, profile: bool) -> ExecutionOutcome {
        let streams = match &self.trace_cache {
            Some(cache) => cache.replay_streams(spec, &self.system, self.scale, self.seed),
            None => spec.build_streams(&self.system, self.scale, self.seed),
        };
        if self.system.llc.slices > 1 {
            self.drive(&mut Llc::new(self.system, streams), scheme, profile)
        } else {
            self.drive(&mut Simulator::new(self.system, streams), scheme, profile)
        }
    }

    /// Configures a machine and executes `scheme`'s runtime loop on it.
    fn drive<M: Machine>(&self, sim: &mut M, scheme: &Scheme, profile: bool) -> ExecutionOutcome {
        sim.set_replacement(self.replacement);
        sim.set_enforcement(self.enforcement);
        if profile {
            // Passive observation: the monitor shadows the L2 with sampled
            // ATDs but never feeds back into it, so simulated counters are
            // bit-identical with and without it (pinned by a runtime test).
            sim.enable_umon(1);
        }
        let mut runtime = IntraAppRuntime::new(scheme.policy(), &self.system);
        runtime.execute(sim)
    }

    fn run_inner(&self, bench: &BenchmarkSpec, scheme: &Scheme, profile: bool) -> ExecutionOutcome {
        let spec = self.normalized(bench);
        match &self.result_cache {
            Some(cache) => {
                let key = crate::result_cache::ResultCache::key(&spec, self, scheme, profile);
                // The stored name must be the *policy* name (what the
                // outcome carries), not the scheme label — ablation
                // variants share a policy name but differ in the key.
                let name = scheme.policy().name();
                cache.get_or_run(key, name, || self.simulate(&spec, scheme, profile))
            }
            None => self.simulate(&spec, scheme, profile),
        }
    }

    /// Runs `bench` under `scheme` and returns the outcome.
    pub fn run(&self, bench: &BenchmarkSpec, scheme: &Scheme) -> ExecutionOutcome {
        self.run_inner(bench, scheme, false)
    }

    /// Runs `bench` under `scheme` with a full-run profiling utility
    /// monitor: the returned outcome carries
    /// [`icp_core::ExecutionOutcome::umon_profile`] with cumulative
    /// way-hit histograms (the input of the analytical sweep fast path,
    /// [`crate::miss_model`]). Simulated counters are bit-identical to a
    /// plain [`ExperimentConfig::run`]; profiled runs cache under a
    /// distinct key.
    pub fn run_profiled(&self, bench: &BenchmarkSpec, scheme: &Scheme) -> ExecutionOutcome {
        self.run_inner(bench, scheme, true)
    }

    /// Runs `bench` under several schemes on budget-leased workers,
    /// preserving order.
    pub fn run_schemes(&self, bench: &BenchmarkSpec, schemes: &[Scheme]) -> Vec<ExecutionOutcome> {
        crate::sched::parallel_map(schemes.to_vec(), |s| self.run(bench, s))
    }

    /// Runs the full suite under one scheme on budget-leased workers in
    /// longest-first cost order, preserving output order.
    pub fn run_suite(&self, benches: &[BenchmarkSpec], scheme: &Scheme) -> Vec<ExecutionOutcome> {
        crate::sched::weighted_map(
            benches.to_vec(),
            |b| crate::sched::job_cost(b, self),
            |b| self.run(b, scheme),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icp_workloads::suite;

    #[test]
    fn runs_one_benchmark_under_all_schemes() {
        let cfg = ExperimentConfig::test();
        let bench = suite::mg();
        for scheme in [
            Scheme::Shared,
            Scheme::StaticEqual,
            Scheme::CpiProportional,
            Scheme::ModelBased,
            Scheme::UcpThroughput,
            Scheme::ModelThroughput,
            Scheme::Fairness,
        ] {
            let out = cfg.run(&bench, &scheme);
            assert!(out.wall_cycles > 0, "{scheme:?}");
            assert!(out.intervals() > 0, "{scheme:?}");
            assert_eq!(out.scheme, scheme.label(), "{scheme:?}");
        }
    }

    #[test]
    fn every_scheme_builds_a_policy_with_matching_label() {
        use icp_core::ModelKind;
        let schemes = [
            Scheme::Shared,
            Scheme::StaticEqual,
            Scheme::CpiProportional,
            Scheme::ModelBased,
            Scheme::ModelBasedStrict,
            Scheme::ModelBasedWith(ModelKind::Pchip),
            Scheme::ModelBasedWith(ModelKind::Linear),
            Scheme::ModelBasedPhaseDetect,
            Scheme::UcpThroughput,
            Scheme::ModelThroughput,
            Scheme::Fairness,
            Scheme::SetPartitionDynamic,
            Scheme::StaticCustom(vec![16; 4]),
            Scheme::HierarchicalLookahead(2),
        ];
        for s in schemes {
            let p = s.policy();
            assert!(!p.name().is_empty(), "{s:?}");
            assert!(!s.label().is_empty(), "{s:?}");
            // Only the UCP baseline and the hierarchical lookahead scheme
            // need a utility monitor.
            let umon_schemes = s == Scheme::UcpThroughput
                || matches!(s, Scheme::HierarchicalLookahead(_));
            assert_eq!(p.wants_umon(), umon_schemes, "{s:?}");
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = ExperimentConfig::test();
        let bench = suite::ft();
        let a = cfg.run(&bench, &Scheme::ModelBased);
        let b = cfg.run(&bench, &Scheme::ModelBased);
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn eight_core_retarget() {
        let cfg = ExperimentConfig::test().with_cores(8);
        let out = cfg.run(&suite::mg(), &Scheme::StaticEqual);
        assert_eq!(out.thread_totals.len(), 8);
    }

    #[test]
    fn sliced_topology_routes_through_llc_machine() {
        // One slice through with_topology must equal the monolithic path
        // bit for bit (the N = 1 degenerate case runs the serial engine).
        let mono = ExperimentConfig::test().with_cores(8);
        let one = ExperimentConfig::test().with_topology(8, 1);
        let a = mono.run(&suite::mg(), &Scheme::ModelBased);
        let b = one.run(&suite::mg(), &Scheme::ModelBased);
        assert_eq!(a.wall_cycles, b.wall_cycles);
        // A genuinely sliced config runs and reports per-thread totals.
        let sliced = ExperimentConfig::test().with_topology(8, 4);
        let out = sliced.run(&suite::mg(), &Scheme::HierarchicalLookahead(2));
        assert_eq!(out.thread_totals.len(), 8);
        assert!(out.wall_cycles > 0);
        assert_eq!(out.scheme, "hier-lookahead");
        // Sliced runs are reproducible (slice-parallel merge is
        // deterministic).
        let again = sliced.run(&suite::mg(), &Scheme::HierarchicalLookahead(2));
        assert_eq!(out.wall_cycles, again.wall_cycles);
    }
}
