//! Minimal JSON emission for machine-readable experiment results.
//!
//! Deliberately hand-rolled (the workspace's dependency policy keeps the
//! simulator's ecosystem footprint to the approved crates): a small writer
//! covering exactly the value shapes the harness exports — objects, arrays,
//! strings, numbers, booleans. Output is deterministic (insertion order).

use std::fmt::Write as _;

use icp_core::{ExecutionOutcome, IntervalRecord};

use crate::table::Table;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Finite number (emitted via shortest-roundtrip formatting).
    Num(f64),
    /// String (escaped on emission).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Serialises to compact JSON via `Display`/`to_string`.
///
/// # Panics
/// Panics on non-finite numbers (JSON cannot represent them).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a u64 (exact for values below 2^53).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this writer emits: no `\u` escapes
    /// beyond what [`Json::Str`] emission produces, no exponents outside
    /// `f64::from_str`'s grammar). Returns `None` on malformed input or
    /// trailing garbage — callers treat that as "no previous file".
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = Self::parse_value(bytes, &mut pos)?;
        Self::skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn eat(bytes: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
        Self::skip_ws(bytes, pos);
        match *bytes.get(*pos)? {
            b'n' => Self::eat(bytes, pos, "null").map(|_| Json::Null),
            b't' => Self::eat(bytes, pos, "true").map(|_| Json::Bool(true)),
            b'f' => Self::eat(bytes, pos, "false").map(|_| Json::Bool(false)),
            b'"' => Self::parse_string(bytes, pos).map(Json::Str),
            b'[' => {
                *pos += 1;
                let mut items = Vec::new();
                Self::skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Some(Json::Arr(items));
                }
                loop {
                    items.push(Self::parse_value(bytes, pos)?);
                    Self::skip_ws(bytes, pos);
                    match bytes.get(*pos)? {
                        b',' => *pos += 1,
                        b']' => {
                            *pos += 1;
                            return Some(Json::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'{' => {
                *pos += 1;
                let mut pairs = Vec::new();
                Self::skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Some(Json::Obj(pairs));
                }
                loop {
                    Self::skip_ws(bytes, pos);
                    let key = Self::parse_string(bytes, pos)?;
                    Self::skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return None;
                    }
                    *pos += 1;
                    pairs.push((key, Self::parse_value(bytes, pos)?));
                    Self::skip_ws(bytes, pos);
                    match bytes.get(*pos)? {
                        b',' => *pos += 1,
                        b'}' => {
                            *pos += 1;
                            return Some(Json::Obj(pairs));
                        }
                        _ => return None,
                    }
                }
            }
            _ => {
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .ok()?
                    .parse::<f64>()
                    .ok()
                    .filter(|n| n.is_finite())
                    .map(Json::Num)
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
        if bytes.get(*pos) != Some(&b'"') {
            return None;
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match *bytes.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match *bytes.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(bytes.get(*pos + 1..*pos + 5)?).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            *pos += 4;
                        }
                        _ => return None,
                    }
                    *pos += 1;
                }
                c if c < 0x80 => {
                    out.push(c as char);
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s = std::str::from_utf8(&bytes[*pos..]).ok()?;
                    let ch = s.chars().next()?;
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON cannot represent {n}");
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Converts one interval record.
fn interval_to_json(r: &IntervalRecord) -> Json {
    Json::obj(vec![
        ("index", Json::u64(r.index as u64)),
        ("ways", Json::Arr(r.ways.iter().map(|w| Json::u64(*w as u64)).collect())),
        ("cpi", Json::Arr(r.cpi.iter().map(|c| Json::Num(*c)).collect())),
        (
            "l2_misses",
            Json::Arr(r.l2_misses.iter().map(|m| Json::u64(*m)).collect()),
        ),
        (
            "instructions",
            Json::Arr(r.instructions.iter().map(|i| Json::u64(*i)).collect()),
        ),
        ("overall_cpi", Json::Num(r.overall_cpi)),
        ("wall_cycles", Json::u64(r.wall_cycles)),
    ])
}

/// Converts a full execution outcome (scheme, wall cycles, per-thread
/// totals, per-interval log) to JSON.
pub fn outcome_to_json(out: &ExecutionOutcome) -> Json {
    let totals: Vec<Json> = out
        .thread_totals
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("instructions", Json::u64(c.instructions)),
                ("active_cycles", Json::u64(c.active_cycles)),
                ("barrier_stall_cycles", Json::u64(c.barrier_stall_cycles)),
                ("l1_hits", Json::u64(c.l1_hits)),
                ("l1_misses", Json::u64(c.l1_misses)),
                ("l2_hits", Json::u64(c.l2_hits)),
                ("l2_misses", Json::u64(c.l2_misses)),
                ("l1_writebacks", Json::u64(c.l1_writebacks)),
                ("l2_writebacks", Json::u64(c.l2_writebacks)),
                ("cpi", Json::Num(c.cpi())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("scheme", Json::str(out.scheme)),
        ("wall_cycles", Json::u64(out.wall_cycles)),
        ("intervals", Json::u64(out.intervals() as u64)),
        (
            "inter_thread_fraction",
            Json::Num(out.interactions.inter_thread_fraction()),
        ),
        ("thread_totals", Json::Arr(totals)),
        (
            "records",
            Json::Arr(out.records.iter().map(interval_to_json).collect()),
        ),
    ])
}

/// Converts a rendered table (headers + rows) to a JSON array of objects.
pub fn table_to_json(table: &Table) -> Json {
    let csv = table.to_csv();
    let mut lines = csv.lines();
    let headers: Vec<&str> = lines.next().map(|h| h.split(',').collect()).unwrap_or_default();
    let rows = lines
        .map(|line| {
            Json::Obj(
                headers
                    .iter()
                    .zip(line.split(','))
                    .map(|(h, cell)| {
                        let v = cell
                            .trim_end_matches('%')
                            .parse::<f64>()
                            .map(Json::Num)
                            .unwrap_or_else(|_| Json::str(cell));
                        (h.to_string(), v)
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Arr(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::u64(42).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(
            Json::str("a\"b\\c\nd").to_string(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nesting() {
        let j = Json::obj(vec![
            ("xs", Json::Arr(vec![Json::u64(1), Json::u64(2)])),
            ("name", Json::str("t")),
        ]);
        assert_eq!(j.to_string(), r#"{"xs":[1,2],"name":"t"}"#);
    }

    #[test]
    #[should_panic(expected = "cannot represent")]
    fn rejects_nan() {
        Json::Num(f64::NAN).to_string();
    }

    #[test]
    fn outcome_roundtrip_shape() {
        let cfg = crate::runner::ExperimentConfig::test();
        let out = cfg.run(&icp_workloads::suite::ft(), &crate::Scheme::Shared);
        let j = outcome_to_json(&out).to_string();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"scheme\":\"shared\""));
        assert!(j.contains("\"records\":["));
        assert!(j.contains("\"l2_misses\""));
        // Valid-ish: balanced braces/brackets.
        let balance = |open: char, close: char| {
            j.chars().filter(|&c| c == open).count() == j.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let j = Json::obj(vec![
            ("xs", Json::Arr(vec![Json::u64(1), Json::Num(2.5), Json::Null])),
            ("name", Json::str("a\"b\\c\nd\u{1}é")),
            ("ok", Json::Bool(false)),
            ("nested", Json::obj(vec![("k", Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&j.to_string()), Some(j));
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        assert_eq!(
            Json::parse(" { \"a\" : [ 1 , 2 ] } \n"),
            Some(Json::obj(vec![("a", Json::Arr(vec![Json::u64(1), Json::u64(2)]))]))
        );
        assert_eq!(Json::parse("{\"a\":1} trailing"), None);
        assert_eq!(Json::parse("{\"a\":}"), None);
        assert_eq!(Json::parse(""), None);
    }

    #[test]
    fn get_and_as_f64() {
        let j = Json::obj(vec![("n", Json::u64(7))]);
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(7.0));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }

    #[test]
    fn table_to_json_parses_numbers() {
        let mut t = Table::new("x", &["bench", "improvement"]);
        t.row(vec!["swim".into(), "11.1%".into()]);
        let j = table_to_json(&t).to_string();
        assert_eq!(j, r#"[{"bench":"swim","improvement":11.1}]"#);
    }
}
