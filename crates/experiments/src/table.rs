//! Plain-text table and series rendering for figure reproductions.
//!
//! Paper figures are bar charts and line plots; our reproductions print the
//! underlying series as aligned text tables (and optionally CSV) so the
//! shape comparison — who wins, by how much, where the crossovers are — can
//! be made directly from terminal output.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use icp_experiments::table::Table;
///
/// let mut t = Table::new("Demo", &["bench", "speedup"]);
/// t.row(vec!["swim".into(), "11.1%".into()]);
/// assert!(t.render().contains("swim"));
/// assert_eq!(t.to_csv().lines().count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:>w$} | ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", line(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (headers + rows, comma-separated, no quoting —
    /// callers only emit numeric/identifier cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float with 2 decimal places (tables' default precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal place.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["longer".into(), "2.50".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| longer |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert_eq!(csv.lines().next().unwrap(), "a,b");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("x", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00"); // bankers-ish rounding of format!
        assert_eq!(f3(2.0), "2.000");
        assert_eq!(pct(12.34), "12.3%");
    }
}
