//! Experiment harness: reproduces every figure and table of the paper's
//! evaluation (see `DESIGN.md` for the full experiment index).
//!
//! The entry points are the `figures` module (one function per paper
//! figure, returning structured data with markdown rendering) and the
//! `repro` binary (`cargo run -p icp-experiments --bin repro -- all`).
//!
//! All experiments run on a scaled-down system by default — same shape as
//! the paper's Figure 2 configuration (4 cores, 64-way shared L2, private
//! L1s) with a smaller capacity and shorter intervals so a full
//! reproduction takes seconds, not days. Working sets are specified
//! relative to L2 capacity, so the phenomenology carries over; pass a
//! paper-scale [`ExperimentConfig`] for the full-size configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod figures;
pub mod hotpath;
pub mod json;
pub mod miss_model;
pub mod result_cache;
pub mod runner;
pub mod sched;
pub mod scorecard;
pub mod sweeps;
pub mod table;
pub mod trace_cache;

pub use miss_model::BenchPredictor;
pub use result_cache::ResultCache;
pub use runner::{ExperimentConfig, Scheme};
pub use trace_cache::TraceCache;
