//! Content-addressed cache of packed workload traces.
//!
//! Figure and sweep runs simulate the same workload under many schemes: a
//! figures pass runs each suite benchmark under 4 schemes, a sweep under 3
//! schemes per configuration point. Without caching, every run re-generates
//! its streams from scratch — the Zipf sampling behind generation is a
//! material fraction of short runs. A [`TraceCache`] materialises each
//! distinct workload exactly once into compact [`PackedTrace`] columns
//! (record-once) and hands out zero-copy replay cursors for every
//! subsequent run (simulate-many).
//!
//! Entries are content-addressed: the key covers every input that shapes a
//! generated stream — the full benchmark spec (thread phase parameters,
//! shared region, barrier structure), the L2 geometry the working sets are
//! sized against, the workload scale, and the master seed. Anything *not*
//! in the key (interval length, latencies, replacement policy, the scheme)
//! genuinely doesn't affect generation, which is what makes interval and
//! latency sweep points cache hits. Simulations from cached replays are
//! bit-identical to inline generation (`trace_cache_equivalence` tests).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use icp_cmp_sim::stream::AccessStream;
use icp_cmp_sim::{PackedTrace, SystemConfig};
use icp_hot_path::deterministic;
use icp_workloads::{BenchmarkSpec, WorkloadScale};

/// One cache slot: claimed the moment a generator commits to producing a
/// key, filled when its traces are ready. Waiters on a `Pending` slot
/// park on the cache condvar instead of generating a duplicate.
#[derive(Debug)]
enum Slot {
    /// Some thread is generating this key right now.
    Pending,
    /// Materialised traces, shareable by reference.
    Ready(Vec<Arc<PackedTrace>>),
}

/// A thread-safe generate-once store of packed workload traces.
///
/// Shared across parallel scheme runs behind an [`Arc`]; the generation
/// and hit counters make "each workload generated exactly once" a testable
/// property rather than a hope.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<BTreeMap<String, Slot>>,
    ready: Condvar,
    generations: AtomicU64,
    hits: AtomicU64,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Creates an empty cache ready for sharing across runs.
    pub fn shared() -> Arc<Self> {
        Arc::new(TraceCache::new())
    }

    /// The content address of one workload materialisation.
    ///
    /// `Debug` for `f64` prints the shortest round-trip representation, so
    /// distinct parameter values always yield distinct keys. The LLC slice
    /// count participates even though generation itself is slice-blind:
    /// keying the topology keeps cached traces unambiguous about the
    /// machine they were recorded for, at the cost of one extra generation
    /// per topology (sliced scenarios are rare next to figure sweeps).
    fn key(spec: &BenchmarkSpec, cfg: &SystemConfig, scale: WorkloadScale, seed: u64) -> String {
        format!(
            "{spec:?}|l2={}x{}|slices={}|scale={scale:?}|seed={seed:#x}",
            cfg.l2.size_bytes, cfg.l2.line_bytes, cfg.llc.slices
        )
    }

    /// Returns the packed traces for a workload, generating them on first
    /// use.
    ///
    /// Generation happens *outside* the cache lock: the first requester
    /// claims the key with a [`Slot::Pending`] marker, releases the lock,
    /// generates, and publishes [`Slot::Ready`] — so first-time
    /// generations of distinct workloads overlap across threads instead
    /// of serialising on the cache. Concurrent requests for the *same*
    /// workload park on a condvar until the claimant publishes (the
    /// exactly-once guarantee the counters assert). Within a key the
    /// per-thread streams are materialised by budget-leased producers
    /// ([`BenchmarkSpec::pack_streams_parallel`]), each writing straight
    /// into packed columns; the result is bit-identical to sequential
    /// recording.
    #[deterministic]
    pub fn get_or_pack(
        &self,
        spec: &BenchmarkSpec,
        cfg: &SystemConfig,
        scale: WorkloadScale,
        seed: u64,
    ) -> Vec<Arc<PackedTrace>> {
        let key = TraceCache::key(spec, cfg, scale, seed);
        {
            let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match map.get(&key) {
                    Some(Slot::Ready(traces)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return traces.clone();
                    }
                    Some(Slot::Pending) => {
                        map = self.ready.wait(map).unwrap_or_else(|e| e.into_inner());
                    }
                    None => {
                        // Claim the key; generation happens below, unlocked.
                        map.insert(key.clone(), Slot::Pending);
                        break;
                    }
                }
            }
        }
        // Claim guard: if generation panics, clear the Pending marker and
        // wake waiters so they can reclaim instead of parking forever.
        struct Unclaim<'a> {
            cache: &'a TraceCache,
            key: &'a str,
            armed: bool,
        }
        impl Drop for Unclaim<'_> {
            fn drop(&mut self) {
                if self.armed {
                    let mut map =
                        self.cache.entries.lock().unwrap_or_else(|e| e.into_inner());
                    map.remove(self.key);
                    self.cache.ready.notify_all();
                }
            }
        }
        let mut guard = Unclaim { cache: self, key: &key, armed: true };
        let traces = spec.pack_streams_parallel(cfg, scale, seed, usize::MAX);
        guard.armed = false;
        self.generations.fetch_add(1, Ordering::Relaxed);
        let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(key.clone(), Slot::Ready(traces.clone()));
        self.ready.notify_all();
        traces
    }

    /// Returns one zero-copy replay stream per thread for a workload,
    /// generating and packing it on first use.
    pub fn replay_streams(
        &self,
        spec: &BenchmarkSpec,
        cfg: &SystemConfig,
        scale: WorkloadScale,
        seed: u64,
    ) -> Vec<Box<dyn AccessStream>> {
        self.get_or_pack(spec, cfg, scale, seed)
            .iter()
            .map(|t| Box::new(PackedTrace::stream(t)) as Box<dyn AccessStream>)
            .collect()
    }

    /// Number of workloads generated (cache misses).
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// Number of workloads served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cached workloads (materialised entries; in-flight
    /// claims don't count until published).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap bytes held by the cached packed columns.
    pub fn packed_bytes(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .flat_map(|s| match s {
                Slot::Ready(ts) => ts.as_slice(),
                Slot::Pending => &[],
            })
            .map(|t| t.packed_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::context::SuiteData;
    use crate::runner::{ExperimentConfig, Scheme};
    use icp_workloads::suite;

    #[test]
    fn cached_runs_are_bit_identical_to_uncached() {
        let bench = suite::cg();
        let plain = ExperimentConfig::test();
        let cached = plain.clone().with_trace_cache(TraceCache::shared());
        for scheme in [Scheme::Shared, Scheme::ModelBased] {
            let a = plain.run(&bench, &scheme);
            let b = cached.run(&bench, &scheme);
            assert_eq!(a.wall_cycles, b.wall_cycles, "{scheme:?}");
            assert_eq!(a.thread_totals, b.thread_totals, "{scheme:?}");
            assert_eq!(a.records.len(), b.records.len(), "{scheme:?}");
        }
    }

    #[test]
    fn schemes_share_one_generation() {
        let cache = TraceCache::shared();
        let cfg = ExperimentConfig::test().with_trace_cache(Arc::clone(&cache));
        let bench = suite::ft();
        cfg.run_schemes(&bench, &[Scheme::Shared, Scheme::StaticEqual, Scheme::ModelBased]);
        assert_eq!(cache.generations(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.packed_bytes() > 0);
    }

    #[test]
    fn figures_run_generates_each_suite_workload_exactly_once() {
        // The sweep-level probe: a full figures-style collection (9
        // benchmarks x 4 schemes) must generate each workload once and
        // serve the other 27 runs from cache.
        let cache = TraceCache::shared();
        let cfg = ExperimentConfig::test().with_trace_cache(Arc::clone(&cache));
        let data = SuiteData::collect(&cfg);
        assert_eq!(data.shared.len(), 9);
        assert_eq!(cache.generations(), 9, "each suite workload generated exactly once");
        assert_eq!(cache.hits(), 27, "all other runs served from cache");
    }

    #[test]
    fn distinct_workload_inputs_miss() {
        let cache = TraceCache::new();
        let cfg = ExperimentConfig::test();
        let b = suite::mg().with_threads(cfg.system.cores);
        cache.get_or_pack(&b, &cfg.system, cfg.scale, 1);
        cache.get_or_pack(&b, &cfg.system, cfg.scale, 2); // seed differs
        let mut big = cfg.system;
        big.l2.size_bytes *= 2; // geometry differs
        cache.get_or_pack(&b, &big, cfg.scale, 1);
        let mut sliced = cfg.system;
        sliced.llc = icp_cmp_sim::LlcConfig::sliced(4); // topology differs
        cache.get_or_pack(&b, &sliced, cfg.scale, 1);
        cache.get_or_pack(&b, &cfg.system, cfg.scale, 1); // repeat: hit
        assert_eq!(cache.generations(), 4);
        assert_eq!(cache.hits(), 1);
    }
}
