//! Sensitivity sweeps: how the headline comparison changes with system
//! parameters.
//!
//! The paper's §VII-C varies the core count (Figure 22); a reproduction
//! should also check that its conclusions are not an artifact of one cache
//! size or interval length. Each sweep runs a probe subset of the suite
//! under shared / static-equal / model-based and reports the dynamic
//! scheme's improvements at every point.

use icp_cmp_sim::CacheConfig;
use icp_numeric::stats;
use icp_workloads::suite;

use crate::runner::{ExperimentConfig, Scheme};
use crate::table::{pct, Table};

/// Probe benchmarks for sweeps: one strongly contended, one moderately,
/// one small-working-set (they should react differently).
fn probes() -> Vec<icp_workloads::BenchmarkSpec> {
    vec![suite::swim(), suite::cg(), suite::ft()]
}

/// Mean improvements of the dynamic scheme over (shared, equal) across the
/// probe set for one configuration.
fn measure(cfg: &ExperimentConfig) -> (f64, f64) {
    let mut vs_shared = Vec::new();
    let mut vs_equal = Vec::new();
    for b in probes() {
        let outs = cfg.run_schemes(
            &b,
            &[Scheme::Shared, Scheme::StaticEqual, Scheme::ModelBased],
        );
        vs_shared.push(outs[2].improvement_percent_over(&outs[0]));
        vs_equal.push(outs[2].improvement_percent_over(&outs[1]));
    }
    (stats::mean(&vs_shared), stats::mean(&vs_equal))
}

/// Sweeps the L2 capacity (way count held at 64; sets scale).
///
/// Expected shape: with a tiny cache everything thrashes and partitioning
/// cannot help much; with a huge cache nothing contends; the sweet spot in
/// between is where the paper's effect lives.
pub fn sweep_cache_size(cfg: &ExperimentConfig) -> Table {
    let cfg = &cfg.with_default_trace_cache();
    let mut t = Table::new(
        "Sweep: L2 capacity (dynamic scheme improvements, probe set)",
        &["l2 size", "vs shared", "vs equal"],
    );
    for kb in [64u64, 128, 256, 512, 1024] {
        let mut c = cfg.clone();
        c.system.l2 = CacheConfig::new(kb * 1024, 64, 64);
        let (s, e) = measure(&c);
        t.row(vec![format!("{kb} KB"), pct(s), pct(e)]);
    }
    t
}

/// Sweeps the core/thread count at fixed L2 capacity (the Figure 22 axis,
/// extended).
pub fn sweep_thread_count(cfg: &ExperimentConfig) -> Table {
    let cfg = &cfg.with_default_trace_cache();
    let mut t = Table::new(
        "Sweep: cores/threads sharing one L2 (dynamic scheme improvements)",
        &["cores", "vs shared", "vs equal"],
    );
    for cores in [2usize, 4, 8, 16] {
        let c = cfg.clone().with_cores(cores);
        let (s, e) = measure(&c);
        t.row(vec![cores.to_string(), pct(s), pct(e)]);
    }
    t
}

/// Sweeps the execution interval length (the paper reports "little
/// variation", §VII).
pub fn sweep_interval(cfg: &ExperimentConfig) -> Table {
    let cfg = &cfg.with_default_trace_cache();
    let mut t = Table::new(
        "Sweep: execution interval length (dynamic scheme improvements)",
        &["interval (instructions)", "vs shared", "vs equal"],
    );
    for divisor in [8u64, 4, 2, 1] {
        let mut c = cfg.clone();
        c.system.interval_instructions = (cfg.system.interval_instructions / divisor).max(1_000);
        let (s, e) = measure(&c);
        t.row(vec![c.system.interval_instructions.to_string(), pct(s), pct(e)]);
    }
    t
}

/// Sweeps the DRAM latency: the slower memory is, the more a miss costs
/// and the bigger the partitioning stakes.
pub fn sweep_memory_latency(cfg: &ExperimentConfig) -> Table {
    let cfg = &cfg.with_default_trace_cache();
    let mut t = Table::new(
        "Sweep: DRAM latency (dynamic scheme improvements)",
        &["latency (cycles)", "vs shared", "vs equal"],
    );
    for mem in [75u64, 150, 300] {
        let mut c = cfg.clone();
        c.system.latency.memory = mem;
        let (s, e) = measure(&c);
        t.row(vec![mem.to_string(), pct(s), pct(e)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_size_sweep_has_expected_rows() {
        let t = sweep_cache_size(&ExperimentConfig::test());
        assert_eq!(t.len(), 5);
        // Every cell parses as a percentage.
        for line in t.to_csv().lines().skip(1) {
            for cell in line.split(',').skip(1) {
                let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!(v.abs() < 100.0, "{line}");
            }
        }
    }

    #[test]
    fn interval_sweep_is_broadly_flat() {
        // The paper: "little variation across the results when the
        // execution interval was either increased or decreased". Allow a
        // generous band at test scale.
        let t = sweep_interval(&ExperimentConfig::test());
        let vals: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().trim_end_matches('%').parse().unwrap())
            .collect();
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min < 15.0, "interval sensitivity too large: {vals:?}");
        assert!(min > 0.0, "dynamic must beat equal at every interval: {vals:?}");
    }

    #[test]
    fn thread_sweep_runs_at_2_and_8() {
        let mut cfg = ExperimentConfig::test();
        // Keep the test fast: only verify the mechanics at two points.
        cfg.system.interval_instructions *= 2;
        for cores in [2usize, 8] {
            let c = cfg.clone().with_cores(cores);
            let (s, e) = measure(&c);
            assert!(s.is_finite() && e.is_finite(), "{cores} cores");
        }
    }
}
