//! Sensitivity sweeps: how the headline comparison changes with system
//! parameters.
//!
//! The paper's §VII-C varies the core count (Figure 22); a reproduction
//! should also check that its conclusions are not an artifact of one cache
//! size or interval length. Each sweep runs a probe subset of the suite
//! under shared / static-equal / model-based and reports the dynamic
//! scheme's improvements at every point.

use icp_cmp_sim::CacheConfig;
use icp_numeric::stats;
use icp_workloads::{suite, BenchmarkSpec};

use crate::miss_model::BenchPredictor;
use crate::runner::{ExperimentConfig, Scheme};
use crate::table::{pct, Table};

/// Default fast-mode fallback margin, in improvement percentage points: a
/// predicted improvement closer to zero than this is re-resolved by exact
/// simulation, so reported signs are always simulation-confirmed. Chosen
/// above the predictor's observed mean error (see `EXPERIMENTS.md`).
pub const DEFAULT_FAST_MARGIN: f64 = 3.0;

/// How a sweep evaluates each axis point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SweepMode {
    /// Simulate every scheme at every point — the reference mode; output
    /// tables are bit-identical to simulating without any fast path.
    Exact,
    /// One profiling simulation per (probe, geometry, seed) feeds the
    /// analytical predictor ([`crate::miss_model`]); full simulation runs
    /// only where a predicted improvement lies within `margin` percentage
    /// points of zero (or the predictor cannot be built).
    Fast {
        /// Fallback-to-simulation margin in percentage points.
        margin: f64,
    },
}

impl SweepMode {
    /// Fast mode with the default margin.
    pub fn fast() -> SweepMode {
        SweepMode::Fast { margin: DEFAULT_FAST_MARGIN }
    }
}

/// Probe benchmarks for sweeps: one strongly contended, one moderately,
/// one small-working-set (they should react differently).
fn probes() -> Vec<icp_workloads::BenchmarkSpec> {
    vec![suite::swim(), suite::cg(), suite::ft()]
}

/// Exact improvements for one probe: baselines run under `baseline` (the
/// hoisted configuration — identical to `point` except on the interval
/// axis, where static-scheme walls are interval-invariant, see
/// `static_scheme_walls_are_interval_invariant`), the dynamic scheme under
/// `point`.
fn measure_exact(
    point: &ExperimentConfig,
    baseline: &ExperimentConfig,
    bench: &BenchmarkSpec,
) -> (f64, f64) {
    let jobs = vec![
        (baseline.clone(), Scheme::Shared),
        (baseline.clone(), Scheme::StaticEqual),
        (point.clone(), Scheme::ModelBased),
    ];
    let outs = crate::sched::parallel_map(jobs, |(cfg, s)| cfg.run(bench, s));
    (
        outs[2].improvement_percent_over(&outs[0]),
        outs[2].improvement_percent_over(&outs[1]),
    )
}

/// The static scheme the fast path profiles at: the flat equal split on
/// monolithic configs, the *cluster-wise* equal split on sliced ones
/// (one cluster per slice). Anchoring the predictor at the allocation the
/// hierarchical schemes actually start from keeps sliced axis points
/// inside the prediction-error gate — with uneven way counts the flat and
/// cluster-wise splits differ, and the ratio anchoring would otherwise
/// carry that offset into every sliced prediction.
fn profile_anchor(point: &ExperimentConfig) -> Scheme {
    let slices = point.system.llc.slices as usize;
    if slices > 1 {
        Scheme::StaticCustom(crate::miss_model::clustered_equal_split(
            point.system.l2.ways,
            point.system.cores,
            slices,
        ))
    } else {
        Scheme::StaticEqual
    }
}

/// Fast-path improvements for one probe: predict from one profiled
/// static-equal run (re-anchored per cluster on sliced configs, see
/// [`profile_anchor`]), falling back to exact simulation for near-zero
/// predictions (sign must be simulation-confirmed) or an unusable profile.
fn measure_fast(
    point: &ExperimentConfig,
    baseline: &ExperimentConfig,
    bench: &BenchmarkSpec,
    margin: f64,
) -> (f64, f64) {
    let profile = baseline.run_profiled(bench, &profile_anchor(baseline));
    match BenchPredictor::from_outcome(&profile, &point.system) {
        Some(p) => {
            let (s, e) = p.improvements();
            if s.abs() < margin || e.abs() < margin {
                measure_exact(point, baseline, bench)
            } else {
                (s, e)
            }
        }
        None => measure_exact(point, baseline, bench),
    }
}

/// Mean improvements of the dynamic scheme over (shared, equal) across the
/// probe set for one configuration.
fn measure_with(
    point: &ExperimentConfig,
    baseline: &ExperimentConfig,
    mode: SweepMode,
) -> (f64, f64) {
    let mut vs_shared = Vec::new();
    let mut vs_equal = Vec::new();
    for b in probes() {
        let (s, e) = match mode {
            SweepMode::Exact => measure_exact(point, baseline, &b),
            SweepMode::Fast { margin } => measure_fast(point, baseline, &b, margin),
        };
        vs_shared.push(s);
        vs_equal.push(e);
    }
    (stats::mean(&vs_shared), stats::mean(&vs_equal))
}


/// Sweeps the L2 capacity (way count held at 64; sets scale).
///
/// Expected shape: with a tiny cache everything thrashes and partitioning
/// cannot help much; with a huge cache nothing contends; the sweet spot in
/// between is where the paper's effect lives.
pub fn sweep_cache_size(cfg: &ExperimentConfig) -> Table {
    sweep_cache_size_with(cfg, SweepMode::Exact)
}

/// [`sweep_cache_size`] with an explicit evaluation mode.
pub fn sweep_cache_size_with(cfg: &ExperimentConfig, mode: SweepMode) -> Table {
    let cfg = &cfg.with_default_trace_cache().with_default_result_cache();
    let mut t = Table::new(
        "Sweep: L2 capacity (dynamic scheme improvements, probe set)",
        &["l2 size", "vs shared", "vs equal"],
    );
    for kb in [64u64, 128, 256, 512, 1024] {
        let mut c = cfg.clone();
        c.system.l2 = CacheConfig::new(kb * 1024, 64, 64);
        let (s, e) = measure_with(&c, &c, mode);
        t.row(vec![format!("{kb} KB"), pct(s), pct(e)]);
    }
    t
}

/// Sweeps the core/thread count at fixed L2 capacity (the Figure 22 axis,
/// extended).
pub fn sweep_thread_count(cfg: &ExperimentConfig) -> Table {
    sweep_thread_count_with(cfg, SweepMode::Exact)
}

/// [`sweep_thread_count`] with an explicit evaluation mode.
pub fn sweep_thread_count_with(cfg: &ExperimentConfig, mode: SweepMode) -> Table {
    let cfg = &cfg.with_default_trace_cache().with_default_result_cache();
    let mut t = Table::new(
        "Sweep: cores/threads sharing one L2 (dynamic scheme improvements)",
        &["cores", "vs shared", "vs equal"],
    );
    for cores in [2usize, 4, 8, 16] {
        let c = cfg.clone().with_cores(cores);
        let (s, e) = measure_with(&c, &c, mode);
        t.row(vec![cores.to_string(), pct(s), pct(e)]);
    }
    t
}

/// Sweeps the execution interval length (the paper reports "little
/// variation", §VII).
pub fn sweep_interval(cfg: &ExperimentConfig) -> Table {
    sweep_interval_with(cfg, SweepMode::Exact)
}

/// [`sweep_interval`] with an explicit evaluation mode.
///
/// The static baselines are *hoisted*: interval boundaries only snapshot
/// counters, so shared / static-equal walls are bit-identical at every
/// interval length (pinned by `static_scheme_walls_are_interval_invariant`)
/// and run once at the base interval — with a result cache attached, the
/// other axis points hit instead of re-simulating.
pub fn sweep_interval_with(cfg: &ExperimentConfig, mode: SweepMode) -> Table {
    let cfg = &cfg.with_default_trace_cache().with_default_result_cache();
    let mut t = Table::new(
        "Sweep: execution interval length (dynamic scheme improvements)",
        &["interval (instructions)", "vs shared", "vs equal"],
    );
    for divisor in [8u64, 4, 2, 1] {
        let mut c = cfg.clone();
        c.system.interval_instructions = (cfg.system.interval_instructions / divisor).max(1_000);
        let (s, e) = measure_with(&c, cfg, mode);
        t.row(vec![c.system.interval_instructions.to_string(), pct(s), pct(e)]);
    }
    t
}

/// Sweeps the DRAM latency: the slower memory is, the more a miss costs
/// and the bigger the partitioning stakes.
pub fn sweep_memory_latency(cfg: &ExperimentConfig) -> Table {
    sweep_memory_latency_with(cfg, SweepMode::Exact)
}

/// [`sweep_memory_latency`] with an explicit evaluation mode.
pub fn sweep_memory_latency_with(cfg: &ExperimentConfig, mode: SweepMode) -> Table {
    let cfg = &cfg.with_default_trace_cache().with_default_result_cache();
    let mut t = Table::new(
        "Sweep: DRAM latency (dynamic scheme improvements)",
        &["latency (cycles)", "vs shared", "vs equal"],
    );
    for mem in [75u64, 150, 300] {
        let mut c = cfg.clone();
        c.system.latency.memory = mem;
        let (s, e) = measure_with(&c, &c, mode);
        t.row(vec![mem.to_string(), pct(s), pct(e)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_size_sweep_has_expected_rows() {
        let t = sweep_cache_size(&ExperimentConfig::test());
        assert_eq!(t.len(), 5);
        // Every cell parses as a percentage.
        for line in t.to_csv().lines().skip(1) {
            for cell in line.split(',').skip(1) {
                let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!(v.abs() < 100.0, "{line}");
            }
        }
    }

    #[test]
    fn interval_sweep_is_broadly_flat() {
        // The paper: "little variation across the results when the
        // execution interval was either increased or decreased". Allow a
        // generous band at test scale.
        let t = sweep_interval(&ExperimentConfig::test());
        let vals: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().trim_end_matches('%').parse().unwrap())
            .collect();
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min < 15.0, "interval sensitivity too large: {vals:?}");
        assert!(min > 0.0, "dynamic must beat equal at every interval: {vals:?}");
    }

    #[test]
    fn static_scheme_walls_are_interval_invariant() {
        // The physics behind baseline hoisting: interval boundaries only
        // snapshot counters, and the static schemes never change partition
        // state at a boundary, so their wall cycles cannot depend on the
        // interval length.
        let base = ExperimentConfig::test();
        let bench = suite::swim();
        for scheme in [Scheme::Shared, Scheme::StaticEqual] {
            let mut walls = Vec::new();
            for divisor in [8u64, 2, 1] {
                let mut c = base.clone();
                c.system.interval_instructions =
                    (base.system.interval_instructions / divisor).max(1_000);
                walls.push(c.run(&bench, &scheme).wall_cycles);
            }
            assert!(
                walls.windows(2).all(|w| w[0] == w[1]),
                "{scheme:?} wall cycles vary with interval: {walls:?}"
            );
        }
    }

    #[test]
    fn thread_sweep_runs_at_2_and_8() {
        let mut cfg = ExperimentConfig::test();
        // Keep the test fast: only verify the mechanics at two points.
        cfg.system.interval_instructions *= 2;
        for cores in [2usize, 8] {
            let c = cfg.clone().with_cores(cores);
            let (s, e) = measure_with(&c, &c, SweepMode::Exact);
            assert!(s.is_finite() && e.is_finite(), "{cores} cores");
        }
    }

    #[test]
    fn interval_axis_hoists_baselines_through_the_result_cache() {
        // Satellite 1 pin: the static baselines run once per probe at the
        // base interval and every other axis point reuses them.
        let cache = crate::result_cache::ResultCache::shared();
        let cfg =
            ExperimentConfig::test().with_result_cache(std::sync::Arc::clone(&cache));
        let _ = sweep_interval_with(&cfg, SweepMode::Exact);
        assert_eq!(
            cache.simulations(),
            18,
            "3 probes x (2 hoisted baselines + 4 dynamic points)"
        );
        assert_eq!(cache.hits(), 18, "3 probes x 3 repeated points x 2 baselines");
    }

    fn signed_cells(t: &Table) -> Vec<f64> {
        t.to_csv()
            .lines()
            .skip(1)
            .flat_map(|l| {
                l.split(',')
                    .skip(1)
                    .map(|c| c.trim_end_matches('%').parse::<f64>().unwrap())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn fast_mode_anchors_sliced_configs_at_the_cluster_split() {
        // Monolithic configs keep the bit-compatible StaticEqual anchor;
        // sliced configs profile at the cluster-wise equal split, and the
        // profile still yields a usable predictor (no silent fallback to
        // exact simulation on every sliced axis point).
        let mono = ExperimentConfig::test();
        assert_eq!(profile_anchor(&mono), Scheme::StaticEqual);
        let sliced = ExperimentConfig::test().with_topology(6, 2);
        let anchor = profile_anchor(&sliced);
        assert_eq!(
            anchor,
            Scheme::StaticCustom(vec![11, 11, 10, 11, 11, 10]),
            "cluster-wise split of 64 ways over 6 threads in 2 clusters"
        );
        let profile = sliced.run_profiled(&suite::swim(), &anchor);
        assert!(BenchPredictor::from_outcome(&profile, &sliced.system).is_some());
        let (s, e) = measure_fast(&sliced, &sliced, &suite::swim(), 0.0);
        assert!(s.is_finite() && e.is_finite());
    }

    #[test]
    fn fast_mode_agrees_with_exact_on_every_improvement_sign() {
        let cfg = ExperimentConfig::test();
        let exact = signed_cells(&sweep_interval(&cfg));
        let fast = signed_cells(&sweep_interval_with(&cfg, SweepMode::fast()));
        assert_eq!(exact.len(), fast.len());
        for (i, (e, f)) in exact.iter().zip(&fast).enumerate() {
            assert!(
                e.signum() == f.signum() || e.abs() < 1e-9,
                "cell {i}: exact {e:.2} vs fast {f:.2} disagree in sign"
            );
        }
    }

    #[test]
    fn exact_mode_tables_are_identical_to_the_unhoisted_reference() {
        // Bit-identity acceptance: hoisted baselines + result cache must
        // not change a single byte of the interval sweep table relative to
        // simulating every scheme at every point directly.
        let cfg = ExperimentConfig::test();
        let hoisted = sweep_interval(&cfg).render();
        let mut reference = Table::new(
            "Sweep: execution interval length (dynamic scheme improvements)",
            &["interval (instructions)", "vs shared", "vs equal"],
        );
        for divisor in [8u64, 4, 2, 1] {
            let mut c = cfg.clone();
            c.system.interval_instructions =
                (cfg.system.interval_instructions / divisor).max(1_000);
            let outs = c.run_schemes(
                &suite::swim(),
                &[Scheme::Shared, Scheme::StaticEqual, Scheme::ModelBased],
            );
            let mut vs_shared = vec![outs[2].improvement_percent_over(&outs[0])];
            let mut vs_equal = vec![outs[2].improvement_percent_over(&outs[1])];
            for b in [suite::cg(), suite::ft()] {
                let outs = c.run_schemes(
                    &b,
                    &[Scheme::Shared, Scheme::StaticEqual, Scheme::ModelBased],
                );
                vs_shared.push(outs[2].improvement_percent_over(&outs[0]));
                vs_equal.push(outs[2].improvement_percent_over(&outs[1]));
            }
            reference.row(vec![
                c.system.interval_instructions.to_string(),
                pct(stats::mean(&vs_shared)),
                pct(stats::mean(&vs_equal)),
            ]);
        }
        assert_eq!(hoisted, reference.render());
    }
}
