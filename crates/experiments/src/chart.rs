//! Terminal chart rendering for figure reproductions.
//!
//! The paper's figures are bar charts and line plots; [`crate::table::Table`]
//! carries the exact numbers, and this module draws the *shape* — horizontal
//! bar charts for the per-benchmark comparisons (Figures 3, 8, 19–22) and
//! multi-series line charts for the time series and models (Figures 6, 7,
//! 10, 15) — using plain Unicode, no dependencies.

use std::fmt::Write as _;

/// A horizontal bar chart.
///
/// # Examples
///
/// ```
/// use icp_experiments::chart::BarChart;
///
/// let mut c = BarChart::new("Speedups").unit("%");
/// c.bar("swim", 12.9).bar("mg", 2.5);
/// assert!(c.render().contains("12.9%"));
/// ```
#[derive(Clone, Debug)]
pub struct BarChart {
    title: String,
    rows: Vec<(String, f64)>,
    /// Width of the bar area in characters.
    width: usize,
    /// Unit suffix rendered after each value.
    unit: &'static str,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart { title: title.into(), rows: Vec::new(), width: 46, unit: "" }
    }

    /// Sets the value suffix (e.g. `"%"`).
    pub fn unit(mut self, unit: &'static str) -> Self {
        self.unit = unit;
        self
    }

    /// Sets the bar-area width in characters.
    pub fn width(mut self, width: usize) -> Self {
        assert!(width >= 8, "bars need some room");
        self.width = width;
        self
    }

    /// Appends a labelled value.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        assert!(value.is_finite(), "bar values must be finite");
        self.rows.push((label.into(), value));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the chart. Negative values grow leftward from the zero
    /// column, positive values rightward, so regressions are visually
    /// distinct from improvements.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        if self.rows.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max_pos = self.rows.iter().map(|(_, v)| v.max(0.0)).fold(0.0, f64::max);
        let max_neg = self.rows.iter().map(|(_, v)| (-v).max(0.0)).fold(0.0, f64::max);
        let span = (max_pos + max_neg).max(1e-12);
        let neg_cols = ((max_neg / span) * self.width as f64).round() as usize;
        for (label, value) in &self.rows {
            let cols = ((value.abs() / span) * self.width as f64).round() as usize;
            let mut bar = String::new();
            if *value < 0.0 {
                bar.push_str(&" ".repeat(neg_cols.saturating_sub(cols)));
                bar.push_str(&"▒".repeat(cols));
                bar.push('|');
            } else {
                bar.push_str(&" ".repeat(neg_cols));
                bar.push('|');
                bar.push_str(&"█".repeat(cols));
            }
            let _ = writeln!(
                out,
                "{label:>label_w$} {bar:<bar_w$} {value:.1}{unit}",
                label_w = label_w,
                bar_w = self.width + neg_cols + 1,
                unit = self.unit
            );
        }
        out
    }
}

/// A multi-series line chart rendered as a character raster.
#[derive(Clone, Debug)]
pub struct LineChart {
    title: String,
    series: Vec<(String, Vec<f64>)>,
    height: usize,
    width: usize,
    xlabel: String,
}

/// Glyph per series, cycled.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl LineChart {
    /// Creates an empty chart with a default 16×72 raster.
    pub fn new(title: impl Into<String>) -> Self {
        LineChart {
            title: title.into(),
            series: Vec::new(),
            height: 16,
            width: 72,
            xlabel: "interval index".into(),
        }
    }

    /// Sets the x-axis label (default "interval index").
    pub fn xlabel(mut self, label: impl Into<String>) -> Self {
        self.xlabel = label.into();
        self
    }

    /// Sets the raster size.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 10 && height >= 4, "raster too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Adds a named series (x = index).
    pub fn series(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "series values must be finite"
        );
        self.series.push((name.into(), values));
        self
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series have been added.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the raster with a y-axis scale and a legend.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let n = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        if n == 0 {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let lo = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().cloned())
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().cloned())
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let mut raster = vec![vec![' '; self.width]; self.height];
        for (si, (_, values)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (i, v) in values.iter().enumerate() {
                let x = if n == 1 { 0 } else { i * (self.width - 1) / (n - 1) };
                let yf = (v - lo) / span;
                let y = ((1.0 - yf) * (self.height - 1) as f64).round() as usize;
                raster[y.min(self.height - 1)][x.min(self.width - 1)] = glyph;
            }
        }
        for (row, line) in raster.iter().enumerate() {
            let y_val = hi - span * row as f64 / (self.height - 1) as f64;
            let axis = if row == 0 || row == self.height - 1 || row == self.height / 2 {
                format!("{y_val:>8.1} |")
            } else {
                format!("{:>8} |", "")
            };
            let _ = writeln!(out, "{axis}{}", line.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>9}+{}", "", "-".repeat(self.width));
        let _ = writeln!(out, "{:>10}0 .. {} ({})", "", n - 1, self.xlabel);
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (name, _))| format!("{} {name}", GLYPHS[i % GLYPHS.len()]))
            .collect();
        let _ = writeln!(out, "{:>10}{}", "", legend.join("   "));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_renders_all_rows() {
        let mut c = BarChart::new("Demo").unit("%");
        c.bar("applu", 7.3).bar("swim", 11.1).bar("mg", 0.4);
        let s = c.render();
        assert!(s.contains("applu"));
        assert!(s.contains("11.1%"));
        assert_eq!(c.len(), 3);
        // The biggest value gets the longest bar.
        let lens: Vec<usize> = s
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&ch| ch == '█').count())
            .collect();
        assert!(lens[1] > lens[0] && lens[0] > lens[2], "{lens:?}");
    }

    #[test]
    fn bar_chart_negative_values_point_left() {
        let mut c = BarChart::new("Mixed");
        c.bar("gain", 10.0).bar("loss", -5.0);
        let s = c.render();
        assert!(s.contains('▒'), "negative bar glyph missing:\n{s}");
        assert!(s.contains('█'));
    }

    #[test]
    fn bar_chart_empty() {
        assert!(BarChart::new("x").render().contains("(no data)"));
    }

    #[test]
    fn line_chart_raster_shape() {
        let mut c = LineChart::new("cpi over time").size(40, 8);
        c.series("t0", (0..50).map(|i| 10.0 - i as f64 * 0.1).collect());
        c.series("t1", vec![3.0; 50]);
        let s = c.render();
        // 8 raster rows + axis + label + legend.
        assert_eq!(s.lines().count(), 1 + 8 + 3);
        assert!(s.contains("* t0"));
        assert!(s.contains("o t1"));
        // The decreasing series starts in the top row; the flat series at
        // the global minimum occupies the bottom row.
        let rows: Vec<&str> = s.lines().skip(1).take(8).collect();
        assert!(rows[0].contains('*'));
        assert!(rows[7].contains('o'));
        // The decreasing series spans multiple raster rows.
        let star_rows = rows.iter().filter(|r| r.contains('*')).count();
        assert!(star_rows >= 4, "{star_rows}");
    }

    #[test]
    fn line_chart_single_point() {
        let mut c = LineChart::new("one");
        c.series("s", vec![5.0]);
        let s = c.render();
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        BarChart::new("x").bar("bad", f64::NAN);
    }
}
