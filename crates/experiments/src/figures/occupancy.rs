//! Cache-occupancy evolution: how many ways each thread actually *holds*
//! over time, under shared LRU vs the dynamic partitioner.
//!
//! This visualises two things the paper describes but never plots: the LRU
//! equilibrium (occupancy follows insertion rate, so the streaming polluter
//! squats on capacity the critical thread needs), and §V's gradual
//! convergence of the replacement-based enforcement toward each new target
//! partition.

use icp_cmp_sim::Simulator;
use icp_core::policy::Partitioner;
use icp_workloads::suite;

use crate::chart::LineChart;
use crate::runner::{ExperimentConfig, Scheme};
use crate::table::Table;

/// Samples per-thread average occupancy (ways worth of lines held, averaged
/// over sets) at every interval boundary of a `bench` run under `scheme`.
pub fn occupancy_series(
    cfg: &ExperimentConfig,
    bench_name: &str,
    scheme: &Scheme,
) -> Vec<Vec<f64>> {
    let bench = suite::by_name(bench_name).unwrap_or_else(|| panic!("unknown benchmark {bench_name}"));
    let spec = if bench.threads.len() == cfg.system.cores {
        bench
    } else {
        bench.with_threads(cfg.system.cores)
    };
    let streams = spec.build_streams(&cfg.system, cfg.scale, cfg.seed);
    let mut sim = Simulator::new(cfg.system, streams);
    sim.set_replacement(cfg.replacement);
    let mut policy = scheme.policy();
    let threads = cfg.system.cores;
    let total_ways = cfg.system.l2.ways;
    // Drive the interval loop by hand so we can snapshot occupancy.
    match policy.initial(threads, total_ways) {
        icp_core::PartitionDecision::Partition(w) => sim.set_partition(&w),
        icp_core::PartitionDecision::SetPartition(w) => sim.set_set_partition(&w),
        icp_core::PartitionDecision::Unpartitioned => sim.set_unpartitioned(),
        icp_core::PartitionDecision::Keep => {}
    }
    let sets = cfg.system.l2.num_sets() as f64;
    let mut series = vec![Vec::new(); threads];
    while let Some(report) = sim.run_interval() {
        for (t, s) in series.iter_mut().enumerate() {
            s.push(sim.l2().ways_owned(t) as f64 / sets);
        }
        if report.finished {
            break;
        }
        match policy.repartition(&report, total_ways) {
            icp_core::PartitionDecision::Partition(w) => sim.set_partition(&w),
            icp_core::PartitionDecision::SetPartition(w) => sim.set_set_partition(&w),
            icp_core::PartitionDecision::Unpartitioned => sim.set_unpartitioned(),
            icp_core::PartitionDecision::Keep => {}
        }
    }
    series
}

/// Renders occupancy evolution as a line chart.
pub fn occupancy_chart(cfg: &ExperimentConfig, bench_name: &str, scheme: &Scheme) -> LineChart {
    let series = occupancy_series(cfg, bench_name, scheme);
    let mut c = LineChart::new(format!(
        "Occupancy (avg ways held per set): {bench_name} under {}",
        scheme.label()
    ));
    for (t, s) in series.into_iter().enumerate() {
        c.series(format!("t{t}"), s);
    }
    c
}

/// Side-by-side occupancy summary (mean ways held) under shared vs dynamic.
pub fn occupancy_table(cfg: &ExperimentConfig, bench_name: &str) -> Table {
    let shared = occupancy_series(cfg, bench_name, &Scheme::Shared);
    let dynamic = occupancy_series(cfg, bench_name, &Scheme::ModelBased);
    let mean = |v: &[f64]| icp_numeric::stats::mean(v);
    let mut t = Table::new(
        format!("Mean ways held per set ({bench_name}): LRU equilibrium vs dynamic partition"),
        &["thread", "shared LRU", "dynamic"],
    );
    for (i, (s, d)) in shared.iter().zip(&dynamic).enumerate() {
        t.row(vec![
            format!("t{i}"),
            format!("{:.1}", mean(s)),
            format!("{:.1}", mean(d)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_sums_to_roughly_all_ways_once_warm() {
        let cfg = ExperimentConfig::test();
        let series = occupancy_series(&cfg, "swim", &Scheme::Shared);
        let threads = series.len();
        let n = series[0].len();
        assert!(n > 3);
        // After warm-up, total held ways per set ~ the full 64 (the suite
        // oversubscribes the cache).
        let last_total: f64 = (0..threads).map(|t| series[t][n - 1]).sum();
        assert!(
            last_total > 60.0 && last_total <= 64.0 + 1e-9,
            "total occupancy {last_total}"
        );
    }

    #[test]
    fn dynamic_shifts_occupancy_toward_critical_thread() {
        let cfg = ExperimentConfig::test();
        let shared = occupancy_series(&cfg, "mgrid", &Scheme::Shared);
        let dynamic = occupancy_series(&cfg, "mgrid", &Scheme::ModelBased);
        // mgrid's critical thread is t1; late in the run it must hold more
        // under the dynamic scheme than under shared LRU.
        let late = |s: &Vec<f64>| {
            let n = s.len();
            icp_numeric::stats::mean(&s[n / 2..])
        };
        assert!(
            late(&dynamic[1]) > late(&shared[1]),
            "dynamic {:.1} <= shared {:.1}",
            late(&dynamic[1]),
            late(&shared[1])
        );
    }

    #[test]
    fn chart_and_table_render() {
        let cfg = ExperimentConfig::test();
        let c = occupancy_chart(&cfg, "cg", &Scheme::ModelBased);
        assert_eq!(c.len(), 4);
        let t = occupancy_table(&cfg, "cg");
        assert_eq!(t.len(), 4);
    }
}
