//! Shared experiment context: the (benchmark × scheme) outcome matrix most
//! figures mine. Collected once, in parallel, and reused.

use icp_core::ExecutionOutcome;
use icp_workloads::{suite, BenchmarkSpec};

use crate::parallel::parallel_map;
use crate::runner::{ExperimentConfig, Scheme};

/// Outcomes of the whole suite under the four principal schemes.
pub struct SuiteData {
    /// The benchmarks, in figure order.
    pub benches: Vec<BenchmarkSpec>,
    /// Shared unpartitioned cache runs.
    pub shared: Vec<ExecutionOutcome>,
    /// Static equal partition (private cache) runs.
    pub equal: Vec<ExecutionOutcome>,
    /// The paper's model-based dynamic scheme.
    pub dynamic: Vec<ExecutionOutcome>,
    /// UCP-style throughput-oriented scheme.
    pub ucp: Vec<ExecutionOutcome>,
}

impl SuiteData {
    /// Runs all 9 benchmarks under all 4 principal schemes (36 simulations,
    /// parallel across OS threads). Each workload is generated exactly once:
    /// a trace cache is attached if the caller didn't bring one, so the
    /// other 27 runs replay packed traces zero-copy. A result cache is
    /// likewise attached if absent — callers that bring a shared
    /// [`crate::result_cache::ResultCache`] get whole-matrix reuse: a warm
    /// rerun performs zero simulations (pinned by a `result_cache` test).
    pub fn collect(cfg: &ExperimentConfig) -> SuiteData {
        let cfg = &cfg.with_default_trace_cache().with_default_result_cache();
        let benches = suite::all();
        let schemes = [
            Scheme::Shared,
            Scheme::StaticEqual,
            Scheme::ModelBased,
            Scheme::UcpThroughput,
        ];
        let jobs: Vec<(usize, Scheme)> = benches
            .iter()
            .enumerate()
            .flat_map(|(i, _)| schemes.iter().cloned().map(move |s| (i, s)))
            .collect();
        let outs = parallel_map(jobs, |(i, s)| cfg.run(&benches[*i], s));
        let mut shared = Vec::new();
        let mut equal = Vec::new();
        let mut dynamic = Vec::new();
        let mut ucp = Vec::new();
        for (j, out) in outs.into_iter().enumerate() {
            match j % 4 {
                0 => shared.push(out),
                1 => equal.push(out),
                2 => dynamic.push(out),
                _ => ucp.push(out),
            }
        }
        SuiteData { benches, shared, equal, dynamic, ucp }
    }

    /// Benchmark names in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.benches.iter().map(|b| b.name).collect()
    }
}

/// Shared test fixture: one suite collection at test scale for the whole
/// crate's test binary (collection is by far the most expensive step).
#[cfg(test)]
pub(crate) fn test_data() -> &'static SuiteData {
    use std::sync::OnceLock;
    static DATA: OnceLock<SuiteData> = OnceLock::new();
    DATA.get_or_init(|| SuiteData::collect(&ExperimentConfig::test()))
}
