//! Shared experiment context: the (benchmark × scheme) outcome matrix most
//! figures mine. Collected once, in parallel, and reused.

use icp_core::ExecutionOutcome;
use icp_workloads::{suite, BenchmarkSpec};

use crate::runner::{ExperimentConfig, Scheme};
use crate::sched::{self, SchedStats};

/// Outcomes of the whole suite under the four principal schemes.
pub struct SuiteData {
    /// The benchmarks, in figure order.
    pub benches: Vec<BenchmarkSpec>,
    /// Shared unpartitioned cache runs.
    pub shared: Vec<ExecutionOutcome>,
    /// Static equal partition (private cache) runs.
    pub equal: Vec<ExecutionOutcome>,
    /// The paper's model-based dynamic scheme.
    pub dynamic: Vec<ExecutionOutcome>,
    /// UCP-style throughput-oriented scheme.
    pub ucp: Vec<ExecutionOutcome>,
}

impl SuiteData {
    /// Runs all 9 benchmarks under all 4 principal schemes (36 simulations,
    /// fanned over budget-leased workers). Each workload is generated
    /// exactly once: a trace cache is attached if the caller didn't bring
    /// one, so the other 27 runs replay packed traces zero-copy. A result
    /// cache is likewise attached if absent — callers that bring a shared
    /// [`crate::result_cache::ResultCache`] get whole-matrix reuse: a warm
    /// rerun performs zero simulations (pinned by a `result_cache` test).
    pub fn collect(cfg: &ExperimentConfig) -> SuiteData {
        Self::collect_with_stats(cfg).0
    }

    /// [`Self::collect`] returning the scheduler statistics of the pass.
    ///
    /// Jobs go to the LPT queue with an estimated cost of
    /// [`sched::job_cost`], with the first-scheme cell of every benchmark
    /// weighted ×[`GENERATION_WEIGHT`]: those 9 cells pay the one-time
    /// trace generation for their benchmark, so ordering them first (a)
    /// overlaps the 9 generations with each other across workers and (b)
    /// overlaps them with simulation of already-generated benchmarks —
    /// instead of every worker piling onto the first benchmark's cells
    /// and waiting on its trace-cache slot.
    pub fn collect_with_stats(cfg: &ExperimentConfig) -> (SuiteData, SchedStats) {
        let cfg = &cfg.with_default_trace_cache().with_default_result_cache();
        let benches = suite::all();
        let jobs = Self::jobs(&benches);
        let (outs, stats) = sched::weighted_map_stats(
            jobs,
            |(i, s)| {
                let base = sched::job_cost(&benches[*i], cfg);
                if *s == Self::SCHEMES[0] { base.saturating_mul(GENERATION_WEIGHT) } else { base }
            },
            |(i, s)| cfg.run(&benches[*i], s),
        );
        (Self::demux(benches, outs), stats)
    }

    /// [`Self::collect`] through the pre-arbiter flat pool
    /// ([`sched::flat_map_unarbitrated`]) — the `sched-bench` baseline.
    /// Results are bit-identical to [`Self::collect`]; only wall-clock
    /// and thread behaviour differ.
    pub fn collect_flat(cfg: &ExperimentConfig) -> SuiteData {
        let cfg = &cfg.with_default_trace_cache().with_default_result_cache();
        let benches = suite::all();
        let jobs = Self::jobs(&benches);
        let outs = sched::flat_map_unarbitrated(jobs, |(i, s)| cfg.run(&benches[*i], s));
        Self::demux(benches, outs)
    }

    /// The four principal schemes, in figure (and demux) order.
    const SCHEMES: [Scheme; 4] = [
        Scheme::Shared,
        Scheme::StaticEqual,
        Scheme::ModelBased,
        Scheme::UcpThroughput,
    ];

    fn jobs(benches: &[BenchmarkSpec]) -> Vec<(usize, Scheme)> {
        benches
            .iter()
            .enumerate()
            .flat_map(|(i, _)| Self::SCHEMES.iter().cloned().map(move |s| (i, s)))
            .collect()
    }

    fn demux(benches: Vec<BenchmarkSpec>, outs: Vec<ExecutionOutcome>) -> SuiteData {
        let mut shared = Vec::new();
        let mut equal = Vec::new();
        let mut dynamic = Vec::new();
        let mut ucp = Vec::new();
        for (j, out) in outs.into_iter().enumerate() {
            match j % 4 {
                0 => shared.push(out),
                1 => equal.push(out),
                2 => dynamic.push(out),
                _ => ucp.push(out),
            }
        }
        SuiteData { benches, shared, equal, dynamic, ucp }
    }

    /// Benchmark names in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.benches.iter().map(|b| b.name).collect()
    }

    /// Order-fixed fold of every outcome's counters (same shape as the
    /// [`crate::result_cache::CacheTotals`] digest): bit-identical suite
    /// results ⇔ equal digests, regardless of how the pass was scheduled.
    pub fn digest(&self) -> u64 {
        let mut d = 0u64;
        // ORDER: scheme-major then bench order — fixed by construction.
        for outs in [&self.shared, &self.equal, &self.dynamic, &self.ucp] {
            for out in outs.iter() {
                let mut acc = out.wall_cycles;
                for c in &out.thread_totals {
                    acc = acc.wrapping_mul(1_000_003).wrapping_add(
                        c.active_cycles
                            .wrapping_mul(31)
                            .wrapping_add(c.l2_misses)
                            .wrapping_add(c.l2_hits.wrapping_mul(7)),
                    );
                }
                d = d.wrapping_mul(1_000_003).wrapping_add(acc);
            }
        }
        d
    }
}

/// Cost multiplier for the one cell per benchmark that pays trace
/// generation (the first scheme to request a workload generates; the
/// other three replay). Generation dominates a cold cell's cost, so the
/// LPT queue should front-load these nine cells.
const GENERATION_WEIGHT: u64 = 6;

/// Shared test fixture: one suite collection at test scale for the whole
/// crate's test binary (collection is by far the most expensive step).
#[cfg(test)]
pub(crate) fn test_data() -> &'static SuiteData {
    use std::sync::OnceLock;
    static DATA: OnceLock<SuiteData> = OnceLock::new();
    DATA.get_or_init(|| SuiteData::collect(&ExperimentConfig::test()))
}
