//! Calibration diagnostics: a per-benchmark dump of the raw quantities the
//! paper's motivation section relies on (per-thread CPIs, miss rates,
//! interaction fractions, scheme comparison), used while tuning the
//! synthetic suite and kept as a first-line diagnostic.

use crate::runner::ExperimentConfig;
use crate::table::{f2, pct, Table};

/// Runs every benchmark under the four principal schemes and dumps the
/// headline quantities.
pub fn calibration_report(cfg: &ExperimentConfig) -> Table {
    calibration_report_from(&crate::figures::SuiteData::collect(cfg))
}

/// Builds the calibration table from an existing suite collection.
pub fn calibration_report_from(data: &crate::figures::SuiteData) -> Table {
    let mut t = Table::new(
        "Calibration: per-benchmark raw behaviour",
        &[
            "bench", "cpi:t0", "cpi:t1", "cpi:t2", "cpi:t3", "l2mr", "inter%", "constr%",
            "dyn/shared", "dyn/equal", "dyn/ucp",
        ],
    );
    for (i, b) in data.benches.iter().enumerate() {
        let (shared, equal, dynp, ucp) =
            (&data.shared[i], &data.equal[i], &data.dynamic[i], &data.ucp[i]);
        let cpis: Vec<f64> = shared
            .thread_totals
            .iter()
            .map(|c| c.cpi())
            .take(4)
            .collect();
        let l2_accesses: u64 = shared
            .thread_totals
            .iter()
            .map(|c| c.l2_hits + c.l2_misses)
            .sum();
        let l2_misses: u64 = shared.thread_totals.iter().map(|c| c.l2_misses).sum();
        let l2mr = if l2_accesses == 0 { 0.0 } else { l2_misses as f64 / l2_accesses as f64 };
        let mut row = vec![b.name.to_string()];
        for i in 0..4 {
            row.push(f2(cpis.get(i).copied().unwrap_or(0.0)));
        }
        row.push(f2(l2mr));
        row.push(pct(shared.interactions.inter_thread_fraction() * 100.0));
        row.push(pct(shared.interactions.constructive_fraction() * 100.0));
        row.push(pct(dynp.improvement_percent_over(shared)));
        row.push(pct(dynp.improvement_percent_over(equal)));
        row.push(pct(dynp.improvement_percent_over(ucp)));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_rows_parse() {
        let t = calibration_report_from(crate::figures::context::test_data());
        assert_eq!(t.len(), 9);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), 11);
            // CPI columns are positive numbers.
            for c in &cells[1..5] {
                let v: f64 = c.parse().unwrap();
                assert!(v > 0.0, "{line}");
            }
        }
    }
}
