//! Runtime-system overhead (paper §VII): "overheads turned out to be very
//! small (less than 1.5%) when weighed against the overall execution time".
//!
//! The runtime measures its own host-side decision time per boundary; at a
//! simulated 1 GHz core, one host nanosecond ≈ one simulated cycle, so the
//! ratio of decision time to simulated execution time estimates the same
//! overhead the paper reports. (This over-states the real overhead: the
//! paper's runtime ran on the simulated 2010-era CPU, but its decision
//! interval was also 15 M instructions vs our scaled-down ones.)

use icp_numeric::stats;
use icp_workloads::suite;

use crate::runner::{ExperimentConfig, Scheme};
use crate::table::Table;

/// Per-benchmark decision counts, total decision time and estimated
/// overhead fraction for the dynamic scheme.
pub fn overhead_table(cfg: &ExperimentConfig) -> Table {
    let mut t = Table::new(
        "Runtime-system overhead estimate (paper: < 1.5%)",
        &["bench", "decisions", "ns/decision", "overhead@sim", "overhead@15M"],
    );
    let mut fracs = Vec::new();
    let mut paper_fracs = Vec::new();
    for b in suite::all() {
        let out = cfg.run(&b, &Scheme::ModelBased);
        let per = if out.decision_count == 0 {
            0.0
        } else {
            out.decision_nanos as f64 / out.decision_count as f64
        };
        let frac = out.estimated_overhead_fraction();
        // The paper decides once per 15 M instructions; our scaled runs
        // decide ~150x more often. Normalising to the paper's interval:
        // decision cycles amortised over the cycles 15 M instructions take
        // (overall CPI x 15 M).
        let insts: u64 = out.thread_totals.iter().map(|c| c.instructions).sum();
        let cycles: u64 = out.thread_totals.iter().map(|c| c.active_cycles).sum();
        let cpi = cycles as f64 / insts.max(1) as f64;
        let paper_frac = per / (15.0e6 * cpi);
        fracs.push(frac);
        paper_fracs.push(paper_frac);
        t.row(vec![
            b.name.to_string(),
            out.decision_count.to_string(),
            format!("{per:.0}"),
            format!("{:.4}%", frac * 100.0),
            format!("{:.5}%", paper_frac * 100.0),
        ]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        format!("{:.4}%", stats::mean(&fracs) * 100.0),
        format!("{:.5}%", stats::mean(&paper_fracs) * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_tiny() {
        // Even at test scale (intervals 1000x shorter than the paper's),
        // the decision procedure should stay well under the paper's 1.5%
        // bound in release... and under a loose bound in debug builds.
        let cfg = ExperimentConfig::test();
        let out = cfg.run(&suite::swim(), &Scheme::ModelBased);
        assert!(out.decision_count > 3);
        assert!(out.decision_nanos > 0);
        let frac = out.estimated_overhead_fraction();
        // Debug builds run the decision procedure ~20x slower; only the
        // release bound is meaningful as a performance claim.
        let bound = if cfg!(debug_assertions) { 1.0 } else { 0.10 };
        assert!(frac < bound, "decision overhead fraction {frac}");
    }

    #[test]
    fn table_has_all_benchmarks() {
        let cfg = ExperimentConfig::test();
        let t = overhead_table(&cfg);
        assert_eq!(t.len(), 10);
    }
}
