//! Figure 2: the system configuration table.

use icp_cmp_sim::SystemConfig;

use crate::table::Table;

/// Renders a system configuration in the paper's Figure 2 format.
pub fn fig02_config(cfg: &SystemConfig) -> Table {
    let mut t = Table::new("Figure 2: system configuration", &["parameter", "value"]);
    t.row(vec!["Number of cores".into(), cfg.cores.to_string()]);
    t.row(vec!["Number of threads".into(), cfg.cores.to_string()]);
    t.row(vec![
        "L1 cache size".into(),
        format!("{} KB", cfg.l1.size_bytes / 1024),
    ]);
    t.row(vec!["L1 cache associativity".into(), cfg.l1.ways.to_string()]);
    t.row(vec!["L2 cache type".into(), "Shared".into()]);
    t.row(vec![
        "L2 cache size".into(),
        format!("{} KB", cfg.l2.size_bytes / 1024),
    ]);
    t.row(vec!["L2 cache associativity".into(), cfg.l2.ways.to_string()]);
    t.row(vec![
        "Line size".into(),
        format!("{} B", cfg.l2.line_bytes),
    ]);
    t.row(vec![
        "L1 hit / L2 hit / memory latency".into(),
        format!(
            "{} / {} / {} cycles",
            cfg.latency.l1_hit,
            cfg.latency.l1_hit + cfg.latency.l2_hit,
            cfg.latency.l1_hit + cfg.latency.l2_hit + cfg.latency.memory
        ),
    ]);
    t.row(vec![
        "Execution interval".into(),
        format!("{} instructions", cfg.interval_instructions),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_renders_figure2_values() {
        let t = fig02_config(&SystemConfig::paper_default());
        let s = t.render();
        assert!(s.contains("8 KB"));
        assert!(s.contains("1024 KB"));
        assert!(s.contains("15000000 instructions"));
    }
}
