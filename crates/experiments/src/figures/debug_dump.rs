//! Per-interval execution dump for one (benchmark, scheme) pair —
//! diagnostic tooling used while calibrating the suite; also handy for
//! users exploring policy behaviour.

use icp_workloads::suite;

use crate::runner::{ExperimentConfig, Scheme};
use crate::table::{f2, Table};

/// Dumps per-interval ways/CPIs/misses for `bench` under `scheme`.
pub fn interval_dump(cfg: &ExperimentConfig, bench_name: &str, scheme: &Scheme) -> Table {
    let bench = suite::by_name(bench_name).unwrap_or_else(|| panic!("unknown benchmark {bench_name}"));
    let out = cfg.run(&bench, scheme);
    let threads = out.thread_totals.len();
    let mut headers: Vec<String> = vec!["ivl".into()];
    for t in 0..threads {
        headers.push(format!("w{t}"));
    }
    for t in 0..threads {
        headers.push(format!("cpi{t}"));
    }
    for t in 0..threads {
        headers.push(format!("m{t}"));
    }
    headers.push("overall".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        format!("Interval dump: {bench_name} under {} (wall={})", scheme.label(), out.wall_cycles),
        &hdr_refs,
    );
    for r in &out.records {
        let mut row = vec![r.index.to_string()];
        row.extend(r.ways.iter().map(|w| w.to_string()));
        row.extend(r.cpi.iter().map(|c| f2(*c)));
        row.extend(r.l2_misses.iter().map(|m| m.to_string()));
        row.push(f2(r.overall_cpi));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_covers_every_interval() {
        let cfg = ExperimentConfig::test();
        let t = interval_dump(&cfg, "ft", &Scheme::StaticEqual);
        assert!(t.len() >= 5);
        // 1 + ways + cpi + misses + overall columns for 4 threads = 14.
        assert_eq!(t.to_csv().lines().next().unwrap().split(',').count(), 14);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn dump_rejects_unknown_benchmark() {
        let cfg = ExperimentConfig::test();
        let _ = interval_dump(&cfg, "nope", &Scheme::Shared);
    }
}
