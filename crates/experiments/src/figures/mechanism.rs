//! Mechanism comparison: way partitioning (the paper's §V hardware) vs
//! OS-style set partitioning (page coloring, the software alternative from
//! the related work), both driven by the *same* model-based policy.
//!
//! Expected shape: set partitioning gives the same isolation but loses
//! cross-thread hits (shared lines replicate into every accessor's range),
//! so way partitioning should win most clearly on the high-sharing
//! benchmarks (cg, ft, equake) and be roughly even where sharing is low.

use icp_numeric::stats;
use icp_workloads::suite;

use crate::runner::{ExperimentConfig, Scheme};
use crate::table::{pct, Table};

/// Per-benchmark comparison of way- vs set-partitioned dynamic schemes
/// (positive = way partitioning faster).
pub fn mechanism_table(cfg: &ExperimentConfig) -> Table {
    let mut t = Table::new(
        "Mechanism: way partitioning vs set partitioning (same dynamic policy)",
        &["bench", "way vs shared", "set vs shared", "way vs set"],
    );
    let mut deltas = Vec::new();
    for b in suite::all() {
        let outs = cfg.run_schemes(
            &b,
            &[Scheme::Shared, Scheme::ModelBased, Scheme::SetPartitionDynamic],
        );
        let (shared, way, set) = (&outs[0], &outs[1], &outs[2]);
        let way_vs_set = way.improvement_percent_over(set);
        deltas.push(way_vs_set);
        t.row(vec![
            b.name.to_string(),
            pct(way.improvement_percent_over(shared)),
            pct(set.improvement_percent_over(shared)),
            pct(way_vs_set),
        ]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        pct(stats::mean(&deltas)),
    ]);
    t
}

/// The same comparison on a *banked* L2 (bank conflicts serialise
/// accesses): set partitioning confines each thread to its own banks,
/// which claws back some of its sharing losses.
pub fn mechanism_banked_table(cfg: &ExperimentConfig, banks: u32) -> Table {
    let mut banked = cfg.clone();
    banked.system.l2_banks = banks;
    let mut t = Table::new(
        format!("Mechanism on a {banks}-bank L2: way vs set partitioning"),
        &["bench", "way vs shared", "set vs shared", "way vs set"],
    );
    let mut deltas = Vec::new();
    for b in suite::all() {
        let outs = banked.run_schemes(
            &b,
            &[Scheme::Shared, Scheme::ModelBased, Scheme::SetPartitionDynamic],
        );
        let (shared, way, set) = (&outs[0], &outs[1], &outs[2]);
        let d = way.improvement_percent_over(set);
        deltas.push(d);
        t.row(vec![
            b.name.to_string(),
            pct(way.improvement_percent_over(shared)),
            pct(set.improvement_percent_over(shared)),
            pct(d),
        ]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        pct(stats::mean(&deltas)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_partitioned_runs_complete() {
        let cfg = ExperimentConfig::test();
        for bench in [suite::cg(), suite::mg()] {
            let out = cfg.run(&bench, &Scheme::SetPartitionDynamic);
            assert!(out.wall_cycles > 0, "{}", bench.name);
            assert!(out.intervals() > 0, "{}", bench.name);
        }
    }

    #[test]
    fn banked_comparison_runs() {
        let cfg = ExperimentConfig::test();
        let mut banked = cfg.clone();
        banked.system.l2_banks = 8;
        let out = banked.run(&suite::swim(), &Scheme::SetPartitionDynamic);
        assert!(out.wall_cycles > 0);
    }

    #[test]
    fn way_partitioning_wins_on_average() {
        // The paper's argument for partitioned *sharing*: preserving
        // cross-thread hits should make way partitioning at least as good
        // as hard set isolation on this sharing-heavy suite.
        let cfg = ExperimentConfig::test();
        let mut deltas = Vec::new();
        for b in [suite::cg(), suite::ft(), suite::swim()] {
            let outs = cfg.run_schemes(&b, &[Scheme::ModelBased, Scheme::SetPartitionDynamic]);
            deltas.push(outs[0].improvement_percent_over(&outs[1]));
        }
        let avg = icp_numeric::stats::mean(&deltas);
        assert!(avg > -2.0, "way vs set average {avg} ({deltas:?})");
    }
}
