//! Seed-robustness of the headline comparison.
//!
//! The paper reports one number per benchmark from one execution; a
//! synthetic reproduction can do better — re-run the whole comparison under
//! several independent stream realisations and report the spread. The
//! qualitative claims (dynamic ≥ shared ≥/≈ equal, positive vs throughput)
//! should hold for *every* seed, and the averages should be stable.

use icp_numeric::histogram::percentile;
use icp_numeric::stats;

use crate::figures::context::SuiteData;
use crate::runner::ExperimentConfig;
use crate::table::{f2, pct, Table};

/// Per-seed suite-average improvements of the dynamic scheme.
#[derive(Clone, Copy, Debug)]
pub struct SeedOutcome {
    /// Seed used.
    pub seed: u64,
    /// Suite-average improvement vs the shared cache (%).
    pub vs_shared: f64,
    /// Suite-average improvement vs the static-equal cache (%).
    pub vs_equal: f64,
    /// Suite-average improvement vs the UCP throughput scheme (%).
    pub vs_ucp: f64,
}

/// Runs the full suite comparison for each seed (seeds run sequentially;
/// the 36 simulations inside each seed run in parallel).
pub fn robustness_outcomes(cfg: &ExperimentConfig, seeds: &[u64]) -> Vec<SeedOutcome> {
    seeds
        .iter()
        .map(|&seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            let data = SuiteData::collect(&c);
            let mean_imp = |base: &[icp_core::ExecutionOutcome]| {
                let imps: Vec<f64> = data
                    .dynamic
                    .iter()
                    .zip(base)
                    .map(|(d, b)| d.improvement_percent_over(b))
                    .collect();
                stats::mean(&imps)
            };
            SeedOutcome {
                seed,
                vs_shared: mean_imp(&data.shared),
                vs_equal: mean_imp(&data.equal),
                vs_ucp: mean_imp(&data.ucp),
            }
        })
        .collect()
}

/// Renders the robustness study: per-seed rows plus mean / std / min
/// summaries.
pub fn robustness_table(cfg: &ExperimentConfig, seeds: &[u64]) -> Table {
    let outcomes = robustness_outcomes(cfg, seeds);
    let mut t = Table::new(
        "Seed robustness: suite-average improvements of the dynamic scheme",
        &["seed", "vs shared", "vs equal", "vs ucp"],
    );
    for o in &outcomes {
        t.row(vec![
            o.seed.to_string(),
            pct(o.vs_shared),
            pct(o.vs_equal),
            pct(o.vs_ucp),
        ]);
    }
    type OutcomeCol = (&'static str, fn(&SeedOutcome) -> f64);
    let cols: [OutcomeCol; 3] = [
        ("vs_shared", |o| o.vs_shared),
        ("vs_equal", |o| o.vs_equal),
        ("vs_ucp", |o| o.vs_ucp),
    ];
    for (stat, f) in [
        ("mean", 0usize),
        ("stddev", 1),
        ("min", 2),
    ] {
        let mut row = vec![stat.to_string()];
        for (_, get) in cols.iter() {
            let vals: Vec<f64> = outcomes.iter().map(get).collect();
            let v = match f {
                0 => stats::mean(&vals),
                1 => stats::stddev(&vals),
                _ => percentile(&vals, 0.0).unwrap_or(0.0),
            };
            row.push(f2(v));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_hold_across_seeds() {
        let cfg = ExperimentConfig::test();
        let outcomes = robustness_outcomes(&cfg, &[11, 222]);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.vs_equal > 0.0, "seed {}: vs equal {}", o.seed, o.vs_equal);
            assert!(o.vs_ucp > 0.0, "seed {}: vs ucp {}", o.seed, o.vs_ucp);
            assert!(o.vs_shared > -3.0, "seed {}: vs shared {}", o.seed, o.vs_shared);
            // Consistent internal ordering: private gains exceed shared gains.
            assert!(o.vs_equal > o.vs_shared, "seed {}", o.seed);
        }
    }

    #[test]
    fn table_has_summary_rows() {
        let cfg = ExperimentConfig::test();
        let t = robustness_table(&cfg, &[5]);
        assert_eq!(t.len(), 4); // 1 seed + mean + stddev + min
    }
}
