//! Cache-sensitivity figures: Figure 10 (per-thread way sensitivity) and
//! Figure 15 (runtime CPI models + the chosen partition).

use icp_cmp_sim::Simulator;
use icp_core::{IntraAppRuntime, ModelBasedPolicy};
use icp_workloads::suite;

use crate::runner::{ExperimentConfig, Scheme};
use crate::table::{f2, Table};

/// Figure 10: CPI of two SWIM threads when the thread runs with 16 vs 32
/// dedicated ways (static partitions). The paper's point: thread 0 improves
/// markedly with more ways while thread 1 barely moves — threads of one
/// application differ in cache sensitivity.
pub fn fig10_way_sensitivity(cfg: &ExperimentConfig) -> Table {
    let bench = suite::swim();
    let threads = cfg.system.cores;
    let total = cfg.system.l2.ways;
    let mut table = Table::new(
        "Figure 10: SWIM thread CPI at 16 vs 32 dedicated ways",
        &["thread", "cpi@16", "cpi@32", "reduction"],
    );
    for target in [0usize, 1usize] {
        let mut cpis = Vec::new();
        for give in [16u32, 32u32] {
            // The target thread gets `give` ways; the rest split the rest.
            let others = icp_cmp_sim::l2::equal_split(total - give, threads - 1);
            let mut ways = Vec::new();
            let mut oi = 0;
            for t in 0..threads {
                if t == target {
                    ways.push(give);
                } else {
                    ways.push(others[oi]);
                    oi += 1;
                }
            }
            let out = cfg.run(&bench, &Scheme::StaticCustom(ways));
            cpis.push(out.thread_totals[target].cpi());
        }
        let reduction = (cpis[0] - cpis[1]) / cpis[0] * 100.0;
        table.row(vec![
            format!("t{target}"),
            f2(cpis[0]),
            f2(cpis[1]),
            format!("{reduction:.1}%"),
        ]);
    }
    table
}

/// Figure 15: the per-thread CPI-vs-ways models a dynamic run learns, plus
/// the partition the hill-climb chose. Sampled at powers of two plus the
/// chosen allocation.
pub fn fig15_cpi_models(cfg: &ExperimentConfig) -> Table {
    let bench = suite::swim();
    let spec = if bench.threads.len() == cfg.system.cores {
        bench
    } else {
        bench.with_threads(cfg.system.cores)
    };
    let streams = spec.build_streams(&cfg.system, cfg.scale, cfg.seed);
    let mut sim = Simulator::new(cfg.system, streams);
    let mut runtime = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg.system);
    let out = runtime.execute(&mut sim);
    let policy = runtime.policy();
    let threads = out.thread_totals.len();

    let mut headers = vec!["ways".to_string()];
    headers.extend((0..threads).map(|t| format!("cpi:t{t}")));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 15: learned CPI-vs-ways models (SWIM) and the final partition",
        &hdr,
    );
    for w in [2u32, 4, 8, 12, 16, 24, 32, 40, 48, 56, 64] {
        if w > cfg.system.l2.ways {
            continue;
        }
        let mut row = vec![w.to_string()];
        for t in 0..threads {
            let v = policy.models().get(t).and_then(|m| m.predict(w));
            row.push(v.map(f2).unwrap_or_else(|| "-".into()));
        }
        table.row(row);
    }
    // Final partition row.
    let last = out.records.last().expect("at least one interval");
    let mut row = vec!["chosen".to_string()];
    row.extend(last.ways.iter().map(|w| w.to_string()));
    table.row(row);
    table
}

/// Line-chart rendering of the Figure 15 models: each thread's learned
/// CPI-vs-ways curve sampled across the whole way range.
pub fn fig15_chart(cfg: &ExperimentConfig) -> crate::chart::LineChart {
    let bench = suite::swim();
    let spec = if bench.threads.len() == cfg.system.cores {
        bench
    } else {
        bench.with_threads(cfg.system.cores)
    };
    let streams = spec.build_streams(&cfg.system, cfg.scale, cfg.seed);
    let mut sim = Simulator::new(cfg.system, streams);
    let mut runtime = IntraAppRuntime::new(ModelBasedPolicy::new(), &cfg.system);
    let _ = runtime.execute(&mut sim);
    let policy = runtime.policy();
    let mut c = crate::chart::LineChart::new(
        "Figure 15 (chart): learned CPI-vs-ways models",
    )
    .xlabel("cache ways - 1");
    for (t, model) in policy.models().iter().enumerate() {
        let curve: Vec<f64> = model
            .curve(cfg.system.l2.ways)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        if !curve.is_empty() {
            c.series(format!("t{t}"), curve);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_thread0_more_sensitive_than_thread1() {
        let cfg = ExperimentConfig::test();
        let t = fig10_way_sensitivity(&cfg);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let parse = |line: &str| -> (f64, f64) {
            let cells: Vec<&str> = line.split(',').collect();
            (cells[1].parse().unwrap(), cells[2].parse().unwrap())
        };
        let (a16, a32) = parse(rows[0]);
        let (b16, b32) = parse(rows[1]);
        let red0 = (a16 - a32) / a16;
        let red1 = (b16 - b32) / b16;
        assert!(
            red0 > red1 + 0.02,
            "thread 0 should be clearly more way-sensitive: {red0} vs {red1}"
        );
    }

    #[test]
    fn fig15_has_model_rows_and_partition() {
        let cfg = ExperimentConfig::test();
        let t = fig15_cpi_models(&cfg);
        assert!(t.len() >= 5);
        assert!(t.render().contains("chosen"));
    }
}
