//! Headline comparison figures: Figures 19, 20, 21 (4-core improvements of
//! the dynamic scheme over private/shared/throughput baselines), Figure 22
//! (8-core sensitivity) and the Figure 11 progress illustration.

use icp_numeric::stats;
use icp_workloads::suite;

use crate::figures::context::SuiteData;
use crate::runner::{ExperimentConfig, Scheme};
use crate::table::{pct, Table};

/// Figure 19: performance improvement of the dynamic scheme over the
/// statically-equal (private) cache. Paper: up to 23%, average ≈ 11%.
pub fn fig19_vs_private(data: &SuiteData) -> Table {
    improvement_table(
        "Figure 19: dynamic partitioning vs statically equal (private) cache",
        data,
        &data.equal,
    )
}

/// Figure 20: improvement over the shared unpartitioned cache. Paper: up to
/// 15%, average ≈ 9%, with three small-working-set benchmarks near zero.
pub fn fig20_vs_shared(data: &SuiteData) -> Table {
    improvement_table(
        "Figure 20: dynamic partitioning vs shared unpartitioned cache",
        data,
        &data.shared,
    )
}

/// Figure 21: improvement over the throughput-oriented (UCP-style) scheme.
/// Paper: positive everywhere, up to 20%.
pub fn fig21_vs_throughput(data: &SuiteData) -> Table {
    improvement_table(
        "Figure 21: dynamic partitioning vs throughput-oriented scheme",
        data,
        &data.ucp,
    )
}

/// Bar-chart rendering of an improvement comparison (the visual shape of
/// the paper's Figures 19-21).
pub fn improvement_chart(
    title: &str,
    data: &SuiteData,
    baseline: &[icp_core::ExecutionOutcome],
) -> crate::chart::BarChart {
    let mut c = crate::chart::BarChart::new(title).unit("%");
    for ((b, dynp), base) in data.benches.iter().zip(&data.dynamic).zip(baseline) {
        c.bar(b.name, dynp.improvement_percent_over(base));
    }
    c
}

fn improvement_table(
    title: &str,
    data: &SuiteData,
    baseline: &[icp_core::ExecutionOutcome],
) -> Table {
    let mut table = Table::new(title, &["bench", "improvement"]);
    let mut all = Vec::new();
    for ((b, dynp), base) in data.benches.iter().zip(&data.dynamic).zip(baseline) {
        let imp = dynp.improvement_percent_over(base);
        all.push(imp);
        table.row(vec![b.name.to_string(), pct(imp)]);
    }
    table.row(vec!["average".into(), pct(stats::mean(&all))]);
    table.row(vec![
        "max".into(),
        pct(all.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
    ]);
    table
}

/// Figure 22: the 8-core sensitivity study — improvements of the dynamic
/// scheme over private and shared caches with 8 threads on 8 cores sharing
/// the same L2. The paper reports gains similar to the 4-core case.
///
/// The 8-core chip is modelled with a 2-slice address-hashed LLC (the
/// geometry real CMPs use at this core count), through the same
/// [`ExperimentConfig::with_topology`] entry point as the `eight_plus_core`
/// scorecard tier — one code path for every 8+ core configuration. All
/// three schemes run on the same machine, so the relative improvements
/// remain comparable to the paper's monolithic-L2 figure.
pub fn fig22_eight_core(cfg: &ExperimentConfig) -> Table {
    let cfg8 = cfg.clone().with_topology(8, 2);
    let mut table = Table::new(
        "Figure 22: 8-core CMP (2-slice LLC) — dynamic vs private and vs shared",
        &["bench", "vs private", "vs shared"],
    );
    let benches = suite::all();
    let mut vs_priv = Vec::new();
    let mut vs_shared = Vec::new();
    for b in &benches {
        let outs = cfg8.run_schemes(
            b,
            &[Scheme::Shared, Scheme::StaticEqual, Scheme::ModelBased],
        );
        let (shared, equal, dynp) = (&outs[0], &outs[1], &outs[2]);
        let p = dynp.improvement_percent_over(equal);
        let s = dynp.improvement_percent_over(shared);
        vs_priv.push(p);
        vs_shared.push(s);
        table.row(vec![b.name.to_string(), pct(p), pct(s)]);
    }
    table.row(vec![
        "average".into(),
        pct(stats::mean(&vs_priv)),
        pct(stats::mean(&vs_shared)),
    ]);
    table
}

/// Figure 11: execution progress of the four threads at a fixed wall-clock
/// point under (a) shared, (b) equal and (c) CPI-based partitions —
/// the illustration of how CPI-based repartitioning pulls the laggard
/// forward. Progress = instructions retired by that cycle, normalised to
/// the fastest thread under the shared cache.
pub fn fig11_progress_illustration(cfg: &ExperimentConfig) -> Table {
    let bench = suite::mgrid();
    let outs = cfg.run_schemes(
        &bench,
        &[Scheme::Shared, Scheme::StaticEqual, Scheme::CpiProportional],
    );
    // Sample at ~60% of the shared run's completion time.
    let at = outs[0].wall_cycles * 6 / 10;
    let progress = |out: &icp_core::ExecutionOutcome| -> Vec<u64> {
        let threads = out.thread_totals.len();
        let mut done = vec![0u64; threads];
        for r in &out.records {
            if r.wall_cycles > at {
                break;
            }
            for (d, i) in done.iter_mut().zip(&r.instructions) {
                *d += i;
            }
        }
        done
    };
    let threads = outs[0].thread_totals.len();
    let mut table = Table::new(
        "Figure 11: thread progress (instructions retired) at a fixed time point",
        &["thread", "shared", "equal", "cpi-based"],
    );
    let series: Vec<Vec<u64>> = outs.iter().map(progress).collect();
    let max = series[0].iter().cloned().max().unwrap_or(1).max(1) as f64;
    #[allow(clippy::needless_range_loop)] // t indexes three parallel series
    for t in 0..threads {
        table.row(vec![
            format!("t{t}"),
            format!("{:.2}", series[0][t] as f64 / max),
            format!("{:.2}", series[1][t] as f64 / max),
            format!("{:.2}", series[2][t] as f64 / max),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::context::SuiteData;

    /// One SuiteData collection shared by the assertions below (collection
    /// is the expensive part).
    fn data() -> (ExperimentConfig, &'static SuiteData) {
        (ExperimentConfig::test(), crate::figures::context::test_data())
    }

    #[test]
    fn headline_orderings_hold() {
        let (_, data) = data();
        // Dynamic beats shared and equal on average, and never loses badly.
        let mean_imp = |base: &[icp_core::ExecutionOutcome]| {
            let imps: Vec<f64> = data
                .dynamic
                .iter()
                .zip(base)
                .map(|(d, b)| d.improvement_percent_over(b))
                .collect();
            (icp_numeric::stats::mean(&imps), imps)
        };
        let (avg_sh, imps_sh) = mean_imp(&data.shared);
        let (avg_eq, imps_eq) = mean_imp(&data.equal);
        let (avg_ucp, imps_ucp) = mean_imp(&data.ucp);
        // Test-scale runs are 10x shorter than figure-scale, so the
        // learning phase weighs more and bands are looser here; the strict
        // paper-band assertions live in `figure_scale_bands` below.
        assert!(avg_sh > 0.0, "vs shared avg {avg_sh} ({imps_sh:?})");
        assert!(avg_eq > 4.0, "vs equal avg {avg_eq} ({imps_eq:?})");
        assert!(avg_ucp > 2.0, "vs ucp avg {avg_ucp} ({imps_ucp:?})");
        // The paper's relation: gains over private exceed gains over shared.
        assert!(avg_eq > avg_sh);
        // No benchmark collapses against any baseline.
        for (name, imps) in [("shared", &imps_sh), ("equal", &imps_eq), ("ucp", &imps_ucp)] {
            for (b, imp) in data.names().iter().zip(imps) {
                assert!(*imp > -15.0, "{b} vs {name}: {imp}");
            }
        }
    }

    #[test]
    fn small_ws_benchmarks_show_small_gain_vs_shared() {
        let (_, data) = data();
        let names = data.names();
        for small in icp_workloads::suite::small_working_set_names() {
            let i = names.iter().position(|n| *n == small).unwrap();
            let imp = data.dynamic[i].improvement_percent_over(&data.shared[i]);
            assert!(
                imp.abs() < 13.0,
                "{small} should show only a small effect vs shared, got {imp}"
            );
        }
    }

    /// The paper-band check at figure scale: slow (~15 s), run with
    /// `cargo test -p icp-experiments --release -- --ignored`.
    #[test]
    #[ignore = "figure-scale run (~15s in release); the repro binary and benches exercise it too"]
    fn figure_scale_bands() {
        let cfg = ExperimentConfig::quick();
        let data = SuiteData::collect(&cfg);
        let imp = |d: &icp_core::ExecutionOutcome, b: &icp_core::ExecutionOutcome| {
            d.improvement_percent_over(b)
        };
        let sh: Vec<f64> = data.dynamic.iter().zip(&data.shared).map(|(d, b)| imp(d, b)).collect();
        let eq: Vec<f64> = data.dynamic.iter().zip(&data.equal).map(|(d, b)| imp(d, b)).collect();
        let ucp: Vec<f64> = data.dynamic.iter().zip(&data.ucp).map(|(d, b)| imp(d, b)).collect();
        let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Paper: up to 15% vs shared, 23% vs private, 20% vs throughput.
        assert!(max(&sh) > 5.0 && max(&sh) < 20.0, "{sh:?}");
        assert!(max(&eq) > 15.0 && max(&eq) < 30.0, "{eq:?}");
        assert!(max(&ucp) > 12.0 && max(&ucp) < 26.0, "{ucp:?}");
        // Everything non-negative within noise.
        for v in sh.iter().chain(&eq).chain(&ucp) {
            assert!(*v > -3.0, "sh {sh:?} eq {eq:?} ucp {ucp:?}");
        }
        // And the full scorecard passes at figure scale.
        let checks = crate::scorecard::scorecard_from(&data);
        for c in &checks {
            assert!(c.pass(), "scorecard claim out of band: {c:?}");
        }
    }

    #[test]
    fn figure_tables_render() {
        let (cfg, data) = data();
        assert_eq!(fig19_vs_private(data).len(), 11); // 9 benches + avg + max
        assert_eq!(fig20_vs_shared(data).len(), 11);
        assert_eq!(fig21_vs_throughput(data).len(), 11);
        let t = fig11_progress_illustration(&cfg);
        assert_eq!(t.len(), cfg.system.cores);
    }
}
