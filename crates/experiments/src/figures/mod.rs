//! One module per reproduced paper figure/table. Each exposes functions
//! returning structured data plus a rendered [`crate::table::Table`].
//!
//! See `DESIGN.md` for the experiment index mapping figures to modules, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub mod calibrate;
pub mod comparisons;
pub mod config_table;
pub mod context;
pub mod debug_dump;
pub mod mechanism;
pub mod motivation;
pub mod occupancy;
pub mod overhead;
pub mod prediction;
pub mod robustness;
pub mod sensitivity;
pub mod slack;
pub mod timeseries;

pub use calibrate::{calibration_report, calibration_report_from};
pub use comparisons::{
    fig11_progress_illustration, fig19_vs_private, fig20_vs_shared, fig21_vs_throughput,
    fig22_eight_core, improvement_chart,
};
pub use config_table::fig02_config;
pub use context::SuiteData;
pub use debug_dump::interval_dump;
pub use mechanism::{mechanism_banked_table, mechanism_table};
pub use occupancy::{occupancy_chart, occupancy_series, occupancy_table};
pub use overhead::overhead_table;
pub use motivation::{
    fig03_thread_performance, fig04_thread_misses, fig05_cpi_miss_correlation,
    fig08_interthread_interaction, fig09_interaction_breakdown,
};
pub use prediction::{prediction_error_table, prediction_errors, PredictionErrors};
pub use robustness::{robustness_outcomes, robustness_table};
pub use sensitivity::{fig10_way_sensitivity, fig15_chart, fig15_cpi_models};
pub use slack::{critical_cpi_distribution, slack_fraction, slack_table};
pub use timeseries::{fig06_chart, fig06_swim_cpi_timeline, fig07_swim_miss_timeline, fig18_cg_snapshot};
