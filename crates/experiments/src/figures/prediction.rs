//! Predicted-vs-simulated error figure for the analytical sweep fast path.
//!
//! The fast path ([`crate::miss_model`]) replaces most sweep simulations
//! with predictions from one profiled run per benchmark. This figure
//! quantifies how far those predictions drift: for each probe benchmark it
//! profiles once, then walks a grid of *unseen* static partitions (the
//! Figure 10 pattern — one target thread's allocation varied, the others
//! splitting the rest), simulates each, and compares per-thread predicted
//! vs simulated L2 miss counts. The summary mean error also gates CI
//! (`repro prediction --max-mean-error`) and feeds a scorecard row.

use icp_workloads::suite;

use crate::miss_model::BenchPredictor;
use crate::runner::{ExperimentConfig, Scheme};
use crate::table::Table;

/// Per-benchmark prediction-error summary.
#[derive(Clone, Debug)]
pub struct BenchErrors {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of (thread, partition) comparison points.
    pub points: usize,
    /// Mean relative miss-count error over the points (fraction).
    pub mean: f64,
    /// Max relative miss-count error over the points (fraction).
    pub max: f64,
}

/// Prediction-error measurements across the probe set.
#[derive(Clone, Debug, Default)]
pub struct PredictionErrors {
    /// One summary per probe benchmark.
    pub rows: Vec<BenchErrors>,
    /// Mean relative error over every point of every benchmark (fraction).
    pub mean: f64,
    /// Max relative error over every point of every benchmark (fraction).
    pub max: f64,
}

impl PredictionErrors {
    /// Overall mean relative error in percent.
    pub fn mean_pct(&self) -> f64 {
        self.mean * 100.0
    }

    /// Overall max relative error in percent.
    pub fn max_pct(&self) -> f64 {
        self.max * 100.0
    }
}

/// The target-thread allocation grid: unseen partitions on both sides of
/// the profiled (equal-split) anchor.
fn give_grid(total: u32) -> Vec<u32> {
    [total / 8, total / 4, total / 2]
        .into_iter()
        .filter(|&g| g >= 1)
        .collect()
}

/// Measures predicted-vs-simulated per-thread miss errors over the probe
/// benchmarks at unseen static partitions.
pub fn prediction_errors(cfg: &ExperimentConfig) -> PredictionErrors {
    let cfg = &cfg.with_default_trace_cache().with_default_result_cache();
    let threads = cfg.system.cores;
    let total = cfg.system.l2.ways;
    let mut out = PredictionErrors::default();
    let mut all = Vec::new();
    for bench in [suite::swim(), suite::cg(), suite::ft()] {
        let profile = cfg.run_profiled(&bench, &Scheme::StaticEqual);
        let Some(p) = BenchPredictor::from_outcome(&profile, &cfg.system) else {
            continue;
        };
        let mut errs = Vec::new();
        for give in give_grid(total) {
            // Thread 0 gets `give` ways; the rest split the remainder (the
            // Figure 10 partition shape).
            let others = icp_cmp_sim::l2::equal_split(total - give, threads - 1);
            let mut ways = vec![give];
            ways.extend(others);
            let sim = cfg.run(&bench, &Scheme::StaticCustom(ways.clone()));
            for (t, c) in sim.thread_totals.iter().enumerate() {
                let predicted = p.predict_thread_misses(t, ways.get(t).copied().unwrap_or(0) as f64);
                let actual = c.l2_misses as f64;
                errs.push((predicted - actual).abs() / actual.max(1.0));
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        let max = errs.iter().cloned().fold(0.0f64, f64::max);
        out.rows.push(BenchErrors { name: bench.name, points: errs.len(), mean, max });
        all.extend(errs);
    }
    out.mean = all.iter().sum::<f64>() / all.len().max(1) as f64;
    out.max = all.iter().cloned().fold(0.0f64, f64::max);
    out
}

/// Renders the prediction-error figure as a table.
pub fn prediction_error_table(cfg: &ExperimentConfig) -> Table {
    let e = prediction_errors(cfg);
    let mut t = Table::new(
        "Fast-path prediction error: analytical miss model vs simulation",
        &["benchmark", "points", "mean error", "max error"],
    );
    let pcterr = |v: f64| format!("{:.1}%", v * 100.0);
    for r in &e.rows {
        t.row(vec![r.name.to_string(), r.points.to_string(), pcterr(r.mean), pcterr(r.max)]);
    }
    t.row(vec!["overall".into(), String::new(), pcterr(e.mean), pcterr(e.max)]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_small_enough_to_screen_sweeps() {
        let e = prediction_errors(&ExperimentConfig::test());
        assert_eq!(e.rows.len(), 3, "all three probes must yield predictors");
        for r in &e.rows {
            assert!(r.points > 0, "{}", r.name);
            assert!(r.mean.is_finite() && r.mean >= 0.0, "{}", r.name);
            assert!(r.max >= r.mean, "{}", r.name);
        }
        // Measured at test scale: swim ~2%, cg ~11%, ft ~50% (ft is
        // sharing-dominated — its tiny miss counts make relative errors
        // large while the absolute wall-cycle impact stays small). These
        // bounds are regression guards, not accuracy targets; the
        // fast-mode margin fallback is what protects sweep signs.
        assert!(e.mean < 0.30, "mean miss-prediction error too large: {:.3}", e.mean);
        assert!(e.max < 2.5, "max miss-prediction error too large: {:.3}", e.max);
    }

    #[test]
    fn table_has_probe_rows_and_overall() {
        let t = prediction_error_table(&ExperimentConfig::test());
        assert_eq!(t.len(), 4);
        assert!(t.render().contains("overall"));
    }
}
