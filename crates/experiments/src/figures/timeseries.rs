//! Time-series figures: Figures 6, 7 (SWIM phase behaviour) and the
//! Figure 18 snapshot table (NAS CG under the dynamic scheme).

use icp_workloads::suite;

use crate::figures::context::SuiteData;
use crate::runner::{ExperimentConfig, Scheme};
use crate::table::{f2, Table};

/// Figure 6: per-thread CPI of SWIM across (up to) 50 contiguous execution
/// intervals on the shared cache — thread behaviour varies both across
/// threads and across time (phases).
pub fn fig06_swim_cpi_timeline(data: &SuiteData) -> Table {
    let idx = data
        .names()
        .iter()
        .position(|n| *n == "swim")
        .expect("swim in suite");
    let out = &data.shared[idx];
    let threads = out.thread_totals.len();
    let mut headers = vec!["interval".to_string()];
    headers.extend((0..threads).map(|t| format!("cpi:t{t}")));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Figure 6: SWIM per-thread CPI over execution intervals (shared L2)", &hdr);
    for r in out.records.iter().take(50) {
        let mut row = vec![r.index.to_string()];
        row.extend(r.cpi.iter().map(|c| f2(*c)));
        table.row(row);
    }
    table
}

/// Line-chart rendering of Figure 6 (per-thread CPI series).
pub fn fig06_chart(data: &SuiteData) -> crate::chart::LineChart {
    let idx = data.names().iter().position(|n| *n == "swim").expect("swim in suite");
    let out = &data.shared[idx];
    let threads = out.thread_totals.len();
    let mut c = crate::chart::LineChart::new(
        "Figure 6 (chart): SWIM per-thread CPI over execution intervals",
    );
    for t in 0..threads {
        let series: Vec<f64> = out
            .records
            .iter()
            .take(50)
            .map(|r| if r.instructions[t] > 0 { r.cpi[t] } else { 0.0 })
            .collect();
        c.series(format!("t{t}"), series);
    }
    c
}

/// Figure 7: L2 misses of SWIM's thread 2 during the same intervals as
/// Figure 6 — miss counts track the CPI series, showing the phase behaviour
/// is cache-driven.
pub fn fig07_swim_miss_timeline(data: &SuiteData) -> Table {
    let idx = data
        .names()
        .iter()
        .position(|n| *n == "swim")
        .expect("swim in suite");
    let out = &data.shared[idx];
    let mut table = Table::new(
        "Figure 7: SWIM thread-2 L2 misses over the same intervals as Figure 6",
        &["interval", "l2-misses:t2", "cpi:t2"],
    );
    for r in out.records.iter().take(50) {
        table.row(vec![
            r.index.to_string(),
            r.l2_misses[2].to_string(),
            f2(r.cpi[2]),
        ]);
    }
    table
}

/// Figure 18: snapshot of the dynamic scheme across the first execution
/// intervals of NAS CG — way allocation per thread plus the resulting
/// overall CPI. The paper's table shows the critical thread (thread 3,
/// 0-based) receiving the dominant share from interval 2 on, and the
/// overall CPI dropping as a result.
pub fn fig18_cg_snapshot(cfg: &ExperimentConfig) -> Table {
    let bench = suite::cg();
    let out = cfg.run(&bench, &Scheme::ModelBased);
    let threads = out.thread_totals.len();
    let mut headers = vec!["interval".to_string()];
    headers.extend((0..threads).map(|t| format!("ways:t{t}")));
    headers.push("CPI:t3 (critical)".into());
    headers.push("overall CPI".into());
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 18: dynamic partitioning snapshot, NAS CG (first intervals)",
        &hdr,
    );
    for r in out.records.iter().take(6) {
        let mut row = vec![(r.index + 1).to_string()];
        row.extend(r.ways.iter().map(|w| w.to_string()));
        row.push(f2(r.cpi[3]));
        // Note: overall CPI mixes whichever threads were active during the
        // interval (barrier-parked threads retire nothing), so it is noisy
        // across intervals; the critical thread's own CPI is the cleaner
        // signal and falls monotonically as its allocation grows.
        row.push(f2(r.overall_cpi));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use crate::runner::ExperimentConfig;

    #[test]
    fn fig18_critical_thread_gets_dominant_share() {
        let cfg = ExperimentConfig::test();
        let bench = suite::cg();
        let out = cfg.run(&bench, &Scheme::ModelBased);
        // After the bootstrap boundaries, thread 3 (the critical thread)
        // must hold the largest quota.
        let later = &out.records[out.records.len().min(4) - 1];
        let max = later.ways.iter().max().unwrap();
        assert_eq!(later.ways[3], *max, "ways {:?}", later.ways);
    }

    #[test]
    fn timeline_tables_have_rows() {
        let data = crate::figures::context::test_data();
        assert!(fig06_swim_cpi_timeline(data).len() >= 10);
        assert!(fig07_swim_miss_timeline(data).len() >= 10);
        assert_eq!(fig06_chart(data).len(), 4);
    }
}
