//! Slack-time analysis — the paper's central mechanism made measurable.
//!
//! "Slack time is defined as the difference between thread speeds" (§I):
//! a thread that reaches the barrier early stalls until the critical path
//! thread arrives. The whole point of intra-application partitioning is to
//! shrink that slack by speeding the slowest thread up. This module
//! quantifies it directly: the fraction of thread-cycles spent parked at
//! barriers under each scheme, plus distribution summaries.

use icp_core::ExecutionOutcome;
use icp_numeric::histogram::percentile;
use icp_numeric::stats;

use crate::figures::context::SuiteData;
use crate::table::{pct, Table};

/// Fraction of total thread-time spent stalled at barriers.
pub fn slack_fraction(out: &ExecutionOutcome) -> f64 {
    let stall: u64 = out.thread_totals.iter().map(|c| c.barrier_stall_cycles).sum();
    let active: u64 = out.thread_totals.iter().map(|c| c.active_cycles).sum();
    if stall + active == 0 {
        return 0.0;
    }
    stall as f64 / (stall + active) as f64
}

/// Per-benchmark slack share under shared / equal / dynamic partitions.
/// The dynamic scheme should show the smallest slack — it explicitly
/// balances thread speeds.
pub fn slack_table(data: &SuiteData) -> Table {
    let mut t = Table::new(
        "Slack analysis: share of thread-time parked at barriers",
        &["bench", "shared", "equal", "dynamic", "dyn reduction vs shared"],
    );
    let mut reductions = Vec::new();
    for (((b, sh), eq), dy) in data
        .benches
        .iter()
        .zip(&data.shared)
        .zip(&data.equal)
        .zip(&data.dynamic)
    {
        let (s, e, d) = (slack_fraction(sh), slack_fraction(eq), slack_fraction(dy));
        let red = if s > 0.0 { (s - d) / s * 100.0 } else { 0.0 };
        reductions.push(red);
        t.row(vec![
            b.name.to_string(),
            pct(s * 100.0),
            pct(e * 100.0),
            pct(d * 100.0),
            pct(red),
        ]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        String::new(),
        pct(stats::mean(&reductions)),
    ]);
    t
}

/// Distribution of per-interval critical-path CPI (max thread CPI) under
/// shared vs dynamic — the tail is what barrier time tracks.
pub fn critical_cpi_distribution(data: &SuiteData, bench: &str) -> Table {
    let idx = data
        .names()
        .iter()
        .position(|n| *n == bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let series = |out: &ExecutionOutcome| -> Vec<f64> {
        out.records
            .iter()
            .filter_map(|r| {
                let active: Vec<f64> = r
                    .cpi
                    .iter()
                    .zip(&r.instructions)
                    .filter(|(_, i)| **i > 0)
                    .map(|(c, _)| *c)
                    .collect();
                stats::max(&active)
            })
            .collect()
    };
    let shared = series(&data.shared[idx]);
    let dynamic = series(&data.dynamic[idx]);
    let mut t = Table::new(
        format!("Critical-path CPI distribution over intervals ({bench})"),
        &["scheme", "p50", "p90", "max"],
    );
    for (name, s) in [("shared", &shared), ("dynamic", &dynamic)] {
        t.row(vec![
            name.to_string(),
            format!("{:.2}", percentile(s, 0.5).unwrap_or(0.0)),
            format!("{:.2}", percentile(s, 0.9).unwrap_or(0.0)),
            format!("{:.2}", stats::max(s).unwrap_or(0.0)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::context::test_data;

    #[test]
    fn dynamic_scheme_reduces_slack_on_contended_benchmarks() {
        let data = test_data();
        let names = data.names();
        let mut wins = 0;
        let mut contended = 0;
        for (i, name) in names.iter().enumerate() {
            if icp_workloads::suite::small_working_set_names().contains(name) {
                continue;
            }
            contended += 1;
            let s = slack_fraction(&data.shared[i]);
            let d = slack_fraction(&data.dynamic[i]);
            if d < s {
                wins += 1;
            }
        }
        assert!(
            wins * 3 >= contended * 2,
            "dynamic reduced slack on only {wins}/{contended} contended benchmarks"
        );
    }

    #[test]
    fn slack_fractions_are_sane() {
        let data = test_data();
        for out in data.shared.iter().chain(&data.dynamic) {
            let f = slack_fraction(out);
            assert!((0.0..1.0).contains(&f), "slack {f}");
        }
        let t = slack_table(data);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn critical_cpi_distribution_orders_percentiles() {
        let data = test_data();
        let t = critical_cpi_distribution(data, "swim");
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|c| c.parse().unwrap())
                .collect();
            assert!(cells[0] <= cells[1] && cells[1] <= cells[2], "{line}");
        }
    }
}
