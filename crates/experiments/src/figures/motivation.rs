//! Motivation-section figures (paper §IV): Figures 3, 4, 5, 8 and 9.
//!
//! All of these observe the suite running on a plain **shared** cache —
//! they quantify the heterogeneity and interference that motivate
//! intra-application partitioning.

use icp_numeric::stats;

use crate::figures::context::SuiteData;
use crate::table::{f2, f3, pct, Table};

/// Figure 3: per-thread performance (inverse of per-thread execution time),
/// normalized to the fastest thread of each benchmark. The lowest value in
/// each row is the critical path thread.
pub fn fig03_thread_performance(data: &SuiteData) -> Table {
    let threads = data.shared[0].thread_totals.len();
    let mut headers = vec!["bench".to_string()];
    headers.extend((0..threads).map(|t| format!("t{t}")));
    headers.push("critical".into());
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 3: per-thread performance normalized to the fastest thread (shared L2)",
        &hdr,
    );
    for (b, out) in data.benches.iter().zip(&data.shared) {
        // A thread's execution time is the active cycles it needed for its
        // (equal) share of work; performance is its inverse.
        let perf: Vec<f64> = out
            .thread_totals
            .iter()
            .map(|c| if c.active_cycles == 0 { 0.0 } else { 1.0 / c.active_cycles as f64 })
            .collect();
        let norm = stats::normalize_to_max(&perf);
        let critical = norm
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(i, _)| i)
            .expect("threads");
        let mut row = vec![b.name.to_string()];
        row.extend(norm.iter().map(|v| f2(*v)));
        row.push(format!("t{critical}"));
        table.row(row);
    }
    table
}

/// Figure 4: per-thread L2 misses normalized to the thread with the most
/// misses. Compare with Figure 3: slow threads are the high-miss threads.
pub fn fig04_thread_misses(data: &SuiteData) -> Table {
    let threads = data.shared[0].thread_totals.len();
    let mut headers = vec!["bench".to_string()];
    headers.extend((0..threads).map(|t| format!("t{t}")));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 4: per-thread L2 misses normalized to the highest-miss thread (shared L2)",
        &hdr,
    );
    for (b, out) in data.benches.iter().zip(&data.shared) {
        let misses: Vec<f64> = out.thread_totals.iter().map(|c| c.l2_misses as f64).collect();
        let norm = stats::normalize_to_max(&misses);
        let mut row = vec![b.name.to_string()];
        row.extend(norm.iter().map(|v| f2(*v)));
        table.row(row);
    }
    table
}

/// Figure 5: Pearson correlation between per-interval CPI and per-interval
/// L2 misses, pooled over threads and intervals. The paper reports an
/// average of ≈ 0.97, establishing that CPI differences are cache-driven.
pub fn fig05_cpi_miss_correlation(data: &SuiteData) -> Table {
    let mut table = Table::new(
        "Figure 5: correlation coefficient between L2 misses and CPI",
        &["bench", "correlation"],
    );
    let mut all = Vec::new();
    for (b, out) in data.benches.iter().zip(&data.shared) {
        // Correlation is computed per thread across its interval series
        // (each thread has a fixed miss cost; pooling threads with
        // different memory-level parallelism would mix slopes), then
        // averaged over the threads with meaningful variation.
        let threads = out.thread_totals.len();
        let mut per_thread = Vec::new();
        for t in 0..threads {
            let mut cpis = Vec::new();
            let mut misses = Vec::new();
            for r in out.records.iter() {
                // Skip idle (barrier-parked) thread-intervals.
                if r.instructions[t] > 0 {
                    // Misses per instruction, so interval-length jitter
                    // doesn't mask the relationship.
                    cpis.push(r.cpi[t]);
                    misses.push(r.l2_misses[t] as f64 / r.instructions[t] as f64);
                }
            }
            if let Some(c) = stats::pearson(&cpis, &misses) {
                per_thread.push(c);
            }
        }
        let corr = stats::mean(&per_thread);
        all.push(corr);
        table.row(vec![b.name.to_string(), f3(corr)]);
    }
    table.row(vec!["average".into(), f3(stats::mean(&all))]);
    table
}

/// Figure 8: percentage of cache interactions that are inter-thread
/// (paper average ≈ 11.5%).
pub fn fig08_interthread_interaction(data: &SuiteData) -> Table {
    let mut table = Table::new(
        "Figure 8: inter-thread share of all L2 interactions (shared L2)",
        &["bench", "inter-thread"],
    );
    let mut all = Vec::new();
    for (b, out) in data.benches.iter().zip(&data.shared) {
        let f = out.interactions.inter_thread_fraction() * 100.0;
        all.push(f);
        table.row(vec![b.name.to_string(), pct(f)]);
    }
    table.row(vec!["average".into(), pct(stats::mean(&all))]);
    table
}

/// Figure 9: breakdown of inter-thread interactions into constructive
/// (cross-thread hits) and destructive (cross-thread evictions).
pub fn fig09_interaction_breakdown(data: &SuiteData) -> Table {
    let mut table = Table::new(
        "Figure 9: constructive vs destructive inter-thread interactions (shared L2)",
        &["bench", "constructive", "destructive"],
    );
    for (b, out) in data.benches.iter().zip(&data.shared) {
        let c = out.interactions.constructive_fraction() * 100.0;
        table.row(vec![b.name.to_string(), pct(c), pct(100.0 - c)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::context::test_data as data;

    #[test]
    fn fig03_every_benchmark_has_a_laggard() {
        let t = fig03_thread_performance(data());
        assert_eq!(t.len(), 9);
        // Parse the CSV: the minimum normalized performance per row must be
        // clearly below 1.0 (per-thread variability, §IV-A1).
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let vals: Vec<f64> = cells[1..5].iter().map(|c| c.parse().unwrap()).collect();
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!((max - 1.0).abs() < 1e-9, "{line}");
            assert!(min < 0.85, "no clear critical thread in: {line}");
        }
    }

    #[test]
    fn fig04_critical_threads_have_high_misses() {
        // The slowest thread of each benchmark (from fig 3) should be at or
        // near the top of the miss ranking (fig 4): the paper's correlation
        // argument at benchmark granularity.
        let perf = fig03_thread_performance(data()).to_csv();
        let miss = fig04_thread_misses(data()).to_csv();
        for (p, m) in perf.lines().skip(1).zip(miss.lines().skip(1)) {
            let pc: Vec<&str> = p.split(',').collect();
            let mc: Vec<&str> = m.split(',').collect();
            let perf_vals: Vec<f64> = pc[1..5].iter().map(|c| c.parse().unwrap()).collect();
            let miss_vals: Vec<f64> = mc[1..5].iter().map(|c| c.parse().unwrap()).collect();
            let slowest = (0..4)
                .min_by(|&a, &b| perf_vals[a].partial_cmp(&perf_vals[b]).unwrap())
                .unwrap();
            assert!(
                miss_vals[slowest] > 0.5,
                "{}: slowest thread t{slowest} has low misses {miss_vals:?}",
                pc[0]
            );
        }
    }

    #[test]
    fn fig05_correlations_are_high() {
        let t = fig05_cpi_miss_correlation(data());
        let csv = t.to_csv();
        let avg_line = csv.lines().last().unwrap();
        let avg: f64 = avg_line.split(',').nth(1).unwrap().parse().unwrap();
        assert!(avg > 0.9, "average correlation {avg}");
    }

    #[test]
    fn fig08_fraction_bounds() {
        let t = fig08_interthread_interaction(data());
        for line in t.to_csv().lines().skip(1) {
            let v: f64 = line.split(',').nth(1).unwrap().trim_end_matches('%').parse().unwrap();
            assert!((0.0..=100.0).contains(&v), "{line}");
        }
    }

    #[test]
    fn fig09_breakdown_sums_to_100() {
        let t = fig09_interaction_breakdown(data());
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let c: f64 = cells[1].trim_end_matches('%').parse().unwrap();
            let d: f64 = cells[2].trim_end_matches('%').parse().unwrap();
            assert!((c + d - 100.0).abs() < 0.2, "{line}");
        }
    }
}
