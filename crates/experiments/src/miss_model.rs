//! Analytical miss-curve fast path for sensitivity sweeps.
//!
//! A sweep axis evaluates three schemes at every point; exact mode
//! simulates all of them. But one *profiling* simulation per
//! (benchmark, geometry, seed) — a static-equal run with a passive
//! full-run utility monitor attached — already determines the whole
//! misses-vs-ways curve of every thread by the LRU inclusion property
//! ([`icp_cmp_sim::UmonProfile`]). This module turns that profile into a
//! [`BenchPredictor`] that estimates, without further simulation:
//!
//! * per-thread miss counts at any (fractional) way allocation, by
//!   *ratio anchoring* — the simulated static-equal miss count scaled by
//!   the UMON curve's relative change from the static-equal allocation.
//!   The per-thread ATD models a private cache, so it overcounts misses
//!   whenever threads share data (a line fetched by any thread serves all
//!   of them regardless of way quotas — up to 80% of would-be private
//!   misses are covered this way in the shared-heavy probes); anchoring on
//!   the *ratio* assumes that coverage fraction is allocation-independent,
//!   which cancels the offset where a delta would not;
//! * per-thread CPI via [`icp_core::propagate_cpi`], with the per-miss
//!   penalty recovered from the profile run's own counters by
//!   [`icp_core::estimated_miss_penalty`] (the timing model is linear in
//!   misses, so this inversion is exact up to MLP rounding);
//! * wall cycles for a whole allocation, scaling the simulated wall by the
//!   predicted change of the critical (max active cycles) thread;
//! * scheme outcomes: static-equal (the profile run itself — exact),
//!   shared (an occupancy fixed point: each thread's effective ways settle
//!   proportional to its fill rate), and model-based (a greedy hill-climb
//!   on predicted wall cycles, mirroring the runtime policy's search).
//!
//! The fast path is a *screening* tool: sweeps use it to predict the
//! dynamic scheme's improvements at every axis point and fall back to
//! exact simulation wherever a predicted improvement is within a margin of
//! zero, so reported *signs* are always simulation-confirmed.

use icp_cmp_sim::SystemConfig;
use icp_core::{estimated_miss_penalty, propagate_cpi, ExecutionOutcome};
use icp_hot_path::deterministic;
use icp_numeric::MonotoneDecreasing;

/// Analytical per-benchmark performance predictor, built from one
/// profiled static-equal simulation.
#[derive(Clone, Debug)]
pub struct BenchPredictor {
    /// Per-thread whole-cache miss curves over ways `0..=W` (UMON counts
    /// scaled by the set-sampling factor).
    curves: Vec<MonotoneDecreasing>,
    /// Per-thread way allocation of the profile run (anchor point).
    base_ways: Vec<f64>,
    /// Per-thread simulated L2 misses of the profile run.
    base_misses: Vec<f64>,
    /// Per-thread simulated CPI of the profile run.
    base_cpi: Vec<f64>,
    /// Per-thread instruction counts.
    instructions: Vec<u64>,
    /// Per-thread estimated cycles per additional L2 miss.
    penalty: Vec<f64>,
    /// Simulated wall cycles of the profile run.
    base_wall: f64,
    /// Max per-thread active cycles of the profile run (critical path).
    base_max_active: f64,
    /// Total partitionable ways.
    total_ways: u32,
}

impl BenchPredictor {
    /// Builds a predictor from a profiled outcome (see
    /// [`crate::runner::ExperimentConfig::run_profiled`]). Returns `None`
    /// when the outcome carries no UMON profile or the profile is
    /// degenerate (no threads, a thread with no instructions, or a miss
    /// curve too short to fit).
    pub fn from_outcome(out: &ExecutionOutcome, sys: &SystemConfig) -> Option<Self> {
        let profile = out.umon_profile.as_ref()?;
        let threads = profile.threads();
        if threads == 0 || out.thread_totals.len() != threads {
            return None;
        }
        let total_ways = profile.ways;
        if total_ways < 1 {
            return None;
        }
        let scale = profile.sample_scale();

        // Anchor allocation: the ways each thread actually held. The last
        // interval record is authoritative (static schemes never change
        // it); fall back to an equal split for record-less outcomes.
        let base_ways: Vec<f64> = match out.records.last() {
            Some(r) if r.ways.len() == threads => r.ways.iter().map(|&w| w as f64).collect(),
            _ => vec![total_ways as f64 / threads as f64; threads],
        };

        let mut curves = Vec::with_capacity(threads);
        let mut base_misses = Vec::with_capacity(threads);
        let mut base_cpi = Vec::with_capacity(threads);
        let mut instructions = Vec::with_capacity(threads);
        let mut penalty = Vec::with_capacity(threads);
        let mut base_max_active = 0.0f64;
        for (t, c) in out.thread_totals.iter().enumerate() {
            if c.instructions == 0 {
                return None;
            }
            let ys: Vec<f64> = (0..=total_ways)
                .map(|w| profile.misses_with_ways(t, w) as f64 * scale)
                .collect();
            curves.push(MonotoneDecreasing::fit(&ys).ok()?);
            base_misses.push(c.l2_misses as f64);
            base_cpi.push(c.active_cycles as f64 / c.instructions as f64);
            instructions.push(c.instructions);
            penalty.push(estimated_miss_penalty(c, &sys.latency));
            base_max_active = base_max_active.max(c.active_cycles as f64);
        }
        if base_max_active <= 0.0 || out.wall_cycles == 0 {
            return None;
        }
        Some(BenchPredictor {
            curves,
            base_ways,
            base_misses,
            base_cpi,
            instructions,
            penalty,
            base_wall: out.wall_cycles as f64,
            base_max_active,
            total_ways,
        })
    }

    /// Number of modelled threads.
    pub fn threads(&self) -> usize {
        self.curves.len()
    }

    /// Total partitionable ways.
    pub fn total_ways(&self) -> u32 {
        self.total_ways
    }

    /// Predicted whole-run L2 misses of `thread` at a (fractional) way
    /// allocation: the simulated anchor scaled by the UMON curve's ratio
    /// to its anchor level (falling back to an additive delta when the
    /// anchor level is too small to divide by), floored at zero.
    #[deterministic]
    pub fn predict_thread_misses(&self, thread: usize, ways: f64) -> f64 {
        let (Some(curve), Some(&anchor)) = (self.curves.get(thread), self.base_ways.get(thread))
        else {
            return 0.0;
        };
        let base = self.base_misses.get(thread).copied().unwrap_or(0.0);
        let anchor_level = curve.eval(anchor);
        if anchor_level > 1.0 {
            (base * curve.eval(ways) / anchor_level).max(0.0)
        } else {
            (base + curve.eval(ways) - anchor_level).max(0.0)
        }
    }

    /// Predicted CPI of `thread` at a way allocation, by linear miss-cost
    /// propagation from the profiled anchor.
    #[deterministic]
    pub fn predict_thread_cpi(&self, thread: usize, ways: f64) -> f64 {
        let base_cpi = self.base_cpi.get(thread).copied().unwrap_or(1.0);
        let instr = self.instructions.get(thread).copied().unwrap_or(0);
        let base = self.base_misses.get(thread).copied().unwrap_or(0.0);
        let pen = self.penalty.get(thread).copied().unwrap_or(1.0);
        propagate_cpi(base_cpi, instr, base, self.predict_thread_misses(thread, ways), pen)
    }

    /// Predicted wall cycles for a whole allocation: the profile wall
    /// scaled by the predicted change of the critical thread's active
    /// cycles (barrier structure is allocation-independent, so the wall
    /// tracks the slowest thread).
    #[deterministic]
    pub fn predict_wall(&self, allocation: &[f64]) -> f64 {
        let mut max_active = 0.0f64;
        // ORDER: fixed thread order; f64 max is order-insensitive here.
        for t in 0..self.threads() {
            let ways = allocation.get(t).copied().unwrap_or(0.0);
            let active = self.instructions.get(t).copied().unwrap_or(0) as f64
                * self.predict_thread_cpi(t, ways);
            max_active = max_active.max(active);
        }
        self.base_wall * max_active / self.base_max_active
    }

    /// Predicted wall cycles of the static-equal scheme — the profile run
    /// itself, so this is the simulated value, exact by construction.
    #[deterministic]
    pub fn predict_equal_wall(&self) -> f64 {
        self.base_wall
    }

    /// Predicted wall cycles under a plain shared cache.
    ///
    /// In a shared LRU cache a thread's steady-state occupancy is
    /// proportional to its fill (miss) rate. That is a fixed point —
    /// occupancy determines misses determine occupancy — solved here by
    /// damped iteration from an equal split; ~tens of iterations settle
    /// well below way granularity.
    #[deterministic]
    pub fn predict_shared_wall(&self) -> f64 {
        let n = self.threads();
        if n == 0 {
            return self.base_wall;
        }
        let total = self.total_ways as f64;
        let mut occ = vec![total / n as f64; n];
        for _ in 0..40 {
            let rates: Vec<f64> =
                (0..n).map(|t| self.predict_thread_misses(t, occ[t]).max(1.0)).collect();
            // ORDER: fixed thread order; sum feeds a ratio, not a digest.
            let sum: f64 = rates.iter().sum();
            for t in 0..n {
                let target = total * rates[t] / sum;
                occ[t] += 0.5 * (target - occ[t]);
            }
        }
        self.predict_wall(&occ)
    }

    /// Predicted model-based partition and its wall cycles: greedy
    /// hill-climb moving one way at a time to the predicted critical
    /// thread (the same objective the runtime policy optimises), stopping
    /// when no single move improves the predicted wall.
    #[deterministic]
    pub fn predict_model_based(&self) -> (Vec<u32>, f64) {
        let n = self.threads();
        if n == 0 {
            return (Vec::new(), self.base_wall);
        }
        let mut alloc: Vec<u32> = equal_split(self.total_ways, n);
        let as_f64 = |a: &[u32]| a.iter().map(|&w| w as f64).collect::<Vec<f64>>();
        let mut best = self.predict_wall(&as_f64(&alloc));
        // At most W moves: each accepted move strictly improves the
        // predicted wall, which is bounded below.
        for _ in 0..self.total_ways {
            let mut improved = false;
            let mut best_move = (0usize, 0usize, best);
            for to in 0..n {
                for from in 0..n {
                    if from == to || alloc[from] <= 1 {
                        continue;
                    }
                    let mut trial = alloc.clone();
                    trial[from] -= 1;
                    trial[to] += 1;
                    let wall = self.predict_wall(&as_f64(&trial));
                    if wall < best_move.2 - 1e-9 {
                        best_move = (from, to, wall);
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
            alloc[best_move.0] -= 1;
            alloc[best_move.1] += 1;
            best = best_move.2;
        }
        (alloc, best)
    }

    /// Predicted improvements of the model-based scheme over
    /// (shared, static-equal), in percent, matching
    /// [`icp_core::ExecutionOutcome::improvement_percent_over`].
    #[deterministic]
    pub fn improvements(&self) -> (f64, f64) {
        let (_, mb) = self.predict_model_based();
        let shared = self.predict_shared_wall();
        let equal = self.predict_equal_wall();
        if mb <= 0.0 {
            return (0.0, 0.0);
        }
        ((shared / mb - 1.0) * 100.0, (equal / mb - 1.0) * 100.0)
    }
}

/// Equal split of `total` ways over `n` threads, earlier threads taking
/// the remainder — the same convention as the static-equal policy.
#[deterministic]
fn equal_split(total: u32, n: usize) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }
    let base = total / n as u32;
    let rem = (total as usize) % n;
    (0..n).map(|t| base + u32::from(t < rem)).collect()
}

/// The *cluster-wise* equal split: `total` ways divided equally among
/// `clusters` contiguous thread groups first, then equally within each
/// group — the static baseline of the hierarchical (cluster-then-
/// partition) schemes, matching `icp_core::HierarchicalPolicy`'s
/// materialisation convention.
///
/// This is the per-cluster re-anchor point for sliced configs: when way
/// counts don't divide evenly it differs from the flat equal split (e.g.
/// 64 ways, 6 threads, 2 clusters: `[11, 11, 10, 11, 11, 10]` vs the flat
/// `[11, 11, 11, 11, 10, 10]`), and a [`BenchPredictor`] profiled at the
/// flat split would carry that anchor error into every sliced-config
/// prediction.
#[deterministic]
pub fn clustered_equal_split(total: u32, threads: usize, clusters: usize) -> Vec<u32> {
    if clusters <= 1 || !threads.is_multiple_of(clusters) {
        return equal_split(total, threads);
    }
    let group = threads / clusters;
    let mut out = Vec::with_capacity(threads);
    for budget in equal_split(total, clusters) {
        out.extend(equal_split(budget, group));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ExperimentConfig, Scheme};
    use icp_workloads::suite;

    fn predictor_for(bench: &icp_workloads::BenchmarkSpec) -> (BenchPredictor, ExperimentConfig) {
        let cfg = ExperimentConfig::test();
        let out = cfg.run_profiled(bench, &Scheme::StaticEqual);
        let p = BenchPredictor::from_outcome(&out, &cfg.system)
            .expect("profiled static-equal run must yield a predictor");
        (p, cfg)
    }

    #[test]
    fn anchor_point_reproduces_the_simulation_exactly() {
        let (p, cfg) = predictor_for(&suite::swim());
        let out = cfg.run(&suite::swim(), &Scheme::StaticEqual);
        // At the anchor allocation the delta is zero by construction.
        let per = p.total_ways() as f64 / p.threads() as f64;
        for t in 0..p.threads() {
            let m = p.predict_thread_misses(t, per);
            assert!(
                (m - out.thread_totals[t].l2_misses as f64).abs() < 1e-6,
                "thread {t}: {m} vs {}",
                out.thread_totals[t].l2_misses
            );
        }
        assert!((p.predict_equal_wall() - out.wall_cycles as f64).abs() < 1e-6);
        assert!(
            (p.predict_wall(&vec![per; p.threads()]) - out.wall_cycles as f64).abs()
                < out.wall_cycles as f64 * 1e-9
        );
    }

    #[test]
    fn fewer_ways_never_predicts_fewer_misses() {
        let (p, _) = predictor_for(&suite::cg());
        for t in 0..p.threads() {
            let mut prev = p.predict_thread_misses(t, 0.5);
            let mut w = 1.0;
            while w <= p.total_ways() as f64 {
                let m = p.predict_thread_misses(t, w);
                assert!(m <= prev + 1e-9, "thread {t} at {w} ways");
                prev = m;
                w += 0.5;
            }
        }
    }

    #[test]
    fn predicted_misses_track_simulation_at_off_anchor_partitions() {
        // The accuracy property behind the fast path: predict misses at a
        // partition the profiler never saw, then simulate that partition
        // and compare per-thread relative error.
        let (p, cfg) = predictor_for(&suite::swim());
        let total = p.total_ways();
        let n = p.threads();
        let mut ways = equal_split(total, n);
        // A decidedly unequal partition: thread 0 gets double share.
        let take = ways[0] / 2;
        ways[0] += take;
        let donors = n - 1;
        for (i, w) in ways.iter_mut().enumerate().skip(1) {
            *w -= take / donors as u32 + u32::from(i - 1 < (take as usize % donors));
        }
        assert_eq!(ways.iter().sum::<u32>(), total);
        let out = cfg.run(&suite::swim(), &Scheme::StaticCustom(ways.clone()));
        for t in 0..n {
            let predicted = p.predict_thread_misses(t, ways[t] as f64);
            let actual = out.thread_totals[t].l2_misses as f64;
            let rel = (predicted - actual).abs() / actual.max(1.0);
            assert!(
                rel < 0.35,
                "thread {t}: predicted {predicted:.0} vs simulated {actual:.0} ({:.1}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn model_based_search_conserves_ways_and_never_loses_to_equal() {
        for bench in [suite::swim(), suite::cg(), suite::ft()] {
            let (p, _) = predictor_for(&bench);
            let (alloc, wall) = p.predict_model_based();
            assert_eq!(alloc.iter().sum::<u32>(), p.total_ways(), "{}", bench.name);
            assert!(alloc.iter().all(|&w| w >= 1), "{}", bench.name);
            // Greedy starts from the equal split, so it can only improve.
            assert!(wall <= p.predict_equal_wall() + 1e-6, "{}", bench.name);
            assert!(wall > 0.0, "{}", bench.name);
        }
    }

    #[test]
    fn shared_fixed_point_is_finite_and_positive() {
        for bench in [suite::swim(), suite::ft()] {
            let (p, _) = predictor_for(&bench);
            let wall = p.predict_shared_wall();
            assert!(wall.is_finite() && wall > 0.0, "{}", bench.name);
            let (s, e) = p.improvements();
            assert!(s.is_finite() && e.is_finite(), "{}", bench.name);
        }
    }

    #[test]
    fn equal_split_matches_policy_convention() {
        assert_eq!(equal_split(64, 4), vec![16; 4]);
        assert_eq!(equal_split(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(equal_split(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(equal_split(5, 0), Vec::<u32>::new());
    }

    #[test]
    fn clustered_split_groups_then_divides() {
        // Divisible case: identical to the flat split.
        assert_eq!(clustered_equal_split(64, 16, 4), vec![4; 16]);
        // Remainders land per cluster, not globally.
        assert_eq!(clustered_equal_split(64, 6, 2), vec![11, 11, 10, 11, 11, 10]);
        assert_eq!(equal_split(64, 6), vec![11, 11, 11, 11, 10, 10]);
        // Degenerate cluster counts fall back to the flat split.
        assert_eq!(clustered_equal_split(10, 4, 1), equal_split(10, 4));
        assert_eq!(clustered_equal_split(10, 5, 2), equal_split(10, 5));
    }

    #[test]
    fn clustered_anchor_reproduces_sliced_simulation() {
        // The per-cluster re-anchor property: profile a *sliced* config at
        // the cluster's equal split and the predictor must reproduce that
        // run exactly at its anchor — the invariant the sweep fast path
        // relies on for sliced axis points.
        let cfg = ExperimentConfig::test().with_topology(6, 2);
        let anchor = clustered_equal_split(cfg.system.l2.ways, 6, 2);
        let out = cfg.run_profiled(&suite::swim(), &Scheme::StaticCustom(anchor.clone()));
        let p = BenchPredictor::from_outcome(&out, &cfg.system)
            .expect("sliced profiled run must yield a predictor");
        for (t, &w) in anchor.iter().enumerate() {
            let m = p.predict_thread_misses(t, w as f64);
            assert!(
                (m - out.thread_totals[t].l2_misses as f64).abs() < 1e-6,
                "thread {t}: {m} vs {}",
                out.thread_totals[t].l2_misses
            );
        }
        let alloc: Vec<f64> = anchor.iter().map(|&w| w as f64).collect();
        assert!(
            (p.predict_wall(&alloc) - out.wall_cycles as f64).abs()
                < out.wall_cycles as f64 * 1e-9
        );
    }
}
