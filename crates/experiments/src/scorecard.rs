//! The reproduction scorecard: automated paper-vs-measured band checks.
//!
//! Each entry encodes a quantitative claim from the paper's evaluation and
//! the tolerance band this reproduction is expected to land in (shape
//! fidelity, not absolute-number matching — see `EXPERIMENTS.md`). The
//! scorecard is printed by `repro scorecard` and asserted (at figure scale)
//! by the `figure_scale_bands` integration test.

use icp_numeric::stats;
use icp_workloads::suite;

use crate::figures::SuiteData;
use crate::runner::{ExperimentConfig, Scheme};
use crate::table::{f2, Table};

/// One checked claim.
#[derive(Clone, Debug)]
pub struct Check {
    /// Which figure/claim this verifies.
    pub claim: &'static str,
    /// The paper's reported value (as text, for the report).
    pub paper: &'static str,
    /// Measured value.
    pub measured: f64,
    /// Acceptance band for the measured value.
    pub band: (f64, f64),
}

impl Check {
    /// Whether the measured value lies in the band.
    pub fn pass(&self) -> bool {
        self.measured >= self.band.0 && self.measured <= self.band.1
    }
}

/// Runs the whole suite and evaluates every scorecard claim, plus the
/// fast-path prediction-error check (which needs extra simulations beyond
/// the suite collection, so it lives here and not in [`scorecard_from`]).
pub fn run_scorecard(cfg: &ExperimentConfig) -> Vec<Check> {
    let data = SuiteData::collect(cfg);
    let mut checks = scorecard_from(&data);
    let errors = crate::figures::prediction::prediction_errors(cfg);
    checks.push(Check {
        claim: "Fast path: mean miss-prediction error (%)",
        paper: "n/a (reproduction extension)",
        measured: errors.mean_pct(),
        // Scale-dependent: ~21 % at test scale, ~43 % at figure scale
        // (ft's sharing-dominated tiny miss counts inflate relative error
        // as runs lengthen — see EXPERIMENTS.md). The band is a regression
        // guard on the predictor, not a sweep-accuracy bound: sweep signs
        // are protected by the fast-mode margin fallback.
        band: (0.0, 60.0),
    });
    checks
}

/// Evaluates the scorecard claims against an existing suite collection.
pub fn scorecard_from(data: &SuiteData) -> Vec<Check> {
    let imps = |base: &[icp_core::ExecutionOutcome]| -> Vec<f64> {
        data.dynamic
            .iter()
            .zip(base)
            .map(|(d, b)| d.improvement_percent_over(b))
            .collect()
    };
    let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);

    let vs_shared = imps(&data.shared);
    let vs_equal = imps(&data.equal);
    let vs_ucp = imps(&data.ucp);

    // Correlation (Figure 5): per-thread, averaged per benchmark.
    let mut corrs = Vec::new();
    for out in &data.shared {
        let threads = out.thread_totals.len();
        let mut per_thread = Vec::new();
        for t in 0..threads {
            let mut cpis = Vec::new();
            let mut misses = Vec::new();
            for r in &out.records {
                if r.instructions[t] > 0 {
                    cpis.push(r.cpi[t]);
                    misses.push(r.l2_misses[t] as f64 / r.instructions[t] as f64);
                }
            }
            if let Some(c) = stats::pearson(&cpis, &misses) {
                per_thread.push(c);
            }
        }
        corrs.push(stats::mean(&per_thread));
    }

    // Interaction fraction (Figure 8).
    let inters: Vec<f64> = data
        .shared
        .iter()
        .map(|o| o.interactions.inter_thread_fraction() * 100.0)
        .collect();

    // Small-working-set benchmarks' gains vs shared (Figure 20's aside).
    let names = data.names();
    let small_imps: Vec<f64> = suite::small_working_set_names()
        .iter()
        .map(|n| {
            let i = names.iter().position(|x| x == n).expect("suite member");
            vs_shared[i]
        })
        .collect();

    vec![
        Check {
            claim: "Fig 20: max improvement vs shared (%)",
            paper: "up to 15",
            measured: max(&vs_shared),
            band: (5.0, 20.0),
        },
        Check {
            claim: "Fig 20: avg improvement vs shared (%)",
            paper: "~9",
            measured: stats::mean(&vs_shared),
            band: (2.0, 13.0),
        },
        Check {
            claim: "Fig 20: min improvement vs shared (%)",
            paper: ">= 0 (three benchmarks near zero)",
            measured: min(&vs_shared),
            band: (-3.0, 5.0),
        },
        Check {
            claim: "Fig 20: small-WS benchmarks stay small (max abs %)",
            paper: "only a small benefit",
            measured: small_imps.iter().cloned().fold(0.0, |a: f64, b| a.max(b.abs())),
            band: (0.0, 6.0),
        },
        Check {
            claim: "Fig 19: max improvement vs private/equal (%)",
            paper: "up to 23",
            measured: max(&vs_equal),
            band: (12.0, 30.0),
        },
        Check {
            claim: "Fig 19: avg improvement vs private/equal (%)",
            paper: "~11",
            measured: stats::mean(&vs_equal),
            band: (5.0, 18.0),
        },
        Check {
            claim: "Fig 19 > Fig 20: equal gains exceed shared gains",
            paper: "implied by Figs 19/20",
            measured: stats::mean(&vs_equal) - stats::mean(&vs_shared),
            band: (0.0, f64::INFINITY),
        },
        Check {
            claim: "Fig 21: max improvement vs throughput scheme (%)",
            paper: "up to 20",
            measured: max(&vs_ucp),
            band: (10.0, 28.0),
        },
        Check {
            claim: "Fig 21: min improvement vs throughput scheme (%)",
            paper: "outperforms for all applications",
            measured: min(&vs_ucp),
            band: (-1.0, f64::INFINITY),
        },
        Check {
            claim: "Fig 5: avg CPI-miss correlation",
            paper: "0.97",
            measured: stats::mean(&corrs),
            band: (0.9, 1.0),
        },
        Check {
            claim: "Fig 8: avg inter-thread interaction (%)",
            paper: "11.5",
            measured: stats::mean(&inters),
            band: (6.0, 25.0),
        },
    ]
}

/// Weighted speedup of `scheme` over `base`: per-thread CPI speedups
/// (base CPI / scheme CPI), averaged — the standard multiprogram scaling
/// metric, robust to one thread dominating wall time at high core counts.
fn weighted_speedup(
    scheme: &icp_core::ExecutionOutcome,
    base: &icp_core::ExecutionOutcome,
) -> f64 {
    let per_thread: Vec<f64> = scheme
        .thread_totals
        .iter()
        .zip(&base.thread_totals)
        .map(|(s, b)| {
            let cpi_s = s.active_cycles as f64 / s.instructions.max(1) as f64;
            let cpi_b = b.active_cycles as f64 / b.instructions.max(1) as f64;
            cpi_b / cpi_s.max(f64::MIN_POSITIVE)
        })
        .collect();
    stats::mean(&per_thread)
}

/// Measured wall-clock ratio of the flat hill-climb allocator over the
/// hierarchical lookahead allocator, both fed the same full-run
/// utility-monitor curves from a profiled 16-thread run.
///
/// This is an apples-to-apples allocator benchmark: each rep starts cold
/// from the equal split and computes a complete 16-thread partition —
/// the hill-climb by [`icp_baselines::descent::greedy_single_way_descent`]
/// over the `O(ways^threads)` flat space (each scan evaluates every
/// single-way move), the hierarchical path by merging per-cluster curves,
/// running [`icp_core::lookahead_allocate`] across clusters and splitting
/// within them — exactly what [`icp_core::HierarchicalPolicy`] does each
/// interval. Both sides are pure integer/float loops over the same curves,
/// so the ratio is robust to build mode.
fn allocator_speedup(profile: &icp_cmp_sim::UmonProfile, clusters: usize) -> f64 {
    let threads = profile.threads();
    let ways = profile.ways;
    // Cumulative per-thread utility curves: curves[t][w] = hits at w ways.
    let curves: Vec<Vec<u64>> = profile
        .way_hits
        .iter()
        .map(|hist| {
            let mut acc = 0u64;
            std::iter::once(0)
                .chain(hist.iter().map(|&h| {
                    acc += h;
                    acc
                }))
                .collect()
        })
        .collect();
    let equal = icp_cmp_sim::l2::equal_split(ways, threads);
    const REPS: u32 = 32;

    let hill_start = std::time::Instant::now();
    for _ in 0..REPS {
        let quotas = icp_baselines::descent::greedy_single_way_descent(
            std::hint::black_box(&equal),
            1,
            |w| {
                -(w.iter()
                    .enumerate()
                    .map(|(t, &q)| curves[t][(q as usize).min(curves[t].len() - 1)])
                    .sum::<u64>() as f64)
            },
        );
        std::hint::black_box(quotas);
    }
    let hill_nanos = hill_start.elapsed().as_nanos();

    let group = threads / clusters;
    let look_start = std::time::Instant::now();
    for _ in 0..REPS {
        // Inter-cluster: merge member curves and lookahead over them with
        // one-way-per-member floors.
        let merged: Vec<Vec<u64>> = (0..clusters)
            .map(|c| {
                let mut m = vec![0u64; ways as usize + 1];
                for curve in curves.iter().skip(c * group).take(group) {
                    for (acc, v) in m.iter_mut().zip(curve) {
                        *acc += v;
                    }
                }
                m
            })
            .collect();
        let floors = vec![group as u32; clusters];
        let budgets =
            icp_core::lookahead_allocate(std::hint::black_box(&merged), ways, &floors);
        // Intra-cluster: split each cluster budget among its members.
        let mut quotas = vec![0u32; threads];
        for (c, &b) in budgets.iter().enumerate() {
            let split = icp_cmp_sim::l2::equal_split(b, group);
            for (t, q) in (c * group..).zip(split) {
                quotas[t] = q;
            }
        }
        std::hint::black_box(quotas);
    }
    let look_nanos = look_start.elapsed().as_nanos();
    hill_nanos as f64 / look_nanos.max(1) as f64
}

/// The `eight_plus_core` scorecard tier: scaling claims on sliced-LLC
/// configurations past the paper's 4-core chip (reproduction extension —
/// the paper stops at the 8-core monolithic L2 of Figure 22).
///
/// One suite benchmark runs at 16 threads on a 4-slice LLC under the flat
/// hill-climbing incumbent ([`Scheme::ModelBased`]) and the hierarchical
/// lookahead scheme, plus 8 threads on a 2-slice LLC, checking that:
///
/// 1. the hierarchical lookahead allocator is >= 10x cheaper in measured
///    wall-clock than the flat hill-climb at 16 threads, both replayed on
///    the run's real utility-monitor curves ([`allocator_speedup`]),
/// 2. that speedup is not bought with throughput: hierarchical lookahead's
///    weighted speedup over the equal split is equal or better than the
///    hill-climb's,
/// 3. partitioning gains persist on sliced machines (16t and 8t).
pub fn eight_plus_core_tier(cfg: &ExperimentConfig) -> Vec<Check> {
    let bench = suite::mgrid();
    let c16 = cfg.clone().with_topology(16, 4);
    let outs = c16.run_schemes(
        &bench,
        &[
            Scheme::Shared,
            Scheme::StaticEqual,
            Scheme::ModelBased,
            Scheme::HierarchicalLookahead(4),
        ],
    );
    let (shared, equal, hill, look) = (&outs[0], &outs[1], &outs[2], &outs[3]);
    let profile = c16
        .run_profiled(&bench, &Scheme::StaticEqual)
        .umon_profile
        .expect("profiled run exports a UMON profile");
    let allocator_speedup = allocator_speedup(&profile, 4);
    let ws_delta = weighted_speedup(look, equal) - weighted_speedup(hill, equal);

    let c8 = cfg.clone().with_topology(8, 2);
    let outs8 = c8.run_schemes(&bench, &[Scheme::Shared, Scheme::ModelBased]);

    vec![
        Check {
            claim: "8+ core: lookahead allocator speedup vs hill-climb (x, 16t)",
            paper: "n/a (scaling extension)",
            measured: allocator_speedup,
            band: (10.0, f64::INFINITY),
        },
        Check {
            claim: "8+ core: weighted-speedup delta, lookahead - hill-climb (16t)",
            paper: "n/a (equal or better)",
            // Equal-or-better within run noise: weighted speedups land
            // within a hundredth of each other or favour lookahead.
            measured: ws_delta,
            band: (-0.01, f64::INFINITY),
        },
        Check {
            claim: "8+ core: hier-lookahead vs static-equal (%, 16t sliced)",
            paper: "n/a (gains persist at scale)",
            measured: look.improvement_percent_over(equal),
            band: (0.0, f64::INFINITY),
        },
        Check {
            claim: "8+ core: hier-lookahead vs shared (%, 16t sliced)",
            paper: "n/a (no collapse vs shared)",
            measured: look.improvement_percent_over(shared),
            // At 16 threads x 64 ways the equal share is 4 ways/thread, so
            // pooled shared LRU is genuinely strong (high-reuse threads
            // borrow idle capacity partitioning walls off); this gate
            // guards against *collapse* on sliced machines, not
            // superiority — figure scale measures ~-8 %.
            band: (-12.0, f64::INFINITY),
        },
        Check {
            claim: "8+ core: dynamic vs shared (%, 8t sliced)",
            paper: "Fig 22: similar gains to 4-core",
            measured: outs8[1].improvement_percent_over(&outs8[0]),
            band: (-3.0, f64::INFINITY),
        },
    ]
}

/// Renders the scorecard as a table.
pub fn scorecard_table(checks: &[Check]) -> Table {
    let mut t = Table::new(
        "Reproduction scorecard: paper claims vs measured",
        &["claim", "paper", "measured", "band", "verdict"],
    );
    for c in checks {
        t.row(vec![
            c.claim.to_string(),
            c.paper.to_string(),
            f2(c.measured),
            format!("[{}, {}]", f2(c.band.0), f2(c.band.1)),
            if c.pass() { "PASS".into() } else { "OUT-OF-BAND".into() },
        ]);
    }
    let passed = checks.iter().filter(|c| c.pass()).count();
    t.row(vec![
        "TOTAL".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{passed}/{} pass", checks.len()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_pass_logic() {
        let c = Check { claim: "x", paper: "y", measured: 5.0, band: (4.0, 6.0) };
        assert!(c.pass());
        let c = Check { claim: "x", paper: "y", measured: 7.0, band: (4.0, 6.0) };
        assert!(!c.pass());
        let c = Check { claim: "x", paper: "y", measured: 1e9, band: (0.0, f64::INFINITY) };
        assert!(c.pass());
    }

    #[test]
    fn scorecard_runs_at_test_scale() {
        // At test scale we only require the scorecard to *run* and the
        // structural claims to hold; the band assertions are made at
        // figure scale by the ignored integration test.
        let checks = scorecard_from(crate::figures::context::test_data());
        assert_eq!(checks.len(), 11);
        let t = scorecard_table(&checks);
        assert_eq!(t.len(), 12);
        // The ordering claim (equal > shared) must hold even at test scale.
        let ordering = checks
            .iter()
            .find(|c| c.claim.contains("Fig 19 > Fig 20"))
            .unwrap();
        assert!(ordering.pass(), "{ordering:?}");
    }

    #[test]
    fn eight_plus_tier_allocator_speedup_holds_at_test_scale() {
        let checks = eight_plus_core_tier(&ExperimentConfig::test());
        assert_eq!(checks.len(), 5);
        let t = scorecard_table(&checks);
        assert_eq!(t.len(), 6);
        // The two claims this PR stakes must hold even at test scale: the
        // measured >= 10x allocator speedup over the flat hill-climb, and
        // weighted speedup not paying for it. The gains bands are asserted
        // at figure scale by the repro binary / ignored integration tests.
        let speedup = checks
            .iter()
            .find(|c| c.claim.contains("allocator speedup"))
            .unwrap();
        assert!(speedup.pass(), "{speedup:?}");
        let ws = checks
            .iter()
            .find(|c| c.claim.contains("weighted-speedup"))
            .unwrap();
        assert!(ws.pass(), "{ws:?}");
    }
}
