//! The reproduction scorecard: automated paper-vs-measured band checks.
//!
//! Each entry encodes a quantitative claim from the paper's evaluation and
//! the tolerance band this reproduction is expected to land in (shape
//! fidelity, not absolute-number matching — see `EXPERIMENTS.md`). The
//! scorecard is printed by `repro scorecard` and asserted (at figure scale)
//! by the `figure_scale_bands` integration test.

use icp_numeric::stats;
use icp_workloads::suite;

use crate::figures::SuiteData;
use crate::runner::ExperimentConfig;
use crate::table::{f2, Table};

/// One checked claim.
#[derive(Clone, Debug)]
pub struct Check {
    /// Which figure/claim this verifies.
    pub claim: &'static str,
    /// The paper's reported value (as text, for the report).
    pub paper: &'static str,
    /// Measured value.
    pub measured: f64,
    /// Acceptance band for the measured value.
    pub band: (f64, f64),
}

impl Check {
    /// Whether the measured value lies in the band.
    pub fn pass(&self) -> bool {
        self.measured >= self.band.0 && self.measured <= self.band.1
    }
}

/// Runs the whole suite and evaluates every scorecard claim, plus the
/// fast-path prediction-error check (which needs extra simulations beyond
/// the suite collection, so it lives here and not in [`scorecard_from`]).
pub fn run_scorecard(cfg: &ExperimentConfig) -> Vec<Check> {
    let data = SuiteData::collect(cfg);
    let mut checks = scorecard_from(&data);
    let errors = crate::figures::prediction::prediction_errors(cfg);
    checks.push(Check {
        claim: "Fast path: mean miss-prediction error (%)",
        paper: "n/a (reproduction extension)",
        measured: errors.mean_pct(),
        // Scale-dependent: ~21 % at test scale, ~43 % at figure scale
        // (ft's sharing-dominated tiny miss counts inflate relative error
        // as runs lengthen — see EXPERIMENTS.md). The band is a regression
        // guard on the predictor, not a sweep-accuracy bound: sweep signs
        // are protected by the fast-mode margin fallback.
        band: (0.0, 60.0),
    });
    checks
}

/// Evaluates the scorecard claims against an existing suite collection.
pub fn scorecard_from(data: &SuiteData) -> Vec<Check> {
    let imps = |base: &[icp_core::ExecutionOutcome]| -> Vec<f64> {
        data.dynamic
            .iter()
            .zip(base)
            .map(|(d, b)| d.improvement_percent_over(b))
            .collect()
    };
    let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);

    let vs_shared = imps(&data.shared);
    let vs_equal = imps(&data.equal);
    let vs_ucp = imps(&data.ucp);

    // Correlation (Figure 5): per-thread, averaged per benchmark.
    let mut corrs = Vec::new();
    for out in &data.shared {
        let threads = out.thread_totals.len();
        let mut per_thread = Vec::new();
        for t in 0..threads {
            let mut cpis = Vec::new();
            let mut misses = Vec::new();
            for r in &out.records {
                if r.instructions[t] > 0 {
                    cpis.push(r.cpi[t]);
                    misses.push(r.l2_misses[t] as f64 / r.instructions[t] as f64);
                }
            }
            if let Some(c) = stats::pearson(&cpis, &misses) {
                per_thread.push(c);
            }
        }
        corrs.push(stats::mean(&per_thread));
    }

    // Interaction fraction (Figure 8).
    let inters: Vec<f64> = data
        .shared
        .iter()
        .map(|o| o.interactions.inter_thread_fraction() * 100.0)
        .collect();

    // Small-working-set benchmarks' gains vs shared (Figure 20's aside).
    let names = data.names();
    let small_imps: Vec<f64> = suite::small_working_set_names()
        .iter()
        .map(|n| {
            let i = names.iter().position(|x| x == n).expect("suite member");
            vs_shared[i]
        })
        .collect();

    vec![
        Check {
            claim: "Fig 20: max improvement vs shared (%)",
            paper: "up to 15",
            measured: max(&vs_shared),
            band: (5.0, 20.0),
        },
        Check {
            claim: "Fig 20: avg improvement vs shared (%)",
            paper: "~9",
            measured: stats::mean(&vs_shared),
            band: (2.0, 13.0),
        },
        Check {
            claim: "Fig 20: min improvement vs shared (%)",
            paper: ">= 0 (three benchmarks near zero)",
            measured: min(&vs_shared),
            band: (-3.0, 5.0),
        },
        Check {
            claim: "Fig 20: small-WS benchmarks stay small (max abs %)",
            paper: "only a small benefit",
            measured: small_imps.iter().cloned().fold(0.0, |a: f64, b| a.max(b.abs())),
            band: (0.0, 6.0),
        },
        Check {
            claim: "Fig 19: max improvement vs private/equal (%)",
            paper: "up to 23",
            measured: max(&vs_equal),
            band: (12.0, 30.0),
        },
        Check {
            claim: "Fig 19: avg improvement vs private/equal (%)",
            paper: "~11",
            measured: stats::mean(&vs_equal),
            band: (5.0, 18.0),
        },
        Check {
            claim: "Fig 19 > Fig 20: equal gains exceed shared gains",
            paper: "implied by Figs 19/20",
            measured: stats::mean(&vs_equal) - stats::mean(&vs_shared),
            band: (0.0, f64::INFINITY),
        },
        Check {
            claim: "Fig 21: max improvement vs throughput scheme (%)",
            paper: "up to 20",
            measured: max(&vs_ucp),
            band: (10.0, 28.0),
        },
        Check {
            claim: "Fig 21: min improvement vs throughput scheme (%)",
            paper: "outperforms for all applications",
            measured: min(&vs_ucp),
            band: (-1.0, f64::INFINITY),
        },
        Check {
            claim: "Fig 5: avg CPI-miss correlation",
            paper: "0.97",
            measured: stats::mean(&corrs),
            band: (0.9, 1.0),
        },
        Check {
            claim: "Fig 8: avg inter-thread interaction (%)",
            paper: "11.5",
            measured: stats::mean(&inters),
            band: (6.0, 25.0),
        },
    ]
}

/// Renders the scorecard as a table.
pub fn scorecard_table(checks: &[Check]) -> Table {
    let mut t = Table::new(
        "Reproduction scorecard: paper claims vs measured",
        &["claim", "paper", "measured", "band", "verdict"],
    );
    for c in checks {
        t.row(vec![
            c.claim.to_string(),
            c.paper.to_string(),
            f2(c.measured),
            format!("[{}, {}]", f2(c.band.0), f2(c.band.1)),
            if c.pass() { "PASS".into() } else { "OUT-OF-BAND".into() },
        ]);
    }
    let passed = checks.iter().filter(|c| c.pass()).count();
    t.row(vec![
        "TOTAL".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{passed}/{} pass", checks.len()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_pass_logic() {
        let c = Check { claim: "x", paper: "y", measured: 5.0, band: (4.0, 6.0) };
        assert!(c.pass());
        let c = Check { claim: "x", paper: "y", measured: 7.0, band: (4.0, 6.0) };
        assert!(!c.pass());
        let c = Check { claim: "x", paper: "y", measured: 1e9, band: (0.0, f64::INFINITY) };
        assert!(c.pass());
    }

    #[test]
    fn scorecard_runs_at_test_scale() {
        // At test scale we only require the scorecard to *run* and the
        // structural claims to hold; the band assertions are made at
        // figure scale by the ignored integration test.
        let checks = scorecard_from(crate::figures::context::test_data());
        assert_eq!(checks.len(), 11);
        let t = scorecard_table(&checks);
        assert_eq!(t.len(), 12);
        // The ordering claim (equal > shared) must hold even at test scale.
        let ordering = checks
            .iter()
            .find(|c| c.claim.contains("Fig 19 > Fig 20"))
            .unwrap();
        assert!(ordering.pass(), "{ordering:?}");
    }
}
