//! Set-partitioning adapter: runs any way-quota policy as an OS
//! page-coloring scheme.
//!
//! The paper's related work discusses OS software approaches that partition
//! by cache *sets* through memory address mapping (Lin et al., Zhang et
//! al.) rather than by ways. [`SetPartitionAdapter`] reuses the exact same
//! decision logic — the inner policy still computes per-thread quotas from
//! CPI models — but applies them as set ranges. The comparison against the
//! way-partitioned original isolates the *mechanism*:
//!
//! * way partitioning keeps cross-thread hits (constructive sharing);
//! * set partitioning gives hard isolation but replicates shared lines
//!   into every accessor's range and re-shapes associativity.

use icp_cmp_sim::simulator::IntervalReport;
use icp_cmp_sim::umon::UtilityMonitor;
use icp_core::policy::{PartitionDecision, Partitioner};

/// Wraps a way-quota policy and re-targets its decisions at set ranges.
pub struct SetPartitionAdapter<P: Partitioner> {
    inner: P,
}

impl<P: Partitioner> SetPartitionAdapter<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        SetPartitionAdapter { inner }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn convert(decision: PartitionDecision) -> PartitionDecision {
        match decision {
            PartitionDecision::Partition(q) => PartitionDecision::SetPartition(q),
            other => other,
        }
    }
}

impl<P: Partitioner> Partitioner for SetPartitionAdapter<P> {
    fn name(&self) -> &'static str {
        "set-partition"
    }

    fn initial(&mut self, threads: usize, total_ways: u32) -> PartitionDecision {
        Self::convert(self.inner.initial(threads, total_ways))
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        Self::convert(self.inner.repartition(report, total_ways))
    }

    fn wants_umon(&self) -> bool {
        self.inner.wants_umon()
    }

    fn observe_umon(&mut self, umon: &UtilityMonitor) {
        self.inner.observe_umon(umon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::StaticEqualPolicy;
    use icp_core::ModelBasedPolicy;

    #[test]
    fn converts_partitions_to_set_partitions() {
        let mut p = SetPartitionAdapter::new(StaticEqualPolicy);
        match p.initial(4, 64) {
            PartitionDecision::SetPartition(q) => assert_eq!(q, vec![16; 4]),
            other => panic!("expected SetPartition, got {other:?}"),
        }
    }

    #[test]
    fn passes_through_keep() {
        use icp_cmp_sim::simulator::{IntervalReport, ThreadIntervalStats};
        use icp_cmp_sim::stats::ThreadCounters;
        let mut p = SetPartitionAdapter::new(StaticEqualPolicy);
        let r = IntervalReport {
            index: 0,
            threads: vec![ThreadIntervalStats {
                counters: ThreadCounters::default(),
                cpi: 1.0,
                ways: 16,
            }],
            finished: false,
            wall_cycles: 0,
        };
        assert_eq!(p.repartition(&r, 64), PartitionDecision::Keep);
    }

    #[test]
    fn wraps_dynamic_policy() {
        let p = SetPartitionAdapter::new(ModelBasedPolicy::new());
        assert_eq!(p.name(), "set-partition");
        assert!(!p.wants_umon());
    }
}
