//! Throughput-oriented partitioning baselines (paper §IV-B, Figure 21).
//!
//! The paper argues that schemes which "assign more cache space to the
//! thread that best utilizes it" maximise chip throughput but can spend the
//! whole cache speeding up threads that are *not* on the application's
//! critical path. Two representatives are implemented:
//!
//! * [`UcpThroughputPolicy`] — utility-based cache partitioning in the
//!   lineage of Suh et al. and Qureshi & Patt's UCP: per-thread
//!   hits-vs-ways curves come from sampled auxiliary tag directories
//!   ([`icp_cmp_sim::UtilityMonitor`]) and ways are assigned by the
//!   *lookahead* algorithm, which repeatedly grants the block of ways with
//!   the highest marginal hit utility per way.
//! * [`ModelThroughputPolicy`] — the paper's own spline machinery with the
//!   objective switched from `min max CPI` to `min Σ CPI`. Comparing this
//!   against [`icp_core::ModelBasedPolicy`] isolates the objective (what
//!   the paper claims matters) from the modelling machinery.

use icp_cmp_sim::simulator::IntervalReport;
use icp_cmp_sim::umon::UtilityMonitor;
use icp_core::policy::{PartitionDecision, Partitioner};

use crate::descent::greedy_single_way_descent;
use crate::tracker::CpiModelTracker;

/// UCP-style lookahead partitioning on utility-monitor curves.
#[derive(Clone, Debug)]
pub struct UcpThroughputPolicy {
    /// Per-thread cumulative hit curves from the last boundary:
    /// `curves[t][w]` = hits thread `t` would get with `w` ways.
    curves: Vec<Vec<u64>>,
    min_ways: u32,
}

impl UcpThroughputPolicy {
    /// Creates the policy with a 1-way floor per thread.
    pub fn new() -> Self {
        UcpThroughputPolicy { curves: Vec::new(), min_ways: 1 }
    }

    /// Lookahead allocation (Qureshi & Patt, MICRO'06) over the per-thread
    /// curves — delegates to the shared allocator in
    /// [`icp_core::lookahead_allocate`] with a uniform floor.
    fn lookahead(&self, threads: usize, total_ways: u32) -> Vec<u32> {
        icp_core::lookahead_allocate(&self.curves, total_ways, &vec![self.min_ways; threads])
    }
}

impl Default for UcpThroughputPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for UcpThroughputPolicy {
    fn name(&self) -> &'static str {
        "ucp-throughput"
    }

    fn wants_umon(&self) -> bool {
        true
    }

    fn observe_umon(&mut self, umon: &UtilityMonitor) {
        self.curves.clear();
        for t in 0..umon.threads() {
            let mut curve = Vec::with_capacity(umon.ways() + 1);
            curve.push(0u64);
            let mut acc = 0u64;
            for &h in umon.way_histogram(t) {
                acc += h;
                curve.push(acc);
            }
            self.curves.push(curve);
        }
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        let threads = report.threads.len();
        if self.curves.len() != threads {
            // No profile yet (running without a UMON, or before the first
            // observe_umon call): stay equal.
            return PartitionDecision::Partition(icp_cmp_sim::l2::equal_split(total_ways, threads));
        }
        PartitionDecision::Partition(self.lookahead(threads, total_ways))
    }
}

/// Model-driven throughput optimiser: spline CPI models, greedy single-way
/// moves while Σ predicted CPI strictly decreases.
#[derive(Clone, Debug)]
pub struct ModelThroughputPolicy {
    tracker: CpiModelTracker,
    min_ways: u32,
}

impl ModelThroughputPolicy {
    /// Creates the policy with a 1-way floor per thread.
    pub fn new() -> Self {
        ModelThroughputPolicy { tracker: CpiModelTracker::new(), min_ways: 1 }
    }
}

impl Default for ModelThroughputPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for ModelThroughputPolicy {
    fn name(&self) -> &'static str {
        "model-throughput"
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        self.tracker.observe(report);
        let n = report.threads.len();
        if !self.tracker.ready() {
            return PartitionDecision::Partition(self.tracker.bootstrap_partition(
                n,
                total_ways,
                self.min_ways,
            ));
        }
        let mut start: Vec<u32> = report.threads.iter().map(|t| t.ways).collect();
        // Rescale if the caller changed the budget between intervals (the
        // hierarchical OS level can).
        if start.iter().sum::<u32>() != total_ways {
            start = icp_core::proportional_allocation(
                &start.iter().map(|&w| w as f64).collect::<Vec<_>>(),
                total_ways,
                self.min_ways,
            );
        }
        let observed: Vec<f64> = report.threads.iter().map(|t| t.cpi).collect();
        let tracker = &self.tracker;
        let ways = greedy_single_way_descent(&start, self.min_ways, |w| {
            (0..n).map(|t| tracker.predict(t, w[t], observed[t])).sum()
        });
        PartitionDecision::Partition(ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icp_cmp_sim::config::CacheConfig;
    use icp_cmp_sim::simulator::{IntervalReport, ThreadIntervalStats};
    use icp_cmp_sim::stats::ThreadCounters;

    fn report(idx: usize, cpis: &[f64], ways: &[u32]) -> IntervalReport {
        let threads = cpis
            .iter()
            .zip(ways)
            .map(|(&cpi, &w)| ThreadIntervalStats {
                counters: ThreadCounters {
                    instructions: 1000,
                    active_cycles: (cpi * 1000.0) as u64,
                    ..Default::default()
                },
                cpi,
                ways: w,
            })
            .collect();
        IntervalReport { index: idx, threads, finished: false, wall_cycles: 0 }
    }

    /// Builds a UMON where thread 0 has high way-utility and thread 1 has
    /// almost none.
    fn skewed_umon() -> UtilityMonitor {
        // 1 set x 8 ways, 2 threads, sample every set.
        let cfg = CacheConfig::new(8 * 64, 8, 64);
        let mut m = UtilityMonitor::new(&cfg, 2, 1);
        // Thread 0: loop over 4 lines repeatedly -> hits at distances 0..3.
        for _ in 0..50 {
            for i in 0..4u64 {
                m.observe(0, i * 64);
            }
        }
        // Thread 1: stream (never reuses) -> no utility at any way count.
        for i in 0..200u64 {
            m.observe(1, (1000 + i) * 64);
        }
        m
    }

    #[test]
    fn ucp_gives_ways_to_high_utility_thread() {
        let mut p = UcpThroughputPolicy::new();
        p.observe_umon(&skewed_umon());
        let d = p.repartition(&report(0, &[3.0, 9.0], &[4, 4]), 8);
        let PartitionDecision::Partition(w) = d else { panic!() };
        assert_eq!(w.iter().sum::<u32>(), 8);
        // Throughput logic favours the *utilising* thread 0, even though
        // thread 1 is the critical one — exactly the failure mode the paper
        // describes in §IV-B.
        assert!(w[0] > w[1], "{w:?}");
    }

    #[test]
    fn ucp_without_profile_stays_equal() {
        let mut p = UcpThroughputPolicy::new();
        let d = p.repartition(&report(0, &[3.0, 9.0], &[4, 4]), 8);
        assert_eq!(d, PartitionDecision::Partition(vec![4, 4]));
    }

    #[test]
    fn ucp_wants_umon() {
        assert!(UcpThroughputPolicy::new().wants_umon());
        assert!(!ModelThroughputPolicy::new().wants_umon());
    }

    #[test]
    fn lookahead_allocates_everything() {
        let mut p = UcpThroughputPolicy::new();
        p.observe_umon(&skewed_umon());
        let alloc = p.lookahead(2, 8);
        assert_eq!(alloc.iter().sum::<u32>(), 8);
        assert!(alloc.iter().all(|&w| w >= 1));
    }

    #[test]
    fn model_throughput_minimises_sum_not_max() {
        let mut p = ModelThroughputPolicy::new();
        // Bootstrap boundaries.
        let d0 = p.repartition(&report(0, &[6.0, 2.0], &[8, 8]), 16);
        let PartitionDecision::Partition(w0) = d0 else { panic!() };
        let d1 = p.repartition(&report(1, &[6.0, 2.0], &w0), 16);
        let PartitionDecision::Partition(w1) = d1 else { panic!() };
        // Third boundary: thread 1 (the FAST one) is very sensitive, thread
        // 0 (critical) is flat. A throughput objective gives ways to the
        // fast sensitive thread.
        // Feed observations establishing that shape.
        let d2 = p.repartition(
            &report(2, &[6.0, if w1[1] > 8 { 1.5 } else { 2.5 }], &w1),
            16,
        );
        let PartitionDecision::Partition(w2) = d2 else { panic!() };
        assert_eq!(w2.iter().sum::<u32>(), 16);
    }
}
