//! Non-adaptive baselines: shared (unpartitioned) and static partitions.

use icp_cmp_sim::l2::equal_split;
use icp_cmp_sim::simulator::IntervalReport;
use icp_core::policy::{PartitionDecision, Partitioner};

/// A plain shared cache: global LRU, no eviction control. This is the
/// configuration the paper's Figure 20 compares against; it enjoys full
/// flexibility and constructive sharing but suffers destructive
/// inter-thread evictions.
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedCachePolicy;

impl Partitioner for SharedCachePolicy {
    fn name(&self) -> &'static str {
        "shared"
    }

    fn initial(&mut self, _threads: usize, _total_ways: u32) -> PartitionDecision {
        PartitionDecision::Unpartitioned
    }

    fn repartition(&mut self, _report: &IntervalReport, _total_ways: u32) -> PartitionDecision {
        PartitionDecision::Keep
    }
}

/// A fixed equal split of the ways — functionally a private per-core cache,
/// and the paper's stand-in for optimal-fairness schemes (Figure 19): every
/// thread is isolated and equally provisioned, but capacity cannot follow
/// demand.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticEqualPolicy;

impl Partitioner for StaticEqualPolicy {
    fn name(&self) -> &'static str {
        "static-equal"
    }

    fn repartition(&mut self, _report: &IntervalReport, _total_ways: u32) -> PartitionDecision {
        PartitionDecision::Keep
    }
}

/// An arbitrary fixed partition, applied once and never changed. Used by
/// the Figure 10 sensitivity sweeps ("run thread i with w ways") and as an
/// oracle-partition ablation.
#[derive(Clone, Debug)]
pub struct StaticPolicy {
    ways: Vec<u32>,
}

impl StaticPolicy {
    /// Creates a fixed-partition policy. Quota validity (sum = way count)
    /// is checked when the partition is applied.
    pub fn new(ways: Vec<u32>) -> Self {
        StaticPolicy { ways }
    }

    /// The fixed quotas.
    pub fn ways(&self) -> &[u32] {
        &self.ways
    }
}

impl Partitioner for StaticPolicy {
    fn name(&self) -> &'static str {
        "static-custom"
    }

    fn initial(&mut self, threads: usize, total_ways: u32) -> PartitionDecision {
        assert_eq!(self.ways.len(), threads, "quota per thread");
        assert_eq!(self.ways.iter().sum::<u32>(), total_ways, "quotas must sum to way count");
        PartitionDecision::Partition(self.ways.clone())
    }

    fn repartition(&mut self, _report: &IntervalReport, _total_ways: u32) -> PartitionDecision {
        PartitionDecision::Keep
    }
}

/// Convenience: the equal split itself (re-exported here because baseline
/// users frequently need it to build `StaticPolicy` variants).
pub fn equal_partition(total_ways: u32, threads: usize) -> Vec<u32> {
    equal_split(total_ways, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icp_cmp_sim::simulator::{IntervalReport, ThreadIntervalStats};
    use icp_cmp_sim::stats::ThreadCounters;

    fn report() -> IntervalReport {
        IntervalReport {
            index: 0,
            threads: vec![ThreadIntervalStats {
                counters: ThreadCounters::default(),
                cpi: 1.0,
                ways: 2,
            }],
            finished: false,
            wall_cycles: 0,
        }
    }

    #[test]
    fn shared_runs_unpartitioned_forever() {
        let mut p = SharedCachePolicy;
        assert_eq!(p.initial(4, 64), PartitionDecision::Unpartitioned);
        assert_eq!(p.repartition(&report(), 64), PartitionDecision::Keep);
        assert!(!p.wants_umon());
    }

    #[test]
    fn static_equal_starts_equal_and_keeps() {
        let mut p = StaticEqualPolicy;
        assert_eq!(p.initial(4, 64), PartitionDecision::Partition(vec![16; 4]));
        assert_eq!(p.repartition(&report(), 64), PartitionDecision::Keep);
    }

    #[test]
    fn static_custom_applies_given_partition() {
        let mut p = StaticPolicy::new(vec![40, 8, 8, 8]);
        assert_eq!(
            p.initial(4, 64),
            PartitionDecision::Partition(vec![40, 8, 8, 8])
        );
        assert_eq!(p.repartition(&report(), 64), PartitionDecision::Keep);
    }

    #[test]
    #[should_panic(expected = "sum to way count")]
    fn static_custom_validates_sum() {
        StaticPolicy::new(vec![1, 1, 1, 1]).initial(4, 64);
    }

    #[test]
    fn equal_partition_helper() {
        assert_eq!(equal_partition(10, 3), vec![4, 3, 3]);
    }
}
